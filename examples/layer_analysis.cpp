// Layer-sensitivity profiler: a standalone tool exposing DINAR's §3
// analysis. For each of the library's four model families it trains a
// model to overfit a synthetic workload, then prints the per-layer
// member/non-member gradient divergence profile and the layer DINAR
// would protect. Useful when adapting DINAR to a new architecture.
//
// Run: ./layer_analysis [--fast]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/sensitivity.h"
#include "data/synthetic.h"
#include "fl/trainer.h"
#include "nn/model_zoo.h"
#include "opt/optimizers.h"
#include "util/logging.h"

using namespace dinar;

namespace {

void profile(const std::string& family, nn::Model model, const data::Dataset& members,
             const data::Dataset& non_members, int epochs) {
  Rng rng(31);
  auto optimizer = opt::make_optimizer("adagrad", 1e-2);
  fl::train_local(model, members, *optimizer, fl::TrainConfig{epochs, 64}, rng);
  const fl::EvalStats train = fl::evaluate(model, members);
  const fl::EvalStats test = fl::evaluate(model, non_members);

  core::SensitivityConfig cfg;
  const auto layers = core::analyze_layer_sensitivity(model, members, non_members, cfg);
  const std::size_t top = core::most_sensitive_layer(layers);

  std::printf("\n%s  (train acc %.0f%%, test acc %.0f%% -> generalization gap "
              "%.0f points)\n",
              family.c_str(), 100.0 * train.accuracy, 100.0 * test.accuracy,
              100.0 * (train.accuracy - test.accuracy));
  double max_div = 1e-12;
  for (const auto& l : layers) max_div = std::max(max_div, l.divergence);
  for (const auto& l : layers) {
    const int bar = static_cast<int>(40.0 * l.divergence / max_div);
    std::printf("  [%2zu] %-28s %8.5f |%s%s\n", l.layer_index,
                l.layer_name.substr(0, 28).c_str(), l.divergence,
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                l.layer_index == top ? " <== protect" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Logger::instance().set_level(LogLevel::kWarn);
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
  const std::int64_t n = fast ? 300 : 600;
  const int epochs = fast ? 10 : 20;

  Rng rng(37);

  {
    data::TabularSpec spec;
    spec.num_samples = 2 * n;
    spec.num_features = 600;
    spec.num_classes = 50;
    spec.label_noise = 0.2;
    data::Dataset d = data::make_tabular(spec, rng);
    profile("FCNN-6 / tabular (Purchase100-style)",
            nn::make_fcnn6(600, 50, 256, rng), d.take(n), d.drop(n), epochs);
  }
  {
    data::ImageSpec spec;
    spec.num_samples = 2 * n;
    spec.num_classes = 10;
    spec.label_noise = 0.2;
    data::Dataset d = data::make_images(spec, rng);
    profile("ResNetSmall / images (Cifar-style)",
            nn::make_resnet_small(3, 12, 10, rng), d.take(n), d.drop(n), epochs);
    profile("VggSmall / images (GTSRB-style)",
            nn::make_vgg_small(3, 12, 10, 4, rng), d.take(n), d.drop(n), epochs);
  }
  {
    data::AudioSpec spec;
    spec.num_samples = 2 * n;
    spec.num_classes = 12;
    spec.label_noise = 0.2;
    data::Dataset d = data::make_audio(spec, rng);
    profile("M5Audio / waveforms (SpeechCommands-style)",
            nn::make_m5_audio(512, 12, rng), d.take(n), d.drop(n), epochs);
  }
  std::printf("\nThe paper (Figure 1) reports the penultimate layer dominating "
              "across architectures; DINAR protects whichever layer the vote "
              "selects.\n");
  return 0;
}
