// Banking consortium scenario (paper §1: fraud detection in banking
// systems): ten banks train a shared customer-classification model on
// Purchase100-style transaction profiles. Two of the banks are
// compromised and behave Byzantine during DINAR's initialization vote —
// the broadcast majority vote must still converge on the honest
// proposal, and the subsequent protected training must hold the attack
// at the 50% optimum.
//
// Run: ./banking_consortium [--fast]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "attack/evaluation.h"
#include "core/dinar.h"
#include "data/synthetic.h"
#include "util/logging.h"

using namespace dinar;

int main(int argc, char** argv) {
  Logger::instance().set_level(LogLevel::kWarn);
  bool fast = false;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
  }

  std::printf("Banking consortium: 10 banks, 2 Byzantine during the vote\n");
  std::printf("=========================================================\n");

  Rng rng(23);
  data::TabularSpec spec;
  spec.num_samples = fast ? 1500 : 3000;
  spec.num_features = 600;
  spec.num_classes = 50;  // paper's Purchase100 has 100; halved for the 3k-sample demo
  spec.label_noise = 0.2;
  data::Dataset profiles = data::make_tabular(spec, rng);

  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = 10;
  data::FlSplit split = data::make_fl_split(profiles, split_cfg, rng);

  nn::ModelFactory model = nn::fcnn6_factory(600, 50, 256);

  // Initialization with injected Byzantine voters.
  core::DinarInitConfig init_cfg;
  init_cfg.byzantine_clients = {3, 7};
  core::DinarInitResult init =
      core::run_dinar_initialization(model, split.client_train, split.test, init_cfg);

  std::printf("proposals:");
  for (std::size_t i = 0; i < init.proposals.size(); ++i)
    std::printf(" %zu%s", init.proposals[i],
                (i == 3 || i == 7) ? "(byz)" : "");
  std::printf("\nvote tally (node 0):");
  for (const auto& [layer, count] : init.consensus.tally)
    std::printf(" layer%zu:%d", layer, count);
  std::printf("\nagreed layer: %zu (honest agreement: %s)\n\n", init.agreed_layer,
              init.consensus.honest_agreement ? "yes" : "NO");

  // Protected federated training.
  fl::SimulationConfig cfg;
  cfg.rounds = fast ? 6 : 12;
  cfg.train = fl::TrainConfig{3, 64};
  cfg.learning_rate = 1e-2;
  cfg.exec.threads = threads;
  fl::FederatedSimulation sim(model, split, cfg,
                              core::make_dinar_bundle({init.agreed_layer}));
  sim.run();

  // Attack mounted by a compromised aggregation service.
  attack::MiaConfig mia_cfg;
  mia_cfg.shadow_train = fl::TrainConfig{fast ? 10 : 20, 64};
  mia_cfg.learning_rate = 1e-2;
  attack::ShadowMia mia(model, split.attacker_prior, mia_cfg);
  mia.fit();
  attack::PrivacyReport privacy = attack::evaluate_privacy(sim, mia);

  std::printf("personalized accuracy: %.1f%%\n",
              100.0 * sim.history().back().personalized_test_accuracy);
  std::printf("attack AUC: global %.1f%%, local %.1f%% (optimum 50%%)\n",
              100.0 * privacy.global_attack_auc,
              100.0 * privacy.mean_local_attack_auc);
  std::printf("uplink traffic: %.2f MiB over %d rounds\n",
              static_cast<double>(sim.transport().stats().bytes_up) / (1024.0 * 1024.0),
              cfg.rounds);
  return 0;
}
