// Quickstart: protect a federated model against membership-inference
// attacks with DINAR in ~60 lines.
//
//   1. build a dataset and split it across FL clients;
//   2. run DINAR's preliminary phase (per-client layer-sensitivity
//      analysis + Byzantine-tolerant vote on the layer to obfuscate);
//   3. run federated training with the DINAR client middleware;
//   4. check utility (accuracy) and privacy (attack AUC).
//
// Run: ./quickstart [--threads N]
//
// `--threads N` sizes the simulation's execution context: selected
// clients train concurrently and the tensor kernels tile across the
// same pool, with bit-identical results to the sequential run.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "attack/evaluation.h"
#include "core/dinar.h"
#include "data/synthetic.h"
#include "util/logging.h"

using namespace dinar;

int main(int argc, char** argv) {
  Logger::instance().set_level(LogLevel::kWarn);
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
  }

  // 1. A Purchase100-style tabular dataset, split per the paper's layout:
  //    half for the attacker, then 80/20 train/test, train sharded over
  //    five clients.
  Rng rng(7);
  data::TabularSpec spec;
  spec.num_samples = 2000;
  spec.num_features = 200;
  spec.num_classes = 20;
  spec.label_noise = 0.2;  // drives memorization, hence MIA risk
  data::Dataset dataset = data::make_tabular(spec, rng);

  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = 5;
  data::FlSplit split = data::make_fl_split(dataset, split_cfg, rng);

  // 2. DINAR initialization: clients agree on the most privacy-sensitive
  //    layer of the model they are about to train.
  nn::ModelFactory model = nn::fcnn6_factory(200, 20, 128);
  core::DinarInitConfig init_cfg;
  core::DinarInitResult init =
      core::run_dinar_initialization(model, split.client_train, split.test, init_cfg);
  std::printf("consensus: obfuscate layer %zu of %zu\n", init.agreed_layer,
              init.client_sensitivities.front().size());

  // 3. Federated training with DINAR as the client-side defense.
  fl::SimulationConfig fl_cfg;
  fl_cfg.rounds = 10;
  fl_cfg.train = fl::TrainConfig{3, 64};
  fl_cfg.learning_rate = 1e-2;
  fl_cfg.exec.threads = threads;
  fl::FederatedSimulation sim(model, split, fl_cfg,
                              core::make_dinar_bundle({init.agreed_layer}));
  sim.run();
  std::printf("personalized accuracy: %.1f%%\n",
              100.0 * sim.history().back().personalized_test_accuracy);

  // 4. Attack it: shadow-model MIA with the attacker's half of the data.
  attack::MiaConfig mia_cfg;
  mia_cfg.shadow_train = fl::TrainConfig{20, 64};
  mia_cfg.learning_rate = 1e-2;
  attack::ShadowMia mia(model, split.attacker_prior, mia_cfg);
  mia.fit();
  attack::PrivacyReport report = attack::evaluate_privacy(sim, mia);
  std::printf("attack AUC: global %.1f%%, local %.1f%%  (50%% = optimal privacy)\n",
              100.0 * report.global_attack_auc, 100.0 * report.mean_local_attack_auc);
  return 0;
}
