// Cross-silo healthcare scenario (the paper's motivating deployment,
// §1/§2.1): a handful of hospitals jointly train a diagnosis classifier
// on Texas100-style discharge records. Hospitals have *non-IID* patient
// mixes (Dirichlet label skew), and a curious FL server must not be able
// to tell whether a given patient record was part of any hospital's
// training set.
//
// The example contrasts three deployments — no defense, LDP, DINAR —
// and reports utility, privacy and the per-round cost of each.
//
// Run: ./hospital_cross_silo [--fast]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "attack/evaluation.h"
#include "core/dinar.h"
#include "data/synthetic.h"
#include "privacy/defense_catalog.h"
#include "util/logging.h"

using namespace dinar;

namespace {

struct Outcome {
  double accuracy;
  double local_auc;
  double client_seconds;
};

Outcome deploy(const char* label, const fl::DefenseBundle& bundle,
               const nn::ModelFactory& model, const data::FlSplit& split,
               attack::ShadowMia& mia, int rounds, unsigned threads) {
  fl::SimulationConfig cfg;
  cfg.rounds = rounds;
  cfg.train = fl::TrainConfig{3, 64};
  cfg.learning_rate = 1e-2;
  cfg.exec.threads = threads;
  fl::FederatedSimulation sim(model, split, cfg, bundle);
  sim.run();
  attack::PrivacyReport privacy = attack::evaluate_privacy(sim, mia);
  Outcome out{sim.history().back().personalized_test_accuracy,
              privacy.mean_local_attack_auc,
              sim.mean_client_train_seconds() + sim.mean_client_defense_seconds()};
  std::printf("%-12s accuracy %5.1f%%   attack AUC %5.1f%%   client time %.2fs\n",
              label, 100.0 * out.accuracy, 100.0 * out.local_auc, out.client_seconds);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Logger::instance().set_level(LogLevel::kWarn);
  bool fast = false;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
  }

  std::printf("Cross-silo FL across 4 hospitals, non-IID patient mixes\n");
  std::printf("=======================================================\n");

  // Texas100-style sparse binary records.
  Rng rng(11);
  data::TabularSpec spec;
  spec.num_samples = fast ? 1200 : 2400;
  spec.num_features = 512;
  spec.num_classes = 50;
  spec.template_density = 0.1;
  spec.label_noise = 0.2;
  data::Dataset records = data::make_tabular(spec, rng);

  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = 4;
  split_cfg.dirichlet_alpha = 1.0;  // skewed specialities per hospital
  data::FlSplit split = data::make_fl_split(records, split_cfg, rng);
  for (std::size_t h = 0; h < split.client_train.size(); ++h)
    std::printf("hospital %zu: %lld records\n", h,
                static_cast<long long>(split.client_train[h].size()));

  nn::ModelFactory model = nn::fcnn6_factory(512, 50, 256);

  // DINAR preliminary phase across the hospitals.
  core::DinarInitConfig init_cfg;
  core::DinarInitResult init =
      core::run_dinar_initialization(model, split.client_train, split.test, init_cfg);
  std::printf("hospitals agreed to obfuscate layer %zu\n\n", init.agreed_layer);

  // The attack a curious aggregation server could mount.
  attack::MiaConfig mia_cfg;
  mia_cfg.shadow_train = fl::TrainConfig{fast ? 10 : 18, 64};
  mia_cfg.learning_rate = 1e-2;
  attack::ShadowMia mia(model, split.attacker_prior, mia_cfg);
  mia.fit();

  const int rounds = fast ? 5 : 10;
  privacy::BaselineDefenseConfig baseline_cfg;
  baseline_cfg.num_clients = 4;
  Outcome none =
      deploy("no defense", fl::DefenseBundle{}, model, split, mia, rounds, threads);
  deploy("ldp", privacy::make_baseline_bundle("ldp", baseline_cfg), model, split, mia,
         rounds, threads);
  Outcome dinar = deploy("dinar", core::make_dinar_bundle({init.agreed_layer}), model,
                         split, mia, rounds, threads);

  std::printf("\nDINAR kept %.1f of %.1f accuracy points while pushing the "
              "server-side attack to %.1f%% AUC.\n",
              100.0 * dinar.accuracy, 100.0 * none.accuracy, 100.0 * dinar.local_auc);
  return 0;
}
