// FlatParams: the whole-model parameter space as one contiguous arena.
//
// DINAR's mechanism is layer-addressed model state — obfuscate layer p on
// upload, re-install the private layer on download, exclude it from outlier
// scoring — but a snapshot does not need to be a ragged list of tensors to
// be layer-addressed. FlatParams pairs a single contiguous float arena with
// an immutable LayerIndex describing where each parameter tensor lives
// inside it (name, layer id, offset, numel, shape, obfuscation tag). Every
// consumer on the round hot path — FedAvg, the robust aggregators, DP
// noise, SA masks, message serde — streams spans of the arena instead of
// walking tensor lists, so a round's exchange+aggregate path costs one
// arena allocation per snapshot and serialization is a header plus one
// contiguous payload write.
//
// Aliasing rules: the LayerIndex is shared (shared_ptr) and immutable; the
// arena is value-owned by each FlatParams, so copies are deep for data and
// shallow for layout. Spans returned by as_span()/entry_span()/layer_span()
// alias the arena and are invalidated by move/destruction, never by reads.
//
// The pre-flat ParamList (std::vector<Tensor>) API was removed after its
// one-release deprecation window. Tensor-shaped input enters through
// FlatParams::from_tensors(); the only tensor-list *wire* format still
// read is the v1 DCKP checkpoint payload (read_legacy_tensor_params).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/serde.h"

namespace dinar::nn {

// One parameter tensor's placement inside the arena.
struct LayerEntry {
  std::string name;        // e.g. "dense(4->16)/param0"
  std::uint32_t layer_id = 0;  // paper layer index (position in param_layers())
  std::int64_t offset = 0;     // first float inside the arena (set by LayerIndex)
  std::int64_t numel = 0;      // element count (set by LayerIndex from shape)
  Shape shape;
  bool is_obfuscated = false;  // role tag: this layer is DINAR-obfuscated on the wire
};

// Immutable layout of a FlatParams arena: entries in model order (layer by
// layer, tensors in registration order), plus precomputed per-layer ranges.
// Always held by shared_ptr<const LayerIndex>; every snapshot of the same
// model shares one instance.
class LayerIndex {
 public:
  // Validates and finalizes `entries`: layer ids must start at 0 and be
  // non-decreasing with no gaps; offsets and numels are computed from the
  // shapes, so callers only fill name/layer_id/shape/is_obfuscated.
  static std::shared_ptr<const LayerIndex> build(std::vector<LayerEntry> entries);

  std::size_t num_entries() const { return entries_.size(); }
  std::size_t num_layers() const { return layer_ranges_.size(); }
  std::int64_t total_numel() const { return total_numel_; }

  const LayerEntry& entry(std::size_t i) const;
  const std::vector<LayerEntry>& entries() const { return entries_; }

  // [first, last) positions in entries() belonging to layer `layer`.
  std::pair<std::size_t, std::size_t> layer_entry_range(std::size_t layer) const;
  // [begin, end) float positions of layer `layer` inside the arena.
  std::pair<std::int64_t, std::int64_t> layer_float_range(std::size_t layer) const;

  // Layout compatibility compares entry shapes in order only. Names and
  // layer ids are deliberately excluded: legacy wire payloads deserialize
  // with a synthesized one-entry-per-layer index, and those snapshots must
  // still install into a model whose index groups entries per real layer.
  bool same_layout(const LayerIndex& other) const;

  // Copy of this index with is_obfuscated set on exactly `layers`
  // (paper layer ids); all other entries tagged false.
  std::shared_ptr<const LayerIndex> with_obfuscated(
      const std::vector<std::size_t>& layers) const;

 private:
  LayerIndex() = default;
  std::vector<LayerEntry> entries_;
  // Entry-position range per layer id, dense in [0, num_layers).
  std::vector<std::pair<std::size_t, std::size_t>> layer_ranges_;
  std::int64_t total_numel_ = 0;
};

// Contiguous snapshot of all model parameters (or gradients, or any other
// parameter-shaped vector such as optimizer state). Arena allocations are
// reported to MemoryTracker like Tensor storage, so bench_copybw can count
// them.
class FlatParams {
 public:
  FlatParams() = default;
  // Zero-filled arena sized by the index.
  explicit FlatParams(std::shared_ptr<const LayerIndex> index);
  // Adopts `values`; size must equal index->total_numel().
  FlatParams(std::shared_ptr<const LayerIndex> index, std::vector<float> values);

  FlatParams(const FlatParams& other);
  FlatParams& operator=(const FlatParams& other);
  FlatParams(FlatParams&& other) noexcept;
  FlatParams& operator=(FlatParams&& other) noexcept;
  ~FlatParams();

  bool empty() const { return index_ == nullptr; }
  std::int64_t numel() const { return index_ ? index_->total_numel() : 0; }
  const std::shared_ptr<const LayerIndex>& index() const { return index_; }

  // Zero-copy views into the arena.
  std::span<float> as_span() { return {data_.data(), data_.size()}; }
  std::span<const float> as_span() const { return {data_.data(), data_.size()}; }
  std::span<float> entry_span(std::size_t i);
  std::span<const float> entry_span(std::size_t i) const;
  std::span<float> layer_span(std::size_t layer);
  std::span<const float> layer_span(std::size_t layer) const;

  bool same_layout(const FlatParams& other) const;

  // Re-tags the layout without touching data (e.g. marking obfuscated
  // layers on an upload). The new index must have the same total numel.
  void reset_index(std::shared_ptr<const LayerIndex> index);

  // Builds a snapshot from ordered tensors, synthesizing a one-entry-per-
  // tensor index (entry i is layer i). The entry point for tensor-shaped
  // input: ad-hoc snapshots in tests and the legacy DCKP read path.
  static FlatParams from_tensors(const std::vector<Tensor>& tensors);
  // Adopts `index` and shape-checks the tensors against it entry by entry.
  static FlatParams from_tensors(std::shared_ptr<const LayerIndex> index,
                                 const std::vector<Tensor>& tensors);

 private:
  void track_alloc();
  void track_release();

  std::shared_ptr<const LayerIndex> index_;
  std::vector<float> data_;
};

// Whole-arena math (layout-checked, named errors). These preserve the
// per-coordinate order and float types of the old per-tensor loops, so
// results are bit-identical to the pre-flat code.
void flat_add(FlatParams& a, const FlatParams& b);
void flat_scale(FlatParams& a, float s);
void flat_add_scaled(FlatParams& a, const FlatParams& b, float s);
double flat_l2_norm(const FlatParams& a);
bool flat_all_finite(const FlatParams& a);
// Position of the first entry containing a non-finite value, or
// num_entries() if all finite (used for rejection diagnostics).
std::size_t flat_first_non_finite_entry(const FlatParams& a);

// Serde: index header (per entry: name, layer id, flags, shape) followed by
// the arena as one contiguous f32 payload. Reads validate every length
// against the remaining buffer and throw dinar::Error on corruption.
void write_flat_params(BinaryWriter& w, const FlatParams& p);
FlatParams read_flat_params(BinaryReader& r);

// The index-header half of the flat-params format on its own. The DFRM v3
// compressed payload (fl/wire_codec.*) reuses the exact v2 index header and
// replaces only the arena payload with per-entry coded runs, so v2 and v3
// frames stay structurally aligned up to the first coded byte.
void write_layer_index(BinaryWriter& w, const LayerIndex& index);
std::shared_ptr<const LayerIndex> read_layer_index(BinaryReader& r);

// Reads the v1 tensor-list payload (count + tensors) into a FlatParams
// with a synthesized index. This is the only surviving tensor-list wire
// format: legacy DCKP model/simulation checkpoints. v1 *messages* are
// rejected outright (fl/message.cpp) — checkpoints live on disk for years,
// wire frames do not outlive a release.
FlatParams read_legacy_tensor_params(BinaryReader& r);

}  // namespace dinar::nn
