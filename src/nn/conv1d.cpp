#include "nn/conv1d.h"

#include "util/error.h"

namespace dinar::nn {

Conv1d::Conv1d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, Rng& rng)
    : in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel), stride_(stride),
      padding_(padding),
      weight_(Tensor::kaiming({out_channels, in_channels, kernel},
                              in_channels * kernel, rng)),
      bias_(Tensor::kaiming({out_channels}, in_channels * kernel, rng)),
      grad_weight_({out_channels, in_channels, kernel}), grad_bias_({out_channels}) {
  DINAR_CHECK(stride >= 1 && kernel >= 1 && padding >= 0, "invalid conv1d geometry");
}

Tensor Conv1d::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 3 && x.dim(1) == in_ch_,
              name() << " got input " << shape_to_string(x.shape()));
  if (train) cached_input_ = x;
  const std::int64_t b = x.dim(0), l = x.dim(2);
  const std::int64_t ol = out_size(l);
  DINAR_CHECK(ol >= 1, name() << ": input too short");
  Tensor y({b, out_ch_, ol});
  const float* px = x.data();
  const float* pw = weight_.data();
  const float* pb = bias_.data();
  float* py = y.data();

  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t oc = 0; oc < out_ch_; ++oc) {
      for (std::int64_t i = 0; i < ol; ++i) {
        double acc = pb[oc];
        for (std::int64_t ic = 0; ic < in_ch_; ++ic) {
          const float* xrow = px + (n * in_ch_ + ic) * l;
          const float* wrow = pw + (oc * in_ch_ + ic) * kernel_;
          for (std::int64_t k = 0; k < kernel_; ++k) {
            const std::int64_t ii = i * stride_ + k - padding_;
            if (ii < 0 || ii >= l) continue;
            acc += static_cast<double>(xrow[ii]) * wrow[k];
          }
        }
        py[(n * out_ch_ + oc) * ol + i] = static_cast<float>(acc);
      }
    }
  }
  return y;
}

Tensor Conv1d::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_input_.empty(), "Conv1d::backward without cached forward");
  const Tensor& x = cached_input_;
  const std::int64_t b = x.dim(0), l = x.dim(2);
  const std::int64_t ol = out_size(l);
  DINAR_CHECK(grad_out.rank() == 3 && grad_out.dim(1) == out_ch_ && grad_out.dim(2) == ol,
              "Conv1d backward shape mismatch");

  Tensor dx({b, in_ch_, l});
  const float* px = x.data();
  const float* pw = weight_.data();
  const float* pg = grad_out.data();
  float* pdx = dx.data();
  float* pdw = grad_weight_.data();
  float* pdb = grad_bias_.data();

  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t oc = 0; oc < out_ch_; ++oc) {
      for (std::int64_t i = 0; i < ol; ++i) {
        const float g = pg[(n * out_ch_ + oc) * ol + i];
        if (g == 0.0f) continue;
        pdb[oc] += g;
        for (std::int64_t ic = 0; ic < in_ch_; ++ic) {
          const float* xrow = px + (n * in_ch_ + ic) * l;
          float* dxrow = pdx + (n * in_ch_ + ic) * l;
          const float* wrow = pw + (oc * in_ch_ + ic) * kernel_;
          float* dwrow = pdw + (oc * in_ch_ + ic) * kernel_;
          for (std::int64_t k = 0; k < kernel_; ++k) {
            const std::int64_t ii = i * stride_ + k - padding_;
            if (ii < 0 || ii >= l) continue;
            dwrow[k] += g * xrow[ii];
            dxrow[ii] += g * wrow[k];
          }
        }
      }
    }
  }
  return dx;
}

std::string Conv1d::name() const {
  return "conv1d(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_) + ",k" +
         std::to_string(kernel_) + ",s" + std::to_string(stride_) + ",p" +
         std::to_string(padding_) + ")";
}

std::vector<ParamGroup> Conv1d::param_groups() {
  return {ParamGroup{name(), {&weight_, &bias_}, {&grad_weight_, &grad_bias_}}};
}

std::unique_ptr<Layer> Conv1d::clone() const {
  return std::unique_ptr<Layer>(new Conv1d(*this));
}

}  // namespace dinar::nn
