#include "nn/conv1d.h"

#include "nn/conv_kernels.h"
#include "util/error.h"

namespace dinar::nn {

Conv1d::Conv1d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, Rng& rng)
    : in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel), stride_(stride),
      padding_(padding),
      weight_(Tensor::kaiming({out_channels, in_channels, kernel},
                              in_channels * kernel, rng)),
      bias_(Tensor::kaiming({out_channels}, in_channels * kernel, rng)),
      grad_weight_({out_channels, in_channels, kernel}), grad_bias_({out_channels}) {
  DINAR_CHECK(stride >= 1 && kernel >= 1 && padding >= 0, "invalid conv1d geometry");
}

Tensor Conv1d::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 3 && x.dim(1) == in_ch_,
              name() << " got input " << shape_to_string(x.shape()));
  const std::int64_t b = x.dim(0), l = x.dim(2);
  const std::int64_t ol = out_size(l);
  DINAR_CHECK(ol >= 1, name() << ": input too short");

  // A 1-D convolution is the height-1 special case of the 2-D im2col path:
  // [B, C, L] is viewed as [B, C, 1, L] with a (1, K) kernel.
  Tensor cols = im2col2d(x.reshaped({b, in_ch_, 1, l}), 1, kernel_, stride_, 0,
                         padding_, 1, ol, exec_);
  if (train) {
    cached_input_ = x;
    cached_cols_ = cols;
  }
  const Tensor wmat = weight_.reshaped({out_ch_, in_ch_ * kernel_});
  const Tensor rows = gemm(Trans::kN, Trans::kT, cols, wmat, exec_);
  return scatter_output_rows2d(rows, bias_, b, 1, ol, exec_)
      .reshaped({b, out_ch_, ol});
}

Tensor Conv1d::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_input_.empty(), "Conv1d::backward without cached forward");
  const Tensor& x = cached_input_;
  const std::int64_t b = x.dim(0), l = x.dim(2);
  const std::int64_t ol = out_size(l);
  DINAR_CHECK(grad_out.rank() == 3 && grad_out.dim(1) == out_ch_ && grad_out.dim(2) == ol,
              "Conv1d backward shape mismatch");

  const Tensor gmat =
      gather_grad_rows2d(grad_out.reshaped({b, out_ch_, 1, ol}), exec_);
  grad_weight_ +=
      gemm(Trans::kT, Trans::kN, gmat, cached_cols_, exec_).reshaped(weight_.shape());
  accumulate_bias_grad(gmat, grad_bias_, exec_);

  const Tensor wmat = weight_.reshaped({out_ch_, in_ch_ * kernel_});
  const Tensor dcols = gemm(Trans::kN, Trans::kN, gmat, wmat, exec_);
  Tensor dx4({b, in_ch_, 1, l});
  col2im2d(dcols, dx4, 1, kernel_, stride_, 0, padding_, 1, ol, exec_);
  return dx4.reshaped({b, in_ch_, l});
}

std::string Conv1d::name() const {
  return "conv1d(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_) + ",k" +
         std::to_string(kernel_) + ",s" + std::to_string(stride_) + ",p" +
         std::to_string(padding_) + ")";
}

std::vector<ParamGroup> Conv1d::param_groups() {
  return {ParamGroup{name(), {&weight_, &bias_}, {&grad_weight_, &grad_bias_}}};
}

std::unique_ptr<Layer> Conv1d::clone() const {
  return std::unique_ptr<Layer>(new Conv1d(*this));
}

}  // namespace dinar::nn
