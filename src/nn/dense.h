// Fully-connected layer: y = x W + b, x is [B, in], W is [in, out].
#pragma once

#include "nn/layer.h"

namespace dinar::nn {

class Dense : public Layer {
 public:
  Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::vector<ParamGroup> param_groups() override;
  std::unique_ptr<Layer> clone() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  Dense(const Dense&) = default;

  std::int64_t in_, out_;
  Tensor weight_;       // [in, out]
  Tensor bias_;         // [out]
  Tensor grad_weight_;  // [in, out]
  Tensor grad_bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace dinar::nn
