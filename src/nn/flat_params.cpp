#include "nn/flat_params.h"

#include <cmath>
#include <cstring>

#include "tensor/tensor_serde.h"
#include "util/error.h"
#include "util/memory_tracker.h"

namespace dinar::nn {

// -- LayerIndex --------------------------------------------------------------

std::shared_ptr<const LayerIndex> LayerIndex::build(std::vector<LayerEntry> entries) {
  auto index = std::shared_ptr<LayerIndex>(new LayerIndex());
  index->entries_ = std::move(entries);
  std::int64_t offset = 0;
  std::size_t layer_begin = 0;
  for (std::size_t i = 0; i < index->entries_.size(); ++i) {
    LayerEntry& e = index->entries_[i];
    e.offset = offset;
    e.numel = shape_numel(e.shape);
    offset += e.numel;
    if (i == 0) {
      DINAR_CHECK(e.layer_id == 0, "layer index must start at layer 0, got "
                                       << e.layer_id);
    } else {
      const std::uint32_t prev = index->entries_[i - 1].layer_id;
      DINAR_CHECK(e.layer_id == prev || e.layer_id == prev + 1,
                  "layer ids must be dense and non-decreasing: entry "
                      << i << " has layer " << e.layer_id << " after " << prev);
      if (e.layer_id != prev) {  // first entry of the next layer
        index->layer_ranges_.emplace_back(layer_begin, i);
        layer_begin = i;
      }
    }
  }
  if (!index->entries_.empty())
    index->layer_ranges_.emplace_back(layer_begin, index->entries_.size());
  index->total_numel_ = offset;
  return index;
}

const LayerEntry& LayerIndex::entry(std::size_t i) const {
  DINAR_CHECK(i < entries_.size(),
              "layer index entry " << i << " out of " << entries_.size());
  return entries_[i];
}

std::pair<std::size_t, std::size_t> LayerIndex::layer_entry_range(
    std::size_t layer) const {
  DINAR_CHECK(layer < layer_ranges_.size(),
              "layer " << layer << " out of " << layer_ranges_.size());
  return layer_ranges_[layer];
}

std::pair<std::int64_t, std::int64_t> LayerIndex::layer_float_range(
    std::size_t layer) const {
  const auto [first, last] = layer_entry_range(layer);
  const std::int64_t begin = entries_[first].offset;
  const std::int64_t end = entries_[last - 1].offset + entries_[last - 1].numel;
  return {begin, end};
}

bool LayerIndex::same_layout(const LayerIndex& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].shape != other.entries_[i].shape) return false;
  return true;
}

std::shared_ptr<const LayerIndex> LayerIndex::with_obfuscated(
    const std::vector<std::size_t>& layers) const {
  std::vector<LayerEntry> entries = entries_;
  for (LayerEntry& e : entries) e.is_obfuscated = false;
  for (std::size_t layer : layers) {
    const auto [first, last] = layer_entry_range(layer);
    for (std::size_t i = first; i < last; ++i) entries[i].is_obfuscated = true;
  }
  return build(std::move(entries));
}

// -- FlatParams --------------------------------------------------------------

FlatParams::FlatParams(std::shared_ptr<const LayerIndex> index)
    : index_(std::move(index)),
      data_(index_ ? static_cast<std::size_t>(index_->total_numel()) : 0, 0.0f) {
  track_alloc();
}

FlatParams::FlatParams(std::shared_ptr<const LayerIndex> index,
                       std::vector<float> values)
    : index_(std::move(index)), data_(std::move(values)) {
  DINAR_CHECK(index_ != nullptr, "FlatParams requires a layer index");
  DINAR_CHECK(static_cast<std::int64_t>(data_.size()) == index_->total_numel(),
              "arena size " << data_.size() << " does not match index numel "
                            << index_->total_numel());
  track_alloc();
}

FlatParams::FlatParams(const FlatParams& other)
    : index_(other.index_), data_(other.data_) {
  track_alloc();
  MemoryTracker::instance().record_copy(data_.size() * sizeof(float));
}

FlatParams& FlatParams::operator=(const FlatParams& other) {
  if (this == &other) return *this;
  track_release();
  index_ = other.index_;
  data_ = other.data_;
  track_alloc();
  MemoryTracker::instance().record_copy(data_.size() * sizeof(float));
  return *this;
}

FlatParams::FlatParams(FlatParams&& other) noexcept
    : index_(std::move(other.index_)), data_(std::move(other.data_)) {
  other.index_ = nullptr;
}

FlatParams& FlatParams::operator=(FlatParams&& other) noexcept {
  if (this == &other) return *this;
  track_release();
  index_ = std::move(other.index_);
  data_ = std::move(other.data_);
  other.index_ = nullptr;
  return *this;
}

FlatParams::~FlatParams() { track_release(); }

void FlatParams::track_alloc() {
  if (!data_.empty())
    MemoryTracker::instance().allocate(data_.size() * sizeof(float));
}

void FlatParams::track_release() {
  if (!data_.empty())
    MemoryTracker::instance().release(data_.size() * sizeof(float));
}

std::span<float> FlatParams::entry_span(std::size_t i) {
  const LayerEntry& e = index_->entry(i);
  return {data_.data() + e.offset, static_cast<std::size_t>(e.numel)};
}

std::span<const float> FlatParams::entry_span(std::size_t i) const {
  const LayerEntry& e = index_->entry(i);
  return {data_.data() + e.offset, static_cast<std::size_t>(e.numel)};
}

std::span<float> FlatParams::layer_span(std::size_t layer) {
  const auto [begin, end] = index_->layer_float_range(layer);
  return {data_.data() + begin, static_cast<std::size_t>(end - begin)};
}

std::span<const float> FlatParams::layer_span(std::size_t layer) const {
  const auto [begin, end] = index_->layer_float_range(layer);
  return {data_.data() + begin, static_cast<std::size_t>(end - begin)};
}

bool FlatParams::same_layout(const FlatParams& other) const {
  if (index_ == other.index_) return true;
  if (index_ == nullptr || other.index_ == nullptr) return false;
  return index_->same_layout(*other.index_);
}

void FlatParams::reset_index(std::shared_ptr<const LayerIndex> index) {
  DINAR_CHECK(index != nullptr, "reset_index requires a layer index");
  DINAR_CHECK(index->total_numel() == numel(),
              "reset_index numel mismatch: " << index->total_numel() << " vs "
                                             << numel());
  index_ = std::move(index);
}

FlatParams FlatParams::from_tensors(const std::vector<Tensor>& tensors) {
  std::vector<LayerEntry> entries;
  entries.reserve(tensors.size());
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    LayerEntry e;
    e.name = "entry" + std::to_string(i);
    e.layer_id = static_cast<std::uint32_t>(i);
    e.shape = tensors[i].shape();
    entries.push_back(std::move(e));
  }
  return from_tensors(LayerIndex::build(std::move(entries)), tensors);
}

FlatParams FlatParams::from_tensors(std::shared_ptr<const LayerIndex> index,
                                    const std::vector<Tensor>& tensors) {
  DINAR_CHECK(index != nullptr, "from_tensors requires a layer index");
  DINAR_CHECK(tensors.size() == index->num_entries(),
              "from_tensors: " << tensors.size() << " tensors for an index of "
                               << index->num_entries() << " entries");
  std::vector<float> values(static_cast<std::size_t>(index->total_numel()));
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const LayerEntry& e = index->entry(i);
    DINAR_CHECK(tensors[i].shape() == e.shape,
                "from_tensors: shape mismatch at entry " << i << " ("
                    << e.name << "): " << shape_to_string(tensors[i].shape())
                    << " vs " << shape_to_string(e.shape));
    std::memcpy(values.data() + e.offset, tensors[i].data(),
                static_cast<std::size_t>(e.numel) * sizeof(float));
  }
  MemoryTracker::instance().record_copy(values.size() * sizeof(float));
  return FlatParams(std::move(index), std::move(values));
}

// -- flat ops ----------------------------------------------------------------

namespace {
void check_layout(const FlatParams& a, const FlatParams& b, const char* op) {
  DINAR_CHECK(a.same_layout(b),
              op << ": layout mismatch (" << a.numel() << " vs " << b.numel()
                 << " elements across "
                 << (a.index() ? a.index()->num_entries() : 0) << " vs "
                 << (b.index() ? b.index()->num_entries() : 0) << " entries)");
}
}  // namespace

void flat_add(FlatParams& a, const FlatParams& b) {
  check_layout(a, b, "flat_add");
  span_add(a.as_span(), b.as_span());
}

void flat_scale(FlatParams& a, float s) { span_scale(a.as_span(), s); }

void flat_add_scaled(FlatParams& a, const FlatParams& b, float s) {
  check_layout(a, b, "flat_add_scaled");
  span_axpy(a.as_span(), b.as_span(), s);
}

double flat_l2_norm(const FlatParams& a) {
  // Per-entry accumulation preserved from the pre-flat per-tensor loop:
  // each tensor's squared sum is finished before the next is added, so the
  // result is bit-identical to the historical implementation.
  double s = 0.0;
  if (a.index() != nullptr)
    for (std::size_t i = 0; i < a.index()->num_entries(); ++i)
      s += span_squared_l2(a.entry_span(i));
  return std::sqrt(s);
}

bool flat_all_finite(const FlatParams& a) {
  return flat_first_non_finite_entry(a) ==
         (a.index() ? a.index()->num_entries() : 0);
}

std::size_t flat_first_non_finite_entry(const FlatParams& a) {
  if (a.index() == nullptr) return 0;
  for (std::size_t i = 0; i < a.index()->num_entries(); ++i)
    for (float v : a.entry_span(i))
      if (!std::isfinite(v)) return i;
  return a.index()->num_entries();
}

// -- serde -------------------------------------------------------------------

void write_layer_index(BinaryWriter& w, const LayerIndex& index) {
  w.write_u64(index.num_entries());
  for (std::size_t i = 0; i < index.num_entries(); ++i) {
    const LayerEntry& e = index.entry(i);
    w.write_string(e.name);
    w.write_u32(e.layer_id);
    w.write_u8(e.is_obfuscated ? 1 : 0);
    w.write_i64_vector(e.shape);
  }
}

std::shared_ptr<const LayerIndex> read_layer_index(BinaryReader& r) {
  // Each entry header is at least 21 bytes (name length + layer id + flags
  // + rank prefix), so bounding the count rejects corrupt prefixes early.
  const std::uint64_t n = r.read_length(21);
  std::vector<LayerEntry> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    LayerEntry e;
    e.name = r.read_string();
    e.layer_id = r.read_u32();
    const std::uint8_t flags = r.read_u8();
    DINAR_CHECK(flags <= 1, "flat params entry " << i << " has unknown flags "
                                                 << static_cast<int>(flags));
    e.is_obfuscated = flags != 0;
    e.shape = r.read_i64_vector();
    entries.push_back(std::move(e));
  }
  // build() validates layer-id density and recomputes offsets, so a
  // tampered header cannot produce out-of-bounds spans.
  return LayerIndex::build(std::move(entries));
}

void write_flat_params(BinaryWriter& w, const FlatParams& p) {
  if (p.index() != nullptr) {
    write_layer_index(w, *p.index());
  } else {
    w.write_u64(0);
  }
  w.write_f32_span(p.as_span().data(), p.as_span().size());
  MemoryTracker::instance().record_copy(p.as_span().size() * sizeof(float));
}

FlatParams read_flat_params(BinaryReader& r) {
  auto index = read_layer_index(r);
  std::vector<float> values;
  r.read_f32_span(values);
  DINAR_CHECK(static_cast<std::int64_t>(values.size()) == index->total_numel(),
              "flat params payload has " << values.size()
                                         << " floats, index expects "
                                         << index->total_numel());
  MemoryTracker::instance().record_copy(values.size() * sizeof(float));
  return FlatParams(std::move(index), std::move(values));
}

FlatParams read_legacy_tensor_params(BinaryReader& r) {
  // Each tensor record is at least 8 bytes (its rank prefix), so bounding
  // the count by remaining/8 rejects corrupted prefixes before reserve().
  const std::uint64_t n = r.read_length(8);
  std::vector<Tensor> tensors;
  tensors.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) tensors.push_back(read_tensor(r));
  return FlatParams::from_tensors(tensors);
}

}  // namespace dinar::nn
