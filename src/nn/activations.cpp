#include "nn/activations.h"

#include <cmath>

#include "util/error.h"

namespace dinar::nn {

Tensor ReLU::forward(const Tensor& x, bool train) {
  if (train) cached_input_ = x;
  Tensor y = x;
  for (float& v : y.values())
    if (v < 0.0f) v = 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_input_.empty(), "ReLU::backward without cached forward");
  DINAR_CHECK(grad_out.same_shape(cached_input_), "ReLU backward shape mismatch");
  Tensor dx = grad_out;
  const float* px = cached_input_.data();
  float* pd = dx.data();
  for (std::int64_t i = 0; i < dx.numel(); ++i)
    if (px[i] <= 0.0f) pd[i] = 0.0f;
  return dx;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(*this); }

Tensor Tanh::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (float& v : y.values()) v = std::tanh(v);
  if (train) cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_output_.empty(), "Tanh::backward without cached forward");
  DINAR_CHECK(grad_out.same_shape(cached_output_), "Tanh backward shape mismatch");
  Tensor dx = grad_out;
  const float* py = cached_output_.data();
  float* pd = dx.data();
  for (std::int64_t i = 0; i < dx.numel(); ++i) pd[i] *= 1.0f - py[i] * py[i];
  return dx;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(*this); }

}  // namespace dinar::nn
