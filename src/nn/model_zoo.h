// Model zoo: scaled-down counterparts of the paper's four architectures
// (Table 2), each a builder keyed by input geometry and class count.
//
// | Paper model      | Zoo model    | Used with                      |
// |------------------|--------------|--------------------------------|
// | ResNet20         | ResNetSmall  | Cifar-10 / Cifar-100 analogues |
// | VGG11            | VggSmall     | GTSRB / CelebA analogues       |
// | M18 (1-D CNN)    | M5Audio      | Speech Commands analogue       |
// | 6-layer FCNN     | Fcnn6        | Purchase100 / Texas100         |
//
// A ModelFactory is a reusable recipe: FL clients clone the server's
// initial model, but the MIA shadow-model attack needs *fresh* models of
// the same architecture, so builders are first-class values.
#pragma once

#include <cstdint>
#include <functional>

#include "nn/model.h"

namespace dinar::nn {

using ModelFactory = std::function<Model(Rng&)>;

// 6-layer fully-connected Tanh network (paper §5.1, Purchase100/Texas100):
// in -> h1 -> h2 -> h3 -> h4 -> h5 -> classes, layer widths shrinking by
// powers of two from `width`.
Model make_fcnn6(std::int64_t in_features, std::int64_t classes, std::int64_t width,
                 Rng& rng);

// VGG-style CNN over [C, H, W] images: `conv_blocks` conv+ReLU stages with
// 2x2 max-pool every second stage, then a dense classifier head.
Model make_vgg_small(std::int64_t in_channels, std::int64_t image_size,
                     std::int64_t classes, std::int64_t conv_blocks, Rng& rng);

// ResNet-style CNN: stem conv, three residual stages, global average pool,
// linear head.
Model make_resnet_small(std::int64_t in_channels, std::int64_t image_size,
                        std::int64_t classes, Rng& rng);

// Deep-narrow 1-D CNN over raw waveforms [1, L] (M5 family).
Model make_m5_audio(std::int64_t length, std::int64_t classes, Rng& rng);

// Factory wrappers capturing the hyper-parameters.
ModelFactory fcnn6_factory(std::int64_t in_features, std::int64_t classes,
                           std::int64_t width);
ModelFactory vgg_small_factory(std::int64_t in_channels, std::int64_t image_size,
                               std::int64_t classes, std::int64_t conv_blocks);
ModelFactory resnet_small_factory(std::int64_t in_channels, std::int64_t image_size,
                                  std::int64_t classes);
ModelFactory m5_audio_factory(std::int64_t length, std::int64_t classes);

}  // namespace dinar::nn
