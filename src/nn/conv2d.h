// 2-D convolution over [B, C, H, W] inputs (direct algorithm).
//
// The models in this repo run on 12x12 synthetic images with tens of
// channels, where the direct triple loop is both fast enough and easy to
// verify against finite differences.
#pragma once

#include "nn/layer.h"

namespace dinar::nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t padding, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::vector<ParamGroup> param_groups() override;
  std::unique_ptr<Layer> clone() const override;

  std::int64_t out_size(std::int64_t in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  Conv2d(const Conv2d&) = default;

  std::int64_t in_ch_, out_ch_, kernel_, stride_, padding_;
  Tensor weight_;  // [OC, IC, K, K]
  Tensor bias_;    // [OC]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
  Tensor cached_cols_;  // im2col of cached_input_, reused by backward
};

}  // namespace dinar::nn
