// Flatten: [B, ...] -> [B, prod(...)]. Backward restores the input shape.
#pragma once

#include "nn/layer.h"

namespace dinar::nn {

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "flatten"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_shape_;
};

}  // namespace dinar::nn
