#include "nn/model.h"

#include <cmath>
#include <sstream>

#include "tensor/tensor_serde.h"
#include "util/error.h"

namespace dinar::nn {

namespace {
constexpr std::uint32_t kModelMagic = 0x444E4152;  // "DNAR"
constexpr std::uint32_t kModelVersion = 1;
}  // namespace

void param_list_add(ParamList& a, const ParamList& b) {
  DINAR_CHECK(a.size() == b.size(), "param list length mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void param_list_scale(ParamList& a, float s) {
  for (Tensor& t : a) t *= s;
}

void param_list_add_scaled(ParamList& a, const ParamList& b, float s) {
  DINAR_CHECK(a.size() == b.size(), "param list length mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i].add_scaled(b[i], s);
}

std::int64_t param_list_numel(const ParamList& a) {
  std::int64_t n = 0;
  for (const Tensor& t : a) n += t.numel();
  return n;
}

double param_list_l2_norm(const ParamList& a) {
  double s = 0.0;
  for (const Tensor& t : a) s += t.squared_l2_norm();
  return std::sqrt(s);
}

bool param_list_same_shape(const ParamList& a, const ParamList& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!a[i].same_shape(b[i])) return false;
  return true;
}

void write_param_list(BinaryWriter& w, const ParamList& params) {
  w.write_u64(params.size());
  for (const Tensor& t : params) write_tensor(w, t);
}

ParamList read_param_list(BinaryReader& r) {
  // Each tensor record is at least 8 bytes (its rank prefix), so bounding
  // the count by remaining/8 rejects corrupted prefixes before reserve().
  const std::uint64_t n = r.read_length(8);
  ParamList out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(read_tensor(r));
  return out;
}

Model::Model(const Model& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  // A copy never inherits the source's execution context (see header).
  set_execution_context(nullptr);
}

Model& Model::operator=(const Model& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  set_execution_context(nullptr);
  return *this;
}

Model& Model::add(std::unique_ptr<Layer> layer) {
  DINAR_CHECK(layer != nullptr, "cannot add a null layer");
  layer->set_execution_context(exec_);
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::set_execution_context(const ExecutionContext* exec) {
  exec_ = exec;
  for (auto& layer : layers_) layer->set_execution_context(exec);
}

Tensor Model::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, train);
  return h;
}

Tensor Model::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Model::zero_grad() {
  for (auto& layer : layers_)
    for (ParamGroup& group : layer->param_groups())
      for (Tensor* grad : group.grads) grad->zero();
}

std::vector<ParamGroup> Model::param_layers() {
  std::vector<ParamGroup> groups;
  for (auto& layer : layers_)
    for (ParamGroup& g : layer->param_groups()) groups.push_back(std::move(g));
  return groups;
}

std::size_t Model::num_param_layers() { return param_layers().size(); }

std::int64_t Model::num_parameters() {
  std::int64_t n = 0;
  for (const ParamGroup& g : param_layers()) n += g.numel();
  return n;
}

ParamList Model::parameters() {
  ParamList out;
  for (const ParamGroup& g : param_layers())
    for (const Tensor* p : g.params) out.push_back(*p);
  return out;
}

void Model::set_parameters(const ParamList& params) {
  std::size_t i = 0;
  for (const ParamGroup& g : param_layers()) {
    for (Tensor* p : g.params) {
      DINAR_CHECK(i < params.size(), "set_parameters: too few tensors");
      DINAR_CHECK(p->same_shape(params[i]),
                  "set_parameters: shape mismatch at tensor " << i);
      *p = params[i];
      ++i;
    }
  }
  DINAR_CHECK(i == params.size(), "set_parameters: " << params.size() - i
                                                     << " extra tensors");
}

ParamList Model::gradients() {
  ParamList out;
  for (const ParamGroup& g : param_layers())
    for (const Tensor* grad : g.grads) out.push_back(*grad);
  return out;
}

ParamList Model::layer_parameters(std::size_t layer_index) {
  std::vector<ParamGroup> groups = param_layers();
  DINAR_CHECK(layer_index < groups.size(),
              "layer index " << layer_index << " out of " << groups.size());
  ParamList out;
  for (const Tensor* p : groups[layer_index].params) out.push_back(*p);
  return out;
}

void Model::set_layer_parameters(std::size_t layer_index, const ParamList& params) {
  std::vector<ParamGroup> groups = param_layers();
  DINAR_CHECK(layer_index < groups.size(),
              "layer index " << layer_index << " out of " << groups.size());
  ParamGroup& g = groups[layer_index];
  DINAR_CHECK(params.size() == g.params.size(),
              "layer " << layer_index << ": tensor count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    DINAR_CHECK(g.params[i]->same_shape(params[i]),
                "layer " << layer_index << ": shape mismatch at tensor " << i);
    *g.params[i] = params[i];
  }
}

std::pair<std::size_t, std::size_t> Model::layer_param_span(std::size_t layer_index) {
  std::vector<ParamGroup> groups = param_layers();
  DINAR_CHECK(layer_index < groups.size(),
              "layer index " << layer_index << " out of " << groups.size());
  std::size_t begin = 0;
  for (std::size_t l = 0; l < layer_index; ++l) begin += groups[l].params.size();
  return {begin, begin + groups[layer_index].params.size()};
}

void Model::save(BinaryWriter& w) {
  w.write_u32(kModelMagic);
  w.write_u32(kModelVersion);
  write_param_list(w, parameters());
}

void Model::load(BinaryReader& r) {
  DINAR_CHECK(r.read_u32() == kModelMagic, "not a DINAR model checkpoint");
  const std::uint32_t version = r.read_u32();
  DINAR_CHECK(version == kModelVersion, "unsupported checkpoint version " << version);
  set_parameters(read_param_list(r));
}

std::string Model::summary() {
  std::ostringstream os;
  os << "Model with " << layers_.size() << " layers, " << num_param_layers()
     << " parameterized, " << num_parameters() << " parameters\n";
  std::size_t idx = 0;
  for (const ParamGroup& g : param_layers())
    os << "  [" << idx++ << "] " << g.name << " (" << g.numel() << " params)\n";
  return os.str();
}

}  // namespace dinar::nn
