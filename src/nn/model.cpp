#include "nn/model.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "util/error.h"
#include "util/memory_tracker.h"

namespace dinar::nn {

namespace {
constexpr std::uint32_t kModelMagic = 0x444E4152;  // "DNAR"
// v1: tensor-list payload (pre-FlatParams). v2: flat index + arena payload.
constexpr std::uint32_t kModelVersionLegacy = 1;
constexpr std::uint32_t kModelVersion = 2;
}  // namespace

Model::Model(const Model& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  // A copy never inherits the source's execution context (see header).
  set_execution_context(nullptr);
}

Model& Model::operator=(const Model& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  registry_valid_ = false;
  groups_.clear();
  index_ = nullptr;
  layer_indices_.clear();
  set_execution_context(nullptr);
  return *this;
}

Model& Model::add(std::unique_ptr<Layer> layer) {
  DINAR_CHECK(layer != nullptr, "cannot add a null layer");
  layer->set_execution_context(exec_);
  layers_.push_back(std::move(layer));
  registry_valid_ = false;
  return *this;
}

void Model::set_execution_context(const ExecutionContext* exec) {
  exec_ = exec;
  for (auto& layer : layers_) layer->set_execution_context(exec);
}

Tensor Model::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, train);
  return h;
}

Tensor Model::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Model::zero_grad() {
  for (auto& layer : layers_)
    for (ParamGroup& group : layer->param_groups())
      for (Tensor* grad : group.grads) grad->zero();
}

void Model::ensure_registry() {
  if (registry_valid_) return;
  groups_.clear();
  layer_indices_.clear();
  for (auto& layer : layers_)
    for (ParamGroup& g : layer->param_groups()) groups_.push_back(std::move(g));

  std::vector<LayerEntry> entries;
  for (std::size_t l = 0; l < groups_.size(); ++l) {
    const ParamGroup& g = groups_[l];
    for (std::size_t t = 0; t < g.params.size(); ++t) {
      LayerEntry e;
      e.name = g.name + "/param" + std::to_string(t);
      e.layer_id = static_cast<std::uint32_t>(l);
      e.shape = g.params[t]->shape();
      entries.push_back(std::move(e));
    }
  }
  index_ = LayerIndex::build(std::move(entries));

  // Single-layer sub-indices for layer_parameters() snapshots.
  layer_indices_.reserve(groups_.size());
  for (std::size_t l = 0; l < groups_.size(); ++l) {
    const auto [first, last] = index_->layer_entry_range(l);
    std::vector<LayerEntry> sub;
    sub.reserve(last - first);
    for (std::size_t i = first; i < last; ++i) {
      LayerEntry e = index_->entry(i);
      e.layer_id = 0;
      sub.push_back(std::move(e));
    }
    layer_indices_.push_back(LayerIndex::build(std::move(sub)));
  }
  registry_valid_ = true;
}

const std::vector<ParamGroup>& Model::param_layers() {
  ensure_registry();
  return groups_;
}

std::size_t Model::num_param_layers() { return param_layers().size(); }

std::int64_t Model::num_parameters() {
  ensure_registry();
  return index_->total_numel();
}

std::shared_ptr<const LayerIndex> Model::layer_index() {
  ensure_registry();
  return index_;
}

FlatParams Model::snapshot(bool grads) {
  ensure_registry();
  std::vector<float> values(static_cast<std::size_t>(index_->total_numel()));
  std::size_t e = 0;
  for (const ParamGroup& g : groups_) {
    for (const Tensor* t : grads ? g.grads : g.params) {
      const LayerEntry& entry = index_->entry(e++);
      std::memcpy(values.data() + entry.offset, t->data(),
                  static_cast<std::size_t>(entry.numel) * sizeof(float));
    }
  }
  MemoryTracker::instance().record_copy(values.size() * sizeof(float));
  return FlatParams(index_, std::move(values));
}

FlatParams Model::parameters() { return snapshot(/*grads=*/false); }

FlatParams Model::gradients() { return snapshot(/*grads=*/true); }

void Model::set_parameters(const FlatParams& params) {
  ensure_registry();
  DINAR_CHECK(params.index() != nullptr, "set_parameters: empty snapshot");
  DINAR_CHECK(index_->same_layout(*params.index()),
              "set_parameters: layout mismatch (" << params.numel()
                  << " elements across " << params.index()->num_entries()
                  << " entries, model has " << index_->total_numel()
                  << " across " << index_->num_entries() << ")");
  std::size_t e = 0;
  for (const ParamGroup& g : groups_) {
    for (Tensor* t : g.params) {
      const std::span<const float> src = params.entry_span(e++);
      std::memcpy(t->data(), src.data(), src.size() * sizeof(float));
    }
  }
  MemoryTracker::instance().record_copy(
      static_cast<std::size_t>(params.numel()) * sizeof(float));
}

FlatParams Model::layer_parameters(std::size_t layer_index) {
  ensure_registry();
  DINAR_CHECK(layer_index < groups_.size(),
              "layer index " << layer_index << " out of " << groups_.size());
  const auto& sub = layer_indices_[layer_index];
  std::vector<float> values(static_cast<std::size_t>(sub->total_numel()));
  const ParamGroup& g = groups_[layer_index];
  for (std::size_t t = 0; t < g.params.size(); ++t) {
    const LayerEntry& e = sub->entry(t);
    std::memcpy(values.data() + e.offset, g.params[t]->data(),
                static_cast<std::size_t>(e.numel) * sizeof(float));
  }
  MemoryTracker::instance().record_copy(values.size() * sizeof(float));
  return FlatParams(sub, std::move(values));
}

void Model::set_layer_parameters(std::size_t layer_index, const FlatParams& params) {
  ensure_registry();
  DINAR_CHECK(layer_index < groups_.size(),
              "layer index " << layer_index << " out of " << groups_.size());
  const auto& sub = layer_indices_[layer_index];
  DINAR_CHECK(params.index() != nullptr && sub->same_layout(*params.index()),
              "layer " << layer_index << ": snapshot layout mismatch");
  ParamGroup& g = groups_[layer_index];
  for (std::size_t t = 0; t < g.params.size(); ++t) {
    const std::span<const float> src = params.entry_span(t);
    std::memcpy(g.params[t]->data(), src.data(), src.size() * sizeof(float));
  }
  MemoryTracker::instance().record_copy(
      static_cast<std::size_t>(params.numel()) * sizeof(float));
}

std::pair<std::size_t, std::size_t> Model::layer_param_span(std::size_t layer_index) {
  ensure_registry();
  return index_->layer_entry_range(layer_index);
}

void Model::save(BinaryWriter& w) {
  w.write_u32(kModelMagic);
  w.write_u32(kModelVersion);
  write_flat_params(w, parameters());
}

void Model::load(BinaryReader& r) {
  DINAR_CHECK(r.read_u32() == kModelMagic, "not a DINAR model checkpoint");
  const std::uint32_t version = r.read_u32();
  if (version == kModelVersionLegacy) {
    set_parameters(read_legacy_tensor_params(r));
  } else {
    DINAR_CHECK(version == kModelVersion,
                "unsupported checkpoint version " << version);
    set_parameters(read_flat_params(r));
  }
}

std::string Model::summary() {
  std::ostringstream os;
  os << "Model with " << layers_.size() << " layers, " << num_param_layers()
     << " parameterized, " << num_parameters() << " parameters\n";
  std::size_t idx = 0;
  for (const ParamGroup& g : param_layers())
    os << "  [" << idx++ << "] " << g.name << " (" << g.numel() << " params)\n";
  return os.str();
}

}  // namespace dinar::nn
