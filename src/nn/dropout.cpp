#include "nn/dropout.h"

#include "util/error.h"

namespace dinar::nn {

Dropout::Dropout(double rate, Rng rng) : rate_(rate), rng_(rng) {
  DINAR_CHECK(rate >= 0.0 && rate < 1.0, "dropout rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || rate_ == 0.0) return x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_ = Tensor(x.shape());
  Tensor y = x;
  float* pm = mask_.data();
  float* py = y.data();
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float m = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    pm[i] = m;
    py[i] *= m;
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (rate_ == 0.0) return grad_out;
  DINAR_CHECK(!mask_.empty(), "Dropout::backward without a training forward");
  DINAR_CHECK(grad_out.same_shape(mask_), "Dropout backward shape mismatch");
  Tensor dx = grad_out;
  const float* pm = mask_.data();
  float* pd = dx.data();
  for (std::int64_t i = 0; i < dx.numel(); ++i) pd[i] *= pm[i];
  return dx;
}

std::string Dropout::name() const { return "dropout(" + std::to_string(rate_) + ")"; }

std::unique_ptr<Layer> Dropout::clone() const { return std::make_unique<Dropout>(*this); }

}  // namespace dinar::nn
