// 1-D convolution over [B, C, L] inputs — the audio path (paper's Speech
// Commands / M18 substitute operates on raw synthetic waveforms).
#pragma once

#include "nn/layer.h"

namespace dinar::nn {

class Conv1d : public Layer {
 public:
  Conv1d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t padding, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::vector<ParamGroup> param_groups() override;
  std::unique_ptr<Layer> clone() const override;

  std::int64_t out_size(std::int64_t in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  Conv1d(const Conv1d&) = default;

  std::int64_t in_ch_, out_ch_, kernel_, stride_, padding_;
  Tensor weight_;  // [OC, IC, K]
  Tensor bias_;    // [OC]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
  Tensor cached_cols_;  // im2col of cached_input_, reused by backward
};

}  // namespace dinar::nn
