// im2col lowering for the convolution layers.
//
// Convolutions are computed as one gemm over a patch matrix instead of the
// former per-output scalar loops: forward is cols x W^T, the weight
// gradient is g^T x cols, and the input gradient is g x W scattered back
// through col2im. Padding positions are materialized as zeros, which
// contribute exactly nothing to the double-accumulated dot products, so
// the lowered forward matches the direct algorithm's sums term for term.
//
// All routines parallelize over disjoint output rows (or images, for the
// scatter-add in col2im) via the optional ExecutionContext, so results are
// bit-identical for every thread count.
#pragma once

#include "tensor/tensor.h"

namespace dinar::nn {

// [B, C, H, W] -> [B*OH*OW, C*KH*KW]: row r = (b, oy, ox) holds the input
// patch under output position (oy, ox), columns ordered (c, ky, kx) — the
// same traversal order as the weight tensor's [OC, C, KH, KW] rows.
Tensor im2col2d(const Tensor& x, std::int64_t kernel_h, std::int64_t kernel_w,
                std::int64_t stride, std::int64_t padding_h, std::int64_t padding_w,
                std::int64_t oh, std::int64_t ow, const ExecutionContext* exec);

// Scatter-add transpose of im2col2d: accumulates dcols rows back into the
// [B, C, H, W] gradient. Parallel over images only — patches overlap
// within an image, so each image's scatter stays sequential (and therefore
// deterministic).
void col2im2d(const Tensor& dcols, Tensor& dx, std::int64_t kernel_h,
              std::int64_t kernel_w, std::int64_t stride, std::int64_t padding_h,
              std::int64_t padding_w, std::int64_t oh, std::int64_t ow,
              const ExecutionContext* exec);

// [B, OC, OH, OW] -> [B*OH*OW, OC]: gathers the gradient into gemm layout
// (row r = (b, oy, ox)).
Tensor gather_grad_rows2d(const Tensor& grad_out, const ExecutionContext* exec);

// [B*OH*OW, OC] -> [B, OC, OH, OW]: scatters gemm output rows into the
// activation layout, adding the per-channel bias.
Tensor scatter_output_rows2d(const Tensor& rows, const Tensor& bias, std::int64_t b,
                             std::int64_t oh, std::int64_t ow,
                             const ExecutionContext* exec);

// Per-output-channel column sums of a [R, OC] gradient matrix, accumulated
// into grad_bias in ascending row order (the direct kernels' db order).
void accumulate_bias_grad(const Tensor& grad_rows, Tensor& grad_bias,
                          const ExecutionContext* exec);

}  // namespace dinar::nn
