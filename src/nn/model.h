// Sequential neural-network model with a layer-indexed parameter registry.
//
// The registry is DINAR's pivot: Algorithm 1's "layer p" is an index into
// param_layers(), and every consumer — FedAvg aggregation, the sensitivity
// analyzer, the obfuscator, personalization, DP noise — addresses
// parameters through the same indexing, so "obfuscate layer p" and
// "restore layer p" are guaranteed to touch the same tensors.
//
// Parameters snapshot to/from nn::FlatParams: one contiguous arena plus a
// shared immutable LayerIndex built from the registry. A snapshot costs a
// single arena allocation; installing one is pure memcpy into the layers'
// existing storage. The layer index and parameter-group cache are built
// lazily and invalidated when the layer stack changes (add(), copies).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/flat_params.h"
#include "nn/layer.h"
#include "util/serde.h"

namespace dinar::nn {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;
  Model(const Model& other);
  Model& operator=(const Model& other);

  // Appends a layer; returns *this for builder-style chaining. The layer
  // inherits the model's execution context.
  Model& add(std::unique_ptr<Layer> layer);

  // Installs the execution context every layer's kernels parallelize on
  // (null = sequential). Not owned: the caller keeps it alive while the
  // model computes. Copies of a model deliberately do NOT inherit the
  // context — a model that escapes the simulation (attacker views, shadow
  // models) must not hold a pointer into its lifetime.
  void set_execution_context(const ExecutionContext* exec);
  const ExecutionContext* execution_context() const { return exec_; }

  Tensor forward(const Tensor& x, bool train = false);
  // Backpropagates dL/d(output); parameter gradients accumulate.
  // Returns dL/d(input).
  Tensor backward(const Tensor& grad_output);
  void zero_grad();

  // One parameterized-layer view per paper "layer", in forward order.
  // Pointers remain valid while the model is alive and unmodified.
  const std::vector<ParamGroup>& param_layers();
  std::size_t num_param_layers();
  std::int64_t num_parameters();
  std::size_t num_layers() const { return layers_.size(); }

  // Arena layout of this model's parameters (shared, immutable; one
  // instance per model until the layer stack changes). Every snapshot
  // produced by parameters()/gradients() shares it.
  std::shared_ptr<const LayerIndex> layer_index();

  // Snapshot of all parameter values as one contiguous arena, ordered by
  // layer then tensor (exactly the registry order).
  FlatParams parameters();
  // Overwrites all parameters from a snapshot. Layout-checked by shape
  // sequence (snapshots deserialized from legacy payloads carry a
  // synthesized index and must still install); pure memcpy, no allocation.
  void set_parameters(const FlatParams& params);
  // Snapshot of all gradients (same arena layout as parameters()).
  FlatParams gradients();

  // Snapshot / restore of one parameterized layer (DINAR's private-layer
  // store and obfuscator work through these). The snapshot carries a
  // single-layer sub-index whose entries keep the original names.
  FlatParams layer_parameters(std::size_t layer_index);
  void set_layer_parameters(std::size_t layer_index, const FlatParams& params);
  // Positions of layer `layer_index`'s entries inside the flat index.
  std::pair<std::size_t, std::size_t> layer_param_span(std::size_t layer_index);

  // Checkpoint serialization (magic + version + parameter payload).
  // Writes the v2 flat format; load() also accepts v1 tensor-list
  // checkpoints written before the FlatParams refactor.
  void save(BinaryWriter& w);
  void load(BinaryReader& r);

  std::string summary();

 private:
  // Rebuilds the group/index caches if the layer stack changed.
  void ensure_registry();
  // Copies params (or grads) into a fresh arena sharing layer_index().
  FlatParams snapshot(bool grads);

  std::vector<std::unique_ptr<Layer>> layers_;
  const ExecutionContext* exec_ = nullptr;  // not owned

  // Lazy registry caches; valid while registry_valid_. Group pointers aim
  // into heap-allocated Layer objects, so moving the model keeps them
  // valid; copying rebuilds them.
  bool registry_valid_ = false;
  std::vector<ParamGroup> groups_;
  std::shared_ptr<const LayerIndex> index_;
  std::vector<std::shared_ptr<const LayerIndex>> layer_indices_;
};

}  // namespace dinar::nn
