// Sequential neural-network model with a layer-indexed parameter registry.
//
// The registry is DINAR's pivot: Algorithm 1's "layer p" is an index into
// param_layers(), and every consumer — FedAvg aggregation, the sensitivity
// analyzer, the obfuscator, personalization, DP noise — addresses
// parameters through the same indexing, so "obfuscate layer p" and
// "restore layer p" are guaranteed to touch the same tensors.
//
// Parameters snapshot to/from ParamList (a flat, ordered list of tensors),
// which is also the FL wire format.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/serde.h"

namespace dinar::nn {

// Ordered snapshot of every parameter tensor of a model.
using ParamList = std::vector<Tensor>;

// a += b, elementwise across the list (shape-checked).
void param_list_add(ParamList& a, const ParamList& b);
// a *= s.
void param_list_scale(ParamList& a, float s);
// a += s * b.
void param_list_add_scaled(ParamList& a, const ParamList& b, float s);
// Total element count.
std::int64_t param_list_numel(const ParamList& a);
// sqrt(sum of squared entries) across the whole list.
double param_list_l2_norm(const ParamList& a);
// Structural equality of shapes (not values).
bool param_list_same_shape(const ParamList& a, const ParamList& b);

void write_param_list(BinaryWriter& w, const ParamList& params);
ParamList read_param_list(BinaryReader& r);

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;
  Model(const Model& other);
  Model& operator=(const Model& other);

  // Appends a layer; returns *this for builder-style chaining. The layer
  // inherits the model's execution context.
  Model& add(std::unique_ptr<Layer> layer);

  // Installs the execution context every layer's kernels parallelize on
  // (null = sequential). Not owned: the caller keeps it alive while the
  // model computes. Copies of a model deliberately do NOT inherit the
  // context — a model that escapes the simulation (attacker views, shadow
  // models) must not hold a pointer into its lifetime.
  void set_execution_context(const ExecutionContext* exec);
  const ExecutionContext* execution_context() const { return exec_; }

  Tensor forward(const Tensor& x, bool train = false);
  // Backpropagates dL/d(output); parameter gradients accumulate.
  // Returns dL/d(input).
  Tensor backward(const Tensor& grad_output);
  void zero_grad();

  // One parameterized-layer view per paper "layer", in forward order.
  // Pointers remain valid while the model is alive and unmodified.
  std::vector<ParamGroup> param_layers();
  std::size_t num_param_layers();
  std::int64_t num_parameters();
  std::size_t num_layers() const { return layers_.size(); }

  // Snapshot of all parameter values, ordered by layer then tensor.
  ParamList parameters();
  // Overwrites all parameters from a snapshot (shape-checked).
  void set_parameters(const ParamList& params);
  // Snapshot of all gradients (same ordering as parameters()).
  ParamList gradients();

  // Snapshot / restore of one parameterized layer (DINAR's private-layer
  // store and obfuscator work through these).
  ParamList layer_parameters(std::size_t layer_index);
  void set_layer_parameters(std::size_t layer_index, const ParamList& params);
  // Positions of layer `layer_index`'s tensors inside the flat ParamList.
  std::pair<std::size_t, std::size_t> layer_param_span(std::size_t layer_index);

  // Checkpoint serialization (magic + version + parameter payload).
  void save(BinaryWriter& w);
  void load(BinaryReader& r);

  std::string summary();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  const ExecutionContext* exec_ = nullptr;  // not owned
};

}  // namespace dinar::nn
