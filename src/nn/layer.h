// Layer abstraction for the neural-network substrate.
//
// Layers are stateful (they cache whatever the backward pass needs), own
// their parameters and gradients, and are composed by nn::Model. The unit
// DINAR reasons about — "the p-th layer" in Algorithm 1 — is the
// *parameterized* layer: every layer exposes its parameter groups, and
// composite layers (residual blocks) expose one group per inner
// parameterized layer so sensitivity analysis and obfuscation see the same
// granularity the paper's per-layer figures use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dinar::nn {

// One parameterized layer's tensors (weights + bias, typically) and their
// gradients, by pointer into the owning layer.
struct ParamGroup {
  std::string name;
  std::vector<Tensor*> params;
  std::vector<Tensor*> grads;

  std::int64_t numel() const {
    std::int64_t n = 0;
    for (const Tensor* p : params) n += p->numel();
    return n;
  }
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Installs the execution context the layer's kernels may parallelize on
  // (null = sequential). The caller owns the context and must keep it alive
  // while the layer computes; composite layers propagate it to their inner
  // layers. Kernels are bit-identical with and without a context, so this
  // is purely a performance knob.
  virtual void set_execution_context(const ExecutionContext* exec) { exec_ = exec; }
  const ExecutionContext* execution_context() const { return exec_; }

  // Computes the layer output; when `train` is true the layer caches the
  // activations backward() needs. Gradients accumulate into the grad
  // tensors (callers zero them via Model::zero_grad between steps).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // Given dL/d(output), accumulates parameter gradients and returns
  // dL/d(input). Must follow a forward(x, /*train=*/true) call.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::string name() const = 0;

  // Parameter groups of this layer; empty for stateless layers. Composite
  // layers return one group per inner parameterized layer.
  virtual std::vector<ParamGroup> param_groups() { return {}; }

  // Deep copy including current parameter values (used to replicate the
  // initial model across FL clients).
  virtual std::unique_ptr<Layer> clone() const = 0;

 protected:
  const ExecutionContext* exec_ = nullptr;  // not owned
};

}  // namespace dinar::nn
