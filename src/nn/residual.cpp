#include "nn/residual.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "util/error.h"

namespace dinar::nn {

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                             std::int64_t stride, Rng& rng)
    : conv1_(std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1, rng)),
      relu_mid_(std::make_unique<ReLU>()),
      conv2_(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, rng)),
      relu_out_(std::make_unique<ReLU>()),
      in_ch_(in_channels), out_ch_(out_channels), stride_(stride) {
  if (stride != 1 || in_channels != out_channels)
    proj_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor h = conv1_->forward(x, train);
  h = relu_mid_->forward(h, train);
  h = conv2_->forward(h, train);
  Tensor skip = proj_ ? proj_->forward(x, train) : x;
  DINAR_CHECK(h.same_shape(skip), "residual branch/skip shape mismatch: "
                                      << shape_to_string(h.shape()) << " vs "
                                      << shape_to_string(skip.shape()));
  h += skip;
  return relu_out_->forward(h, train);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = relu_out_->backward(grad_out);
  // The add distributes the gradient to both branches.
  Tensor g_skip = proj_ ? proj_->backward(g) : g;
  Tensor g_main = conv2_->backward(g);
  g_main = relu_mid_->backward(g_main);
  g_main = conv1_->backward(g_main);
  g_main += g_skip;
  return g_main;
}

std::string ResidualBlock::name() const {
  return "resblock(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_) + ",s" +
         std::to_string(stride_) + ")";
}

std::vector<ParamGroup> ResidualBlock::param_groups() {
  std::vector<ParamGroup> groups;
  for (Layer* inner : {conv1_.get(), conv2_.get(), proj_.get()}) {
    if (inner == nullptr) continue;
    for (ParamGroup& g : inner->param_groups()) {
      g.name = name() + "/" + g.name;
      groups.push_back(std::move(g));
    }
  }
  return groups;
}

void ResidualBlock::set_execution_context(const ExecutionContext* exec) {
  Layer::set_execution_context(exec);
  for (Layer* inner :
       {conv1_.get(), relu_mid_.get(), conv2_.get(), proj_.get(), relu_out_.get()})
    if (inner != nullptr) inner->set_execution_context(exec);
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  auto copy = std::unique_ptr<ResidualBlock>(new ResidualBlock());
  copy->conv1_ = conv1_->clone();
  copy->relu_mid_ = relu_mid_->clone();
  copy->conv2_ = conv2_->clone();
  copy->proj_ = proj_ ? proj_->clone() : nullptr;
  copy->relu_out_ = relu_out_->clone();
  copy->in_ch_ = in_ch_;
  copy->out_ch_ = out_ch_;
  copy->stride_ = stride_;
  copy->set_execution_context(exec_);
  return copy;
}

}  // namespace dinar::nn
