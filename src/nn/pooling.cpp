#include "nn/pooling.h"

#include <limits>

#include "util/error.h"

namespace dinar::nn {

MaxPool2d::MaxPool2d(std::int64_t window) : window_(window) {
  DINAR_CHECK(window >= 1, "pool window must be >= 1");
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 4, "MaxPool2d expects [B,C,H,W]");
  const std::int64_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = h / window_, ow = w / window_;
  DINAR_CHECK(oh >= 1 && ow >= 1, "MaxPool2d: input smaller than window");
  Tensor y({b, c, oh, ow});
  if (train) {
    cached_in_shape_ = x.shape();
    argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
  }
  const float* px = x.data();
  float* py = y.data();
  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (n * c + ch) * h * w;
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t di = 0; di < window_; ++di) {
            for (std::int64_t dj = 0; dj < window_; ++dj) {
              const std::int64_t idx = (i * window_ + di) * w + (j * window_ + dj);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = (n * c + ch) * h * w + idx;
              }
            }
          }
          py[out_idx] = best;
          if (train) argmax_[static_cast<std::size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_in_shape_.empty(), "MaxPool2d::backward without cached forward");
  DINAR_CHECK(grad_out.numel() == static_cast<std::int64_t>(argmax_.size()),
              "MaxPool2d backward shape mismatch");
  Tensor dx(cached_in_shape_);
  float* pdx = dx.data();
  const float* pg = grad_out.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i)
    pdx[argmax_[i]] += pg[i];
  return dx;
}

std::string MaxPool2d::name() const { return "maxpool2d(" + std::to_string(window_) + ")"; }

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(*this);
}

MaxPool1d::MaxPool1d(std::int64_t window) : window_(window) {
  DINAR_CHECK(window >= 1, "pool window must be >= 1");
}

Tensor MaxPool1d::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 3, "MaxPool1d expects [B,C,L]");
  const std::int64_t b = x.dim(0), c = x.dim(1), l = x.dim(2);
  const std::int64_t ol = l / window_;
  DINAR_CHECK(ol >= 1, "MaxPool1d: input shorter than window");
  Tensor y({b, c, ol});
  if (train) {
    cached_in_shape_ = x.shape();
    argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
  }
  const float* px = x.data();
  float* py = y.data();
  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* row = px + (n * c + ch) * l;
      for (std::int64_t i = 0; i < ol; ++i, ++out_idx) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = 0;
        for (std::int64_t d = 0; d < window_; ++d) {
          const std::int64_t idx = i * window_ + d;
          if (row[idx] > best) {
            best = row[idx];
            best_idx = (n * c + ch) * l + idx;
          }
        }
        py[out_idx] = best;
        if (train) argmax_[static_cast<std::size_t>(out_idx)] = best_idx;
      }
    }
  }
  return y;
}

Tensor MaxPool1d::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_in_shape_.empty(), "MaxPool1d::backward without cached forward");
  DINAR_CHECK(grad_out.numel() == static_cast<std::int64_t>(argmax_.size()),
              "MaxPool1d backward shape mismatch");
  Tensor dx(cached_in_shape_);
  float* pdx = dx.data();
  const float* pg = grad_out.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i)
    pdx[argmax_[i]] += pg[i];
  return dx;
}

std::string MaxPool1d::name() const { return "maxpool1d(" + std::to_string(window_) + ")"; }

std::unique_ptr<Layer> MaxPool1d::clone() const {
  return std::make_unique<MaxPool1d>(*this);
}

Tensor GlobalAvgPool2d::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 4, "GlobalAvgPool2d expects [B,C,H,W]");
  if (train) cached_in_shape_ = x.shape();
  const std::int64_t b = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor y({b, c});
  const float* px = x.data();
  float* py = y.data();
  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double acc = 0.0;
      const float* plane = px + (n * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      py[n * c + ch] = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
  return y;
}

Tensor GlobalAvgPool2d::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_in_shape_.empty(), "GlobalAvgPool2d::backward without forward");
  Tensor dx(cached_in_shape_);
  const std::int64_t b = cached_in_shape_[0], c = cached_in_shape_[1],
                     hw = cached_in_shape_[2] * cached_in_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  float* pdx = dx.data();
  const float* pg = grad_out.data();
  for (std::int64_t n = 0; n < b; ++n)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = pg[n * c + ch] * inv;
      float* plane = pdx + (n * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  return dx;
}

std::unique_ptr<Layer> GlobalAvgPool2d::clone() const {
  return std::make_unique<GlobalAvgPool2d>(*this);
}

Tensor GlobalAvgPool1d::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 3, "GlobalAvgPool1d expects [B,C,L]");
  if (train) cached_in_shape_ = x.shape();
  const std::int64_t b = x.dim(0), c = x.dim(1), l = x.dim(2);
  Tensor y({b, c});
  const float* px = x.data();
  float* py = y.data();
  for (std::int64_t n = 0; n < b; ++n)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double acc = 0.0;
      const float* row = px + (n * c + ch) * l;
      for (std::int64_t i = 0; i < l; ++i) acc += row[i];
      py[n * c + ch] = static_cast<float>(acc / static_cast<double>(l));
    }
  return y;
}

Tensor GlobalAvgPool1d::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_in_shape_.empty(), "GlobalAvgPool1d::backward without forward");
  Tensor dx(cached_in_shape_);
  const std::int64_t b = cached_in_shape_[0], c = cached_in_shape_[1],
                     l = cached_in_shape_[2];
  const float inv = 1.0f / static_cast<float>(l);
  float* pdx = dx.data();
  const float* pg = grad_out.data();
  for (std::int64_t n = 0; n < b; ++n)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = pg[n * c + ch] * inv;
      float* row = pdx + (n * c + ch) * l;
      for (std::int64_t i = 0; i < l; ++i) row[i] = g;
    }
  return dx;
}

std::unique_ptr<Layer> GlobalAvgPool1d::clone() const {
  return std::make_unique<GlobalAvgPool1d>(*this);
}

}  // namespace dinar::nn
