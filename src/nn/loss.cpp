#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dinar::nn {

Tensor softmax(const Tensor& logits) {
  DINAR_CHECK(logits.rank() == 2, "softmax expects [B, C]");
  const std::int64_t b = logits.dim(0), c = logits.dim(1);
  Tensor out = logits;
  float* p = out.data();
  for (std::int64_t i = 0; i < b; ++i) {
    float* row = p + i * c;
    const float mx = *std::max_element(row, row + c);
    double sum = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv;
  }
  return out;
}

std::vector<double> per_sample_cross_entropy(const Tensor& logits,
                                             const std::vector<int>& labels) {
  DINAR_CHECK(logits.rank() == 2, "per_sample_cross_entropy expects [B, C]");
  const std::int64_t b = logits.dim(0), c = logits.dim(1);
  DINAR_CHECK(static_cast<std::int64_t>(labels.size()) == b, "label count mismatch");
  Tensor probs = softmax(logits);
  std::vector<double> losses(static_cast<std::size_t>(b));
  for (std::int64_t i = 0; i < b; ++i) {
    DINAR_CHECK(labels[i] >= 0 && labels[i] < c, "label out of range");
    const double p = std::max<double>(probs.at(i, labels[i]), 1e-12);
    losses[static_cast<std::size_t>(i)] = -std::log(p);
  }
  return losses;
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  DINAR_CHECK(logits.rank() == 2, "softmax_cross_entropy expects [B, C]");
  const std::int64_t b = logits.dim(0), c = logits.dim(1);
  DINAR_CHECK(static_cast<std::int64_t>(labels.size()) == b, "label count mismatch");
  Tensor probs = softmax(logits);
  double loss = 0.0;
  for (std::int64_t i = 0; i < b; ++i) {
    DINAR_CHECK(labels[i] >= 0 && labels[i] < c, "label out of range");
    loss -= std::log(std::max<double>(probs.at(i, labels[i]), 1e-12));
  }
  loss /= static_cast<double>(b);

  // d/dlogits of mean CE = (softmax - onehot) / B.
  Tensor grad = std::move(probs);
  const float inv_b = 1.0f / static_cast<float>(b);
  float* pg = grad.data();
  for (std::int64_t i = 0; i < b; ++i) {
    pg[i * c + labels[i]] -= 1.0f;
    for (std::int64_t j = 0; j < c; ++j) pg[i * c + j] *= inv_b;
  }
  return LossResult{loss, std::move(grad)};
}

std::vector<int> predict_classes(const Tensor& logits) {
  DINAR_CHECK(logits.rank() == 2, "predict_classes expects [B, C]");
  const std::int64_t b = logits.dim(0), c = logits.dim(1);
  std::vector<int> out(static_cast<std::size_t>(b));
  const float* p = logits.data();
  for (std::int64_t i = 0; i < b; ++i) {
    const float* row = p + i * c;
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(std::max_element(row, row + c) - row);
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const std::vector<int> pred = predict_classes(logits);
  DINAR_CHECK(pred.size() == labels.size(), "accuracy label count mismatch");
  if (pred.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace dinar::nn
