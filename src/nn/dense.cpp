#include "nn/dense.h"

#include "util/error.h"

namespace dinar::nn {

Dense::Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features), out_(out_features),
      weight_(Tensor::kaiming({in_features, out_features}, in_features, rng)),
      bias_(Tensor::kaiming({out_features}, in_features, rng)),
      grad_weight_({in_features, out_features}), grad_bias_({out_features}) {}

Tensor Dense::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 2 && x.dim(1) == in_,
              "Dense(" << in_ << "," << out_ << ") got input "
                       << shape_to_string(x.shape()));
  if (train) cached_input_ = x;
  Tensor y = gemm(Trans::kN, Trans::kN, x, weight_, exec_);
  const std::int64_t batch = y.dim(0);
  float* py = y.data();
  const float* pb = bias_.data();
  for (std::int64_t i = 0; i < batch; ++i)
    for (std::int64_t j = 0; j < out_; ++j) py[i * out_ + j] += pb[j];
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_input_.empty(), "Dense::backward without cached forward");
  DINAR_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_,
              "Dense backward shape mismatch");
  // dW = x^T g, db = sum over batch, dx = g W^T.
  grad_weight_ += gemm(Trans::kT, Trans::kN, cached_input_, grad_out, exec_);
  const std::int64_t batch = grad_out.dim(0);
  const float* pg = grad_out.data();
  float* pdb = grad_bias_.data();
  for (std::int64_t i = 0; i < batch; ++i)
    for (std::int64_t j = 0; j < out_; ++j) pdb[j] += pg[i * out_ + j];
  return gemm(Trans::kN, Trans::kT, grad_out, weight_, exec_);
}

std::string Dense::name() const {
  return "dense(" + std::to_string(in_) + "x" + std::to_string(out_) + ")";
}

std::vector<ParamGroup> Dense::param_groups() {
  return {ParamGroup{name(), {&weight_, &bias_}, {&grad_weight_, &grad_bias_}}};
}

std::unique_ptr<Layer> Dense::clone() const {
  return std::unique_ptr<Layer>(new Dense(*this));
}

}  // namespace dinar::nn
