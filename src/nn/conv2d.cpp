#include "nn/conv2d.h"

#include "nn/conv_kernels.h"
#include "util/error.h"

namespace dinar::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, Rng& rng)
    : in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel), stride_(stride),
      padding_(padding),
      weight_(Tensor::kaiming({out_channels, in_channels, kernel, kernel},
                              in_channels * kernel * kernel, rng)),
      bias_(Tensor::kaiming({out_channels}, in_channels * kernel * kernel, rng)),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  DINAR_CHECK(stride >= 1 && kernel >= 1 && padding >= 0, "invalid conv2d geometry");
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
              name() << " got input " << shape_to_string(x.shape()));
  const std::int64_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = out_size(h), ow = out_size(w);
  DINAR_CHECK(oh >= 1 && ow >= 1, name() << ": input spatially too small");

  // im2col lowering: one gemm against the [OC, IC*K*K] weight view instead
  // of the former per-output scalar loops (see nn/conv_kernels.h).
  Tensor cols = im2col2d(x, kernel_, kernel_, stride_, padding_, padding_, oh, ow,
                         exec_);
  if (train) {
    cached_input_ = x;
    cached_cols_ = cols;  // reused by backward's weight-gradient gemm
  }
  const Tensor wmat = weight_.reshaped({out_ch_, in_ch_ * kernel_ * kernel_});
  const Tensor rows = gemm(Trans::kN, Trans::kT, cols, wmat, exec_);
  return scatter_output_rows2d(rows, bias_, b, oh, ow, exec_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_input_.empty(), "Conv2d::backward without cached forward");
  const Tensor& x = cached_input_;
  const std::int64_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = out_size(h), ow = out_size(w);
  DINAR_CHECK(grad_out.rank() == 4 && grad_out.dim(1) == out_ch_ &&
                  grad_out.dim(2) == oh && grad_out.dim(3) == ow,
              "Conv2d backward shape mismatch");

  const Tensor gmat = gather_grad_rows2d(grad_out, exec_);  // [B*OH*OW, OC]
  grad_weight_ +=
      gemm(Trans::kT, Trans::kN, gmat, cached_cols_, exec_).reshaped(weight_.shape());
  accumulate_bias_grad(gmat, grad_bias_, exec_);

  const Tensor wmat = weight_.reshaped({out_ch_, in_ch_ * kernel_ * kernel_});
  const Tensor dcols = gemm(Trans::kN, Trans::kN, gmat, wmat, exec_);
  Tensor dx({b, in_ch_, h, w});
  col2im2d(dcols, dx, kernel_, kernel_, stride_, padding_, padding_, oh, ow, exec_);
  return dx;
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_) + ",k" +
         std::to_string(kernel_) + ",s" + std::to_string(stride_) + ",p" +
         std::to_string(padding_) + ")";
}

std::vector<ParamGroup> Conv2d::param_groups() {
  return {ParamGroup{name(), {&weight_, &bias_}, {&grad_weight_, &grad_bias_}}};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::unique_ptr<Layer>(new Conv2d(*this));
}

}  // namespace dinar::nn
