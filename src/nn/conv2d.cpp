#include "nn/conv2d.h"

#include "util/error.h"

namespace dinar::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, Rng& rng)
    : in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel), stride_(stride),
      padding_(padding),
      weight_(Tensor::kaiming({out_channels, in_channels, kernel, kernel},
                              in_channels * kernel * kernel, rng)),
      bias_(Tensor::kaiming({out_channels}, in_channels * kernel * kernel, rng)),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  DINAR_CHECK(stride >= 1 && kernel >= 1 && padding >= 0, "invalid conv2d geometry");
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
              name() << " got input " << shape_to_string(x.shape()));
  if (train) cached_input_ = x;
  const std::int64_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = out_size(h), ow = out_size(w);
  DINAR_CHECK(oh >= 1 && ow >= 1, name() << ": input spatially too small");
  Tensor y({b, out_ch_, oh, ow});
  const float* px = x.data();
  const float* pw = weight_.data();
  const float* pb = bias_.data();
  float* py = y.data();

  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t oc = 0; oc < out_ch_; ++oc) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          double acc = pb[oc];
          for (std::int64_t ic = 0; ic < in_ch_; ++ic) {
            for (std::int64_t ki = 0; ki < kernel_; ++ki) {
              const std::int64_t ii = i * stride_ + ki - padding_;
              if (ii < 0 || ii >= h) continue;
              const float* xrow = px + ((n * in_ch_ + ic) * h + ii) * w;
              const float* wrow = pw + ((oc * in_ch_ + ic) * kernel_ + ki) * kernel_;
              for (std::int64_t kj = 0; kj < kernel_; ++kj) {
                const std::int64_t jj = j * stride_ + kj - padding_;
                if (jj < 0 || jj >= w) continue;
                acc += static_cast<double>(xrow[jj]) * wrow[kj];
              }
            }
          }
          py[((n * out_ch_ + oc) * oh + i) * ow + j] = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_input_.empty(), "Conv2d::backward without cached forward");
  const Tensor& x = cached_input_;
  const std::int64_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = out_size(h), ow = out_size(w);
  DINAR_CHECK(grad_out.rank() == 4 && grad_out.dim(1) == out_ch_ &&
                  grad_out.dim(2) == oh && grad_out.dim(3) == ow,
              "Conv2d backward shape mismatch");

  Tensor dx({b, in_ch_, h, w});
  const float* px = x.data();
  const float* pw = weight_.data();
  const float* pg = grad_out.data();
  float* pdx = dx.data();
  float* pdw = grad_weight_.data();
  float* pdb = grad_bias_.data();

  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t oc = 0; oc < out_ch_; ++oc) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          const float g = pg[((n * out_ch_ + oc) * oh + i) * ow + j];
          if (g == 0.0f) continue;
          pdb[oc] += g;
          for (std::int64_t ic = 0; ic < in_ch_; ++ic) {
            for (std::int64_t ki = 0; ki < kernel_; ++ki) {
              const std::int64_t ii = i * stride_ + ki - padding_;
              if (ii < 0 || ii >= h) continue;
              const float* xrow = px + ((n * in_ch_ + ic) * h + ii) * w;
              float* dxrow = pdx + ((n * in_ch_ + ic) * h + ii) * w;
              const float* wrow = pw + ((oc * in_ch_ + ic) * kernel_ + ki) * kernel_;
              float* dwrow = pdw + ((oc * in_ch_ + ic) * kernel_ + ki) * kernel_;
              for (std::int64_t kj = 0; kj < kernel_; ++kj) {
                const std::int64_t jj = j * stride_ + kj - padding_;
                if (jj < 0 || jj >= w) continue;
                dwrow[kj] += g * xrow[jj];
                dxrow[jj] += g * wrow[kj];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_) + ",k" +
         std::to_string(kernel_) + ",s" + std::to_string(stride_) + ",p" +
         std::to_string(padding_) + ")";
}

std::vector<ParamGroup> Conv2d::param_groups() {
  return {ParamGroup{name(), {&weight_, &bias_}, {&grad_weight_, &grad_bias_}}};
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::unique_ptr<Layer>(new Conv2d(*this));
}

}  // namespace dinar::nn
