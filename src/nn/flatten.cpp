#include "nn/flatten.h"

#include "util/error.h"

namespace dinar::nn {

Tensor Flatten::forward(const Tensor& x, bool train) {
  DINAR_CHECK(x.rank() >= 2, "Flatten expects a batched input");
  if (train) cached_shape_ = x.shape();
  const std::int64_t batch = x.dim(0);
  return x.reshaped({batch, x.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  DINAR_CHECK(!cached_shape_.empty(), "Flatten::backward without cached forward");
  return grad_out.reshaped(cached_shape_);
}

std::unique_ptr<Layer> Flatten::clone() const { return std::make_unique<Flatten>(*this); }

}  // namespace dinar::nn
