// Basic residual block (He et al. style, no batch-norm):
//   out = ReLU( conv2(ReLU(conv1(x))) + skip(x) )
// skip is the identity when shapes are preserved, otherwise a 1x1
// strided projection convolution.
//
// For DINAR's per-layer analysis the block reports one ParamGroup per
// inner convolution, so a ResNet's "layers" enumerate exactly as in the
// paper's figures.
#pragma once

#include "nn/layer.h"

namespace dinar::nn {

class ResidualBlock : public Layer {
 public:
  // stride > 1 or out_channels != in_channels adds a projection skip.
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::vector<ParamGroup> param_groups() override;
  std::unique_ptr<Layer> clone() const override;
  // Propagates the context to the inner convolutions.
  void set_execution_context(const ExecutionContext* exec) override;

 private:
  ResidualBlock() = default;

  std::unique_ptr<Layer> conv1_;
  std::unique_ptr<Layer> relu_mid_;
  std::unique_ptr<Layer> conv2_;
  std::unique_ptr<Layer> proj_;  // null for identity skip
  std::unique_ptr<Layer> relu_out_;
  std::int64_t in_ch_ = 0, out_ch_ = 0, stride_ = 1;
};

}  // namespace dinar::nn
