#include "nn/model_zoo.h"

#include <algorithm>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "util/error.h"

namespace dinar::nn {

Model make_fcnn6(std::int64_t in_features, std::int64_t classes, std::int64_t width,
                 Rng& rng) {
  DINAR_CHECK(width >= 32, "fcnn6 width too small");
  Model m;
  std::int64_t in = in_features;
  std::int64_t w = width;
  // Five hidden Tanh layers with halving widths, then the classifier:
  // the paper's 4096/2048/1024/512/256/128 FCNN shape at CPU scale.
  for (int i = 0; i < 5; ++i) {
    m.add(std::make_unique<Dense>(in, w, rng)).add(std::make_unique<Tanh>());
    in = w;
    w = std::max<std::int64_t>(w / 2, 16);
  }
  m.add(std::make_unique<Dense>(in, classes, rng));
  return m;
}

Model make_vgg_small(std::int64_t in_channels, std::int64_t image_size,
                     std::int64_t classes, std::int64_t conv_blocks, Rng& rng) {
  DINAR_CHECK(conv_blocks >= 1 && conv_blocks <= 8, "conv_blocks out of range");
  Model m;
  std::int64_t ch = in_channels;
  std::int64_t out_ch = 8;
  std::int64_t size = image_size;
  for (std::int64_t b = 0; b < conv_blocks; ++b) {
    m.add(std::make_unique<Conv2d>(ch, out_ch, 3, 1, 1, rng))
        .add(std::make_unique<ReLU>());
    ch = out_ch;
    // Pool after every second block while the map stays poolable.
    if (b % 2 == 1 && size >= 2) {
      m.add(std::make_unique<MaxPool2d>(2));
      size /= 2;
      out_ch = std::min<std::int64_t>(out_ch * 2, 32);
    }
  }
  m.add(std::make_unique<Flatten>());
  const std::int64_t flat = ch * size * size;
  const std::int64_t hidden = std::max<std::int64_t>(flat / 3, 32);
  m.add(std::make_unique<Dense>(flat, hidden, rng)).add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(hidden, classes, rng));
  return m;
}

Model make_resnet_small(std::int64_t in_channels, std::int64_t image_size,
                        std::int64_t classes, Rng& rng) {
  DINAR_CHECK(image_size >= 8, "resnet_small needs image_size >= 8");
  Model m;
  m.add(std::make_unique<Conv2d>(in_channels, 8, 3, 1, 1, rng))
      .add(std::make_unique<ReLU>());
  m.add(std::make_unique<ResidualBlock>(8, 8, 1, rng));
  m.add(std::make_unique<ResidualBlock>(8, 16, 2, rng));
  m.add(std::make_unique<ResidualBlock>(16, 32, 2, rng));
  m.add(std::make_unique<GlobalAvgPool2d>());
  m.add(std::make_unique<Dense>(32, classes, rng));
  return m;
}

Model make_m5_audio(std::int64_t length, std::int64_t classes, Rng& rng) {
  DINAR_CHECK(length >= 128, "m5_audio needs length >= 128");
  Model m;
  m.add(std::make_unique<Conv1d>(1, 8, 16, 4, 0, rng)).add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool1d>(4));
  m.add(std::make_unique<Conv1d>(8, 16, 3, 1, 1, rng)).add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool1d>(4));
  m.add(std::make_unique<Conv1d>(16, 32, 3, 1, 1, rng)).add(std::make_unique<ReLU>());
  m.add(std::make_unique<Conv1d>(32, 32, 3, 1, 1, rng)).add(std::make_unique<ReLU>());
  m.add(std::make_unique<GlobalAvgPool1d>());
  m.add(std::make_unique<Dense>(32, classes, rng));
  return m;
}

ModelFactory fcnn6_factory(std::int64_t in_features, std::int64_t classes,
                           std::int64_t width) {
  return [=](Rng& rng) { return make_fcnn6(in_features, classes, width, rng); };
}

ModelFactory vgg_small_factory(std::int64_t in_channels, std::int64_t image_size,
                               std::int64_t classes, std::int64_t conv_blocks) {
  return [=](Rng& rng) {
    return make_vgg_small(in_channels, image_size, classes, conv_blocks, rng);
  };
}

ModelFactory resnet_small_factory(std::int64_t in_channels, std::int64_t image_size,
                                  std::int64_t classes) {
  return [=](Rng& rng) { return make_resnet_small(in_channels, image_size, classes, rng); };
}

ModelFactory m5_audio_factory(std::int64_t length, std::int64_t classes) {
  return [=](Rng& rng) { return make_m5_audio(length, classes, rng); };
}

}  // namespace dinar::nn
