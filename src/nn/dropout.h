// Inverted dropout: in training mode each activation is zeroed with
// probability `rate` and survivors are scaled by 1/(1-rate), so inference
// (which applies the identity) needs no rescaling. The mask is cached for
// the backward pass. Deterministic given the layer's seeded Rng.
#pragma once

#include "nn/layer.h"

namespace dinar::nn {

class Dropout : public Layer {
 public:
  Dropout(double rate, Rng rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;  // scaled keep-mask from the last training forward
};

}  // namespace dinar::nn
