// Pooling layers: window max-pooling (2-D and 1-D) and global average
// pooling heads used by the ResNet/M5 architectures.
#pragma once

#include "nn/layer.h"

namespace dinar::nn {

// Non-overlapping max pooling over [B, C, H, W]; window == stride.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::int64_t window);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::int64_t window_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

// Non-overlapping max pooling over [B, C, L].
class MaxPool1d : public Layer {
 public:
  explicit MaxPool1d(std::int64_t window);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::int64_t window_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> argmax_;
};

// [B, C, H, W] -> [B, C]: mean over the spatial extent.
class GlobalAvgPool2d : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "gap2d"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_in_shape_;
};

// [B, C, L] -> [B, C]: mean over time.
class GlobalAvgPool1d : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "gap1d"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_in_shape_;
};

}  // namespace dinar::nn
