// Softmax cross-entropy loss and the probability utilities the attack
// pipeline shares (MIA features are built from per-sample losses and
// softmax confidence vectors).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace dinar::nn {

// Row-wise numerically-stable softmax of logits [B, C].
Tensor softmax(const Tensor& logits);

// Per-sample cross-entropy -log p[label] from logits [B, C].
std::vector<double> per_sample_cross_entropy(const Tensor& logits,
                                             const std::vector<int>& labels);

struct LossResult {
  double mean_loss = 0.0;
  Tensor grad_logits;  // dL/dlogits for L = mean over batch
};

// Mean cross-entropy and its gradient w.r.t. the logits.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels);

// argmax class per row.
std::vector<int> predict_classes(const Tensor& logits);

// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace dinar::nn
