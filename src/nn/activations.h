// Stateless (parameter-free) activation layers.
#pragma once

#include "nn/layer.h"

namespace dinar::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_input_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "tanh"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_output_;
};

}  // namespace dinar::nn
