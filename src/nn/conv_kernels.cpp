#include "nn/conv_kernels.h"

#include <algorithm>

#include "util/error.h"
#include "util/execution_context.h"

namespace dinar::nn {
namespace {

// Rows per parallel chunk for a given per-row workload.
std::size_t grain_for(std::int64_t per_row_work) {
  return static_cast<std::size_t>(
      std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, per_row_work)));
}

void run_rows(std::int64_t n, const ExecutionContext* exec, std::size_t grain,
              const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (exec != nullptr)
    exec->parallel_for(n, fn, grain);
  else
    fn(0, n);
}

}  // namespace

Tensor im2col2d(const Tensor& x, std::int64_t kernel_h, std::int64_t kernel_w,
                std::int64_t stride, std::int64_t padding_h, std::int64_t padding_w,
                std::int64_t oh, std::int64_t ow, const ExecutionContext* exec) {
  DINAR_CHECK(x.rank() == 4, "im2col2d expects [B, C, H, W]");
  const std::int64_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t rows = b * oh * ow;
  const std::int64_t ck = c * kernel_h * kernel_w;
  Tensor cols({rows, ck});
  const float* px = x.data();
  float* pc = cols.data();

  run_rows(rows, exec, grain_for(ck), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::int64_t n = r / (oh * ow);
      const std::int64_t oy = (r / ow) % oh;
      const std::int64_t ox = r % ow;
      float* crow = pc + r * ck;
      for (std::int64_t ic = 0; ic < c; ++ic) {
        for (std::int64_t ky = 0; ky < kernel_h; ++ky) {
          const std::int64_t iy = oy * stride + ky - padding_h;
          for (std::int64_t kx = 0; kx < kernel_w; ++kx) {
            const std::int64_t ix = ox * stride + kx - padding_w;
            const bool inside = iy >= 0 && iy < h && ix >= 0 && ix < w;
            *crow++ = inside ? px[((n * c + ic) * h + iy) * w + ix] : 0.0f;
          }
        }
      }
    }
  });
  return cols;
}

void col2im2d(const Tensor& dcols, Tensor& dx, std::int64_t kernel_h,
              std::int64_t kernel_w, std::int64_t stride, std::int64_t padding_h,
              std::int64_t padding_w, std::int64_t oh, std::int64_t ow,
              const ExecutionContext* exec) {
  DINAR_CHECK(dx.rank() == 4, "col2im2d expects a [B, C, H, W] destination");
  const std::int64_t b = dx.dim(0), c = dx.dim(1), h = dx.dim(2), w = dx.dim(3);
  const std::int64_t ck = c * kernel_h * kernel_w;
  DINAR_CHECK(dcols.rank() == 2 && dcols.dim(0) == b * oh * ow && dcols.dim(1) == ck,
              "col2im2d: dcols shape " << shape_to_string(dcols.shape())
                                       << " does not match the destination");
  const float* pc = dcols.data();
  float* pdx = dx.data();

  // Patches overlap within an image, so the scatter-add parallelizes over
  // whole images; each image's rows accumulate sequentially in ascending
  // (oy, ox) order.
  run_rows(b, exec, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float* crow = pc + ((n * oh + oy) * ow + ox) * ck;
          for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t ky = 0; ky < kernel_h; ++ky) {
              const std::int64_t iy = oy * stride + ky - padding_h;
              for (std::int64_t kx = 0; kx < kernel_w; ++kx) {
                const std::int64_t ix = ox * stride + kx - padding_w;
                // No skip-zero shortcut: adding an exact 0.0f must still
                // happen so IEEE-754 edge values (signed zeros, NaN/Inf
                // already in dx) behave identically to a SIMD scatter-add
                // that has no such branch.
                const float v = *crow++;
                if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                  pdx[((n * c + ic) * h + iy) * w + ix] += v;
              }
            }
          }
        }
      }
    }
  });
}

Tensor gather_grad_rows2d(const Tensor& grad_out, const ExecutionContext* exec) {
  DINAR_CHECK(grad_out.rank() == 4, "gather_grad_rows2d expects [B, OC, OH, OW]");
  const std::int64_t b = grad_out.dim(0), oc = grad_out.dim(1);
  const std::int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const std::int64_t rows = b * oh * ow;
  Tensor out({rows, oc});
  const float* pg = grad_out.data();
  float* po = out.data();

  run_rows(rows, exec, grain_for(oc), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::int64_t n = r / (oh * ow);
      const std::int64_t pos = r % (oh * ow);
      float* orow = po + r * oc;
      for (std::int64_t ch = 0; ch < oc; ++ch)
        orow[ch] = pg[(n * oc + ch) * oh * ow + pos];
    }
  });
  return out;
}

Tensor scatter_output_rows2d(const Tensor& rows, const Tensor& bias, std::int64_t b,
                             std::int64_t oh, std::int64_t ow,
                             const ExecutionContext* exec) {
  DINAR_CHECK(rows.rank() == 2 && rows.dim(0) == b * oh * ow,
              "scatter_output_rows2d: row count mismatch");
  const std::int64_t oc = rows.dim(1);
  Tensor y({b, oc, oh, ow});
  const float* pr = rows.data();
  const float* pb = bias.data();
  float* py = y.data();

  run_rows(b * oh * ow, exec, grain_for(oc), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::int64_t n = r / (oh * ow);
      const std::int64_t pos = r % (oh * ow);
      const float* rrow = pr + r * oc;
      for (std::int64_t ch = 0; ch < oc; ++ch)
        py[(n * oc + ch) * oh * ow + pos] = rrow[ch] + pb[ch];
    }
  });
  return y;
}

void accumulate_bias_grad(const Tensor& grad_rows, Tensor& grad_bias,
                          const ExecutionContext* exec) {
  DINAR_CHECK(grad_rows.rank() == 2 && grad_rows.dim(1) == grad_bias.numel(),
              "accumulate_bias_grad shape mismatch");
  const std::int64_t rows = grad_rows.dim(0), oc = grad_rows.dim(1);
  const float* pg = grad_rows.data();
  float* pdb = grad_bias.data();

  // Parallel over channels: each channel's column sum accumulates in
  // ascending row order regardless of the chunking.
  run_rows(oc, exec, grain_for(rows), [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      // Unconditional accumulation (same IEEE-semantics rule as col2im2d's
      // scatter-add: no value-dependent branches in reduction loops).
      for (std::int64_t r = 0; r < rows; ++r) pdb[ch] += pg[r * oc + ch];
    }
  });
}

}  // namespace dinar::nn
