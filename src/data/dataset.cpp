#include "data/dataset.h"

#include <cstring>
#include <numeric>

#include "util/error.h"

namespace dinar::data {

Dataset::Dataset(Tensor features, std::vector<int> labels, int num_classes)
    : features_(std::move(features)), labels_(std::move(labels)),
      num_classes_(num_classes) {
  DINAR_CHECK(features_.rank() >= 2, "dataset features must be [N, ...]");
  DINAR_CHECK(features_.dim(0) == static_cast<std::int64_t>(labels_.size()),
              "feature/label count mismatch: " << features_.dim(0) << " vs "
                                               << labels_.size());
  DINAR_CHECK(num_classes_ > 0, "dataset needs a positive class count");
  sample_shape_.assign(features_.shape().begin() + 1, features_.shape().end());
  sample_numel_ = shape_numel(sample_shape_);
  for (int label : labels_)
    DINAR_CHECK(label >= 0 && label < num_classes_, "label out of range");
}

Tensor Dataset::gather_features(std::span<const std::size_t> indices) const {
  Shape out_shape;
  out_shape.push_back(static_cast<std::int64_t>(indices.size()));
  out_shape.insert(out_shape.end(), sample_shape_.begin(), sample_shape_.end());
  Tensor out(out_shape);
  const float* src = features_.data();
  float* dst = out.data();
  const std::size_t row = static_cast<std::size_t>(sample_numel_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    DINAR_CHECK(indices[i] < labels_.size(), "gather index out of range");
    std::memcpy(dst + i * row, src + indices[i] * row, row * sizeof(float));
  }
  return out;
}

std::vector<int> Dataset::gather_labels(std::span<const std::size_t> indices) const {
  std::vector<int> out(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) out[i] = labels_[indices[i]];
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  return Dataset(gather_features(indices), gather_labels(indices), num_classes_);
}

Dataset Dataset::take(std::int64_t n) const {
  DINAR_CHECK(n >= 0 && n <= size(), "take out of range");
  std::vector<std::size_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  return subset(idx);
}

Dataset Dataset::drop(std::int64_t n) const {
  DINAR_CHECK(n >= 0 && n <= size(), "drop out of range");
  std::vector<std::size_t> idx(static_cast<std::size_t>(size() - n));
  std::iota(idx.begin(), idx.end(), static_cast<std::size_t>(n));
  return subset(idx);
}

Dataset Dataset::concat(const Dataset& a, const Dataset& b) {
  DINAR_CHECK(a.sample_shape() == b.sample_shape(), "concat: sample shape mismatch");
  DINAR_CHECK(a.num_classes() == b.num_classes(), "concat: class count mismatch");
  Shape shape = a.features().shape();
  shape[0] = a.size() + b.size();
  Tensor features(shape);
  std::memcpy(features.data(), a.features().data(),
              static_cast<std::size_t>(a.features().numel()) * sizeof(float));
  std::memcpy(features.data() + a.features().numel(), b.features().data(),
              static_cast<std::size_t>(b.features().numel()) * sizeof(float));
  std::vector<int> labels = a.labels();
  labels.insert(labels.end(), b.labels().begin(), b.labels().end());
  return Dataset(std::move(features), std::move(labels), a.num_classes());
}

BatchIterator::BatchIterator(const Dataset& dataset, std::int64_t batch_size, Rng& rng,
                             bool shuffle)
    : dataset_(dataset), batch_size_(batch_size) {
  DINAR_CHECK(batch_size > 0, "batch size must be positive");
  order_.resize(static_cast<std::size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle) rng.shuffle(order_);
}

bool BatchIterator::next(Batch& out) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t end = std::min(cursor_ + static_cast<std::size_t>(batch_size_),
                                   order_.size());
  std::span<const std::size_t> idx(order_.data() + cursor_, end - cursor_);
  out.features = dataset_.gather_features(idx);
  out.labels = dataset_.gather_labels(idx);
  cursor_ = end;
  return true;
}

std::int64_t BatchIterator::num_batches() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace dinar::data
