// Synthetic dataset generators standing in for the paper's six datasets
// (DESIGN.md §1 documents each substitution).
//
// Every generator follows the same recipe: a per-class latent prototype
// plus per-sample perturbation, plus a configurable label-noise rate.
// Label noise is the memorization driver — a model that fits noisy labels
// must memorize individual samples, which opens exactly the
// member/non-member generalization gap that membership-inference attacks
// (and hence the paper's entire evaluation) rely on.
#pragma once

#include <string>

#include "data/dataset.h"

namespace dinar::data {

struct TabularSpec {
  std::int64_t num_samples = 4000;
  std::int64_t num_features = 600;
  int num_classes = 100;
  double template_density = 0.2;  // P(template bit = 1)
  double flip_prob = 0.08;        // per-bit sample noise
  double label_noise = 0.2;       // P(label replaced by a uniform class)
};

// Sparse binary rows from per-class Bernoulli templates — the
// Purchase100 / Texas100 analogue.
Dataset make_tabular(const TabularSpec& spec, Rng& rng);

struct ImageSpec {
  std::int64_t num_samples = 3000;
  std::int64_t channels = 3;
  std::int64_t image_size = 12;
  int num_classes = 10;
  double sample_noise = 0.35;  // stddev of per-sample additive noise
  double label_noise = 0.2;
};

// Smooth per-class prototype images (low-frequency sinusoid mixtures)
// plus Gaussian pixel noise — the Cifar / GTSRB / CelebA analogue.
Dataset make_images(const ImageSpec& spec, Rng& rng);

struct AudioSpec {
  std::int64_t num_samples = 3000;
  std::int64_t length = 512;
  int num_classes = 36;
  int tones_per_class = 3;
  double sample_noise = 0.3;
  double label_noise = 0.2;
};

// Class-dependent multi-sine waveforms with random phase — the Speech
// Commands analogue (raw 1-D input for the conv1d path).
Dataset make_audio(const AudioSpec& spec, Rng& rng);

}  // namespace dinar::data
