// Client data partitioners.
//
// IID: a shuffled equal split. Non-IID: Dirichlet(alpha) label-skew
// partitioning (paper §5.8) — for each class, the class's samples are
// divided among clients with proportions drawn from Dirichlet(alpha);
// smaller alpha means more skew, alpha = infinity degenerates to IID.
#pragma once

#include <vector>

#include "data/dataset.h"

namespace dinar::data {

// Equal-size disjoint shards after a seeded shuffle.
std::vector<std::vector<std::size_t>> iid_partition(std::int64_t num_samples,
                                                    int num_clients, Rng& rng);

// Dirichlet label-skew shards. alpha <= 0 or +inf falls back to IID.
// Every client is guaranteed at least `min_per_client` samples (re-drawn
// otherwise, up to a bounded number of attempts).
std::vector<std::vector<std::size_t>> dirichlet_partition(
    const std::vector<int>& labels, int num_classes, int num_clients, double alpha,
    Rng& rng, std::int64_t min_per_client = 16);

// Applies an index partition to a dataset.
std::vector<Dataset> apply_partition(const Dataset& dataset,
                                     const std::vector<std::vector<std::size_t>>& parts);

}  // namespace dinar::data
