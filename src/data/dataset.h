// In-memory labelled dataset.
//
// Features are one contiguous tensor [N, sample_shape...]; labels are
// class indices. Subsetting and batching gather rows by index, which is
// how the FL splitter (per-client shards), the batcher (shuffled
// minibatches) and the attack (member/non-member pools) all slice data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dinar::data {

class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor features, std::vector<int> labels, int num_classes);

  std::int64_t size() const { return static_cast<std::int64_t>(labels_.size()); }
  bool empty() const { return labels_.empty(); }
  int num_classes() const { return num_classes_; }
  // Per-sample shape (no batch dimension).
  const Shape& sample_shape() const { return sample_shape_; }
  std::int64_t sample_numel() const { return sample_numel_; }

  const Tensor& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }

  // Gathers rows into a batch tensor [|indices|, sample_shape...].
  Tensor gather_features(std::span<const std::size_t> indices) const;
  std::vector<int> gather_labels(std::span<const std::size_t> indices) const;

  Dataset subset(std::span<const std::size_t> indices) const;
  // First n / remaining size-n split helpers.
  Dataset take(std::int64_t n) const;
  Dataset drop(std::int64_t n) const;

  // Concatenates two datasets with identical sample shape and class count.
  static Dataset concat(const Dataset& a, const Dataset& b);

 private:
  Tensor features_;
  std::vector<int> labels_;
  int num_classes_ = 0;
  Shape sample_shape_;
  std::int64_t sample_numel_ = 0;
};

// Minibatch view: indices are shuffled with `rng` at construction; call
// next() until it returns false.
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, std::int64_t batch_size, Rng& rng,
                bool shuffle = true);

  struct Batch {
    Tensor features;
    std::vector<int> labels;
  };

  // Fills `out` with the next minibatch; false when the epoch is done.
  bool next(Batch& out);
  std::int64_t num_batches() const;

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace dinar::data
