// The paper's experimental data layout (§5.1, §5.3):
//   - half of the dataset is the attacker's prior knowledge (shadow pool);
//   - the other half splits 80% train / 20% test;
//   - training data is divided into disjoint per-client shards
//     (IID or Dirichlet non-IID).
// Members (attack positives) are client training samples; non-members
// (attack negatives) come from the test split.
#pragma once

#include <limits>
#include <vector>

#include "data/dataset.h"
#include "data/partition.h"

namespace dinar::data {

struct FlSplitConfig {
  int num_clients = 5;
  double attacker_fraction = 0.5;
  double train_fraction = 0.8;  // of the non-attacker half
  // Dirichlet alpha for client shards; +inf (default) = IID.
  double dirichlet_alpha = std::numeric_limits<double>::infinity();
};

struct FlSplit {
  Dataset attacker_prior;            // shadow-model pool
  std::vector<Dataset> client_train; // per-client member data
  Dataset test;                      // non-member pool / utility metric
};

FlSplit make_fl_split(const Dataset& full, const FlSplitConfig& config, Rng& rng);

}  // namespace dinar::data
