#include "data/synthetic.h"

#include <cmath>

#include "util/error.h"

namespace dinar::data {
namespace {

int noisy_label(int true_label, int num_classes, double label_noise, Rng& rng) {
  if (label_noise > 0.0 && rng.bernoulli(label_noise))
    return static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_classes)));
  return true_label;
}

}  // namespace

Dataset make_tabular(const TabularSpec& spec, Rng& rng) {
  DINAR_CHECK(spec.num_samples > 0 && spec.num_features > 0 && spec.num_classes > 0,
              "invalid tabular spec");
  // Per-class Bernoulli bit templates.
  std::vector<std::vector<float>> templates(static_cast<std::size_t>(spec.num_classes));
  for (auto& t : templates) {
    t.resize(static_cast<std::size_t>(spec.num_features));
    for (float& bit : t) bit = rng.bernoulli(spec.template_density) ? 1.0f : 0.0f;
  }

  Tensor features({spec.num_samples, spec.num_features});
  std::vector<int> labels(static_cast<std::size_t>(spec.num_samples));
  float* p = features.data();
  for (std::int64_t i = 0; i < spec.num_samples; ++i) {
    const int cls =
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
    const std::vector<float>& t = templates[static_cast<std::size_t>(cls)];
    float* row = p + i * spec.num_features;
    for (std::int64_t j = 0; j < spec.num_features; ++j) {
      const bool flip = rng.bernoulli(spec.flip_prob);
      row[j] = flip ? 1.0f - t[static_cast<std::size_t>(j)]
                    : t[static_cast<std::size_t>(j)];
    }
    labels[static_cast<std::size_t>(i)] =
        noisy_label(cls, spec.num_classes, spec.label_noise, rng);
  }
  return Dataset(std::move(features), std::move(labels), spec.num_classes);
}

Dataset make_images(const ImageSpec& spec, Rng& rng) {
  DINAR_CHECK(spec.num_samples > 0 && spec.channels > 0 && spec.image_size > 0 &&
                  spec.num_classes > 0,
              "invalid image spec");
  const std::int64_t c = spec.channels, s = spec.image_size;
  const std::int64_t pix = c * s * s;

  // Per-class smooth prototypes: each channel is a mixture of 4 random
  // low-frequency plane waves, giving visually distinct but learnable
  // class structure.
  std::vector<std::vector<float>> protos(static_cast<std::size_t>(spec.num_classes));
  for (auto& proto : protos) {
    proto.assign(static_cast<std::size_t>(pix), 0.0f);
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (int k = 0; k < 4; ++k) {
        const double fx = rng.uniform(0.5, 2.5);
        const double fy = rng.uniform(0.5, 2.5);
        const double phase = rng.uniform(0.0, 2.0 * M_PI);
        const double amp = rng.uniform(0.3, 0.8);
        for (std::int64_t y = 0; y < s; ++y)
          for (std::int64_t x = 0; x < s; ++x)
            proto[static_cast<std::size_t>((ch * s + y) * s + x)] +=
                static_cast<float>(amp *
                                   std::sin(2.0 * M_PI *
                                                (fx * static_cast<double>(x) +
                                                 fy * static_cast<double>(y)) /
                                                static_cast<double>(s) +
                                            phase));
      }
    }
  }

  Shape shape{spec.num_samples, c, s, s};
  Tensor features(shape);
  std::vector<int> labels(static_cast<std::size_t>(spec.num_samples));
  float* p = features.data();
  for (std::int64_t i = 0; i < spec.num_samples; ++i) {
    const int cls =
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
    const std::vector<float>& proto = protos[static_cast<std::size_t>(cls)];
    float* img = p + i * pix;
    for (std::int64_t j = 0; j < pix; ++j)
      img[j] = proto[static_cast<std::size_t>(j)] +
               static_cast<float>(rng.gaussian(0.0, spec.sample_noise));
    labels[static_cast<std::size_t>(i)] =
        noisy_label(cls, spec.num_classes, spec.label_noise, rng);
  }
  return Dataset(std::move(features), std::move(labels), spec.num_classes);
}

Dataset make_audio(const AudioSpec& spec, Rng& rng) {
  DINAR_CHECK(spec.num_samples > 0 && spec.length > 0 && spec.num_classes > 0 &&
                  spec.tones_per_class > 0,
              "invalid audio spec");
  struct Tone {
    double freq, amp;
  };
  std::vector<std::vector<Tone>> class_tones(static_cast<std::size_t>(spec.num_classes));
  for (auto& tones : class_tones) {
    tones.resize(static_cast<std::size_t>(spec.tones_per_class));
    for (Tone& t : tones) {
      t.freq = rng.uniform(2.0, 40.0);
      t.amp = rng.uniform(0.3, 1.0);
    }
  }

  Tensor features({spec.num_samples, 1, spec.length});
  std::vector<int> labels(static_cast<std::size_t>(spec.num_samples));
  float* p = features.data();
  for (std::int64_t i = 0; i < spec.num_samples; ++i) {
    const int cls =
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
    float* wave = p + i * spec.length;
    // Random phase per sample: class identity lives in the spectrum, not
    // the raw alignment, like spoken-word utterances.
    for (std::int64_t t = 0; t < spec.length; ++t) wave[t] = 0.0f;
    for (const Tone& tone : class_tones[static_cast<std::size_t>(cls)]) {
      const double phase = rng.uniform(0.0, 2.0 * M_PI);
      for (std::int64_t t = 0; t < spec.length; ++t)
        wave[t] += static_cast<float>(
            tone.amp * std::sin(2.0 * M_PI * tone.freq * static_cast<double>(t) /
                                    static_cast<double>(spec.length) +
                                phase));
    }
    for (std::int64_t t = 0; t < spec.length; ++t)
      wave[t] += static_cast<float>(rng.gaussian(0.0, spec.sample_noise));
    labels[static_cast<std::size_t>(i)] =
        noisy_label(cls, spec.num_classes, spec.label_noise, rng);
  }
  return Dataset(std::move(features), std::move(labels), spec.num_classes);
}

}  // namespace dinar::data
