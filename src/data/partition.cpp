#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace dinar::data {

std::vector<std::vector<std::size_t>> iid_partition(std::int64_t num_samples,
                                                    int num_clients, Rng& rng) {
  DINAR_CHECK(num_clients > 0, "need at least one client");
  DINAR_CHECK(num_samples >= num_clients, "fewer samples than clients");
  std::vector<std::size_t> order = rng.permutation(static_cast<std::size_t>(num_samples));
  std::vector<std::vector<std::size_t>> parts(static_cast<std::size_t>(num_clients));
  for (std::size_t i = 0; i < order.size(); ++i)
    parts[i % static_cast<std::size_t>(num_clients)].push_back(order[i]);
  return parts;
}

std::vector<std::vector<std::size_t>> dirichlet_partition(
    const std::vector<int>& labels, int num_classes, int num_clients, double alpha,
    Rng& rng, std::int64_t min_per_client) {
  DINAR_CHECK(num_clients > 0, "need at least one client");
  if (!(alpha > 0.0) || std::isinf(alpha))
    return iid_partition(static_cast<std::int64_t>(labels.size()), num_clients, rng);

  // Group sample indices by class.
  std::vector<std::vector<std::size_t>> by_class(static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    DINAR_CHECK(labels[i] >= 0 && labels[i] < num_classes, "label out of range");
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }

  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<std::vector<std::size_t>> parts(static_cast<std::size_t>(num_clients));
    for (auto& cls : by_class) {
      if (cls.empty()) continue;
      rng.shuffle(cls);
      const std::vector<double> props = rng.dirichlet(alpha, num_clients);
      // Convert proportions to cumulative cut points over this class.
      std::size_t start = 0;
      double cum = 0.0;
      for (int c = 0; c < num_clients; ++c) {
        cum += props[static_cast<std::size_t>(c)];
        const std::size_t end =
            (c == num_clients - 1)
                ? cls.size()
                : std::min(cls.size(),
                           static_cast<std::size_t>(std::llround(
                               cum * static_cast<double>(cls.size()))));
        for (std::size_t i = start; i < end; ++i)
          parts[static_cast<std::size_t>(c)].push_back(cls[i]);
        start = end;
      }
    }
    const bool ok = std::all_of(parts.begin(), parts.end(), [&](const auto& p) {
      return static_cast<std::int64_t>(p.size()) >= min_per_client;
    });
    if (ok) return parts;
  }
  // Heavily skewed draws kept starving a client; degrade to IID rather
  // than return an unusable split.
  return iid_partition(static_cast<std::int64_t>(labels.size()), num_clients, rng);
}

std::vector<Dataset> apply_partition(const Dataset& dataset,
                                     const std::vector<std::vector<std::size_t>>& parts) {
  std::vector<Dataset> out;
  out.reserve(parts.size());
  for (const auto& indices : parts) out.push_back(dataset.subset(indices));
  return out;
}

}  // namespace dinar::data
