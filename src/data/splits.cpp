#include "data/splits.h"

#include "util/error.h"

namespace dinar::data {

FlSplit make_fl_split(const Dataset& full, const FlSplitConfig& config, Rng& rng) {
  DINAR_CHECK(config.num_clients > 0, "need at least one client");
  DINAR_CHECK(config.attacker_fraction > 0.0 && config.attacker_fraction < 1.0,
              "attacker fraction must be in (0,1)");
  DINAR_CHECK(config.train_fraction > 0.0 && config.train_fraction < 1.0,
              "train fraction must be in (0,1)");

  // Shuffle once so all three pools are exchangeable draws.
  Dataset shuffled = full.subset(rng.permutation(static_cast<std::size_t>(full.size())));

  const std::int64_t n_attacker =
      static_cast<std::int64_t>(config.attacker_fraction * static_cast<double>(full.size()));
  Dataset attacker = shuffled.take(n_attacker);
  Dataset rest = shuffled.drop(n_attacker);

  const std::int64_t n_train =
      static_cast<std::int64_t>(config.train_fraction * static_cast<double>(rest.size()));
  Dataset train = rest.take(n_train);
  Dataset test = rest.drop(n_train);

  std::vector<std::vector<std::size_t>> parts = dirichlet_partition(
      train.labels(), train.num_classes(), config.num_clients, config.dirichlet_alpha,
      rng);

  FlSplit split;
  split.attacker_prior = std::move(attacker);
  split.client_train = apply_partition(train, parts);
  split.test = std::move(test);
  return split;
}

}  // namespace dinar::data
