// FL wire messages.
//
// Two message kinds cross the transport each round: the server's global
// model broadcast and each client's model update. Updates carry the
// client's sample count (FedAvg weight) and a `pre_weighted` flag used by
// secure aggregation, whose pairwise masks only cancel under an unweighted
// sum — SA clients pre-multiply their parameters by their own weight so
// the server can sum blindly and divide by the total weight.
//
// Wire format DFRM v2: shared magic + kind + version header, then the
// message fields, then the parameters as a FlatParams index header plus
// one contiguous f32 payload — serialization is a single bulk write of the
// arena.
//
// Wire format DFRM v3 (compressed, fl/wire_codec.h): the same magic and
// kind, version 3, then a u64 DECODED payload size (the arena bytes
// decoding will allocate — at a fixed offset so the net frame layer can
// bound it without parsing the message), the message fields, and the
// params as an index header plus per-entry coded runs. A KindCodec decides
// per message kind whether v3 is emitted at all; readers accept both
// versions, so v2 peers keep interoperating during a rollout. Sparse v3
// update runs code deltas against the round's broadcast, which the caller
// supplies as `reference` on both sides.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/wire_codec.h"
#include "nn/model.h"

namespace dinar::fl {

struct GlobalModelMsg {
  std::int64_t round = 0;
  nn::FlatParams params;

  std::vector<std::uint8_t> serialize() const;  // v2, byte-stable
  // v3 when `codec.v3()`, else identical to serialize(). Broadcasts are
  // always dense (validate_codec_config), so no reference is involved.
  std::vector<std::uint8_t> serialize(const KindCodec& codec) const;
  static GlobalModelMsg deserialize(const std::vector<std::uint8_t>& bytes);
};

struct ModelUpdateMsg {
  std::int32_t client_id = 0;
  std::int64_t round = 0;
  std::int64_t num_samples = 0;
  bool pre_weighted = false;
  nn::FlatParams params;

  std::vector<std::uint8_t> serialize() const;  // v2, byte-stable
  // v3 when `codec.v3()`. `reference` (the round's decoded broadcast) is
  // required when the codec is sparse; may be null otherwise.
  std::vector<std::uint8_t> serialize(const KindCodec& codec,
                                      const nn::FlatParams* reference) const;
  // `reference` is needed only to decode sparse v3 runs; passing null for
  // such a payload throws a named dinar::Error (quarantined as corrupt).
  static ModelUpdateMsg deserialize(const std::vector<std::uint8_t>& bytes,
                                    const nn::FlatParams* reference = nullptr);
};

// Exact size of the message's v2 serialization, computed without
// serializing — the uncoded side of TransportStats' bytes-saved ratio when
// a compressed codec is active.
std::uint64_t v2_wire_bytes(const GlobalModelMsg& msg);
std::uint64_t v2_wire_bytes(const ModelUpdateMsg& msg);

}  // namespace dinar::fl
