// FL wire messages.
//
// Two message kinds cross the transport each round: the server's global
// model broadcast and each client's model update. Updates carry the
// client's sample count (FedAvg weight) and a `pre_weighted` flag used by
// secure aggregation, whose pairwise masks only cancel under an unweighted
// sum — SA clients pre-multiply their parameters by their own weight so
// the server can sum blindly and divide by the total weight.
//
// Wire format DFRM v2: shared magic + kind + version header, then the
// message fields, then the parameters as a FlatParams index header plus
// one contiguous f32 payload — serialization is a single bulk write of the
// arena. deserialize() also accepts the pre-FlatParams v1 frames (per-kind
// magic + tensor list); those decode into a snapshot with a synthesized
// one-entry-per-layer index.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"

namespace dinar::fl {

struct GlobalModelMsg {
  std::int64_t round = 0;
  nn::FlatParams params;

  std::vector<std::uint8_t> serialize() const;
  static GlobalModelMsg deserialize(const std::vector<std::uint8_t>& bytes);
};

struct ModelUpdateMsg {
  std::int32_t client_id = 0;
  std::int64_t round = 0;
  std::int64_t num_samples = 0;
  bool pre_weighted = false;
  nn::FlatParams params;

  std::vector<std::uint8_t> serialize() const;
  static ModelUpdateMsg deserialize(const std::vector<std::uint8_t>& bytes);
};

}  // namespace dinar::fl
