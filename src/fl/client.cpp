#include "fl/client.h"

#include "util/error.h"

namespace dinar::fl {

FlClient::FlClient(int id, data::Dataset train_data, nn::Model model,
                   std::unique_ptr<opt::Optimizer> optimizer,
                   std::unique_ptr<ClientDefense> defense, TrainConfig train_config,
                   Rng rng)
    : id_(id), train_data_(std::move(train_data)), model_(std::move(model)),
      optimizer_(std::move(optimizer)), defense_(std::move(defense)),
      train_config_(train_config), rng_(rng) {
  DINAR_CHECK(!train_data_.empty(), "client " << id << " has no training data");
  DINAR_CHECK(optimizer_ != nullptr && defense_ != nullptr,
              "client needs an optimizer and a defense");
  defense_->initialize(model_, id_);
}

void FlClient::receive_global(const GlobalModelMsg& msg) {
  // A delayed or replayed broadcast from an earlier round must not roll the
  // client back; re-delivery of the current round (protocol retries) is fine.
  DINAR_CHECK(msg.round >= round_, "client " << id_ << ": stale global model for round "
                                             << msg.round << ", already at round "
                                             << round_);
  round_ = msg.round;
  // Sparse uploads code deltas against the broadcast AS DECODED — under a
  // lossy broadcast codec that differs from the server's raw model, but it
  // is bit-identical to the server's own decode of the same bytes, which
  // is what keeps both ends of a sparse run in agreement.
  if (update_codec_.topk_fraction < 1.0) {
    upload_reference_ = msg.params;
    has_upload_reference_ = true;
  }
  ScopedTimer timing(defense_timer_);
  defense_->on_download(model_, msg.params);
}

std::vector<std::uint8_t> FlClient::serialize_update(
    const ModelUpdateMsg& update) const {
  return update.serialize(update_codec_,
                          has_upload_reference_ ? &upload_reference_ : nullptr);
}

ModelUpdateMsg FlClient::train_round() {
  {
    ScopedTimer timing(train_timer_);
    last_stats_ = train_local(model_, train_data_, *optimizer_, train_config_, rng_);
  }

  ModelUpdateMsg msg;
  msg.client_id = id_;
  msg.round = round_;
  msg.num_samples = num_samples();
  {
    ScopedTimer timing(defense_timer_);
    msg.params = defense_->before_upload(model_, model_.parameters(), num_samples(),
                                         msg.pre_weighted);
  }
  return msg;
}

void FlClient::save_state(BinaryWriter& w) const {
  w.write_i64(round_);
  w.write_f64(last_stats_.mean_loss);
  w.write_f64(last_stats_.accuracy);
  w.write_i64(last_stats_.steps);
  rng_.save_state(w);
  nn::write_flat_params(w, const_cast<nn::Model&>(model_).parameters());
  w.write_string(defense_->name());
  defense_->save_state(w);
}

void FlClient::restore_state(BinaryReader& r) {
  round_ = r.read_i64();
  last_stats_.mean_loss = r.read_f64();
  last_stats_.accuracy = r.read_f64();
  last_stats_.steps = r.read_i64();
  rng_.restore_state(r);
  model_.set_parameters(nn::read_flat_params(r));
  const std::string defense_name = r.read_string();
  DINAR_CHECK(defense_name == defense_->name(),
              "client " << id_ << " state was saved with defense '" << defense_name
                        << "' but is restoring into '" << defense_->name()
                        << "' — reconstruct the simulation with the original "
                        << "defense bundle");
  defense_->restore_state(r);
}

}  // namespace dinar::fl
