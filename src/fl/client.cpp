#include "fl/client.h"

#include "util/error.h"

namespace dinar::fl {

FlClient::FlClient(int id, data::Dataset train_data, nn::Model model,
                   std::unique_ptr<opt::Optimizer> optimizer,
                   std::unique_ptr<ClientDefense> defense, TrainConfig train_config,
                   Rng rng)
    : id_(id), train_data_(std::move(train_data)), model_(std::move(model)),
      optimizer_(std::move(optimizer)), defense_(std::move(defense)),
      train_config_(train_config), rng_(rng) {
  DINAR_CHECK(!train_data_.empty(), "client " << id << " has no training data");
  DINAR_CHECK(optimizer_ != nullptr && defense_ != nullptr,
              "client needs an optimizer and a defense");
  defense_->initialize(model_, id_);
}

void FlClient::receive_global(const GlobalModelMsg& msg) {
  // A delayed or replayed broadcast from an earlier round must not roll the
  // client back; re-delivery of the current round (protocol retries) is fine.
  DINAR_CHECK(msg.round >= round_, "client " << id_ << ": stale global model for round "
                                             << msg.round << ", already at round "
                                             << round_);
  round_ = msg.round;
  ScopedTimer timing(defense_timer_);
  defense_->on_download(model_, msg.params);
}

ModelUpdateMsg FlClient::train_round() {
  {
    ScopedTimer timing(train_timer_);
    last_stats_ = train_local(model_, train_data_, *optimizer_, train_config_, rng_);
  }

  ModelUpdateMsg msg;
  msg.client_id = id_;
  msg.round = round_;
  msg.num_samples = num_samples();
  {
    ScopedTimer timing(defense_timer_);
    msg.params = defense_->before_upload(model_, model_.parameters(), num_samples(),
                                         msg.pre_weighted);
  }
  return msg;
}

}  // namespace dinar::fl
