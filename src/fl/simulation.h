// Federated-learning round orchestrator.
//
// Wires server, clients, transport and defenses into the classical FedAvg
// loop (paper §2.1): broadcast -> local training -> upload -> aggregate.
// Every payload crosses the byte transport, so the simulation measures the
// same client-side / server-side costs a deployment would (Table 3), and
// the stored per-client uploads are exactly the attacker's server-side
// view (used by the local-model MIA of Figure 6).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/splits.h"
#include "fl/client.h"
#include "fl/server.h"
#include "fl/transport.h"
#include "nn/model_zoo.h"
#include "opt/optimizers.h"

namespace dinar::fl {

// Factories that equip each participant with its defense; the default
// bundle is the paper's "no defense" baseline.
struct DefenseBundle {
  std::string name = "none";
  std::function<std::unique_ptr<ClientDefense>(int client_id)> make_client =
      [](int) { return std::make_unique<NoClientDefense>(); };
  std::function<std::unique_ptr<ServerDefense>()> make_server =
      [] { return std::make_unique<NoServerDefense>(); };
};

struct SimulationConfig {
  int rounds = 20;
  TrainConfig train{/*epochs=*/2, /*batch_size=*/64};
  double learning_rate = 1e-3;  // paper §5.3
  std::string optimizer = "adagrad";
  std::uint64_t seed = 42;
  // Fraction of clients the server selects each round (paper §2.1: "the FL
  // server selects N participating clients"); 1.0 = all clients.
  double client_fraction = 1.0;
  // Evaluate global/personalized accuracy every k rounds (0 = only at the
  // end); evaluation is pure measurement and never feeds back into training.
  int eval_every = 0;
};

struct RoundRecord {
  std::int64_t round = 0;
  double global_test_accuracy = 0.0;
  double global_test_loss = 0.0;
  double personalized_test_accuracy = 0.0;
  double mean_client_train_accuracy = 0.0;
};

class FederatedSimulation {
 public:
  FederatedSimulation(nn::ModelFactory model_factory, data::FlSplit split,
                      SimulationConfig config, DefenseBundle defenses);

  // Runs all configured rounds.
  void run();
  // Runs a single round (exposed for tests and incremental experiments).
  void run_round();

  // -- results & attacker views ------------------------------------------
  FlServer& server() { return *server_; }
  std::vector<FlClient>& clients() { return clients_; }
  Transport& transport() { return transport_; }
  const std::vector<RoundRecord>& history() const { return history_; }
  const data::Dataset& test_data() const { return split_.test; }
  const data::FlSplit& split() const { return split_; }
  const SimulationConfig& config() const { return config_; }

  // A model carrying the current global parameters (the client-side
  // attacker's view).
  nn::Model global_model();
  // The server-side attacker's view of client i's latest upload: its
  // parameters as they crossed the wire (un-pre-weighted if needed).
  // Requires client i to have participated in the last round.
  nn::Model server_view_of_client(std::size_t i);
  // Clients that uploaded in the most recent round, by index.
  std::vector<std::size_t> last_participants() const;
  // Fresh model of the simulation's architecture (for shadow training).
  nn::Model fresh_model(Rng& rng) { return model_factory_(rng); }
  const nn::ModelFactory& model_factory() const { return model_factory_; }

  // Metrics (computed on demand).
  RoundRecord evaluate_now();
  double mean_client_train_seconds() const;
  double mean_client_defense_seconds() const;
  double server_aggregation_seconds() const;

 private:
  nn::ModelFactory model_factory_;
  data::FlSplit split_;
  SimulationConfig config_;
  Transport transport_;
  std::unique_ptr<FlServer> server_;
  std::vector<FlClient> clients_;
  std::vector<ModelUpdateMsg> last_updates_;
  std::vector<RoundRecord> history_;
  Rng rng_;
};

}  // namespace dinar::fl
