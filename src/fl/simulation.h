// Federated-learning round orchestrator.
//
// Wires server, clients, transport and defenses into the classical FedAvg
// loop (paper §2.1): broadcast -> local training -> upload -> aggregate.
// Every payload crosses the byte transport, so the simulation measures the
// same client-side / server-side costs a deployment would (Table 3), and
// the stored per-client uploads are exactly the attacker's server-side
// view (used by the local-model MIA of Figure 6).
//
// Fault-tolerant round protocol: when SimulationConfig::faults injects
// crashes / drops / corruption, each round retries the broadcast+upload
// exchange (bounded by max_retries, with simulated backoff) for clients
// whose update has not arrived, quarantines invalid or corrupted updates
// instead of aborting, aggregates once `min_clients` valid updates are in,
// and — if quorum never materializes — carries the previous global model
// forward as a degraded-but-live round. Every round appends a RoundOutcome
// describing who crashed, who dropped, who was quarantined and why, and
// how many retries were spent. Checkpoint/resume persists the global model
// and round counter; all per-round randomness (selection, faults, attacks)
// is forked from (seed, round), so a resumed run replays the remaining
// rounds deterministically.
//
// Byzantine robustness: SimulationConfig::adversaries schedules clients
// that upload well-formed but adversarial updates (sign-flip, model
// replacement, noise, collusion), and SimulationConfig::robust selects the
// server's aggregation strategy (median / trimmed mean / norm-clip /
// Krum). Aggregation is layer-aware: the defense bundle's obfuscated
// layers are excluded from outlier scoring so DINAR's legitimate
// randomization is never mistaken for an attack.
//
// Parallel execution: SimulationConfig::exec sizes a shared
// ExecutionContext that the simulation threads through every compute
// consumer — the selected clients' local training runs concurrently (one
// task per client), the tensor kernels tile across the same pool, and the
// robust aggregators parallelize their coordinate loops. Each client's
// exchange (broadcast receipt, training, attack, upload) is an isolated
// task with all randomness keyed by (seed, round, client) and all stats
// deferred into per-client receipts; every order-sensitive step (stats
// sums, validation, acceptance, aggregation) runs strictly in ascending
// client-id order on the coordinator, which pins down every
// order-dependent floating-point sum for any thread count.
//
// Round pipelining (DESIGN.md §13): the streaming round engine
// (PipelineMode::kStream, the only schedule since the legacy kBarrier
// mode's one-release bisection window elapsed) commits each exchange the
// moment it completes — validating the update and folding it into its
// shard's in-progress accumulator while slower clients are still running —
// and overlaps the next round's broadcast serialization with the WAL
// commit. Commit order, not compute order, fixes every result, so runs are
// bit-identical for any thread count; the determinism gauntlet enforces it.
//
// Membership churn: SimulationConfig::churn lets clients join mid-run
// (initialized from the current global model via their first broadcast),
// leave, and rejoin with their personalized state carried across the
// absence. Presence is a pure function of (config, round), keeping
// selection deterministic and checkpoint-resume exact under churn.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/splits.h"
#include "fl/client.h"
#include "fl/pipeline.h"
#include "fl/server.h"
#include "fl/transport.h"
#include "nn/model_zoo.h"
#include "opt/optimizers.h"
#include "util/execution_context.h"

namespace dinar::store {
class RoundStore;
}

namespace dinar::fl {

// Factories that equip each participant with its defense; the default
// bundle is the paper's "no defense" baseline.
struct DefenseBundle {
  std::string name = "none";
  std::function<std::unique_ptr<ClientDefense>(int client_id)> make_client =
      [](int) { return std::make_unique<NoClientDefense>(); };
  std::function<std::unique_ptr<ServerDefense>()> make_server =
      [] { return std::make_unique<NoServerDefense>(); };
  // Param-layer indices the client defense legitimately randomizes
  // (DINAR's obfuscated sensitive layer). Layer-aware robust aggregation
  // excludes these layers' tensors from outlier scoring so honest
  // obfuscated updates are never quarantined.
  std::vector<std::size_t> obfuscated_layers;
};

// Dynamic membership: clients may join mid-run, leave, and rejoin. A
// client's FlClient state (personalized model, DINAR private layer, the
// optimizer) is carried across absences, so a rejoining client resumes
// with its own personalized layer while picking up the current global
// model from the next broadcast. Presence is a pure function of
// (config, round), so selection stays deterministic under churn and a
// checkpoint-resumed run recomputes the identical roster per round.
struct ChurnConfig {
  // client id -> first round the client is part of the federation
  // (absent entry = founding member, present from round 0). A joining
  // client is initialized from the current global model via its first
  // broadcast.
  std::map<int, std::int64_t> join_at_round;
  // client id -> absence intervals [leave, rejoin); rejoin == -1 means the
  // client never returns. Intervals must be sorted and non-overlapping.
  std::map<int, std::vector<std::pair<std::int64_t, std::int64_t>>> away;

  bool any() const { return !join_at_round.empty() || !away.empty(); }
  // True if the client is part of the roster in `round`.
  bool present(int client_id, std::int64_t round) const;
};

struct SimulationConfig {
  int rounds = 20;
  TrainConfig train{/*epochs=*/2, /*batch_size=*/64};
  double learning_rate = 1e-3;  // paper §5.3
  std::string optimizer = "adagrad";
  std::uint64_t seed = 42;
  // Fraction of clients the server selects each round (paper §2.1: "the FL
  // server selects N participating clients"); 1.0 = all clients.
  double client_fraction = 1.0;
  // Evaluate global/personalized accuracy every k rounds (0 = only at the
  // end); evaluation is pure measurement and never feeds back into training.
  int eval_every = 0;

  // -- fault-tolerant round protocol --------------------------------------
  // Injected transport/client faults; the all-zero default is fault-free.
  FaultConfig faults;
  // Quorum: aggregate once this many valid updates arrived (0 = every
  // selected client must answer, the strict seed behavior).
  std::size_t min_clients = 0;
  // Re-broadcast attempts (beyond the first) for clients whose update has
  // not been accepted; each retry adds `retry_backoff_seconds * attempt`
  // of simulated time.
  int max_retries = 2;
  double retry_backoff_seconds = 0.0;
  // Simulated per-round time budget; once the transport clock has advanced
  // this far past the round start, no more retries are attempted (0 = no
  // deadline).
  double round_deadline_seconds = 0.0;

  // -- Byzantine robustness ------------------------------------------------
  // Server-side aggregation strategy (robust.method) and its parameters;
  // the default is plain FedAvg. When robust.layer_aware is true the
  // defense bundle's obfuscated layers are excluded from outlier scoring.
  RobustConfig robust;
  // Adversarial clients; the empty default is all-honest.
  AdversaryConfig adversaries;

  // -- hierarchical aggregation --------------------------------------------
  // Shapes the server's aggregation tree (DESIGN.md §12). num_shards must
  // be >= 1 and <= the founding roster size; under churn a shard may go
  // empty mid-run (all its clients away or quarantined), which the root
  // combiner tolerates by skipping the empty summaries. The default single
  // shard is bit-identical to flat aggregation.
  ShardConfig shard;

  // -- membership churn ----------------------------------------------------
  ChurnConfig churn;

  // -- parallel execution ---------------------------------------------------
  // Sizes the simulation's ExecutionContext (thread count, chunk grain).
  // The default single thread reproduces the sequential path exactly; any
  // other thread count produces bit-identical results (see header
  // comment). There is no global pool — each simulation owns its context
  // and passes it explicitly to clients, kernels and aggregators.
  ExecConfig exec;

  // -- transport ------------------------------------------------------------
  // When true, every ship() crosses a real loopback TCP socket through
  // fl::SocketTransport (server + one connection per client, all inside
  // this process). Results are bit-identical to the default in-process
  // transport — only the socket_* counters differ from zero.
  bool socket_transport = false;

  // -- round pipelining ------------------------------------------------------
  // The round engine schedule (see header comment). kStream is the only
  // mode; the field and the DINAR_PIPELINE environment pin (read at
  // simulation construction, overriding this field) survive as the seam a
  // future schedule would slot into.
  PipelineMode pipeline = PipelineMode::kStream;

  // -- wire codec (DESIGN.md §14) -------------------------------------------
  // DFRM v3 compressed payload codec for both message kinds. The default
  // (lossless f32, dense) keeps every wire byte identical to v2; any lossy
  // setting also turns on the bytes_*_uncoded counters in TransportStats so
  // runs report their wire savings.
  UpdateCodecConfig codec;
};

struct RoundRecord {
  std::int64_t round = 0;
  double global_test_accuracy = 0.0;
  double global_test_loss = 0.0;
  double personalized_test_accuracy = 0.0;
  double mean_client_train_accuracy = 0.0;
};

// Wall-clock breakdown of one round, by phase. Measurement ONLY: never
// serialized into WAL records or snapshots, never dumped or compared by
// the determinism gauntlet — wall-clock differs run to run by design.
// Task-side phases (downlink, train, uplink) are summed across the
// per-client exchange tasks, so under threads they can exceed the round's
// wall-clock; commit/shard/combine run on the coordinator.
struct RoundPhaseTimings {
  double downlink_seconds = 0.0;  // broadcast serialize + ship/deserialize/receive
  double train_seconds = 0.0;     // local training + attack payload crafting
  double uplink_seconds = 0.0;    // update serialize + ship + parse (task side)
  double validate_seconds = 0.0;  // server-side validation of arrivals
  double shard_seconds = 0.0;     // edge aggregation (absorb + finalize)
  double combine_seconds = 0.0;   // root merge of the shard summaries
  double commit_seconds = 0.0;    // transport commit + accounting + WAL + snapshot
  double round_seconds = 0.0;     // whole-round wall-clock
};

// Per-round event log of the fault-tolerant protocol: who was selected,
// who never answered and why, what was quarantined, and whether the round
// aggregated a quorum or carried the previous model forward.
struct RoundOutcome {
  std::int64_t round = 0;
  std::vector<int> selected;
  std::vector<int> crashed;           // selected but down all round
  std::vector<int> missed_broadcast;  // no intact global model ever arrived
  std::vector<int> lost_update;       // trained, but no upload copy arrived
  struct Rejection {
    int client_id = 0;
    std::string reason;  // "corrupt: ..." or a server RejectReason detail
  };
  std::vector<Rejection> quarantined;
  std::vector<int> accepted;  // clients whose update passed validation
  int retries_used = 0;
  bool quorum_met = false;
  bool carried_forward = false;  // degraded round: previous global kept

  // -- Byzantine robustness ------------------------------------------------
  std::vector<int> attackers;  // selected clients that attacked this round
  std::string aggregator;      // strategy that produced the aggregate
  // Aggregator treatment of validated updates: Krum exclusions, outlier
  // quarantines, norm clips — each with a per-client reason.
  std::vector<AggregatorFlag> aggregator_flags;
  // Per-shard statistics of the aggregation tree, in shard-id order with
  // empty shards included (empty vector when the round carried forward).
  // Deterministic — part of the durable round record.
  std::vector<ShardStats> shards;

  // -- membership churn ----------------------------------------------------
  std::size_t roster_size = 0;  // clients in the federation this round
  std::vector<int> joined;      // entered the roster at this round
  std::vector<int> departed;    // left the roster at this round

  // -- per-round fault-injection deltas ------------------------------------
  // What the FaultInjector did *this round* (run-level totals stay
  // available via Transport::faults()->stats()).
  FaultStats fault_delta;

  // -- wall-clock phase breakdown ------------------------------------------
  // Timing only (see RoundPhaseTimings): excluded from WAL serde, from
  // save_full_state, and from every determinism comparison.
  RoundPhaseTimings timings;
};

class FederatedSimulation {
 public:
  FederatedSimulation(nn::ModelFactory model_factory, data::FlSplit split,
                      SimulationConfig config, DefenseBundle defenses);

  // The round schedule actually in effect (config.pipeline unless
  // DINAR_PIPELINE overrode it at construction).
  PipelineMode pipeline_mode() const { return pipeline_mode_; }

  // Runs every remaining round (config.rounds minus any already completed,
  // e.g. after restore_checkpoint()).
  void run();
  // Runs a single round (exposed for tests and incremental experiments);
  // returns its event log entry.
  const RoundOutcome& run_round();

  // -- durable round store (crash-consistent operation) --------------------
  // Attaches a write-ahead round store: every committed round appends one
  // fsynced WAL record (O(changed state): the RoundOutcome, an XOR
  // bit-delta of the global arena, the participants' post-round client
  // state, absolute transport/fault/attack counters), and every
  // `snapshot_every` rounds the WAL is compacted onto a full-state
  // snapshot. After kill -9 at ANY instruction, recover_from_store()
  // rebuilds a state bit-identical to some committed round boundary and
  // the re-run of any lost round is bit-identical to the uninterrupted
  // run (all round randomness is keyed by (seed, round); all sequential
  // streams are part of the persisted state). The store must outlive the
  // simulation; pass nullptr to detach.
  void attach_store(store::RoundStore* store, int snapshot_every = 8);

  // Rebuilds this (freshly constructed, identically configured)
  // simulation from the attached store: newest valid snapshot, then the
  // longest valid WAL prefix replayed on top. Tolerates torn tails,
  // truncation, bit flips, duplicate round records and records already
  // absorbed by the snapshot — corruption only shortens the replay, it
  // never throws. A legacy DCKP v2 checkpoint installed as the snapshot
  // (import_legacy_checkpoint) restores through the server-only path.
  // Returns the recovered round count (server round after replay).
  std::int64_t recover_from_store();

  // Full simulation state (superset of save_checkpoint: server + every
  // client's model/RNG/defense state + both logs + counters). This is the
  // snapshot payload, and also what the crash matrix compares runs by.
  void save_full_state(BinaryWriter& w) const;
  void restore_full_state(BinaryReader& r);

  // -- checkpoint / resume ------------------------------------------------
  // Persists the global model + round counter (magic + version header).
  void save_checkpoint(BinaryWriter& w) const;
  // Crash-safe: writes a temp file, fsyncs, then atomically renames over
  // `path`, so a crash mid-write can never clobber the previous good
  // checkpoint.
  void save_checkpoint(const std::string& path) const;
  // Restores a checkpoint into a freshly constructed simulation of the
  // same architecture; run() then completes the remaining rounds. The
  // per-round fault/selection schedules replay identically, so any two
  // restarts from the same checkpoint are bit-identical. Client-local
  // state (optimizer accumulators, training RNG streams) is NOT part of
  // the checkpoint and restarts fresh — a resumed run is reproducible,
  // not byte-equal to the uninterrupted one.
  void restore_checkpoint(BinaryReader& r);
  void restore_checkpoint(const std::string& path);

  // -- results & attacker views ------------------------------------------
  FlServer& server() { return *server_; }
  std::vector<FlClient>& clients() { return clients_; }
  Transport& transport() { return *transport_; }
  // The simulation's execution context (always non-null after construction).
  const ExecutionContext& execution_context() const { return *exec_; }
  const std::vector<RoundRecord>& history() const { return history_; }
  const std::vector<RoundOutcome>& round_log() const { return round_log_; }
  const data::Dataset& test_data() const { return split_.test; }
  const data::FlSplit& split() const { return split_; }
  const SimulationConfig& config() const { return config_; }

  // A model carrying the current global parameters (the client-side
  // attacker's view).
  nn::Model global_model();
  // The server-side attacker's view of client i's latest upload: its
  // parameters as they crossed the wire (un-pre-weighted if needed).
  // Requires client i to have participated in the last round.
  nn::Model server_view_of_client(std::size_t i);
  // Clients that uploaded in the most recent round, by index.
  std::vector<std::size_t> last_participants() const;
  // Fresh model of the simulation's architecture (for shadow training).
  nn::Model fresh_model(Rng& rng) { return model_factory_(rng); }
  const nn::ModelFactory& model_factory() const { return model_factory_; }

  // Metrics (computed on demand).
  RoundRecord evaluate_now();
  double mean_client_train_seconds() const;
  double mean_client_defense_seconds() const;
  double server_aggregation_seconds() const;

  // The adversary engine, or nullptr when every client is honest.
  AdversaryEngine* adversaries() { return adversary_.get(); }

  // Clients in the federation at `round` (a pure function of config).
  std::vector<std::size_t> roster_at(std::int64_t round) const;

 private:
  void validate_config() const;
  std::vector<std::size_t> select_participants(std::int64_t round);
  // Builds and durably appends round N's WAL record. `prev_global` is the
  // pre-round global arena (XOR-delta base); `touched` the clients whose
  // state the round may have advanced.
  void append_round_to_store(const RoundOutcome& out, const nn::FlatParams& prev_global,
                             const std::vector<std::size_t>& touched);
  void append_eval_to_store(const RoundRecord& rec);
  // Compacts the WAL onto a fresh full-state snapshot on cadence.
  void maybe_snapshot();
  // Applies one WAL record; returns false when the record is a stale
  // duplicate (skip) — malformed records throw and the caller stops.
  bool apply_wal_record(BinaryReader& r);
  // Blocks until the in-flight broadcast-prefetch task (if any) finished
  // serializing; safe to call with none pending.
  void join_prefetch();
  // join_prefetch + drop the prefetched broadcast (state changed under it:
  // checkpoint restore, full-state restore, store recovery).
  void invalidate_prefetch();

  nn::ModelFactory model_factory_;
  data::FlSplit split_;
  SimulationConfig config_;
  // Owns the thread pool; declared before the clients/server so it
  // outlives every component holding a pointer to it.
  std::unique_ptr<ExecutionContext> exec_;
  // The transport seam: the in-process Transport by default, a
  // SocketTransport when config.socket_transport is set.
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<FlServer> server_;
  std::unique_ptr<AdversaryEngine> adversary_;
  std::vector<FlClient> clients_;
  std::vector<ModelUpdateMsg> last_updates_;
  std::vector<RoundRecord> history_;
  std::vector<RoundOutcome> round_log_;
  Rng rng_;
  // Round schedule (config.pipeline unless DINAR_PIPELINE overrode it).
  PipelineMode pipeline_mode_ = PipelineMode::kStream;
  // Next-round broadcast prefetch (stream mode): after a round commits,
  // the new global model is copied on the coordinator and serialized on
  // the pool, overlapping the WAL fsync / snapshot / eval that follow.
  // The block is heap-shared with the pool task (which captures the
  // shared_ptr, never `this`), so the simulation stays freely movable and
  // destructible with a task in flight — the worker's reference keeps the
  // block alive and the pool (owned by exec_, destroyed last) joins its
  // threads before the process loses the code the task runs. Only the
  // task touches msg/bytes between submit and join_prefetch(); `round` is
  // coordinator-only.
  struct BroadcastPrefetch {
    GlobalModelMsg msg;
    std::vector<std::uint8_t> bytes;
    std::int64_t round = -1;
    std::future<void> done;
  };
  std::shared_ptr<BroadcastPrefetch> prefetch_;
  // Durable operation (null = volatile, the seed behavior).
  store::RoundStore* store_ = nullptr;
  int snapshot_every_ = 8;
  std::int64_t rounds_since_snapshot_ = 0;
};

}  // namespace dinar::fl
