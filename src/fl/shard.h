// Sharded hierarchical aggregation (DESIGN.md §12).
//
// One flat roster cannot reach millions of clients: a single aggregator
// would hold every update at once and run one giant robust-statistics
// pass. The aggregation tree splits the cohort into shards by a pure hash
// of the client id, runs the full robust strategy per shard on an "edge"
// aggregator (RobustAggregator::shard_aggregate), and merges the compact
// ShardSummarys at the root (RobustAggregator::combine). Edge passes are
// independent, so they run in parallel — one pool task per shard — while
// the root merge visits summaries in ascending shard-id order, keeping the
// whole tree bit-identical for any thread count.
//
// Shard assignment is a pure function of (assignment_seed, client_id):
// stable across rounds, churn (a client that leaves and rejoins lands in
// the same shard), process restarts and durable-store recovery. A shard
// may be empty in any given round — all its clients churned away or were
// quarantined — and the root combiner skips the empty summaries.
//
// num_shards == 1 routes the whole cohort through one shard_aggregate call
// and combine()'s copy fast path: bit-identical to flat aggregate().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fl/robust_aggregator.h"

namespace dinar {
class ExecutionContext;
}

namespace dinar::fl {

struct ShardConfig {
  // Edge aggregators in the tree; 1 = flat aggregation (the default).
  std::size_t num_shards = 1;
  // Seeds the client-id hash so distinct deployments get distinct
  // partitions; the partition is stable for a fixed seed.
  std::uint64_t assignment_seed = 0;
};

// The shard owning `client_id`: splitmix64(assignment_seed ^ id) mod
// num_shards. splitmix64's avalanche keeps shards balanced even for
// consecutive ids.
std::uint32_t shard_of(int client_id, const ShardConfig& config);

// Partitions `updates` into one span per shard (index = shard id; empty
// spans for empty shards). When each shard's members already sit in one
// contiguous block of the input — e.g. the caller pre-sorted by
// shard_of — the spans alias the input and nothing is copied. Otherwise
// the updates are gathered (copied, grouped by shard in ascending shard-id
// order, original relative order preserved within a shard) into `scratch`
// and the spans alias that. The returned spans are invalidated by any
// mutation of `updates` or `scratch`.
std::vector<std::span<const ModelUpdateMsg>> plan_shards(
    std::span<const ModelUpdateMsg> updates, const ShardConfig& config,
    std::vector<ModelUpdateMsg>& scratch);

struct HierarchicalResult {
  RobustAggregateResult result;
  // Per-shard statistics in shard-id order, one entry per shard including
  // empty ones (deterministic; persisted in RoundOutcome).
  std::vector<ShardStats> shards;
  // Wall-clock seconds each edge aggregation took, indexed by shard id
  // (0.0 for empty shards). Under the streaming session this is the shard's
  // cumulative absorb + finalize time instead. Timing only — NEVER
  // persisted or compared; everything bit-reproducible lives in `shards`.
  std::vector<double> shard_seconds;
  // Wall-clock seconds of the root combine. Timing only, like above.
  double combine_seconds = 0.0;
};

// Runs the full tree: plan -> parallel edge shard_aggregate (one pool task
// per shard via exec->for_each_task; inner aggregator loops degrade to
// sequential on worker threads) -> root combine in ascending shard-id
// order. `exec` may be null (sequential edge passes). Throws when
// `updates` is empty or config.num_shards == 0.
HierarchicalResult hierarchical_aggregate(RobustAggregator& aggregator,
                                          std::span<const ModelUpdateMsg> updates,
                                          const nn::FlatParams& global,
                                          const ShardConfig& config,
                                          const ExecutionContext* exec);

// Streaming counterpart of hierarchical_aggregate for the event-driven
// round pipeline (DESIGN.md §13): the session opens one ShardAccumulator
// per shard up front, absorb() routes each validated update to its shard
// (shard_of) the moment its exchange commits, and finalize() closes the
// accumulators in ascending shard-id order and runs the root combine.
//
// Bit-identity with the barriered tree: commits absorb updates in the
// exact acceptance order hierarchical_aggregate's plan_shards would have
// gathered them in (relative order within a shard is preserved by both),
// every accumulator finalizes to the summary shard_aggregate would emit,
// and the root combine is the same fixed-order merge — so the streaming
// result is bit-identical to the barriered one, per the gauntlet.
//
// absorb() must be called from one thread (the pipeline's commit thread)
// and runs inline — see ShardAccumulator. `aggregator` and `global` must
// outlive the session; `global` must not change before finalize() returns.
// finalize() throws (via combine) when every shard stayed empty: the
// caller carries the previous model forward, exactly like the batch path.
class ShardedAggregationSession {
 public:
  ShardedAggregationSession(RobustAggregator& aggregator,
                            const nn::FlatParams& global, const ShardConfig& config,
                            const ExecutionContext* exec);

  void absorb(const ModelUpdateMsg& update);
  HierarchicalResult finalize();
  std::size_t absorbed() const { return absorbed_; }

 private:
  RobustAggregator& aggregator_;
  const nn::FlatParams& global_;
  ShardConfig config_;
  const ExecutionContext* exec_;
  std::vector<std::unique_ptr<ShardAccumulator>> accumulators_;
  std::vector<double> shard_seconds_;
  std::size_t absorbed_ = 0;
};

}  // namespace dinar::fl
