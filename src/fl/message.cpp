#include "fl/message.h"

#include "util/error.h"
#include "util/serde.h"

namespace dinar::fl {
namespace {
// Legacy v1 per-kind magics (tensor-list payload, pre-FlatParams). The v1
// read paths were removed after their one-release deprecation window; the
// magics survive only to reject such frames by name instead of "not a
// message". Wire frames never outlive a release — unlike DCKP checkpoints,
// which keep their legacy read path (nn::read_legacy_tensor_params).
constexpr std::uint32_t kGlobalMsgMagicV1 = 0x474D4F44;  // "GMOD"
constexpr std::uint32_t kUpdateMsgMagicV1 = 0x55504454;  // "UPDT"
// v2 frames share one magic; the kind byte distinguishes the messages.
constexpr std::uint32_t kFlatMsgMagic = 0x4D524644;  // "DFRM"
constexpr std::uint32_t kFlatMsgVersion = 2;
constexpr std::uint8_t kKindGlobal = 0;
constexpr std::uint8_t kKindUpdate = 1;

// Runs one field's decode; a failure is rethrown naming the message type
// and the offending field, which the server's quarantine path records to
// classify corrupt updates.
template <typename Fn>
auto read_field(const char* msg_type, const char* field, Fn&& fn) {
  try {
    return fn();
  } catch (const Error& e) {
    throw Error(std::string(msg_type) + ": bad field '" + field + "': " + e.what());
  }
}

void check_exhausted(const char* msg_type, const BinaryReader& r) {
  DINAR_CHECK(r.exhausted(), msg_type << ": " << r.remaining()
                                      << " trailing bytes after field 'params'");
}

// Reads the v2 header after the DFRM magic; checks version and kind.
void read_flat_header(const char* msg_type, BinaryReader& r,
                      std::uint8_t expected_kind) {
  const std::uint8_t kind =
      read_field(msg_type, "kind", [&] { return r.read_u8(); });
  DINAR_CHECK(kind == expected_kind,
              msg_type << ": bad field 'kind': " << static_cast<int>(kind));
  const std::uint32_t version =
      read_field(msg_type, "version", [&] { return r.read_u32(); });
  DINAR_CHECK(version == kFlatMsgVersion,
              msg_type << ": unsupported format version " << version);
}

}  // namespace

std::vector<std::uint8_t> GlobalModelMsg::serialize() const {
  BinaryWriter w;
  w.write_u32(kFlatMsgMagic);
  w.write_u8(kKindGlobal);
  w.write_u32(kFlatMsgVersion);
  w.write_i64(round);
  nn::write_flat_params(w, params);
  return w.take();
}

GlobalModelMsg GlobalModelMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  const std::uint32_t magic =
      read_field("GlobalModelMsg", "magic", [&] { return r.read_u32(); });
  GlobalModelMsg msg;
  DINAR_CHECK(magic != kGlobalMsgMagicV1,
              "GlobalModelMsg: v1 tensor-list frames are no longer supported "
              "(removed after the one-release deprecation window)");
  DINAR_CHECK(magic == kFlatMsgMagic, "not a global-model message");
  read_flat_header("GlobalModelMsg", r, kKindGlobal);
  msg.round = read_field("GlobalModelMsg", "round", [&] { return r.read_i64(); });
  msg.params = read_field("GlobalModelMsg", "params",
                          [&] { return nn::read_flat_params(r); });
  check_exhausted("GlobalModelMsg", r);
  return msg;
}

std::vector<std::uint8_t> ModelUpdateMsg::serialize() const {
  BinaryWriter w;
  w.write_u32(kFlatMsgMagic);
  w.write_u8(kKindUpdate);
  w.write_u32(kFlatMsgVersion);
  w.write_u32(static_cast<std::uint32_t>(client_id));
  w.write_i64(round);
  w.write_i64(num_samples);
  w.write_u8(pre_weighted ? 1 : 0);
  nn::write_flat_params(w, params);
  return w.take();
}

ModelUpdateMsg ModelUpdateMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  const std::uint32_t magic =
      read_field("ModelUpdateMsg", "magic", [&] { return r.read_u32(); });
  ModelUpdateMsg msg;
  DINAR_CHECK(magic != kUpdateMsgMagicV1,
              "ModelUpdateMsg: v1 tensor-list frames are no longer supported "
              "(removed after the one-release deprecation window)");
  DINAR_CHECK(magic == kFlatMsgMagic, "not a model-update message");
  read_flat_header("ModelUpdateMsg", r, kKindUpdate);
  const std::uint32_t raw_client =
      read_field("ModelUpdateMsg", "client_id", [&] { return r.read_u32(); });
  DINAR_CHECK(raw_client <= 0x7FFFFFFFu,
              "ModelUpdateMsg: bad field 'client_id': " << raw_client
                                                        << " overflows int32");
  msg.client_id = static_cast<std::int32_t>(raw_client);
  msg.round = read_field("ModelUpdateMsg", "round", [&] { return r.read_i64(); });
  msg.num_samples =
      read_field("ModelUpdateMsg", "num_samples", [&] { return r.read_i64(); });
  msg.pre_weighted =
      read_field("ModelUpdateMsg", "pre_weighted", [&] { return r.read_u8(); }) != 0;
  msg.params = read_field("ModelUpdateMsg", "params",
                          [&] { return nn::read_flat_params(r); });
  check_exhausted("ModelUpdateMsg", r);
  return msg;
}

}  // namespace dinar::fl
