#include "fl/message.h"

#include "util/error.h"
#include "util/serde.h"

namespace dinar::fl {
namespace {
constexpr std::uint32_t kGlobalMsgMagic = 0x474D4F44;  // "GMOD"
constexpr std::uint32_t kUpdateMsgMagic = 0x55504454;  // "UPDT"
}  // namespace

std::vector<std::uint8_t> GlobalModelMsg::serialize() const {
  BinaryWriter w;
  w.write_u32(kGlobalMsgMagic);
  w.write_i64(round);
  nn::write_param_list(w, params);
  return w.take();
}

GlobalModelMsg GlobalModelMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  DINAR_CHECK(r.read_u32() == kGlobalMsgMagic, "not a global-model message");
  GlobalModelMsg msg;
  msg.round = r.read_i64();
  msg.params = nn::read_param_list(r);
  DINAR_CHECK(r.exhausted(), "trailing bytes in global-model message");
  return msg;
}

std::vector<std::uint8_t> ModelUpdateMsg::serialize() const {
  BinaryWriter w;
  w.write_u32(kUpdateMsgMagic);
  w.write_u32(static_cast<std::uint32_t>(client_id));
  w.write_i64(round);
  w.write_i64(num_samples);
  w.write_u8(pre_weighted ? 1 : 0);
  nn::write_param_list(w, params);
  return w.take();
}

ModelUpdateMsg ModelUpdateMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  DINAR_CHECK(r.read_u32() == kUpdateMsgMagic, "not a model-update message");
  ModelUpdateMsg msg;
  msg.client_id = static_cast<std::int32_t>(r.read_u32());
  msg.round = r.read_i64();
  msg.num_samples = r.read_i64();
  msg.pre_weighted = r.read_u8() != 0;
  msg.params = nn::read_param_list(r);
  DINAR_CHECK(r.exhausted(), "trailing bytes in model-update message");
  return msg;
}

}  // namespace dinar::fl
