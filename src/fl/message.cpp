#include "fl/message.h"

#include "util/error.h"
#include "util/serde.h"

namespace dinar::fl {
namespace {
constexpr std::uint32_t kGlobalMsgMagic = 0x474D4F44;  // "GMOD"
constexpr std::uint32_t kUpdateMsgMagic = 0x55504454;  // "UPDT"

// Runs one field's decode; a failure is rethrown naming the message type
// and the offending field, which the server's quarantine path records to
// classify corrupt updates.
template <typename Fn>
auto read_field(const char* msg_type, const char* field, Fn&& fn) {
  try {
    return fn();
  } catch (const Error& e) {
    throw Error(std::string(msg_type) + ": bad field '" + field + "': " + e.what());
  }
}

void check_exhausted(const char* msg_type, const BinaryReader& r) {
  DINAR_CHECK(r.exhausted(), msg_type << ": " << r.remaining()
                                      << " trailing bytes after field 'params'");
}

}  // namespace

std::vector<std::uint8_t> GlobalModelMsg::serialize() const {
  BinaryWriter w;
  w.write_u32(kGlobalMsgMagic);
  w.write_i64(round);
  nn::write_param_list(w, params);
  return w.take();
}

GlobalModelMsg GlobalModelMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  const std::uint32_t magic =
      read_field("GlobalModelMsg", "magic", [&] { return r.read_u32(); });
  DINAR_CHECK(magic == kGlobalMsgMagic, "not a global-model message");
  GlobalModelMsg msg;
  msg.round = read_field("GlobalModelMsg", "round", [&] { return r.read_i64(); });
  msg.params =
      read_field("GlobalModelMsg", "params", [&] { return nn::read_param_list(r); });
  check_exhausted("GlobalModelMsg", r);
  return msg;
}

std::vector<std::uint8_t> ModelUpdateMsg::serialize() const {
  BinaryWriter w;
  w.write_u32(kUpdateMsgMagic);
  w.write_u32(static_cast<std::uint32_t>(client_id));
  w.write_i64(round);
  w.write_i64(num_samples);
  w.write_u8(pre_weighted ? 1 : 0);
  nn::write_param_list(w, params);
  return w.take();
}

ModelUpdateMsg ModelUpdateMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  const std::uint32_t magic =
      read_field("ModelUpdateMsg", "magic", [&] { return r.read_u32(); });
  DINAR_CHECK(magic == kUpdateMsgMagic, "not a model-update message");
  ModelUpdateMsg msg;
  const std::uint32_t raw_client =
      read_field("ModelUpdateMsg", "client_id", [&] { return r.read_u32(); });
  DINAR_CHECK(raw_client <= 0x7FFFFFFFu,
              "ModelUpdateMsg: bad field 'client_id': " << raw_client
                                                        << " overflows int32");
  msg.client_id = static_cast<std::int32_t>(raw_client);
  msg.round = read_field("ModelUpdateMsg", "round", [&] { return r.read_i64(); });
  msg.num_samples =
      read_field("ModelUpdateMsg", "num_samples", [&] { return r.read_i64(); });
  msg.pre_weighted =
      read_field("ModelUpdateMsg", "pre_weighted", [&] { return r.read_u8(); }) != 0;
  msg.params =
      read_field("ModelUpdateMsg", "params", [&] { return nn::read_param_list(r); });
  check_exhausted("ModelUpdateMsg", r);
  return msg;
}

}  // namespace dinar::fl
