#include "fl/message.h"

#include "net/frame.h"
#include "util/error.h"
#include "util/serde.h"

namespace dinar::fl {
namespace {
// Legacy v1 per-kind magics (tensor-list payload, pre-FlatParams). The v1
// read paths were removed after their one-release deprecation window; the
// magics survive only to reject such frames by name instead of "not a
// message". Wire frames never outlive a release — unlike DCKP checkpoints,
// which keep their legacy read path (nn::read_legacy_tensor_params).
constexpr std::uint32_t kGlobalMsgMagicV1 = 0x474D4F44;  // "GMOD"
constexpr std::uint32_t kUpdateMsgMagicV1 = 0x55504454;  // "UPDT"
// v2/v3 frames share one magic; the kind byte distinguishes the messages.
constexpr std::uint32_t kFlatMsgMagic = 0x4D524644;  // "DFRM"
constexpr std::uint32_t kFlatMsgVersion = 2;
constexpr std::uint32_t kFlatMsgVersionV3 = 3;
constexpr std::uint8_t kKindGlobal = 0;
constexpr std::uint8_t kKindUpdate = 1;

// The net frame layer sniffs the v3 header to bound the declared decoded
// size before the message is ever parsed (net/frame.h mirrors these
// fields because it cannot include this layer). Keep them locked together.
static_assert(net::kMessageMagic == kFlatMsgMagic);
static_assert(net::kMessageVersionCompressed == kFlatMsgVersionV3);
static_assert(net::kMessageDecodedSizeOffset ==
              sizeof(kFlatMsgMagic) + sizeof(kKindGlobal) +
                  sizeof(kFlatMsgVersionV3));

// Runs one field's decode; a failure is rethrown naming the message type
// and the offending field, which the server's quarantine path records to
// classify corrupt updates.
template <typename Fn>
auto read_field(const char* msg_type, const char* field, Fn&& fn) {
  try {
    return fn();
  } catch (const Error& e) {
    throw Error(std::string(msg_type) + ": bad field '" + field + "': " + e.what());
  }
}

void check_exhausted(const char* msg_type, const BinaryReader& r) {
  DINAR_CHECK(r.exhausted(), msg_type << ": " << r.remaining()
                                      << " trailing bytes after field 'params'");
}

// Reads the v2/v3 header after the DFRM magic; checks kind and returns
// the accepted version (2 or 3).
std::uint32_t read_flat_header(const char* msg_type, BinaryReader& r,
                               std::uint8_t expected_kind) {
  const std::uint8_t kind =
      read_field(msg_type, "kind", [&] { return r.read_u8(); });
  DINAR_CHECK(kind == expected_kind,
              msg_type << ": bad field 'kind': " << static_cast<int>(kind));
  const std::uint32_t version =
      read_field(msg_type, "version", [&] { return r.read_u32(); });
  DINAR_CHECK(version == kFlatMsgVersion || version == kFlatMsgVersionV3,
              msg_type << ": unsupported format version " << version);
  return version;
}

// Reads and bounds the v3 declared decoded size. Defense in depth: the
// frame layer caps the same field, but messages also arrive from tests and
// future disk paths without ever crossing a frame.
std::uint64_t read_decoded_bytes(const char* msg_type, BinaryReader& r) {
  const std::uint64_t decoded =
      read_field(msg_type, "decoded_bytes", [&] { return r.read_u64(); });
  DINAR_CHECK(decoded <= net::kDefaultMaxDecodedBytes,
              msg_type << ": declared decoded size " << decoded
                       << " exceeds the " << net::kDefaultMaxDecodedBytes
                       << "-byte cap");
  return decoded;
}

// Shared v3 preamble: magic, kind, version 3, decoded size.
void write_v3_header(BinaryWriter& w, std::uint8_t kind,
                     const nn::FlatParams& params) {
  w.write_u32(kFlatMsgMagic);
  w.write_u8(kind);
  w.write_u32(kFlatMsgVersionV3);
  w.write_u64(static_cast<std::uint64_t>(params.numel()) * sizeof(float));
}

}  // namespace

std::vector<std::uint8_t> GlobalModelMsg::serialize() const {
  BinaryWriter w;
  w.write_u32(kFlatMsgMagic);
  w.write_u8(kKindGlobal);
  w.write_u32(kFlatMsgVersion);
  w.write_i64(round);
  nn::write_flat_params(w, params);
  return w.take();
}

std::vector<std::uint8_t> GlobalModelMsg::serialize(const KindCodec& codec) const {
  if (!codec.v3()) return serialize();
  BinaryWriter w;
  write_v3_header(w, kKindGlobal, params);
  w.write_i64(round);
  write_flat_params_v3(w, params, codec, /*reference=*/nullptr);
  return w.take();
}

GlobalModelMsg GlobalModelMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  const std::uint32_t magic =
      read_field("GlobalModelMsg", "magic", [&] { return r.read_u32(); });
  GlobalModelMsg msg;
  DINAR_CHECK(magic != kGlobalMsgMagicV1,
              "GlobalModelMsg: v1 tensor-list frames are no longer supported "
              "(removed after the one-release deprecation window)");
  DINAR_CHECK(magic == kFlatMsgMagic, "not a global-model message");
  const std::uint32_t version = read_flat_header("GlobalModelMsg", r, kKindGlobal);
  std::uint64_t decoded_bytes = 0;
  if (version == kFlatMsgVersionV3)
    decoded_bytes = read_decoded_bytes("GlobalModelMsg", r);
  msg.round = read_field("GlobalModelMsg", "round", [&] { return r.read_i64(); });
  msg.params = read_field("GlobalModelMsg", "params", [&] {
    return version == kFlatMsgVersionV3
               ? read_flat_params_v3(r, decoded_bytes, /*reference=*/nullptr)
               : nn::read_flat_params(r);
  });
  check_exhausted("GlobalModelMsg", r);
  return msg;
}

std::vector<std::uint8_t> ModelUpdateMsg::serialize() const {
  BinaryWriter w;
  w.write_u32(kFlatMsgMagic);
  w.write_u8(kKindUpdate);
  w.write_u32(kFlatMsgVersion);
  w.write_u32(static_cast<std::uint32_t>(client_id));
  w.write_i64(round);
  w.write_i64(num_samples);
  w.write_u8(pre_weighted ? 1 : 0);
  nn::write_flat_params(w, params);
  return w.take();
}

std::vector<std::uint8_t> ModelUpdateMsg::serialize(
    const KindCodec& codec, const nn::FlatParams* reference) const {
  if (!codec.v3()) return serialize();
  BinaryWriter w;
  write_v3_header(w, kKindUpdate, params);
  w.write_u32(static_cast<std::uint32_t>(client_id));
  w.write_i64(round);
  w.write_i64(num_samples);
  w.write_u8(pre_weighted ? 1 : 0);
  write_flat_params_v3(w, params, codec, reference);
  return w.take();
}

ModelUpdateMsg ModelUpdateMsg::deserialize(const std::vector<std::uint8_t>& bytes,
                                           const nn::FlatParams* reference) {
  BinaryReader r(bytes);
  const std::uint32_t magic =
      read_field("ModelUpdateMsg", "magic", [&] { return r.read_u32(); });
  ModelUpdateMsg msg;
  DINAR_CHECK(magic != kUpdateMsgMagicV1,
              "ModelUpdateMsg: v1 tensor-list frames are no longer supported "
              "(removed after the one-release deprecation window)");
  DINAR_CHECK(magic == kFlatMsgMagic, "not a model-update message");
  const std::uint32_t version = read_flat_header("ModelUpdateMsg", r, kKindUpdate);
  std::uint64_t decoded_bytes = 0;
  if (version == kFlatMsgVersionV3)
    decoded_bytes = read_decoded_bytes("ModelUpdateMsg", r);
  const std::uint32_t raw_client =
      read_field("ModelUpdateMsg", "client_id", [&] { return r.read_u32(); });
  DINAR_CHECK(raw_client <= 0x7FFFFFFFu,
              "ModelUpdateMsg: bad field 'client_id': " << raw_client
                                                        << " overflows int32");
  msg.client_id = static_cast<std::int32_t>(raw_client);
  msg.round = read_field("ModelUpdateMsg", "round", [&] { return r.read_i64(); });
  msg.num_samples =
      read_field("ModelUpdateMsg", "num_samples", [&] { return r.read_i64(); });
  msg.pre_weighted =
      read_field("ModelUpdateMsg", "pre_weighted", [&] { return r.read_u8(); }) != 0;
  msg.params = read_field("ModelUpdateMsg", "params", [&] {
    return version == kFlatMsgVersionV3
               ? read_flat_params_v3(r, decoded_bytes, reference)
               : nn::read_flat_params(r);
  });
  check_exhausted("ModelUpdateMsg", r);
  return msg;
}

std::uint64_t v2_wire_bytes(const GlobalModelMsg& msg) {
  // magic + kind + version + round, then the v2 params body.
  return sizeof(kFlatMsgMagic) + sizeof(kKindGlobal) + sizeof(kFlatMsgVersion) +
         sizeof(msg.round) + flat_params_v2_bytes(msg.params);
}

std::uint64_t v2_wire_bytes(const ModelUpdateMsg& msg) {
  // magic + kind + version + client_id(u32) + round + num_samples +
  // pre_weighted(u8), then the v2 params body.
  return sizeof(kFlatMsgMagic) + sizeof(kKindUpdate) + sizeof(kFlatMsgVersion) +
         sizeof(std::uint32_t) + sizeof(msg.round) + sizeof(msg.num_samples) + 1 +
         flat_params_v2_bytes(msg.params);
}

}  // namespace dinar::fl
