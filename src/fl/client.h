// FL client: local training wrapped by defense middleware.
//
// Per round (paper §2.1 + Algorithm 1's host process):
//   1. receive_global(): the defense installs the global model — the
//      default installs it verbatim, DINAR personalizes;
//   2. train_round(): local epochs with the client's optimizer;
//   3. the defense's before_upload() transforms the outgoing parameters
//      (obfuscation / noise / compression / masking);
//   4. the update message is produced for the transport.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "fl/defense.h"
#include "fl/message.h"
#include "fl/trainer.h"
#include "util/timer.h"

namespace dinar::fl {

class FlClient {
 public:
  FlClient(int id, data::Dataset train_data, nn::Model model,
           std::unique_ptr<opt::Optimizer> optimizer,
           std::unique_ptr<ClientDefense> defense, TrainConfig train_config, Rng rng);

  int id() const { return id_; }
  // Round of the most recently installed global model.
  std::int64_t round() const { return round_; }
  std::int64_t num_samples() const { return train_data_.size(); }
  const data::Dataset& train_data() const { return train_data_; }
  // The personalized model the client would use for predictions.
  nn::Model& model() { return model_; }
  ClientDefense& defense() { return *defense_; }

  // Installs the shared execution context on the client's model so local
  // training uses the blocked parallel kernels. The context must outlive
  // the client; pass nullptr to fall back to sequential kernels.
  void set_execution_context(const ExecutionContext* exec) {
    model_.set_execution_context(exec);
  }

  // Installs the update-kind wire codec (DESIGN.md §14). When it is sparse
  // the client keeps each round's decoded broadcast as the delta reference
  // its uploads are coded against. Set once, before the first round.
  void set_wire_codec(const KindCodec& update_codec) { update_codec_ = update_codec; }
  const KindCodec& wire_codec() const { return update_codec_; }

  void receive_global(const GlobalModelMsg& msg);

  // Local training + defense; returns the update to upload.
  ModelUpdateMsg train_round();

  // Serializes an update under the installed codec, supplying the retained
  // broadcast reference for sparse runs. With the default codec this is
  // byte-identical to update.serialize().
  std::vector<std::uint8_t> serialize_update(const ModelUpdateMsg& update) const;

  TrainStats last_train_stats() const { return last_stats_; }
  // Table 3 client-side metrics.
  const CumulativeTimer& train_timer() const { return train_timer_; }
  const CumulativeTimer& defense_timer() const { return defense_timer_; }

  // -- durable-state serde --------------------------------------------------
  // Everything that carries across rounds: the personalized model, the
  // sequential training RNG stream, the round counter, the last training
  // stats, and the defense's private state. Optimizer accumulators are
  // deliberately absent — Algorithm 1 resets them at every round start, so
  // they hold no cross-round information. Wall-clock timers are also
  // excluded (measurement, not state). A restored client continues
  // bit-identically to the uninterrupted one.
  void save_state(BinaryWriter& w) const;
  void restore_state(BinaryReader& r);

 private:
  int id_;
  data::Dataset train_data_;
  nn::Model model_;
  std::unique_ptr<opt::Optimizer> optimizer_;
  std::unique_ptr<ClientDefense> defense_;
  TrainConfig train_config_;
  Rng rng_;
  std::int64_t round_ = 0;
  KindCodec update_codec_;
  // The decoded broadcast of the current round, kept only when the update
  // codec is sparse. Within-round state: never persisted (recovery re-runs
  // the round from its broadcast), refreshed by every receive_global().
  nn::FlatParams upload_reference_;
  bool has_upload_reference_ = false;
  TrainStats last_stats_;
  CumulativeTimer train_timer_;
  CumulativeTimer defense_timer_;
};

}  // namespace dinar::fl
