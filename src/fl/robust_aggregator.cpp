#include "fl/robust_aggregator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.h"
#include "util/execution_context.h"

namespace dinar::fl {
namespace {

// Runs fn over [0, n) — chunked across the context's pool, or inline when
// the context is null. Every index is handled by exactly one chunk, so any
// per-coordinate computation below is bit-identical for any thread count.
void run_range(const ExecutionContext* exec, std::size_t n, std::size_t grain,
               const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (exec != nullptr)
    exec->parallel_for(static_cast<std::int64_t>(n), fn, grain);
  else
    fn(0, static_cast<std::int64_t>(n));
}

// Per-coordinate loops cost ~members ops each; keep chunks near 16k ops.
std::size_t coord_grain(std::size_t members) {
  return std::max<std::size_t>(std::size_t{64}, 16384 / std::max<std::size_t>(1, members));
}

// Marks the ParamList positions excluded from scoring (obfuscated layers).
std::vector<bool> excluded_mask(const RobustConfig& config, std::size_t num_tensors) {
  std::vector<bool> mask(num_tensors, false);
  for (const std::size_t t : config.excluded_tensors) {
    DINAR_CHECK(t < num_tensors, "excluded tensor index " << t
                                                          << " out of range (model has "
                                                          << num_tensors << " tensors)");
    mask[t] = true;
  }
  return mask;
}

void require_raw_updates(const std::vector<ModelUpdateMsg>& updates, const char* name) {
  for (const ModelUpdateMsg& u : updates)
    DINAR_CHECK(!u.pre_weighted,
                name << " cannot score pre-weighted (secure-aggregation) updates; "
                        "client "
                     << u.client_id << " sent one");
}

// Squared L2 distance over the scored (non-excluded) coordinates.
double scored_sq_distance(const nn::ParamList& a, const nn::ParamList& b,
                          const std::vector<bool>& excluded) {
  double s = 0.0;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (excluded[t]) continue;
    const auto va = a[t].values(), vb = b[t].values();
    for (std::size_t j = 0; j < va.size(); ++j) {
      const double d = static_cast<double>(va[j]) - static_cast<double>(vb[j]);
      s += d * d;
    }
  }
  return s;
}

double median_of(std::vector<double> v) {
  DINAR_CHECK(!v.empty(), "median of an empty set");
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const double lower =
        *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

// Sample-weighted FedAvg of `members`' raw parameters for tensor `t`.
// Per coordinate the members accumulate in ascending member order
// regardless of chunking, so the float sums match the sequential path.
Tensor weighted_mean_tensor(const std::vector<ModelUpdateMsg>& updates,
                            const std::vector<std::size_t>& members, std::size_t t,
                            const ExecutionContext* exec) {
  double total = 0.0;
  for (const std::size_t i : members) total += static_cast<double>(updates[i].num_samples);
  Tensor out(updates[members.front()].params[t].shape());
  auto vo = out.values();
  run_range(exec, vo.size(), coord_grain(members.size()),
            [&](std::int64_t j0, std::int64_t j1) {
              for (const std::size_t i : members) {
                const double w = static_cast<double>(updates[i].num_samples) / total;
                const auto vi = updates[i].params[t].values();
                for (std::int64_t j = j0; j < j1; ++j)
                  vo[static_cast<std::size_t>(j)] += static_cast<float>(
                      w * static_cast<double>(vi[static_cast<std::size_t>(j)]));
              }
            });
  return out;
}

// Plain FedAvg over a member subset, all tensors (Krum's final average and
// the excluded-tensor fallback both reduce to this).
nn::ParamList weighted_mean_params(const std::vector<ModelUpdateMsg>& updates,
                                   const std::vector<std::size_t>& members,
                                   const ExecutionContext* exec) {
  nn::ParamList out;
  out.reserve(updates.front().params.size());
  for (std::size_t t = 0; t < updates.front().params.size(); ++t)
    out.push_back(weighted_mean_tensor(updates, members, t, exec));
  return out;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

// The seed's FedAvg, wrapped in the aggregator interface. The only
// strategy that accepts pre-weighted updates (it never scores clients).
class FedAvgAggregator final : public RobustAggregator {
 public:
  std::string name() const override { return "fedavg"; }

  RobustAggregateResult aggregate(const std::vector<ModelUpdateMsg>& updates,
                                  const nn::ParamList& /*global*/) override {
    const bool pre_weighted = updates.front().pre_weighted;
    double total = 0.0;
    for (const ModelUpdateMsg& u : updates) total += static_cast<double>(u.num_samples);

    RobustAggregateResult result;
    result.params.reserve(updates.front().params.size());
    for (const Tensor& t : updates.front().params) result.params.emplace_back(t.shape());
    for (const ModelUpdateMsg& u : updates) {
      const float w = pre_weighted ? 1.0f : static_cast<float>(u.num_samples);
      nn::param_list_add_scaled(result.params, u.params, w);
    }
    nn::param_list_scale(result.params, static_cast<float>(1.0 / total));
    return result;
  }
};

// Shared screen for the coordinate-wise strategies: clients far from the
// coordinate-wise median (on scored tensors) are excluded up front.
class CoordinateWiseAggregator : public RobustAggregator {
 public:
  explicit CoordinateWiseAggregator(RobustConfig config) : config_(std::move(config)) {}

  RobustAggregateResult aggregate(const std::vector<ModelUpdateMsg>& updates,
                                  const nn::ParamList& /*global*/) override {
    require_raw_updates(updates, name().c_str());
    const std::size_t n = updates.size();
    const std::vector<bool> excluded = excluded_mask(config_, updates.front().params.size());

    RobustAggregateResult result;
    std::vector<std::size_t> survivors = all_indices(n);
    if (n >= 3) {
      const nn::ParamList center = coordinate_median(updates, survivors, excluded, exec_);
      std::vector<double> dist(n, 0.0);
      run_range(exec_, n, 1, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i)
          dist[static_cast<std::size_t>(i)] = std::sqrt(scored_sq_distance(
              updates[static_cast<std::size_t>(i)].params, center, excluded));
      });
      const double med = median_of(dist);
      const double threshold = config_.outlier_threshold * med;
      survivors.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (dist[i] > threshold && dist[i] > 0.0) {
          std::ostringstream os;
          os << name() << "-outlier: distance to coordinate-wise median " << dist[i]
             << " exceeds " << config_.outlier_threshold << " x median distance " << med;
          result.flags.push_back({updates[i].client_id, os.str(), /*excluded=*/true});
        } else {
          survivors.push_back(i);
        }
      }
      // The screen keeps at least the median half of the cohort, so
      // `survivors` is never empty here.
    }

    result.params.reserve(updates.front().params.size());
    for (std::size_t t = 0; t < updates.front().params.size(); ++t) {
      if (excluded[t]) {
        // Obfuscation noise: a robust statistic is meaningless, a plain
        // average keeps the broadcast well-formed.
        result.params.push_back(weighted_mean_tensor(updates, survivors, t, exec_));
      } else {
        result.params.push_back(robust_statistic(updates, survivors, t));
      }
    }
    return result;
  }

 protected:
  // Per-coordinate robust statistic over the surviving clients.
  virtual Tensor robust_statistic(const std::vector<ModelUpdateMsg>& updates,
                                  const std::vector<std::size_t>& members,
                                  std::size_t t) const = 0;

  static nn::ParamList coordinate_median(const std::vector<ModelUpdateMsg>& updates,
                                         const std::vector<std::size_t>& members,
                                         const std::vector<bool>& excluded,
                                         const ExecutionContext* exec) {
    nn::ParamList out;
    out.reserve(updates.front().params.size());
    for (std::size_t t = 0; t < updates.front().params.size(); ++t) {
      Tensor med(updates.front().params[t].shape());
      if (!excluded[t]) {
        auto vo = med.values();
        run_range(exec, vo.size(), coord_grain(members.size()),
                  [&](std::int64_t j0, std::int64_t j1) {
                    std::vector<double> column;
                    column.reserve(members.size());
                    for (std::int64_t j = j0; j < j1; ++j) {
                      column.clear();
                      for (const std::size_t i : members)
                        column.push_back(static_cast<double>(
                            updates[i].params[t].values()[static_cast<std::size_t>(j)]));
                      vo[static_cast<std::size_t>(j)] = static_cast<float>(median_of(column));
                    }
                  });
      }
      out.push_back(std::move(med));
    }
    return out;
  }

  RobustConfig config_;
};

class MedianAggregator final : public CoordinateWiseAggregator {
 public:
  using CoordinateWiseAggregator::CoordinateWiseAggregator;
  std::string name() const override { return "median"; }

 protected:
  Tensor robust_statistic(const std::vector<ModelUpdateMsg>& updates,
                          const std::vector<std::size_t>& members,
                          std::size_t t) const override {
    Tensor out(updates.front().params[t].shape());
    auto vo = out.values();
    run_range(exec_, vo.size(), coord_grain(members.size()),
              [&](std::int64_t j0, std::int64_t j1) {
                std::vector<double> column;
                column.reserve(members.size());
                for (std::int64_t j = j0; j < j1; ++j) {
                  column.clear();
                  for (const std::size_t i : members)
                    column.push_back(static_cast<double>(
                        updates[i].params[t].values()[static_cast<std::size_t>(j)]));
                  vo[static_cast<std::size_t>(j)] = static_cast<float>(median_of(column));
                }
              });
    return out;
  }
};

class TrimmedMeanAggregator final : public CoordinateWiseAggregator {
 public:
  using CoordinateWiseAggregator::CoordinateWiseAggregator;
  std::string name() const override { return "trimmed_mean"; }

 protected:
  Tensor robust_statistic(const std::vector<ModelUpdateMsg>& updates,
                          const std::vector<std::size_t>& members,
                          std::size_t t) const override {
    const std::size_t m = members.size();
    const std::size_t k = std::min(
        static_cast<std::size_t>(config_.trim_fraction * static_cast<double>(m)),
        m > 0 ? (m - 1) / 2 : 0);
    Tensor out(updates.front().params[t].shape());
    auto vo = out.values();
    run_range(exec_, vo.size(), coord_grain(m), [&](std::int64_t j0, std::int64_t j1) {
      std::vector<double> column(m);
      for (std::int64_t j = j0; j < j1; ++j) {
        for (std::size_t c = 0; c < m; ++c)
          column[c] = static_cast<double>(
              updates[members[c]].params[t].values()[static_cast<std::size_t>(j)]);
        std::sort(column.begin(), column.end());
        double sum = 0.0;
        for (std::size_t c = k; c < m - k; ++c) sum += column[c];
        vo[static_cast<std::size_t>(j)] =
            static_cast<float>(sum / static_cast<double>(m - 2 * k));
      }
    });
    return out;
  }
};

// FedAvg over deltas with per-update norm clipping: the clip bound is
// self-calibrating (clip_multiplier x the median scored-delta norm), so a
// model-replacement update's influence collapses to an honest client's.
class NormClipAggregator final : public RobustAggregator {
 public:
  explicit NormClipAggregator(RobustConfig config) : config_(std::move(config)) {}
  std::string name() const override { return "norm_clip"; }

  RobustAggregateResult aggregate(const std::vector<ModelUpdateMsg>& updates,
                                  const nn::ParamList& global) override {
    require_raw_updates(updates, "norm_clip");
    const std::size_t n = updates.size();
    const std::vector<bool> excluded = excluded_mask(config_, global.size());

    std::vector<double> norms(n, 0.0);
    run_range(exec_, n, 1, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i)
        norms[static_cast<std::size_t>(i)] = std::sqrt(scored_sq_distance(
            updates[static_cast<std::size_t>(i)].params, global, excluded));
    });
    const double bound = config_.clip_multiplier * median_of(norms);

    RobustAggregateResult result;
    double total = 0.0;
    for (const ModelUpdateMsg& u : updates) total += static_cast<double>(u.num_samples);

    std::vector<double> scale(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (norms[i] > bound && norms[i] > 0.0) {
        scale[i] = bound / norms[i];
        std::ostringstream os;
        os << "norm-clipped: delta norm " << norms[i] << " -> " << bound;
        result.flags.push_back({updates[i].client_id, os.str(), /*excluded=*/false});
      }
    }

    result.params.reserve(global.size());
    const std::vector<std::size_t> everyone = all_indices(n);
    for (std::size_t t = 0; t < global.size(); ++t) {
      if (excluded[t]) {
        result.params.push_back(weighted_mean_tensor(updates, everyone, t, exec_));
        continue;
      }
      Tensor out(global[t]);
      auto vo = out.values();
      const auto vg = global[t].values();
      // Per coordinate the clients accumulate in ascending order no matter
      // how the coordinates are chunked — matches the sequential sums.
      run_range(exec_, vo.size(), coord_grain(n), [&](std::int64_t j0, std::int64_t j1) {
        for (std::size_t i = 0; i < n; ++i) {
          const double w = static_cast<double>(updates[i].num_samples) / total * scale[i];
          const auto vi = updates[i].params[t].values();
          for (std::int64_t j = j0; j < j1; ++j)
            vo[static_cast<std::size_t>(j)] += static_cast<float>(
                w * (static_cast<double>(vi[static_cast<std::size_t>(j)]) -
                     static_cast<double>(vg[static_cast<std::size_t>(j)])));
        }
      });
      result.params.push_back(std::move(out));
    }
    return result;
  }

 private:
  RobustConfig config_;
};

// Krum / Multi-Krum (Blanchard et al., NeurIPS '17): each update is scored
// by the sum of squared distances to its n - f - 2 nearest peers; the m
// best-scored updates are averaged, the rest excluded.
class KrumAggregator final : public RobustAggregator {
 public:
  KrumAggregator(RobustConfig config, bool multi)
      : config_(std::move(config)), multi_(multi) {}
  std::string name() const override { return multi_ ? "multi_krum" : "krum"; }

  RobustAggregateResult aggregate(const std::vector<ModelUpdateMsg>& updates,
                                  const nn::ParamList& global) override {
    require_raw_updates(updates, name().c_str());
    const std::size_t n = updates.size();
    const std::vector<bool> excluded = excluded_mask(config_, global.size());
    const std::size_t f =
        std::min(config_.assumed_byzantine, n >= 3 ? n - 3 : std::size_t{0});
    const std::size_t neighbors =
        std::max<std::size_t>(1, std::min(n - 1, n >= f + 2 ? n - f - 2 : 1));

    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    // Each task owns whole rows (the upper triangle of them), so no two
    // tasks write the same cell; the mirror fills the lower triangle after.
    run_range(exec_, n, 1, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i)
        for (std::size_t j = static_cast<std::size_t>(i) + 1; j < n; ++j)
          d[static_cast<std::size_t>(i)][j] = scored_sq_distance(
              updates[static_cast<std::size_t>(i)].params, updates[j].params, excluded);
    });
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) d[j][i] = d[i][j];

    std::vector<std::pair<double, std::size_t>> scored(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> row;
      row.reserve(n - 1);
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) row.push_back(d[i][j]);
      std::sort(row.begin(), row.end());
      double score = 0.0;
      for (std::size_t k = 0; k < std::min(neighbors, row.size()); ++k) score += row[k];
      scored[i] = {score, i};
    }
    // Tie-break on the index so equal scores select deterministically.
    std::sort(scored.begin(), scored.end());

    std::size_t m = 1;
    if (multi_) {
      m = config_.multi_krum_select != 0 ? config_.multi_krum_select : n - f;
      m = std::max<std::size_t>(1, std::min(m, n));
    }

    RobustAggregateResult result;
    std::vector<std::size_t> selected;
    for (std::size_t rank = 0; rank < n; ++rank) {
      const auto [score, i] = scored[rank];
      if (rank < m) {
        selected.push_back(i);
      } else {
        std::ostringstream os;
        os << "krum-rank: " << rank + 1 << "/" << n << " (score " << score
           << ", worst selected " << scored[m - 1].first << ")";
        result.flags.push_back({updates[i].client_id, os.str(), /*excluded=*/true});
      }
    }
    std::sort(selected.begin(), selected.end());
    result.params = weighted_mean_params(updates, selected, exec_);
    return result;
  }

 private:
  RobustConfig config_;
  bool multi_;
};

}  // namespace

std::unique_ptr<RobustAggregator> make_robust_aggregator(const RobustConfig& config) {
  DINAR_CHECK(config.trim_fraction >= 0.0 && config.trim_fraction < 0.5,
              "robust.trim_fraction = " << config.trim_fraction
                                        << " outside [0, 0.5)");
  DINAR_CHECK(config.outlier_threshold >= 1.0,
              "robust.outlier_threshold = " << config.outlier_threshold
                                            << " must be >= 1 (the screen must keep "
                                               "the median half of the cohort)");
  DINAR_CHECK(config.clip_multiplier > 0.0,
              "robust.clip_multiplier = " << config.clip_multiplier
                                          << " must be positive");
  if (config.method == "fedavg") return std::make_unique<FedAvgAggregator>();
  if (config.method == "median") return std::make_unique<MedianAggregator>(config);
  if (config.method == "trimmed_mean")
    return std::make_unique<TrimmedMeanAggregator>(config);
  if (config.method == "norm_clip") return std::make_unique<NormClipAggregator>(config);
  if (config.method == "krum") return std::make_unique<KrumAggregator>(config, false);
  if (config.method == "multi_krum")
    return std::make_unique<KrumAggregator>(config, true);
  throw Error("unknown robust aggregation method: " + config.method);
}

std::vector<std::string> robust_aggregator_names() {
  return {"fedavg", "median", "trimmed_mean", "norm_clip", "krum", "multi_krum"};
}

}  // namespace dinar::fl
