#include "fl/robust_aggregator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.h"
#include "util/execution_context.h"

namespace dinar::fl {
namespace {

// Runs fn over [0, n) — chunked across the context's pool, or inline when
// the context is null. Every index is handled by exactly one chunk, so any
// per-coordinate computation below is bit-identical for any thread count.
void run_range(const ExecutionContext* exec, std::size_t n, std::size_t grain,
               const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (exec != nullptr)
    exec->parallel_for(static_cast<std::int64_t>(n), fn, grain);
  else
    fn(0, static_cast<std::int64_t>(n));
}

// Per-coordinate loops cost ~members ops each; keep chunks near 16k ops.
std::size_t coord_grain(std::size_t members) {
  return std::max<std::size_t>(std::size_t{64}, 16384 / std::max<std::size_t>(1, members));
}

// Marks the layer-index entries excluded from scoring (obfuscated layers).
std::vector<bool> excluded_mask(const RobustConfig& config, std::size_t num_entries) {
  std::vector<bool> mask(num_entries, false);
  for (const std::size_t t : config.excluded_tensors) {
    DINAR_CHECK(t < num_entries, "excluded tensor index " << t
                                                          << " out of range (model has "
                                                          << num_entries << " entries)");
    mask[t] = true;
  }
  return mask;
}

void require_raw_updates(std::span<const ModelUpdateMsg> updates, const char* name) {
  for (const ModelUpdateMsg& u : updates)
    DINAR_CHECK(!u.pre_weighted,
                name << " cannot score pre-weighted (secure-aggregation) updates; "
                        "client "
                     << u.client_id << " sent one");
}

// Maximal contiguous float range of the arena whose entries share one
// scoring treatment. Merging adjacent same-treatment entries gives the
// coordinate loops long contiguous spans to stream.
struct Run {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t numel() const { return end - begin; }
};

// Runs of entries whose excluded-ness equals `excluded`, in arena order.
std::vector<Run> runs_of(const nn::LayerIndex& index,
                         const std::vector<bool>& excluded_entries, bool excluded) {
  std::vector<Run> runs;
  for (std::size_t t = 0; t < index.num_entries(); ++t) {
    if (excluded_entries[t] != excluded) continue;
    const nn::LayerEntry& e = index.entry(t);
    if (e.numel == 0) continue;
    if (!runs.empty() && runs.back().end == e.offset)
      runs.back().end = e.offset + e.numel;
    else
      runs.push_back({e.offset, e.offset + e.numel});
  }
  return runs;
}

// Squared L2 distance over the scored runs. Double accumulation in
// ascending arena order — identical to the old per-tensor loop, since runs
// are merged consecutive entries.
double scored_sq_distance(std::span<const float> a, std::span<const float> b,
                          const std::vector<Run>& scored) {
  double s = 0.0;
  for (const Run& run : scored) {
    for (std::int64_t j = run.begin; j < run.end; ++j) {
      const double d = static_cast<double>(a[static_cast<std::size_t>(j)]) -
                       static_cast<double>(b[static_cast<std::size_t>(j)]);
      s += d * d;
    }
  }
  return s;
}

double median_of(std::vector<double> v) {
  DINAR_CHECK(!v.empty(), "median of an empty set");
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const double lower =
        *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

double total_weight(std::span<const ModelUpdateMsg> updates,
                    const std::vector<std::size_t>& members) {
  double total = 0.0;
  for (const std::size_t i : members) total += static_cast<double>(updates[i].num_samples);
  return total;
}

// Every member's scored-delta L2 norm vs the pre-round global model —
// `ShardStats`'s norm distribution, and norm_clip's clip input.
std::vector<double> scored_delta_norms(std::span<const ModelUpdateMsg> updates,
                                       const nn::FlatParams& global,
                                       const std::vector<Run>& scored,
                                       const ExecutionContext* exec) {
  std::vector<double> norms(updates.size(), 0.0);
  run_range(exec, updates.size(), 1, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i)
      norms[static_cast<std::size_t>(i)] = std::sqrt(scored_sq_distance(
          updates[static_cast<std::size_t>(i)].params.as_span(), global.as_span(),
          scored));
  });
  return norms;
}

void set_norm_stats(ShardStats& stats, const std::vector<double>& norms) {
  if (norms.empty()) return;
  stats.min_norm = *std::min_element(norms.begin(), norms.end());
  stats.max_norm = *std::max_element(norms.begin(), norms.end());
  stats.median_norm = median_of(norms);
}

// Sample-weighted FedAvg of `members`' raw parameters over one run,
// accumulated into `out` (caller zeroes the range first). Per coordinate
// the members accumulate in ascending member order regardless of chunking,
// so the float sums match the sequential path.
void weighted_mean_run(std::span<const ModelUpdateMsg> updates,
                       const std::vector<std::size_t>& members, Run run,
                       std::span<float> out, const ExecutionContext* exec) {
  const double total = total_weight(updates, members);
  run_range(exec, static_cast<std::size_t>(run.numel()), coord_grain(members.size()),
            [&](std::int64_t j0, std::int64_t j1) {
              for (const std::size_t i : members) {
                const double w = static_cast<double>(updates[i].num_samples) / total;
                const std::span<const float> vi = updates[i].params.as_span();
                for (std::int64_t j = run.begin + j0; j < run.begin + j1; ++j)
                  out[static_cast<std::size_t>(j)] += static_cast<float>(
                      w * static_cast<double>(vi[static_cast<std::size_t>(j)]));
              }
            });
}

// Plain FedAvg over a member subset, the whole arena (Krum's final average
// reduces to this).
nn::FlatParams weighted_mean_params(std::span<const ModelUpdateMsg> updates,
                                    const std::vector<std::size_t>& members,
                                    const ExecutionContext* exec) {
  nn::FlatParams out(updates.front().params.index());
  weighted_mean_run(updates, members, {0, out.numel()}, out.as_span(), exec);
  return out;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

// Default streaming adapter: buffers absorbed updates and finalizes through
// the batch shard_aggregate(). The buffer's order is the absorb order —
// exactly the per-shard span order plan_shards produces for the same
// acceptance sequence — so the summary is trivially bit-identical to the
// barriered edge pass. Strategies whose statistic needs the whole shard at
// once (median, trimmed mean, Krum) stream through this adapter.
class BufferingShardAccumulator final : public ShardAccumulator {
 public:
  BufferingShardAccumulator(RobustAggregator& owner, const nn::FlatParams& global)
      : owner_(owner), global_(global) {}

  void absorb(const ModelUpdateMsg& update) override { buffer_.push_back(update); }

  ShardSummary finalize() override {
    if (buffer_.empty()) return ShardSummary{};
    return owner_.shard_aggregate(buffer_, global_);
  }

 private:
  RobustAggregator& owner_;
  const nn::FlatParams& global_;
  std::vector<ModelUpdateMsg> buffer_;
};

// True constant-memory accumulator for FedAvg. Bit-identity with the batch
// pass holds term by term: per coordinate the batch loop accumulates
// `acc[j] += w_i * v_i[j]` over updates in ascending span order (chunking
// never reorders a coordinate's sequence), absorb applies the identical
// float multiply-adds in absorb order; `total` is the same double sum in
// the same order; the final `*= inv` touches each coordinate once; and
// each scored-delta norm is a pure function of (update, global), taken in
// the same vector order. Loops run inline — absorb is called on the commit
// thread while the pool is busy with the straggler tail (see the header).
class StreamingFedAvgAccumulator final : public ShardAccumulator {
 public:
  StreamingFedAvgAccumulator(const RobustConfig& config, const nn::FlatParams& global)
      : config_(config), global_(global) {}

  void absorb(const ModelUpdateMsg& update) override {
    if (stats_.num_updates == 0) {
      pre_weighted_ = update.pre_weighted;
      acc_ = nn::FlatParams(update.params.index());
      // Pre-weighted (secure-aggregation) parameters are masked partial
      // sums; no meaningful distance to the global exists, so the norm
      // distribution stays zero (matches the batch pass).
      if (!pre_weighted_)
        scored_ = runs_of(*global_.index(),
                          excluded_mask(config_, global_.index()->num_entries()),
                          /*excluded=*/false);
    }
    const float w = pre_weighted_ ? 1.0f : static_cast<float>(update.num_samples);
    std::span<float> acc = acc_.as_span();
    const std::span<const float> v = update.params.as_span();
    for (std::size_t j = 0; j < acc.size(); ++j) acc[j] += w * v[j];
    total_ += static_cast<double>(update.num_samples);
    if (!pre_weighted_)
      norms_.push_back(std::sqrt(
          scored_sq_distance(update.params.as_span(), global_.as_span(), scored_)));
    ++stats_.num_updates;
  }

  ShardSummary finalize() override {
    ShardSummary summary;
    if (stats_.num_updates == 0) return summary;
    const float inv = static_cast<float>(1.0 / total_);
    std::span<float> acc = acc_.as_span();
    for (std::size_t j = 0; j < acc.size(); ++j) acc[j] *= inv;
    summary.params = std::move(acc_);
    summary.stats = stats_;
    summary.stats.num_accepted = stats_.num_updates;
    summary.stats.weight = total_;
    if (!pre_weighted_) set_norm_stats(summary.stats, norms_);
    return summary;
  }

 private:
  const RobustConfig& config_;
  const nn::FlatParams& global_;
  std::vector<Run> scored_;
  nn::FlatParams acc_;
  bool pre_weighted_ = false;
  double total_ = 0.0;
  std::vector<double> norms_;
  ShardStats stats_;
};

// The seed's FedAvg, wrapped in the aggregator interface. The only
// strategy that accepts pre-weighted updates (it never scores clients).
class FedAvgAggregator final : public RobustAggregator {
 public:
  explicit FedAvgAggregator(RobustConfig config) : config_(std::move(config)) {}
  std::string name() const override { return "fedavg"; }

  ShardSummary shard_aggregate(std::span<const ModelUpdateMsg> updates,
                               const nn::FlatParams& global) override {
    const bool pre_weighted = updates.front().pre_weighted;
    double total = 0.0;
    for (const ModelUpdateMsg& u : updates) total += static_cast<double>(u.num_samples);

    ShardSummary summary;
    summary.params = nn::FlatParams(updates.front().params.index());
    std::span<float> acc = summary.params.as_span();
    // One contiguous pass per client in ascending order; chunking cannot
    // change any coordinate's accumulation sequence.
    run_range(exec_, acc.size(), coord_grain(updates.size()),
              [&](std::int64_t j0, std::int64_t j1) {
                for (const ModelUpdateMsg& u : updates) {
                  const float w =
                      pre_weighted ? 1.0f : static_cast<float>(u.num_samples);
                  const std::span<const float> vi = u.params.as_span();
                  for (std::int64_t j = j0; j < j1; ++j)
                    acc[static_cast<std::size_t>(j)] +=
                        w * vi[static_cast<std::size_t>(j)];
                }
              });
    const float inv = static_cast<float>(1.0 / total);
    run_range(exec_, acc.size(), coord_grain(1),
              [&](std::int64_t j0, std::int64_t j1) {
                for (std::int64_t j = j0; j < j1; ++j)
                  acc[static_cast<std::size_t>(j)] *= inv;
              });

    summary.stats.num_updates = updates.size();
    summary.stats.num_accepted = updates.size();
    summary.stats.weight = total;
    // Pre-weighted (secure-aggregation) parameters are masked partial sums,
    // not models — no meaningful distance to the global exists before
    // unweighting, so the norm distribution stays zero.
    if (!pre_weighted) {
      const std::vector<bool> excluded =
          excluded_mask(config_, global.index()->num_entries());
      set_norm_stats(summary.stats,
                     scored_delta_norms(updates, global,
                                        runs_of(*global.index(), excluded,
                                                /*excluded=*/false),
                                        exec_));
    }
    return summary;
  }

  std::unique_ptr<ShardAccumulator> begin_shard(const nn::FlatParams& global) override {
    return std::make_unique<StreamingFedAvgAccumulator>(config_, global);
  }

 private:
  RobustConfig config_;
};

// Shared screen for the coordinate-wise strategies: clients far from the
// coordinate-wise median (on scored runs) are excluded up front.
class CoordinateWiseAggregator : public RobustAggregator {
 public:
  explicit CoordinateWiseAggregator(RobustConfig config) : config_(std::move(config)) {}

  ShardSummary shard_aggregate(std::span<const ModelUpdateMsg> updates,
                               const nn::FlatParams& global) override {
    require_raw_updates(updates, name().c_str());
    const std::size_t n = updates.size();
    const auto& index = *updates.front().params.index();
    const std::vector<bool> excluded = excluded_mask(config_, index.num_entries());
    const std::vector<Run> scored = runs_of(index, excluded, /*excluded=*/false);
    const std::vector<Run> obfuscated = runs_of(index, excluded, /*excluded=*/true);

    ShardSummary summary;
    std::vector<std::size_t> survivors = all_indices(n);
    if (n >= 3) {
      nn::FlatParams center(updates.front().params.index());
      coordinate_median_runs(updates, survivors, scored, center.as_span(), exec_);
      std::vector<double> dist(n, 0.0);
      run_range(exec_, n, 1, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i)
          dist[static_cast<std::size_t>(i)] = std::sqrt(scored_sq_distance(
              updates[static_cast<std::size_t>(i)].params.as_span(),
              center.as_span(), scored));
      });
      const double med = median_of(dist);
      const double threshold = config_.outlier_threshold * med;
      survivors.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (dist[i] > threshold && dist[i] > 0.0) {
          std::ostringstream os;
          os << name() << "-outlier: distance to coordinate-wise median " << dist[i]
             << " exceeds " << config_.outlier_threshold << " x median distance " << med;
          summary.flags.push_back({updates[i].client_id, os.str(), /*excluded=*/true});
        } else {
          survivors.push_back(i);
        }
      }
      // The screen keeps at least the median half of the cohort, so
      // `survivors` is never empty here.
    }

    summary.params = nn::FlatParams(updates.front().params.index());
    for (const Run& run : scored)
      robust_statistic_run(updates, survivors, run, summary.params.as_span());
    for (const Run& run : obfuscated) {
      // Obfuscation noise: a robust statistic is meaningless, a plain
      // average keeps the broadcast well-formed.
      weighted_mean_run(updates, survivors, run, summary.params.as_span(), exec_);
    }

    summary.stats.num_updates = n;
    summary.stats.num_accepted = survivors.size();
    summary.stats.num_flagged = summary.flags.size();
    summary.stats.weight = total_weight(updates, survivors);
    set_norm_stats(summary.stats, scored_delta_norms(updates, global, scored, exec_));
    return summary;
  }

 protected:
  // Per-coordinate robust statistic over the surviving clients, written
  // into the run's slice of the (zero-initialized) output arena.
  virtual void robust_statistic_run(std::span<const ModelUpdateMsg> updates,
                                    const std::vector<std::size_t>& members, Run run,
                                    std::span<float> out) const = 0;

  static void coordinate_median_runs(std::span<const ModelUpdateMsg> updates,
                                     const std::vector<std::size_t>& members,
                                     const std::vector<Run>& runs,
                                     std::span<float> out,
                                     const ExecutionContext* exec) {
    for (const Run& run : runs) {
      run_range(exec, static_cast<std::size_t>(run.numel()), coord_grain(members.size()),
                [&](std::int64_t j0, std::int64_t j1) {
                  std::vector<double> column;
                  column.reserve(members.size());
                  for (std::int64_t j = run.begin + j0; j < run.begin + j1; ++j) {
                    column.clear();
                    for (const std::size_t i : members)
                      column.push_back(static_cast<double>(
                          updates[i].params.as_span()[static_cast<std::size_t>(j)]));
                    out[static_cast<std::size_t>(j)] =
                        static_cast<float>(median_of(column));
                  }
                });
    }
  }

  RobustConfig config_;
};

class MedianAggregator final : public CoordinateWiseAggregator {
 public:
  using CoordinateWiseAggregator::CoordinateWiseAggregator;
  std::string name() const override { return "median"; }

 protected:
  void robust_statistic_run(std::span<const ModelUpdateMsg> updates,
                            const std::vector<std::size_t>& members, Run run,
                            std::span<float> out) const override {
    coordinate_median_runs(updates, members, {run}, out, exec_);
  }
};

class TrimmedMeanAggregator final : public CoordinateWiseAggregator {
 public:
  using CoordinateWiseAggregator::CoordinateWiseAggregator;
  std::string name() const override { return "trimmed_mean"; }

 protected:
  void robust_statistic_run(std::span<const ModelUpdateMsg> updates,
                            const std::vector<std::size_t>& members, Run run,
                            std::span<float> out) const override {
    const std::size_t m = members.size();
    const std::size_t k = std::min(
        static_cast<std::size_t>(config_.trim_fraction * static_cast<double>(m)),
        m > 0 ? (m - 1) / 2 : 0);
    run_range(exec_, static_cast<std::size_t>(run.numel()), coord_grain(m),
              [&](std::int64_t j0, std::int64_t j1) {
                std::vector<double> column(m);
                for (std::int64_t j = run.begin + j0; j < run.begin + j1; ++j) {
                  for (std::size_t c = 0; c < m; ++c)
                    column[c] = static_cast<double>(
                        updates[members[c]].params.as_span()[static_cast<std::size_t>(j)]);
                  std::sort(column.begin(), column.end());
                  double sum = 0.0;
                  for (std::size_t c = k; c < m - k; ++c) sum += column[c];
                  out[static_cast<std::size_t>(j)] =
                      static_cast<float>(sum / static_cast<double>(m - 2 * k));
                }
              });
  }
};

// FedAvg over deltas with per-update norm clipping: the clip bound is
// self-calibrating (clip_multiplier x the median scored-delta norm), so a
// model-replacement update's influence collapses to an honest client's.
// Under sharding the bound calibrates per shard (DESIGN.md §12).
class NormClipAggregator final : public RobustAggregator {
 public:
  explicit NormClipAggregator(RobustConfig config) : config_(std::move(config)) {}
  std::string name() const override { return "norm_clip"; }

  ShardSummary shard_aggregate(std::span<const ModelUpdateMsg> updates,
                               const nn::FlatParams& global) override {
    require_raw_updates(updates, "norm_clip");
    const std::size_t n = updates.size();
    const auto& index = *global.index();
    const std::vector<bool> excluded = excluded_mask(config_, index.num_entries());
    const std::vector<Run> scored = runs_of(index, excluded, /*excluded=*/false);
    const std::vector<Run> obfuscated = runs_of(index, excluded, /*excluded=*/true);

    const std::vector<double> norms = scored_delta_norms(updates, global, scored, exec_);
    const double bound = config_.clip_multiplier * median_of(norms);

    ShardSummary summary;
    double total = 0.0;
    for (const ModelUpdateMsg& u : updates) total += static_cast<double>(u.num_samples);

    std::vector<double> scale(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (norms[i] > bound && norms[i] > 0.0) {
        scale[i] = bound / norms[i];
        std::ostringstream os;
        os << "norm-clipped: delta norm " << norms[i] << " -> " << bound;
        summary.flags.push_back({updates[i].client_id, os.str(), /*excluded=*/false});
      }
    }

    summary.params = global;  // scored coordinates accumulate clipped deltas
    std::span<float> vo = summary.params.as_span();
    const std::span<const float> vg = global.as_span();
    const std::vector<std::size_t> everyone = all_indices(n);
    for (const Run& run : scored) {
      // Per coordinate the clients accumulate in ascending order no matter
      // how the coordinates are chunked — matches the sequential sums.
      run_range(exec_, static_cast<std::size_t>(run.numel()), coord_grain(n),
                [&](std::int64_t j0, std::int64_t j1) {
                  for (std::size_t i = 0; i < n; ++i) {
                    const double w =
                        static_cast<double>(updates[i].num_samples) / total * scale[i];
                    const std::span<const float> vi = updates[i].params.as_span();
                    for (std::int64_t j = run.begin + j0; j < run.begin + j1; ++j)
                      vo[static_cast<std::size_t>(j)] += static_cast<float>(
                          w * (static_cast<double>(vi[static_cast<std::size_t>(j)]) -
                               static_cast<double>(vg[static_cast<std::size_t>(j)])));
                  }
                });
    }
    for (const Run& run : obfuscated) {
      // Replace the carried-over global slice with the plain average.
      for (std::int64_t j = run.begin; j < run.end; ++j)
        vo[static_cast<std::size_t>(j)] = 0.0f;
      weighted_mean_run(updates, everyone, run, vo, exec_);
    }

    summary.stats.num_updates = n;
    summary.stats.num_accepted = n;  // clipping down-weights, never excludes
    summary.stats.num_flagged = summary.flags.size();
    summary.stats.weight = total;
    set_norm_stats(summary.stats, norms);
    return summary;
  }

 private:
  RobustConfig config_;
};

// Krum / Multi-Krum (Blanchard et al., NeurIPS '17): each update is scored
// by the sum of squared distances to its n - f - 2 nearest peers; the m
// best-scored updates are averaged, the rest excluded.
class KrumAggregator final : public RobustAggregator {
 public:
  KrumAggregator(RobustConfig config, bool multi)
      : config_(std::move(config)), multi_(multi) {}
  std::string name() const override { return multi_ ? "multi_krum" : "krum"; }

  ShardSummary shard_aggregate(std::span<const ModelUpdateMsg> updates,
                               const nn::FlatParams& global) override {
    require_raw_updates(updates, name().c_str());
    const std::size_t n = updates.size();
    const auto& index = *global.index();
    const std::vector<bool> excluded = excluded_mask(config_, index.num_entries());
    const std::vector<Run> scored = runs_of(index, excluded, /*excluded=*/false);
    const std::size_t f =
        std::min(config_.assumed_byzantine, n >= 3 ? n - 3 : std::size_t{0});
    const std::size_t neighbors =
        std::max<std::size_t>(1, std::min(n - 1, n >= f + 2 ? n - f - 2 : 1));

    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    // Each task owns whole rows (the upper triangle of them), so no two
    // tasks write the same cell; the mirror fills the lower triangle after.
    run_range(exec_, n, 1, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i)
        for (std::size_t j = static_cast<std::size_t>(i) + 1; j < n; ++j)
          d[static_cast<std::size_t>(i)][j] = scored_sq_distance(
              updates[static_cast<std::size_t>(i)].params.as_span(),
              updates[j].params.as_span(), scored);
    });
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) d[j][i] = d[i][j];

    std::vector<std::pair<double, std::size_t>> scored_clients(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> row;
      row.reserve(n - 1);
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) row.push_back(d[i][j]);
      std::sort(row.begin(), row.end());
      double score = 0.0;
      for (std::size_t k = 0; k < std::min(neighbors, row.size()); ++k) score += row[k];
      scored_clients[i] = {score, i};
    }
    // Tie-break on the index so equal scores select deterministically.
    std::sort(scored_clients.begin(), scored_clients.end());

    std::size_t m = 1;
    if (multi_) {
      m = config_.multi_krum_select != 0 ? config_.multi_krum_select : n - f;
      m = std::max<std::size_t>(1, std::min(m, n));
    }

    ShardSummary summary;
    std::vector<std::size_t> selected;
    for (std::size_t rank = 0; rank < n; ++rank) {
      const auto [score, i] = scored_clients[rank];
      if (rank < m) {
        selected.push_back(i);
      } else {
        std::ostringstream os;
        os << "krum-rank: " << rank + 1 << "/" << n << " (score " << score
           << ", worst selected " << scored_clients[m - 1].first << ")";
        summary.flags.push_back({updates[i].client_id, os.str(), /*excluded=*/true});
      }
    }
    std::sort(selected.begin(), selected.end());
    summary.params = weighted_mean_params(updates, selected, exec_);

    summary.stats.num_updates = n;
    summary.stats.num_accepted = selected.size();
    summary.stats.num_flagged = summary.flags.size();
    summary.stats.weight = total_weight(updates, selected);
    set_norm_stats(summary.stats, scored_delta_norms(updates, global, scored, exec_));
    return summary;
  }

 private:
  RobustConfig config_;
  bool multi_;
};

}  // namespace

RobustAggregateResult RobustAggregator::combine(std::span<const ShardSummary> summaries,
                                                const nn::FlatParams& global) {
  std::vector<const ShardSummary*> live;
  for (const ShardSummary& s : summaries)
    if (!s.empty()) live.push_back(&s);
  DINAR_CHECK(!live.empty(),
              "combine: all " << summaries.size()
                              << " shard summaries are empty (every shard's clients "
                                 "churned away or were quarantined); carry the "
                                 "previous global model forward instead");

  double total = 0.0;
  for (const ShardSummary* s : live) {
    DINAR_CHECK(s->params.same_layout(global),
                "combine: shard " << s->stats.shard_id
                                  << " summary layout differs from the global model");
    DINAR_CHECK(s->stats.weight > 0.0, "combine: shard " << s->stats.shard_id
                                                         << " has non-positive weight "
                                                         << s->stats.weight);
    total += s->stats.weight;
  }

  RobustAggregateResult result;
  for (const ShardSummary& s : summaries)
    for (const AggregatorFlag& f : s.flags) result.flags.push_back(f);

  if (live.size() == 1) {
    // Copy the arena verbatim rather than accumulating from zero: float
    // addition would already perturb bits (0.0f + -0.0f == +0.0f), and the
    // single-shard path must be bit-identical to flat aggregation.
    result.params = live.front()->params;
    return result;
  }

  result.params = nn::FlatParams(global.index());
  std::span<float> out = result.params.as_span();
  // Shard-weight-proportional mean, summaries accumulated in ascending
  // position order per coordinate regardless of chunking — deterministic
  // for any thread count (same contract as weighted_mean_run).
  run_range(exec_, out.size(), coord_grain(live.size()),
            [&](std::int64_t j0, std::int64_t j1) {
              for (const ShardSummary* s : live) {
                const double w = s->stats.weight / total;
                const std::span<const float> vs = s->params.as_span();
                for (std::int64_t j = j0; j < j1; ++j)
                  out[static_cast<std::size_t>(j)] += static_cast<float>(
                      w * static_cast<double>(vs[static_cast<std::size_t>(j)]));
              }
            });
  return result;
}

std::unique_ptr<ShardAccumulator> RobustAggregator::begin_shard(
    const nn::FlatParams& global) {
  return std::make_unique<BufferingShardAccumulator>(*this, global);
}

RobustAggregateResult RobustAggregator::aggregate(std::span<const ModelUpdateMsg> updates,
                                                  const nn::FlatParams& global) {
  DINAR_CHECK(!updates.empty(), "aggregate of an empty cohort");
  const ShardSummary summary = shard_aggregate(updates, global);
  return combine(std::span<const ShardSummary>(&summary, 1), global);
}

const char* to_string(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kFedAvg: return "fedavg";
    case AggregatorKind::kMedian: return "median";
    case AggregatorKind::kTrimmedMean: return "trimmed_mean";
    case AggregatorKind::kNormClip: return "norm_clip";
    case AggregatorKind::kKrum: return "krum";
    case AggregatorKind::kMultiKrum: return "multi_krum";
  }
  throw Error("unknown AggregatorKind value " +
              std::to_string(static_cast<int>(kind)));
}

AggregatorKind aggregator_kind_from_name(const std::string& name) {
  static constexpr AggregatorKind kKinds[] = {
      AggregatorKind::kFedAvg,   AggregatorKind::kMedian,
      AggregatorKind::kTrimmedMean, AggregatorKind::kNormClip,
      AggregatorKind::kKrum,     AggregatorKind::kMultiKrum,
  };
  for (const AggregatorKind kind : kKinds)
    if (name == to_string(kind)) return kind;
  std::ostringstream os;
  os << "unknown robust aggregator kind '" << name << "' (expected ";
  bool first = true;
  for (const AggregatorKind kind : kKinds) {
    if (!first) os << "|";
    os << to_string(kind);
    first = false;
  }
  os << ")";
  throw Error(os.str());
}

std::unique_ptr<RobustAggregator> make_robust_aggregator(AggregatorKind kind,
                                                         RobustConfig config) {
  DINAR_CHECK(config.trim_fraction >= 0.0 && config.trim_fraction < 0.5,
              "robust.trim_fraction = " << config.trim_fraction
                                        << " outside [0, 0.5)");
  DINAR_CHECK(config.outlier_threshold >= 1.0,
              "robust.outlier_threshold = " << config.outlier_threshold
                                            << " must be >= 1 (the screen must keep "
                                               "the median half of the cohort)");
  DINAR_CHECK(config.clip_multiplier > 0.0,
              "robust.clip_multiplier = " << config.clip_multiplier
                                          << " must be positive");
  switch (kind) {
    case AggregatorKind::kFedAvg:
      return std::make_unique<FedAvgAggregator>(std::move(config));
    case AggregatorKind::kMedian:
      return std::make_unique<MedianAggregator>(std::move(config));
    case AggregatorKind::kTrimmedMean:
      return std::make_unique<TrimmedMeanAggregator>(std::move(config));
    case AggregatorKind::kNormClip:
      return std::make_unique<NormClipAggregator>(std::move(config));
    case AggregatorKind::kKrum:
      return std::make_unique<KrumAggregator>(std::move(config), false);
    case AggregatorKind::kMultiKrum:
      return std::make_unique<KrumAggregator>(std::move(config), true);
  }
  throw Error("unknown AggregatorKind value " +
              std::to_string(static_cast<int>(kind)));
}

std::unique_ptr<RobustAggregator> make_robust_aggregator(const RobustConfig& config) {
  return make_robust_aggregator(aggregator_kind_from_name(config.method), config);
}

std::vector<std::string> robust_aggregator_names() {
  return {"fedavg", "median", "trimmed_mean", "norm_clip", "krum", "multi_krum"};
}

}  // namespace dinar::fl
