#include "fl/simulation.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <unordered_set>

#include "util/error.h"
#include "util/logging.h"

namespace dinar::fl {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x44434B50;  // "DCKP"
constexpr std::uint32_t kCheckpointVersion = 1;

}  // namespace

FederatedSimulation::FederatedSimulation(nn::ModelFactory model_factory,
                                         data::FlSplit split, SimulationConfig config,
                                         DefenseBundle defenses)
    : model_factory_(std::move(model_factory)), split_(std::move(split)),
      config_(config), rng_(config.seed) {
  DINAR_CHECK(!split_.client_train.empty(), "split has no clients");
  DINAR_CHECK(config_.rounds > 0, "need at least one round");
  DINAR_CHECK(config_.max_retries >= 0, "negative max_retries");
  if (config_.faults.any()) transport_.enable_faults(config_.faults);

  // All participants start from the same initial model (standard FL).
  Rng init_rng = rng_.fork(0xC0FFEE);
  nn::Model initial = model_factory_(init_rng);
  server_ = std::make_unique<FlServer>(initial.parameters(), defenses.make_server());

  clients_.reserve(split_.client_train.size());
  for (std::size_t i = 0; i < split_.client_train.size(); ++i) {
    const int id = static_cast<int>(i);
    clients_.emplace_back(id, split_.client_train[i], nn::Model(initial),
                          opt::make_optimizer(config_.optimizer, config_.learning_rate),
                          defenses.make_client(id), config_.train,
                          rng_.fork(1000 + i));
  }
}

void FederatedSimulation::run() {
  while (server_->round() < config_.rounds) {
    run_round();
    const std::int64_t r = server_->round();
    const bool last = r >= config_.rounds;
    if (last || (config_.eval_every > 0 && r % config_.eval_every == 0)) {
      history_.push_back(evaluate_now());
      const RoundRecord& rec = history_.back();
      DINAR_INFO << "round " << rec.round << ": global acc "
                 << rec.global_test_accuracy << ", personalized acc "
                 << rec.personalized_test_accuracy;
    }
  }
}

std::vector<std::size_t> FederatedSimulation::select_participants(std::int64_t round) {
  // Client selection (paper §2.1): the server picks a fraction of the
  // registered clients for this round. The stream is forked from
  // (seed, round) rather than drawn sequentially, so a checkpoint-resumed
  // run re-selects the identical participant sets.
  std::vector<std::size_t> participants;
  if (config_.client_fraction >= 1.0) {
    participants.resize(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) participants[i] = i;
  } else {
    Rng select_rng = rng_.fork(0x5E1EC7ULL + static_cast<std::uint64_t>(round));
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.client_fraction *
                                    static_cast<double>(clients_.size())));
    std::vector<std::size_t> order = select_rng.permutation(clients_.size());
    participants.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));
    std::sort(participants.begin(), participants.end());
  }
  return participants;
}

const RoundOutcome& FederatedSimulation::run_round() {
  const std::int64_t round = server_->round();
  FaultInjector* faults = transport_.faults();
  if (faults != nullptr) faults->begin_round(round);

  RoundOutcome out;
  out.round = round;

  const std::vector<std::size_t> participants = select_participants(round);
  out.selected.reserve(participants.size());
  for (std::size_t i : participants) out.selected.push_back(static_cast<int>(i));

  // Crashed clients are unreachable for the whole round.
  std::vector<std::size_t> pending;
  for (std::size_t i : participants) {
    if (faults != nullptr && faults->is_crashed(static_cast<int>(i))) {
      faults->record_crashed_contact();
      out.crashed.push_back(static_cast<int>(i));
    } else {
      pending.push_back(i);
    }
  }

  const std::size_t live = pending.size();
  const std::size_t quorum =
      config_.min_clients == 0 ? live : std::min(config_.min_clients, live);

  const GlobalModelMsg broadcast_msg = server_->broadcast();
  const std::vector<std::uint8_t> broadcast_bytes = broadcast_msg.serialize();

  std::vector<ModelUpdateMsg> accepted;
  std::unordered_set<int> accepted_ids;
  std::optional<bool> weighting;
  // Last failure mode per still-pending client: 'd' = no intact broadcast,
  // 'u' = no upload copy arrived, 'q' = arrived but quarantined.
  std::map<std::size_t, char> fail_mode;

  const double round_start_clock = transport_.stats().simulated_latency_seconds;
  const int max_attempts = 1 + config_.max_retries;
  for (int attempt = 0; attempt < max_attempts && !pending.empty(); ++attempt) {
    if (attempt > 0) {
      out.retries_used = attempt;
      transport_.add_latency(config_.retry_backoff_seconds * attempt);
    }
    std::vector<std::size_t> still_pending;
    for (std::size_t i : pending) {
      const int id = static_cast<int>(i);

      // ---- downlink: the client needs one intact copy of the broadcast.
      bool got_global = false;
      for (const auto& copy : transport_.ship(LinkDir::kDown, id, broadcast_bytes)) {
        try {
          clients_[i].receive_global(
              GlobalModelMsg::deserialize(Transport::open(copy)));
          got_global = true;
          break;  // further copies are duplicates of the same broadcast
        } catch (const Error&) {
          // Corrupted broadcast copy: the client discards it and waits for
          // the next retry.
        }
      }
      if (!got_global) {
        fail_mode[i] = 'd';
        still_pending.push_back(i);
        continue;
      }

      // ---- local training + uplink.
      ModelUpdateMsg update = clients_[i].train_round();
      bool update_accepted = false;
      bool any_arrived = false;
      for (const auto& copy : transport_.ship(LinkDir::kUp, id, update.serialize())) {
        ModelUpdateMsg parsed;
        try {
          parsed = ModelUpdateMsg::deserialize(Transport::open(copy));
        } catch (const Error& e) {
          any_arrived = true;
          out.quarantined.push_back({id, std::string("corrupt: ") + e.what()});
          continue;
        }
        any_arrived = true;
        const UpdateVerdict verdict =
            server_->validate_update(parsed, accepted_ids, weighting);
        if (verdict.accepted) {
          weighting = parsed.pre_weighted;
          accepted_ids.insert(parsed.client_id);
          accepted.push_back(std::move(parsed));
          update_accepted = true;
        } else {
          out.quarantined.push_back({id, verdict.detail});
        }
      }
      if (update_accepted) {
        fail_mode.erase(i);
      } else {
        fail_mode[i] = any_arrived ? 'q' : 'u';
        still_pending.push_back(i);
      }
    }
    pending = std::move(still_pending);
    if (accepted.size() >= quorum) break;
    if (config_.round_deadline_seconds > 0.0 &&
        transport_.stats().simulated_latency_seconds - round_start_clock >=
            config_.round_deadline_seconds)
      break;
  }

  for (std::size_t i : pending) {
    const char mode = fail_mode.count(i) != 0 ? fail_mode[i] : 'u';
    if (mode == 'd') out.missed_broadcast.push_back(static_cast<int>(i));
    else if (mode == 'u') out.lost_update.push_back(static_cast<int>(i));
    // 'q': already listed under quarantined.
  }

  out.accepted.reserve(accepted.size());
  for (const ModelUpdateMsg& u : accepted) out.accepted.push_back(u.client_id);
  out.quorum_met = !accepted.empty() && accepted.size() >= quorum;
  if (out.quorum_met) {
    server_->aggregate_validated(accepted);
    last_updates_ = std::move(accepted);
  } else {
    // Degraded-but-live round: no quorum of valid updates arrived within
    // the retry budget, so the previous global model survives unchanged.
    server_->carry_forward();
    out.carried_forward = true;
    last_updates_.clear();
    DINAR_INFO << "round " << round << " carried forward: " << accepted.size()
               << "/" << quorum << " valid updates after " << out.retries_used
               << " retries";
  }
  round_log_.push_back(std::move(out));
  return round_log_.back();
}

void FederatedSimulation::save_checkpoint(BinaryWriter& w) const {
  w.write_u32(kCheckpointMagic);
  w.write_u32(kCheckpointVersion);
  w.write_i64(server_->round());
  nn::write_param_list(w, server_->global_params());
}

void FederatedSimulation::save_checkpoint(const std::string& path) const {
  BinaryWriter w;
  save_checkpoint(w);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  DINAR_CHECK(f.good(), "cannot open checkpoint file " << path);
  f.write(reinterpret_cast<const char*>(w.buffer().data()),
          static_cast<std::streamsize>(w.size()));
  DINAR_CHECK(f.good(), "failed writing checkpoint file " << path);
}

void FederatedSimulation::restore_checkpoint(BinaryReader& r) {
  DINAR_CHECK(r.read_u32() == kCheckpointMagic, "not a simulation checkpoint");
  const std::uint32_t version = r.read_u32();
  DINAR_CHECK(version == kCheckpointVersion,
              "unsupported checkpoint version " << version);
  const std::int64_t round = r.read_i64();
  nn::ParamList params = nn::read_param_list(r);
  DINAR_CHECK(r.exhausted(), "trailing bytes in simulation checkpoint");
  DINAR_CHECK(round <= config_.rounds, "checkpoint round " << round
                                                           << " exceeds configured "
                                                           << config_.rounds);
  for (const FlClient& c : clients_)
    DINAR_CHECK(c.round() <= round,
                "client " << c.id() << " is already past checkpoint round " << round
                          << "; restore into a freshly constructed simulation");
  server_->restore(round, std::move(params));
  last_updates_.clear();
}

void FederatedSimulation::restore_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  DINAR_CHECK(f.good(), "cannot open checkpoint file " << path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  BinaryReader r(bytes);
  restore_checkpoint(r);
}

nn::Model FederatedSimulation::global_model() {
  Rng tmp_rng = rng_.fork(0x61);
  nn::Model m = model_factory_(tmp_rng);
  m.set_parameters(server_->global_params());
  return m;
}

std::vector<std::size_t> FederatedSimulation::last_participants() const {
  std::vector<std::size_t> out;
  out.reserve(last_updates_.size());
  for (const ModelUpdateMsg& u : last_updates_)
    out.push_back(static_cast<std::size_t>(u.client_id));
  return out;
}

nn::Model FederatedSimulation::server_view_of_client(std::size_t i) {
  const ModelUpdateMsg* found = nullptr;
  for (const ModelUpdateMsg& u : last_updates_)
    if (static_cast<std::size_t>(u.client_id) == i) found = &u;
  DINAR_CHECK(found != nullptr, "client " << i << " did not upload last round");
  const ModelUpdateMsg& u = *found;
  Rng tmp_rng = rng_.fork(0xA7 + i);
  nn::Model m = model_factory_(tmp_rng);
  nn::ParamList params = u.params;
  if (u.pre_weighted)
    nn::param_list_scale(params, 1.0f / static_cast<float>(u.num_samples));
  m.set_parameters(params);
  return m;
}

RoundRecord FederatedSimulation::evaluate_now() {
  RoundRecord rec;
  rec.round = server_->round();

  nn::Model global = global_model();
  const EvalStats global_stats = evaluate(global, split_.test);
  rec.global_test_accuracy = global_stats.accuracy;
  rec.global_test_loss = global_stats.mean_loss;

  double personalized = 0.0, train_acc = 0.0;
  for (FlClient& client : clients_) {
    personalized += evaluate(client.model(), split_.test).accuracy;
    train_acc += client.last_train_stats().accuracy;
  }
  rec.personalized_test_accuracy = personalized / static_cast<double>(clients_.size());
  rec.mean_client_train_accuracy = train_acc / static_cast<double>(clients_.size());
  return rec;
}

double FederatedSimulation::mean_client_train_seconds() const {
  double s = 0.0;
  for (const FlClient& c : clients_) s += c.train_timer().total_seconds();
  return s / static_cast<double>(clients_.size());
}

double FederatedSimulation::mean_client_defense_seconds() const {
  double s = 0.0;
  for (const FlClient& c : clients_) s += c.defense_timer().total_seconds();
  return s / static_cast<double>(clients_.size());
}

double FederatedSimulation::server_aggregation_seconds() const {
  return server_->aggregation_timer().total_seconds();
}

}  // namespace dinar::fl
