#include "fl/simulation.h"

#include <algorithm>

#include "util/error.h"
#include "util/logging.h"

namespace dinar::fl {

FederatedSimulation::FederatedSimulation(nn::ModelFactory model_factory,
                                         data::FlSplit split, SimulationConfig config,
                                         DefenseBundle defenses)
    : model_factory_(std::move(model_factory)), split_(std::move(split)),
      config_(config), rng_(config.seed) {
  DINAR_CHECK(!split_.client_train.empty(), "split has no clients");
  DINAR_CHECK(config_.rounds > 0, "need at least one round");

  // All participants start from the same initial model (standard FL).
  Rng init_rng = rng_.fork(0xC0FFEE);
  nn::Model initial = model_factory_(init_rng);
  server_ = std::make_unique<FlServer>(initial.parameters(), defenses.make_server());

  clients_.reserve(split_.client_train.size());
  for (std::size_t i = 0; i < split_.client_train.size(); ++i) {
    const int id = static_cast<int>(i);
    clients_.emplace_back(id, split_.client_train[i], nn::Model(initial),
                          opt::make_optimizer(config_.optimizer, config_.learning_rate),
                          defenses.make_client(id), config_.train,
                          rng_.fork(1000 + i));
  }
}

void FederatedSimulation::run() {
  for (int r = 0; r < config_.rounds; ++r) {
    run_round();
    const bool last = (r == config_.rounds - 1);
    if (last || (config_.eval_every > 0 && (r + 1) % config_.eval_every == 0)) {
      history_.push_back(evaluate_now());
      const RoundRecord& rec = history_.back();
      DINAR_INFO << "round " << rec.round << ": global acc "
                 << rec.global_test_accuracy << ", personalized acc "
                 << rec.personalized_test_accuracy;
    }
  }
}

void FederatedSimulation::run_round() {
  // Client selection (paper §2.1): the server picks a fraction of the
  // registered clients for this round.
  std::vector<std::size_t> participants;
  if (config_.client_fraction >= 1.0) {
    participants.resize(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) participants[i] = i;
  } else {
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.client_fraction *
                                    static_cast<double>(clients_.size())));
    std::vector<std::size_t> order = rng_.permutation(clients_.size());
    participants.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));
    std::sort(participants.begin(), participants.end());
  }

  // Broadcast: one serialized payload per selected client.
  const GlobalModelMsg broadcast = server_->broadcast();
  const std::vector<std::uint8_t> bytes = broadcast.serialize();
  for (std::size_t i : participants) {
    const std::vector<std::uint8_t> delivered = transport_.downlink(bytes);
    clients_[i].receive_global(GlobalModelMsg::deserialize(delivered));
  }

  // Local training + uplink.
  std::vector<ModelUpdateMsg> updates;
  updates.reserve(participants.size());
  for (std::size_t i : participants) {
    ModelUpdateMsg update = clients_[i].train_round();
    const std::vector<std::uint8_t> delivered = transport_.uplink(update.serialize());
    updates.push_back(ModelUpdateMsg::deserialize(delivered));
  }

  server_->aggregate(updates);
  last_updates_ = std::move(updates);
}

nn::Model FederatedSimulation::global_model() {
  Rng tmp_rng = rng_.fork(0x61);
  nn::Model m = model_factory_(tmp_rng);
  m.set_parameters(server_->global_params());
  return m;
}

std::vector<std::size_t> FederatedSimulation::last_participants() const {
  std::vector<std::size_t> out;
  out.reserve(last_updates_.size());
  for (const ModelUpdateMsg& u : last_updates_)
    out.push_back(static_cast<std::size_t>(u.client_id));
  return out;
}

nn::Model FederatedSimulation::server_view_of_client(std::size_t i) {
  const ModelUpdateMsg* found = nullptr;
  for (const ModelUpdateMsg& u : last_updates_)
    if (static_cast<std::size_t>(u.client_id) == i) found = &u;
  DINAR_CHECK(found != nullptr, "client " << i << " did not upload last round");
  const ModelUpdateMsg& u = *found;
  Rng tmp_rng = rng_.fork(0xA7 + i);
  nn::Model m = model_factory_(tmp_rng);
  nn::ParamList params = u.params;
  if (u.pre_weighted)
    nn::param_list_scale(params, 1.0f / static_cast<float>(u.num_samples));
  m.set_parameters(params);
  return m;
}

RoundRecord FederatedSimulation::evaluate_now() {
  RoundRecord rec;
  rec.round = server_->round();

  nn::Model global = global_model();
  const EvalStats global_stats = evaluate(global, split_.test);
  rec.global_test_accuracy = global_stats.accuracy;
  rec.global_test_loss = global_stats.mean_loss;

  double personalized = 0.0, train_acc = 0.0;
  for (FlClient& client : clients_) {
    personalized += evaluate(client.model(), split_.test).accuracy;
    train_acc += client.last_train_stats().accuracy;
  }
  rec.personalized_test_accuracy = personalized / static_cast<double>(clients_.size());
  rec.mean_client_train_accuracy = train_acc / static_cast<double>(clients_.size());
  return rec;
}

double FederatedSimulation::mean_client_train_seconds() const {
  double s = 0.0;
  for (const FlClient& c : clients_) s += c.train_timer().total_seconds();
  return s / static_cast<double>(clients_.size());
}

double FederatedSimulation::mean_client_defense_seconds() const {
  double s = 0.0;
  for (const FlClient& c : clients_) s += c.defense_timer().total_seconds();
  return s / static_cast<double>(clients_.size());
}

double FederatedSimulation::server_aggregation_seconds() const {
  return server_->aggregation_timer().total_seconds();
}

}  // namespace dinar::fl
