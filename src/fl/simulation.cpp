#include "fl/simulation.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <fstream>
#include <iterator>
#include <map>
#include <numeric>
#include <optional>
#include <thread>
#include <unordered_set>

#include "fl/durable.h"
#include "fl/socket_transport.h"
#include "store/io.h"
#include "store/round_store.h"
#include "util/crashpoint.h"
#include "util/error.h"
#include "util/logging.h"

namespace dinar::fl {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x44434B50;  // "DCKP"
// v1: tensor-list payload (pre-FlatParams). v2: flat index + arena payload.
constexpr std::uint32_t kCheckpointVersionLegacy = 1;
constexpr std::uint32_t kCheckpointVersion = 2;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

bool ChurnConfig::present(int client_id, std::int64_t round) const {
  if (const auto it = join_at_round.find(client_id);
      it != join_at_round.end() && round < it->second)
    return false;
  if (const auto it = away.find(client_id); it != away.end())
    for (const auto& [leave, rejoin] : it->second)
      if (round >= leave && (rejoin < 0 || round < rejoin)) return false;
  return true;
}

FederatedSimulation::FederatedSimulation(nn::ModelFactory model_factory,
                                         data::FlSplit split, SimulationConfig config,
                                         DefenseBundle defenses)
    : model_factory_(std::move(model_factory)), split_(std::move(split)),
      config_(config), exec_(std::make_unique<ExecutionContext>(config.exec)),
      rng_(config.seed) {
  validate_config();
  pipeline_mode_ = pipeline_mode_env_override().value_or(config_.pipeline);
  transport_ = config_.socket_transport
                   ? std::make_unique<SocketTransport>()
                   : std::make_unique<Transport>();
  if (config_.faults.any()) transport_->enable_faults(config_.faults);
  if (config_.adversaries.any())
    adversary_ = std::make_unique<AdversaryEngine>(config_.adversaries);

  // All participants start from the same initial model (standard FL).
  Rng init_rng = rng_.fork(0xC0FFEE);
  nn::Model initial = model_factory_(init_rng);
  server_ = std::make_unique<FlServer>(initial.parameters(), defenses.make_server());

  // Layer-aware Byzantine robustness: the tensors of the defense's
  // obfuscated layers are excluded from outlier / distance scoring, so an
  // honest DINAR client's randomized sensitive layer can never get it
  // quarantined as an attacker.
  RobustConfig robust = config_.robust;
  if (robust.layer_aware) {
    for (const std::size_t p : defenses.obfuscated_layers) {
      const auto [begin, end] = initial.layer_param_span(p);
      for (std::size_t t = begin; t < end; ++t) robust.excluded_tensors.push_back(t);
    }
  }
  server_->set_aggregator(make_robust_aggregator(robust));
  server_->set_shards(config_.shard);
  server_->set_wire_codec(config_.codec);

  clients_.reserve(split_.client_train.size());
  for (std::size_t i = 0; i < split_.client_train.size(); ++i) {
    const int id = static_cast<int>(i);
    clients_.emplace_back(id, split_.client_train[i], nn::Model(initial),
                          opt::make_optimizer(config_.optimizer, config_.learning_rate),
                          defenses.make_client(id), config_.train,
                          rng_.fork(1000 + i));
  }

  // One shared context for everything compute-bound: client kernels and the
  // server's aggregator loops all draw from the same pool.
  server_->set_execution_context(exec_.get());
  for (FlClient& c : clients_) {
    c.set_execution_context(exec_.get());
    c.set_wire_codec(config_.codec.update);
  }
}

void FederatedSimulation::join_prefetch() {
  if (prefetch_ != nullptr && prefetch_->done.valid()) prefetch_->done.get();
}

void FederatedSimulation::invalidate_prefetch() {
  // No join needed: the pool task owns a shared_ptr to the block, so
  // dropping our reference with the task in flight is safe — it finishes
  // against the still-live block and the last reference frees it.
  prefetch_.reset();
}

void FederatedSimulation::validate_config() const {
  const std::size_t num_clients = split_.client_train.size();
  DINAR_CHECK(num_clients > 0, "split has no clients");
  DINAR_CHECK(config_.rounds > 0,
              "SimulationConfig.rounds = " << config_.rounds << " — need at least one");
  DINAR_CHECK(config_.client_fraction > 0.0 && config_.client_fraction <= 1.0,
              "SimulationConfig.client_fraction = " << config_.client_fraction
                                                    << " outside (0, 1]");
  DINAR_CHECK(config_.min_clients <= num_clients,
              "SimulationConfig.min_clients = " << config_.min_clients
                                                << " exceeds the roster of "
                                                << num_clients << " clients");
  DINAR_CHECK(config_.max_retries >= 0,
              "SimulationConfig.max_retries = " << config_.max_retries
                                                << " is negative");
  DINAR_CHECK(config_.retry_backoff_seconds >= 0.0,
              "SimulationConfig.retry_backoff_seconds = "
                  << config_.retry_backoff_seconds << " is negative");
  DINAR_CHECK(config_.round_deadline_seconds >= 0.0,
              "SimulationConfig.round_deadline_seconds = "
                  << config_.round_deadline_seconds << " is negative");
  DINAR_CHECK(config_.eval_every >= 0,
              "SimulationConfig.eval_every = " << config_.eval_every
                                               << " is negative");

  const auto check_id = [&](int id, const char* what) {
    DINAR_CHECK(id >= 0 && static_cast<std::size_t>(id) < num_clients,
                "SimulationConfig." << what << " names client " << id
                                    << ", but the roster has " << num_clients
                                    << " clients");
  };
  for (const auto& [id, round] : config_.churn.join_at_round) {
    check_id(id, "churn.join_at_round");
    DINAR_CHECK(round >= 0, "churn.join_at_round for client "
                                << id << " is negative (" << round << ")");
  }
  for (const auto& [id, intervals] : config_.churn.away) {
    check_id(id, "churn.away");
    std::int64_t prev_end = -1;
    for (const auto& [leave, rejoin] : intervals) {
      DINAR_CHECK(leave >= 0, "churn.away for client " << id << " leaves at negative "
                                                       << "round " << leave);
      DINAR_CHECK(rejoin == -1 || rejoin > leave,
                  "churn.away for client " << id << " has interval [" << leave << ", "
                                           << rejoin << ") — rejoin must follow leave "
                                           << "(or be -1 for a permanent departure)");
      DINAR_CHECK(prev_end >= 0 ? leave >= prev_end : true,
                  "churn.away intervals for client " << id
                                                     << " overlap or are unsorted");
      DINAR_CHECK(prev_end != -2, "churn.away for client "
                                      << id
                                      << " has intervals after a permanent departure");
      prev_end = rejoin == -1 ? -2 : rejoin;
    }
    // A founding member must not be scheduled away before it joins.
    const auto jit = config_.churn.join_at_round.find(id);
    const std::int64_t join = jit == config_.churn.join_at_round.end() ? 0 : jit->second;
    DINAR_CHECK(intervals.empty() || intervals.front().first >= join,
                "churn.away for client " << id << " starts before its join round "
                                         << join);
  }
  for (const auto& entry : config_.adversaries.attackers)
    check_id(entry.first, "adversaries.attackers");

  // Hierarchical aggregation: the tree shape must fit the founding roster.
  // Churn can still empty a shard mid-run (clients away or quarantined);
  // the root combiner tolerates that by skipping empty shard summaries,
  // but a tree with more shards than clients ever existed is a config bug.
  DINAR_CHECK(config_.shard.num_shards >= 1,
              "SimulationConfig.shard.num_shards = " << config_.shard.num_shards
                                                     << " — need at least one shard");
  DINAR_CHECK(config_.shard.num_shards <= num_clients,
              "SimulationConfig.shard.num_shards = "
                  << config_.shard.num_shards << " exceeds the roster of "
                  << num_clients << " clients");
  // Resolve the aggregator name through the registry so an unknown
  // robust.method fails here with the named-kind error.
  aggregator_kind_from_name(config_.robust.method);
  // Unknown encodings, out-of-range top-k fractions and sparse broadcast
  // codecs fail here with a named error.
  validate_codec_config(config_.codec);
}

void FederatedSimulation::run() {
  while (server_->round() < config_.rounds) {
    run_round();
    const std::int64_t r = server_->round();
    const bool last = r >= config_.rounds;
    if (last || (config_.eval_every > 0 && r % config_.eval_every == 0)) {
      history_.push_back(evaluate_now());
      const RoundRecord& rec = history_.back();
      if (store_ != nullptr) append_eval_to_store(rec);
      DINAR_INFO << "round " << rec.round << ": global acc "
                 << rec.global_test_accuracy << ", personalized acc "
                 << rec.personalized_test_accuracy;
    }
  }
}

std::vector<std::size_t> FederatedSimulation::roster_at(std::int64_t round) const {
  std::vector<std::size_t> roster;
  roster.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i)
    if (!config_.churn.any() || config_.churn.present(static_cast<int>(i), round))
      roster.push_back(i);
  return roster;
}

std::vector<std::size_t> FederatedSimulation::select_participants(std::int64_t round) {
  // Client selection (paper §2.1): the server picks a fraction of the
  // *current* roster for this round. The stream is forked from
  // (seed, round) rather than drawn sequentially, and the roster is a pure
  // function of (churn config, round), so a checkpoint-resumed run
  // re-selects the identical participant sets even as clients join and
  // leave.
  std::vector<std::size_t> roster = roster_at(round);
  if (config_.client_fraction >= 1.0 || roster.size() <= 1) return roster;

  Rng select_rng = rng_.fork(0x5E1EC7ULL + static_cast<std::uint64_t>(round));
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.client_fraction *
                                  static_cast<double>(roster.size())));
  std::vector<std::size_t> order = select_rng.permutation(roster.size());
  std::vector<std::size_t> participants;
  participants.reserve(k);
  for (std::size_t j = 0; j < k; ++j) participants.push_back(roster[order[j]]);
  std::sort(participants.begin(), participants.end());
  return participants;
}

const RoundOutcome& FederatedSimulation::run_round() {
  const auto round_t0 = std::chrono::steady_clock::now();
  const std::int64_t round = server_->round();
  FaultInjector* faults = transport_->faults();
  if (faults != nullptr) faults->begin_round(round);
  if (adversary_ != nullptr) adversary_->begin_round(round);
  const FaultStats fault_before = faults != nullptr ? faults->stats() : FaultStats{};

  // Durable operation: remember the pre-round global arena (the XOR-delta
  // base of this round's WAL record).
  nn::FlatParams prev_global;
  if (store_ != nullptr) prev_global = server_->global_params();

  RoundOutcome out;
  out.round = round;
  out.aggregator = server_->aggregator().name();

  // Membership churn bookkeeping: who entered / left the roster at this
  // round boundary (a pure function of config, so it replays after resume).
  out.roster_size = roster_at(round).size();
  if (config_.churn.any() && round > 0) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      const int id = static_cast<int>(i);
      const bool now = config_.churn.present(id, round);
      const bool before = config_.churn.present(id, round - 1);
      if (now && !before) out.joined.push_back(id);
      if (!now && before) out.departed.push_back(id);
    }
  }

  const std::vector<std::size_t> participants = select_participants(round);
  out.selected.reserve(participants.size());
  for (std::size_t i : participants) out.selected.push_back(static_cast<int>(i));

  // Crashed clients are unreachable for the whole round.
  std::vector<std::size_t> pending;
  for (std::size_t i : participants) {
    if (faults != nullptr && faults->is_crashed(static_cast<int>(i))) {
      faults->record_crashed_contact();
      out.crashed.push_back(static_cast<int>(i));
    } else {
      pending.push_back(i);
    }
  }

  const std::size_t live = pending.size();
  const std::size_t quorum =
      config_.min_clients == 0 ? live : std::min(config_.min_clients, live);
  // Clients whose cross-round state (training RNG, personalized model,
  // defense) this round may advance — every live participant, including
  // ones later quarantined or lost (their local training still ran).
  const std::vector<std::size_t> touched = pending;

  // Downlink payload: reuse the bytes the previous round's prefetch
  // serialized in the straggler tail's shadow (stream mode), or serialize
  // now. Either way the content is a pure function of the committed server
  // state, so the rounds are bit-identical.
  GlobalModelMsg broadcast_msg;
  std::vector<std::uint8_t> broadcast_bytes;
  {
    const auto t0 = std::chrono::steady_clock::now();
    if (prefetch_ != nullptr && prefetch_->round == round) {
      join_prefetch();
      broadcast_msg = std::move(prefetch_->msg);
      broadcast_bytes = std::move(prefetch_->bytes);
      prefetch_.reset();
    } else {
      invalidate_prefetch();
      broadcast_msg = server_->broadcast();
      broadcast_bytes = server_->serialize_broadcast(broadcast_msg);
    }
    out.timings.downlink_seconds += seconds_since(t0);
  }

  // Wire codec (DESIGN.md §14): a sparse update codec codes deltas against
  // the round's broadcast AS DECODED. The server decodes its own broadcast
  // bytes once here — bit-identical to what every client's receive_global
  // decoded, even under a lossy broadcast codec — and the exchange tasks
  // read it concurrently. The uncoded (v2-equivalent) sizes feed the
  // bytes-saved counters, accounted per delivered copy like bytes_up/down.
  const bool codec_active = config_.codec.active();
  nn::FlatParams update_reference;
  const nn::FlatParams* update_ref = nullptr;
  if (config_.codec.update.topk_fraction < 1.0) {
    const auto t0 = std::chrono::steady_clock::now();
    update_reference = GlobalModelMsg::deserialize(broadcast_bytes).params;
    update_ref = &update_reference;
    out.timings.downlink_seconds += seconds_since(t0);
  }
  const std::uint64_t broadcast_uncoded_bytes =
      codec_active ? v2_wire_bytes(broadcast_msg) : 0;

  // The streaming engine opens the shard accumulators up front so every
  // accepted update can fold in at commit time; validate_update still
  // checks the current round, which only advances at finalize.
  server_->begin_aggregation();

  std::vector<ModelUpdateMsg> accepted;
  std::unordered_set<int> accepted_ids;
  std::optional<bool> weighting;
  // Last failure mode per still-pending client: 'd' = no intact broadcast,
  // 'u' = no upload copy arrived, 'q' = arrived but quarantined.
  std::map<std::size_t, char> fail_mode;

  const double round_start_clock = transport_->stats().simulated_latency_seconds;
  const int max_attempts = 1 + config_.max_retries;
  for (int attempt = 0; attempt < max_attempts && !pending.empty(); ++attempt) {
    if (attempt > 0) {
      out.retries_used = attempt;
      transport_->add_latency(config_.retry_backoff_seconds * attempt);
    }
    // ---- exchange tasks: every pending client's exchange is an isolated
    // unit of work — downlink, local training, attack, uplink. All
    // randomness is keyed by (seed, round, client), and all transport /
    // fault accounting is deferred into the per-client receipt, so the
    // tasks touch no shared mutable state and their schedule cannot affect
    // the outcome.
    struct Arrival {
      bool ok = false;
      ModelUpdateMsg msg;          // parsed update when ok
      std::string corrupt_reason;  // frame/parse failure when !ok
    };
    struct Exchange {
      bool got_global = false;
      bool attacked = false;
      std::vector<Arrival> arrivals;
      ShipReceipt receipt;
      double downlink_seconds = 0.0;  // timing only, summed at commit
      double train_seconds = 0.0;
      double uplink_seconds = 0.0;
    };
    std::vector<Exchange> exchanges(pending.size());
    const auto task = [&](std::size_t idx) {
      const std::size_t i = pending[idx];
      const int id = static_cast<int>(i);
      Exchange& ex = exchanges[idx];

      // ---- downlink: the client needs one intact copy of the broadcast.
      const auto d0 = std::chrono::steady_clock::now();
      const auto down_copies =
          transport_->ship(LinkDir::kDown, id, broadcast_bytes, &ex.receipt);
      if (codec_active)
        ex.receipt.transport.bytes_down_uncoded +=
            down_copies.size() * broadcast_uncoded_bytes;
      for (const auto& copy : down_copies) {
        try {
          clients_[i].receive_global(
              GlobalModelMsg::deserialize(Transport::open(copy)));
          ex.got_global = true;
          break;  // further copies are duplicates of the same broadcast
        } catch (const Error&) {
          // Corrupted broadcast copy: the client discards it and waits for
          // the next retry.
        }
      }
      ex.downlink_seconds = seconds_since(d0);
      if (!ex.got_global) return;

      // ---- local training.
      const auto t0 = std::chrono::steady_clock::now();
      ModelUpdateMsg update = clients_[i].train_round();
      // Byzantine clients train honestly, then swap in the attack payload
      // (they know the broadcast model like everyone else). The payload is
      // well-formed on purpose: it must be caught by robust aggregation,
      // not by the validity checks.
      if (adversary_ != nullptr && adversary_->is_attacker(id)) {
        adversary_->corrupt_update(broadcast_msg.params, update);
        ex.attacked = true;
      }
      ex.train_seconds = seconds_since(t0);

      // Wall-clock straggler: burn real time before the upload. No
      // accounting, no randomness — purely the tail the streaming pipeline
      // overlaps. Excluded from phase timers.
      if (faults != nullptr) {
        const double wall = faults->straggler_wall_seconds(id);
        if (wall > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(wall));
      }

      // ---- uplink. The client serializes under the update codec (its
      // retained broadcast decode supplies the sparse reference); arrivals
      // decode against the server's own reference computed above.
      const auto u0 = std::chrono::steady_clock::now();
      const auto up_copies = transport_->ship(
          LinkDir::kUp, id, clients_[i].serialize_update(update), &ex.receipt);
      if (codec_active)
        ex.receipt.transport.bytes_up_uncoded +=
            up_copies.size() * v2_wire_bytes(update);
      for (const auto& copy : up_copies) {
        Arrival arrival;
        try {
          arrival.msg = ModelUpdateMsg::deserialize(Transport::open(copy), update_ref);
          arrival.ok = true;
        } catch (const Error& e) {
          arrival.corrupt_reason = std::string("corrupt: ") + e.what();
        }
        ex.arrivals.push_back(std::move(arrival));
      }
      ex.uplink_seconds = seconds_since(u0);
    };

    // ---- commits: every order-sensitive step (stats sums, validation,
    // acceptance, shard absorb) runs strictly in ascending client-id
    // order on the coordinator — identical for any thread count, which
    // only changes *when* each commit runs relative to the remaining
    // tasks, never its inputs.
    std::vector<std::size_t> still_pending;
    const auto commit = [&](std::size_t idx) {
      const std::size_t i = pending[idx];
      const int id = static_cast<int>(i);
      Exchange& ex = exchanges[idx];
      const auto c0 = std::chrono::steady_clock::now();
      transport_->commit(ex.receipt);
      out.timings.downlink_seconds += ex.downlink_seconds;
      out.timings.train_seconds += ex.train_seconds;
      out.timings.uplink_seconds += ex.uplink_seconds;

      if (!ex.got_global) {
        fail_mode[i] = 'd';
        still_pending.push_back(i);
        out.timings.commit_seconds += seconds_since(c0);
        return;
      }
      if (ex.attacked && std::find(out.attackers.begin(), out.attackers.end(), id) ==
                             out.attackers.end())
        out.attackers.push_back(id);
      out.timings.commit_seconds += seconds_since(c0);

      bool update_accepted = false;
      const bool any_arrived = !ex.arrivals.empty();
      for (Arrival& arrival : ex.arrivals) {
        if (!arrival.ok) {
          out.quarantined.push_back({id, arrival.corrupt_reason});
          continue;
        }
        const auto v0 = std::chrono::steady_clock::now();
        const UpdateVerdict verdict =
            server_->validate_update(arrival.msg, accepted_ids, weighting);
        out.timings.validate_seconds += seconds_since(v0);
        if (verdict.accepted) {
          weighting = arrival.msg.pre_weighted;
          accepted_ids.insert(arrival.msg.client_id);
          // The update folds into its shard's accumulator now, while later
          // clients' exchanges are still in flight.
          server_->absorb_validated(arrival.msg);
          accepted.push_back(std::move(arrival.msg));
          update_accepted = true;
        } else {
          out.quarantined.push_back({id, verdict.detail});
        }
      }
      if (update_accepted) {
        fail_mode.erase(i);
      } else {
        fail_mode[i] = any_arrived ? 'q' : 'u';
        still_pending.push_back(i);
      }
    };

    RoundPipeline(pipeline_mode_, exec_.get()).run(pending.size(), task, commit);
    pending = std::move(still_pending);
    if (accepted.size() >= quorum) break;
    if (config_.round_deadline_seconds > 0.0 &&
        transport_->stats().simulated_latency_seconds - round_start_clock >=
            config_.round_deadline_seconds)
      break;
  }

  for (std::size_t i : pending) {
    const char mode = fail_mode.count(i) != 0 ? fail_mode[i] : 'u';
    if (mode == 'd') out.missed_broadcast.push_back(static_cast<int>(i));
    else if (mode == 'u') out.lost_update.push_back(static_cast<int>(i));
    // 'q': already listed under quarantined.
  }

  out.accepted.reserve(accepted.size());
  for (const ModelUpdateMsg& u : accepted) out.accepted.push_back(u.client_id);
  out.quorum_met = !accepted.empty() && accepted.size() >= quorum;
  if (out.quorum_met) {
    // Every accepted update was absorbed at commit time; finalize closes
    // the shard accumulators and runs the root combine — bit-identical to
    // batch aggregation over the same updates in absorb order
    // (ShardAccumulator's contract).
    out.aggregator_flags = server_->finalize_aggregation();
    out.shards = server_->last_shard_stats();
    out.timings.shard_seconds = server_->last_aggregate_timings().shard_seconds;
    out.timings.combine_seconds = server_->last_aggregate_timings().combine_seconds;
    last_updates_ = std::move(accepted);
  } else {
    // Degraded-but-live round: no quorum of valid updates arrived within
    // the retry budget, so the previous global model survives unchanged.
    // carry_forward also abandons the streaming session's absorbed state.
    server_->carry_forward();
    out.carried_forward = true;
    last_updates_.clear();
    DINAR_INFO << "round " << round << " carried forward: " << accepted.size()
               << "/" << quorum << " valid updates after " << out.retries_used
               << " retries";
  }
  if (faults != nullptr)
    out.fault_delta = fault_stats_delta(faults->stats(), fault_before);

  // Cross-round overlap: the server state for round N+1 is final, so the
  // next broadcast's serialization can run on the pool while this thread
  // fsyncs the WAL record, compacts snapshots, or evaluates. The model
  // copy happens here on the coordinator (the worker must not touch live
  // server state); join_prefetch() at the next round start (or any restore
  // path) synchronizes before the bytes are read.
  {
    invalidate_prefetch();
    prefetch_ = std::make_shared<BroadcastPrefetch>();
    prefetch_->msg = server_->broadcast();
    prefetch_->round = server_->round();
    const std::shared_ptr<BroadcastPrefetch> p = prefetch_;
    // The codec is captured by value: the worker must not touch live
    // server state, and the codec never changes after construction.
    const KindCodec broadcast_codec = config_.codec.broadcast;
    prefetch_->done = exec_->submit(
        [p, broadcast_codec] { p->bytes = p->msg.serialize(broadcast_codec); });
  }

  const auto w0 = std::chrono::steady_clock::now();
  round_log_.push_back(std::move(out));

  if (store_ != nullptr) {
    // In-memory state is committed; a crash before the WAL append loses
    // the round, and recovery re-runs it bit-identically (all round
    // randomness is keyed by (seed, round); all sequential streams are in
    // the previous record).
    crashpoint("round.commit.mid");
    append_round_to_store(round_log_.back(), prev_global, touched);
    crashpoint("round.commit.post_append");
    maybe_snapshot();
  }
  round_log_.back().timings.commit_seconds += seconds_since(w0);
  round_log_.back().timings.round_seconds = seconds_since(round_t0);
  return round_log_.back();
}

void FederatedSimulation::save_checkpoint(BinaryWriter& w) const {
  w.write_u32(kCheckpointMagic);
  w.write_u32(kCheckpointVersion);
  w.write_i64(server_->round());
  nn::write_flat_params(w, server_->global_params());
}

void FederatedSimulation::save_checkpoint(const std::string& path) const {
  BinaryWriter w;
  save_checkpoint(w);
  store::atomic_write_file(path, w.buffer(), "checkpoint");
}

void FederatedSimulation::restore_checkpoint(BinaryReader& r) {
  invalidate_prefetch();
  DINAR_CHECK(r.read_u32() == kCheckpointMagic, "not a simulation checkpoint");
  const std::uint32_t version = r.read_u32();
  DINAR_CHECK(version == kCheckpointVersionLegacy || version == kCheckpointVersion,
              "unsupported checkpoint version " << version);
  const std::int64_t round = r.read_i64();
  nn::FlatParams params = version == kCheckpointVersionLegacy
                              ? nn::read_legacy_tensor_params(r)
                              : nn::read_flat_params(r);
  DINAR_CHECK(r.exhausted(), "trailing bytes in simulation checkpoint");
  DINAR_CHECK(round <= config_.rounds, "checkpoint round " << round
                                                           << " exceeds configured "
                                                           << config_.rounds);
  for (const FlClient& c : clients_)
    DINAR_CHECK(c.round() <= round,
                "client " << c.id() << " is already past checkpoint round " << round
                          << "; restore into a freshly constructed simulation");
  server_->restore(round, std::move(params));
  last_updates_.clear();
}

void FederatedSimulation::restore_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  DINAR_CHECK(f.good(), "cannot open checkpoint file " << path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  BinaryReader r(bytes);
  restore_checkpoint(r);
}

// -- durable round store ------------------------------------------------------

void FederatedSimulation::attach_store(store::RoundStore* store, int snapshot_every) {
  DINAR_CHECK(snapshot_every >= 1,
              "attach_store snapshot_every = " << snapshot_every
                                               << " — need at least 1");
  store_ = store;
  snapshot_every_ = snapshot_every;
  rounds_since_snapshot_ = 0;
}

void FederatedSimulation::append_round_to_store(
    const RoundOutcome& out, const nn::FlatParams& prev_global,
    const std::vector<std::size_t>& touched) {
  BinaryWriter w;
  w.write_u8(static_cast<std::uint8_t>(WalRecordKind::kRoundCommit));
  write_round_outcome(w, out);

  // Global arena as an XOR bit-delta vs the pre-round arena. XOR rather
  // than float subtraction: applying the delta must reconstruct the new
  // arena *bit-exactly*, and float arithmetic does not round-trip.
  const bool global_changed = !out.carried_forward;
  w.write_u8(global_changed ? 1 : 0);
  if (global_changed) {
    const std::span<const float> now = server_->global_params().as_span();
    const std::span<const float> before = prev_global.as_span();
    DINAR_CHECK(now.size() == before.size(),
                "global arena resized within round " << out.round);
    std::vector<float> delta(now.size());
    for (std::size_t i = 0; i < now.size(); ++i)
      delta[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(now[i]) ^
                                      std::bit_cast<std::uint32_t>(before[i]));
    w.write_f32_span(delta.data(), delta.size());
  }

  // Post-round state of every client the round touched (their training RNG
  // streams and personalized models advanced even if the upload was lost).
  w.write_u64(touched.size());
  for (const std::size_t i : touched) {
    w.write_u32(static_cast<std::uint32_t>(i));
    clients_[i].save_state(w);
  }

  // Cumulative counters as absolute post-round values — doubles (the
  // latency clock) do not reconstruct bit-exactly from deltas.
  write_transport_stats(w, transport_->stats());
  const FaultInjector* faults = transport_->faults();
  w.write_u8(faults != nullptr ? 1 : 0);
  if (faults != nullptr) write_fault_stats(w, faults->stats());
  w.write_u8(adversary_ != nullptr ? 1 : 0);
  if (adversary_ != nullptr) write_attack_stats(w, adversary_->stats());

  store_->append(w.buffer());
}

void FederatedSimulation::append_eval_to_store(const RoundRecord& rec) {
  BinaryWriter w;
  w.write_u8(static_cast<std::uint8_t>(WalRecordKind::kEvalRecord));
  write_round_record(w, rec);
  store_->append(w.buffer());
}

void FederatedSimulation::maybe_snapshot() {
  if (++rounds_since_snapshot_ < snapshot_every_) return;
  BinaryWriter w;
  save_full_state(w);
  store_->install_snapshot(server_->round(), w.buffer());
  rounds_since_snapshot_ = 0;
}

void FederatedSimulation::save_full_state(BinaryWriter& w) const {
  w.write_u32(kFullStateMagic);
  w.write_u32(kFullStateVersion);
  // Configuration fingerprint: recovery must run inside an identically
  // configured simulation or the replayed schedules diverge silently.
  w.write_u64(config_.seed);
  w.write_i64(config_.rounds);
  w.write_u64(clients_.size());

  w.write_i64(server_->round());
  nn::write_flat_params(w, server_->global_params());
  for (const FlClient& c : clients_) c.save_state(w);

  w.write_u64(history_.size());
  for (const RoundRecord& rec : history_) write_round_record(w, rec);
  w.write_u64(round_log_.size());
  for (const RoundOutcome& out : round_log_) write_round_outcome(w, out);

  write_transport_stats(w, transport_->stats());
  const FaultInjector* faults = transport_->faults();
  w.write_u8(faults != nullptr ? 1 : 0);
  if (faults != nullptr) write_fault_stats(w, faults->stats());
  w.write_u8(adversary_ != nullptr ? 1 : 0);
  if (adversary_ != nullptr) write_attack_stats(w, adversary_->stats());
}

void FederatedSimulation::restore_full_state(BinaryReader& r) {
  invalidate_prefetch();
  DINAR_CHECK(r.read_u32() == kFullStateMagic, "not a DFST full-state snapshot");
  const std::uint32_t version = r.read_u32();
  DINAR_CHECK(version == kFullStateVersion,
              "unsupported full-state version " << version);
  const std::uint64_t seed = r.read_u64();
  DINAR_CHECK(seed == config_.seed, "snapshot seed " << seed
                                                     << " != configured seed "
                                                     << config_.seed);
  const std::int64_t rounds = r.read_i64();
  DINAR_CHECK(rounds == config_.rounds,
              "snapshot configured for " << rounds << " rounds, simulation for "
                                         << config_.rounds);
  const std::uint64_t num_clients = r.read_u64();
  DINAR_CHECK(num_clients == clients_.size(),
              "snapshot has " << num_clients << " clients, simulation has "
                              << clients_.size());

  const std::int64_t round = r.read_i64();
  nn::FlatParams global = nn::read_flat_params(r);
  server_->restore(round, std::move(global));
  for (FlClient& c : clients_) c.restore_state(r);

  const std::uint64_t nh = r.read_length(1);
  history_.clear();
  history_.reserve(nh);
  for (std::uint64_t i = 0; i < nh; ++i) history_.push_back(read_round_record(r));
  const std::uint64_t nl = r.read_length(1);
  round_log_.clear();
  round_log_.reserve(nl);
  for (std::uint64_t i = 0; i < nl; ++i) round_log_.push_back(read_round_outcome(r));

  transport_->restore_stats(read_transport_stats(r));
  if (r.read_u8() != 0) {
    const FaultStats fs = read_fault_stats(r);
    if (transport_->faults() != nullptr) transport_->faults()->restore_stats(fs);
  }
  if (r.read_u8() != 0) {
    const AttackStats as = read_attack_stats(r);
    if (adversary_ != nullptr) adversary_->restore_stats(as);
  }
  last_updates_.clear();
}

bool FederatedSimulation::apply_wal_record(BinaryReader& r) {
  const std::uint8_t kind = r.read_u8();
  if (kind == static_cast<std::uint8_t>(WalRecordKind::kEvalRecord)) {
    const RoundRecord rec = read_round_record(r);
    if (!history_.empty() && history_.back().round >= rec.round)
      return false;  // duplicate (crash between append and compaction)
    history_.push_back(rec);
    return true;
  }
  DINAR_CHECK(kind == static_cast<std::uint8_t>(WalRecordKind::kRoundCommit),
              "unknown WAL record kind " << static_cast<int>(kind));

  const RoundOutcome out = read_round_outcome(r);
  // Records at or below the server round were already absorbed by the
  // snapshot, or duplicated by a crash between append and acknowledgment.
  if (out.round < server_->round()) return false;
  // A gap means a lost record between snapshot and WAL — the remainder of
  // the log builds on unrecovered state, so replay must stop here.
  DINAR_CHECK(out.round == server_->round(),
              "WAL gap: record for round " << out.round << ", server at round "
                                           << server_->round());

  if (r.read_u8() != 0) {
    std::vector<float> delta;
    r.read_f32_span(delta);
    nn::FlatParams global = server_->global_params();
    const std::span<float> g = global.as_span();
    DINAR_CHECK(delta.size() == g.size(),
                "WAL round " << out.round << " delta has " << delta.size()
                             << " floats, arena has " << g.size());
    for (std::size_t i = 0; i < g.size(); ++i)
      g[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(g[i]) ^
                                  std::bit_cast<std::uint32_t>(delta[i]));
    server_->restore(out.round + 1, std::move(global));
  } else {
    server_->carry_forward();
  }

  const std::uint64_t n = r.read_length(sizeof(std::uint32_t));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t id = r.read_u32();
    DINAR_CHECK(id < clients_.size(),
                "WAL round " << out.round << " patches client " << id
                             << ", roster has " << clients_.size());
    clients_[id].restore_state(r);
  }

  transport_->restore_stats(read_transport_stats(r));
  if (r.read_u8() != 0) {
    const FaultStats fs = read_fault_stats(r);
    if (transport_->faults() != nullptr) transport_->faults()->restore_stats(fs);
  }
  if (r.read_u8() != 0) {
    const AttackStats as = read_attack_stats(r);
    if (adversary_ != nullptr) adversary_->restore_stats(as);
  }
  round_log_.push_back(out);
  return true;
}

std::int64_t FederatedSimulation::recover_from_store() {
  DINAR_CHECK(store_ != nullptr, "recover_from_store() without attach_store()");
  invalidate_prefetch();
  const store::RoundStore::Recovered rec = store_->recover();

  if (rec.snapshot.has_value()) {
    // CRC already validated the bytes; sniff the payload magic to pick the
    // restore path (full DFST state vs a legacy DCKP checkpoint installed
    // via import_legacy_checkpoint).
    BinaryReader probe(*rec.snapshot);
    const std::uint32_t magic = probe.remaining() >= 4 ? probe.read_u32() : 0;
    BinaryReader body(*rec.snapshot);
    if (magic == kLegacyCheckpointMagic) {
      restore_checkpoint(body);
    } else {
      restore_full_state(body);
    }
  }

  // Replay the longest valid WAL prefix. A malformed record (bit flip that
  // survived CRC, version skew) or a round gap throws — recovery keeps the
  // prefix before it rather than crashing.
  std::int64_t replayed = 0;
  for (const std::vector<std::uint8_t>& bytes : rec.wal_records) {
    try {
      BinaryReader r(bytes);
      const bool is_round =
          !bytes.empty() &&
          bytes[0] == static_cast<std::uint8_t>(WalRecordKind::kRoundCommit);
      if (apply_wal_record(r) && is_round) ++replayed;
    } catch (const Error& e) {
      DINAR_INFO << "WAL replay stopped: " << e.what();
      break;
    }
  }
  if (rec.wal_tail_discarded) {
    DINAR_INFO << "WAL torn tail discarded";
  }

  // A crash between the round commit and its eval append loses the eval
  // record; the eval is a pure function of the restored state, so
  // recompute it (and make it durable) before resuming.
  const std::int64_t round = server_->round();
  const bool last = round >= config_.rounds;
  const bool due =
      round > 0 && (last || (config_.eval_every > 0 && round % config_.eval_every == 0));
  if (due && (history_.empty() || history_.back().round < round)) {
    history_.push_back(evaluate_now());
    append_eval_to_store(history_.back());
  }

  last_updates_.clear();
  rounds_since_snapshot_ = replayed;
  return server_->round();
}

nn::Model FederatedSimulation::global_model() {
  Rng tmp_rng = rng_.fork(0x61);
  nn::Model m = model_factory_(tmp_rng);
  m.set_parameters(server_->global_params());
  return m;
}

std::vector<std::size_t> FederatedSimulation::last_participants() const {
  std::vector<std::size_t> out;
  out.reserve(last_updates_.size());
  for (const ModelUpdateMsg& u : last_updates_)
    out.push_back(static_cast<std::size_t>(u.client_id));
  return out;
}

nn::Model FederatedSimulation::server_view_of_client(std::size_t i) {
  const ModelUpdateMsg* found = nullptr;
  for (const ModelUpdateMsg& u : last_updates_)
    if (static_cast<std::size_t>(u.client_id) == i) found = &u;
  DINAR_CHECK(found != nullptr, "client " << i << " did not upload last round");
  const ModelUpdateMsg& u = *found;
  Rng tmp_rng = rng_.fork(0xA7 + i);
  nn::Model m = model_factory_(tmp_rng);
  nn::FlatParams params = u.params;
  if (u.pre_weighted)
    nn::flat_scale(params, 1.0f / static_cast<float>(u.num_samples));
  m.set_parameters(params);
  return m;
}

RoundRecord FederatedSimulation::evaluate_now() {
  RoundRecord rec;
  rec.round = server_->round();

  nn::Model global = global_model();
  global.set_execution_context(exec_.get());
  const EvalStats global_stats = evaluate(global, split_.test);
  rec.global_test_accuracy = global_stats.accuracy;
  rec.global_test_loss = global_stats.mean_loss;

  // Under churn, personalized metrics average over the clients that were
  // in the federation for the last completed round; clients that have not
  // joined yet still hold the initial model and would poison the mean.
  std::vector<std::size_t> active =
      roster_at(std::max<std::int64_t>(0, server_->round() - 1));
  if (active.empty()) {
    active.resize(clients_.size());
    std::iota(active.begin(), active.end(), std::size_t{0});
  }
  // Per-client evaluations are independent, so they fan out across the
  // pool; the accuracy sums are then taken sequentially in index order
  // (double addition is order-dependent).
  std::vector<double> client_acc(active.size(), 0.0);
  exec_->for_each_task(active.size(), [&](std::size_t a) {
    client_acc[a] = evaluate(clients_[active[a]].model(), split_.test).accuracy;
  });
  double personalized = 0.0, train_acc = 0.0;
  for (std::size_t a = 0; a < active.size(); ++a) {
    personalized += client_acc[a];
    train_acc += clients_[active[a]].last_train_stats().accuracy;
  }
  rec.personalized_test_accuracy = personalized / static_cast<double>(active.size());
  rec.mean_client_train_accuracy = train_acc / static_cast<double>(active.size());
  return rec;
}

double FederatedSimulation::mean_client_train_seconds() const {
  double s = 0.0;
  for (const FlClient& c : clients_) s += c.train_timer().total_seconds();
  return s / static_cast<double>(clients_.size());
}

double FederatedSimulation::mean_client_defense_seconds() const {
  double s = 0.0;
  for (const FlClient& c : clients_) s += c.defense_timer().total_seconds();
  return s / static_cast<double>(clients_.size());
}

double FederatedSimulation::server_aggregation_seconds() const {
  return server_->aggregation_timer().total_seconds();
}

}  // namespace dinar::fl
