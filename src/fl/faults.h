// Fault injection for the FL transport.
//
// Real middleware deployments see client crashes, dropped / duplicated /
// corrupted messages, and stragglers; the paper's round protocol (§2.1)
// assumes none of these. FaultInjector sits between a payload and its
// delivery: seeded, per-direction probabilities decide each message's fate
// (drop, duplicate, byte corruption, extra delay), per-client schedules
// model permanent crashes and straggler slowdowns, and every injected
// fault is counted in FaultStats so experiments can report exactly what
// the round protocol survived.
//
// Determinism: every message's fault draws come from a stream forked from
// (seed, round, client, direction, per-client sequence number), so the
// fate of client A's messages is independent of whether client B shipped
// before or after it. That makes the injector safe under the parallel
// round protocol — concurrent per-client exchanges draw the identical
// faults the sequential path would — and a checkpoint-resumed simulation
// replays the identical fault schedule for the rounds it re-runs,
// independent of how many random draws happened before the crash.
//
// Beyond benign faults, AdversaryEngine models *Byzantine* clients: they
// follow the protocol (well-formed, finite, correctly-framed updates) but
// upload adversarially crafted parameters — sign-flipping, model
// replacement, Gaussian poisoning, or collusion on a shared malicious
// target. Attacks are scheduled per (seed, round, client) exactly like
// transport faults, so a checkpoint-resumed run replays the identical
// attack trace.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "fl/message.h"
#include "util/rng.h"

namespace dinar::fl {

enum class LinkDir { kUp, kDown };  // up = client -> server

struct FaultConfig {
  // Per-message fault probabilities in [0, 1], independent per direction.
  double drop_up = 0.0;
  double drop_down = 0.0;
  double duplicate_up = 0.0;
  double duplicate_down = 0.0;
  double corrupt_up = 0.0;
  double corrupt_down = 0.0;
  // With probability delay_prob a delivered message gains U(0, delay_max)
  // seconds of simulated one-way delay.
  double delay_prob = 0.0;
  double delay_max_seconds = 0.0;
  // client id -> first round at which the client is permanently down.
  std::map<int, std::int64_t> crash_at_round;
  // client id -> multiplier (> 1) on that client's simulated link latency.
  std::map<int, double> straggler_factor;
  // client id -> real wall-clock seconds that client's exchange task sleeps
  // before uploading. Unlike straggler_factor this burns actual time, not
  // simulated-latency accounting, so it has ZERO effect on any recorded or
  // compared value — bit-identity across thread counts is unaffected. It
  // exists to create a genuine straggler tail for the streaming round
  // engine to overlap (DESIGN.md §13): the fast clients' commits and the
  // next round's broadcast serialization proceed while these clients sleep.
  std::map<int, double> straggler_wall_seconds;
  std::uint64_t seed = 0xFA017;

  // True if any fault can ever fire under this configuration.
  bool any() const;
};

struct FaultStats {
  std::uint64_t drops_up = 0;
  std::uint64_t drops_down = 0;
  std::uint64_t duplicates_up = 0;
  std::uint64_t duplicates_down = 0;
  std::uint64_t corruptions_up = 0;
  std::uint64_t corruptions_down = 0;
  std::uint64_t crashed_contacts = 0;  // messages suppressed by a crash
  std::uint64_t delays_injected = 0;
  double injected_delay_seconds = 0.0;

  // Counter-wise accumulate (the parallel round protocol collects stats
  // per exchange and merges them in deterministic client order).
  void merge(const FaultStats& other);
};

// Counter-wise difference now - before; both must come from the same
// injector (the round protocol uses this to report per-round deltas).
FaultStats fault_stats_delta(const FaultStats& now, const FaultStats& before);

// One message's fate after injection: zero copies = dropped, two = the
// original plus a duplicate; each copy may have corrupted bytes.
struct FaultedDelivery {
  std::vector<std::vector<std::uint8_t>> copies;
  double extra_delay_seconds = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  // Forks the per-round random stream; must be called at every round start.
  void begin_round(std::int64_t round);
  std::int64_t round() const { return round_; }

  // True if the client's crash schedule says it is down this round.
  bool is_crashed(int client_id) const;
  // Book-keeping for a contact the simulation suppressed due to a crash.
  void record_crashed_contact() { ++stats_.crashed_contacts; }

  // Latency multiplier for this client's messages (1.0 = no slowdown).
  double straggler_factor(int client_id) const;

  // Real seconds this client's exchange sleeps before its upload (0.0 =
  // none). Wall-clock only; never enters stats or outcomes.
  double straggler_wall_seconds(int client_id) const;

  // Applies drop / duplicate / corrupt / delay to one outgoing message.
  // All draws come from a stream keyed by (round, client_id, dir, seq)
  // where seq counts this client's messages on this link within the
  // round — so concurrent callers working on different clients obtain
  // exactly the faults the sequential schedule would. When `sink` is
  // non-null the fault counters go there instead of the injector's
  // cumulative stats; the caller later folds them back via merge_stats()
  // in deterministic order. Thread-safe.
  FaultedDelivery apply(LinkDir dir, int client_id, std::vector<std::uint8_t> payload,
                        FaultStats* sink = nullptr);

  // Legacy single-stream entry point (keyed as client -1, accounting
  // directly into stats()).
  FaultedDelivery apply(LinkDir dir, std::vector<std::uint8_t> payload) {
    return apply(dir, /*client_id=*/-1, std::move(payload), nullptr);
  }

  // Folds deferred per-exchange counters back into the cumulative stats.
  void merge_stats(const FaultStats& delta) { stats_.merge(delta); }

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_ = FaultStats{}; }
  // Crash recovery: installs persisted cumulative counters verbatim so
  // per-round fault deltas keep subtracting against the right baseline.
  void restore_stats(const FaultStats& stats) { stats_ = stats; }

 private:
  static void corrupt_bytes(std::vector<std::uint8_t>& payload, Rng& rng);
  std::uint64_t next_seq(LinkDir dir, int client_id);

  FaultConfig config_;
  Rng base_rng_;
  Rng round_rng_;  // forked per round; per-message streams fork from it
  std::int64_t round_ = 0;
  FaultStats stats_;
  // (client_id, dir) -> messages shipped this round; guarded by mu_.
  std::map<std::pair<int, int>, std::uint64_t> seq_;
  std::mutex mu_;
};

// -- Byzantine (adversarial) clients ----------------------------------------

enum class AttackType {
  kSignFlip,          // theta_mal = g - s * (theta - g): inverts the descent step
  kModelReplacement,  // theta_mal = g + s * (theta - g): boosts its own delta
  kGaussianNoise,     // theta_mal = theta + N(0, noise_std): poisons gradually
  kColluding,         // all colluders upload one identical crafted model
};
const char* to_string(AttackType type);

struct AdversaryConfig {
  // client id -> attack behavior; absent clients are honest.
  std::map<int, AttackType> attackers;
  // First round the attackers act; before it they behave honestly (a
  // sleeper schedule exercises mid-run detection).
  std::int64_t active_from_round = 0;
  // Delta multiplier for sign-flip attacks.
  double sign_flip_scale = 1.0;
  // Delta multiplier for model replacement and the colluders' target.
  double replacement_scale = 10.0;
  // Per-coordinate noise stddev for Gaussian poisoning.
  double noise_std = 1.0;
  std::uint64_t seed = 0xBAD5EED;

  bool any() const { return !attackers.empty(); }
};

struct AttackStats {
  std::uint64_t corrupted_updates = 0;
  std::uint64_t sign_flips = 0;
  std::uint64_t replacements = 0;
  std::uint64_t noise_injections = 0;
  std::uint64_t colluding_uploads = 0;
};

// Turns an honest client's trained update into its Byzantine payload. All
// randomness is forked from (seed, round, client), so the attack trace is
// independent of call order and replays identically after a resume.
class AdversaryEngine {
 public:
  explicit AdversaryEngine(AdversaryConfig config);

  // Must be called at every round start (mirrors FaultInjector).
  void begin_round(std::int64_t round) { round_ = round; }
  std::int64_t round() const { return round_; }

  // True if this client attacks in the current round.
  bool is_attacker(int client_id) const;

  // Replaces `update.params` with the attack payload; `global` is the
  // round's broadcast model the attacker also received. The update stays
  // well-formed (finite, right shapes) — that is the point: Byzantine
  // updates pass every validity check and must be caught statistically.
  // Thread-safe: all randomness is keyed by (round, client) and the stats
  // counters are mutex-guarded, so concurrent per-client exchanges
  // produce the identical attack trace in any order.
  void corrupt_update(const nn::FlatParams& global, ModelUpdateMsg& update);

  const AdversaryConfig& config() const { return config_; }
  const AttackStats& stats() const { return stats_; }
  // Crash recovery: installs persisted cumulative attack counters.
  void restore_stats(const AttackStats& stats) { stats_ = stats; }

 private:
  void record(AttackType type);

  AdversaryConfig config_;
  Rng base_rng_;
  std::int64_t round_ = 0;
  AttackStats stats_;
  std::mutex mu_;  // guards stats_ during parallel rounds
};

}  // namespace dinar::fl
