// Fault injection for the FL transport.
//
// Real middleware deployments see client crashes, dropped / duplicated /
// corrupted messages, and stragglers; the paper's round protocol (§2.1)
// assumes none of these. FaultInjector sits between a payload and its
// delivery: seeded, per-direction probabilities decide each message's fate
// (drop, duplicate, byte corruption, extra delay), per-client schedules
// model permanent crashes and straggler slowdowns, and every injected
// fault is counted in FaultStats so experiments can report exactly what
// the round protocol survived.
//
// Determinism: the fault stream is re-seeded per round from (seed, round),
// so a checkpoint-resumed simulation replays the identical fault schedule
// for the rounds it re-runs — independent of how many random draws
// happened before the crash.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.h"

namespace dinar::fl {

enum class LinkDir { kUp, kDown };  // up = client -> server

struct FaultConfig {
  // Per-message fault probabilities in [0, 1], independent per direction.
  double drop_up = 0.0;
  double drop_down = 0.0;
  double duplicate_up = 0.0;
  double duplicate_down = 0.0;
  double corrupt_up = 0.0;
  double corrupt_down = 0.0;
  // With probability delay_prob a delivered message gains U(0, delay_max)
  // seconds of simulated one-way delay.
  double delay_prob = 0.0;
  double delay_max_seconds = 0.0;
  // client id -> first round at which the client is permanently down.
  std::map<int, std::int64_t> crash_at_round;
  // client id -> multiplier (> 1) on that client's simulated link latency.
  std::map<int, double> straggler_factor;
  std::uint64_t seed = 0xFA017;

  // True if any fault can ever fire under this configuration.
  bool any() const;
};

struct FaultStats {
  std::uint64_t drops_up = 0;
  std::uint64_t drops_down = 0;
  std::uint64_t duplicates_up = 0;
  std::uint64_t duplicates_down = 0;
  std::uint64_t corruptions_up = 0;
  std::uint64_t corruptions_down = 0;
  std::uint64_t crashed_contacts = 0;  // messages suppressed by a crash
  std::uint64_t delays_injected = 0;
  double injected_delay_seconds = 0.0;
};

// One message's fate after injection: zero copies = dropped, two = the
// original plus a duplicate; each copy may have corrupted bytes.
struct FaultedDelivery {
  std::vector<std::vector<std::uint8_t>> copies;
  double extra_delay_seconds = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  // Forks the per-round random stream; must be called at every round start.
  void begin_round(std::int64_t round);
  std::int64_t round() const { return round_; }

  // True if the client's crash schedule says it is down this round.
  bool is_crashed(int client_id) const;
  // Book-keeping for a contact the simulation suppressed due to a crash.
  void record_crashed_contact() { ++stats_.crashed_contacts; }

  // Latency multiplier for this client's messages (1.0 = no slowdown).
  double straggler_factor(int client_id) const;

  // Applies drop / duplicate / corrupt / delay to one outgoing message.
  FaultedDelivery apply(LinkDir dir, std::vector<std::uint8_t> payload);

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_ = FaultStats{}; }

 private:
  void corrupt_bytes(std::vector<std::uint8_t>& payload);

  FaultConfig config_;
  Rng base_rng_;
  Rng rng_;
  std::int64_t round_ = 0;
  FaultStats stats_;
};

}  // namespace dinar::fl
