#include "fl/pipeline.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <vector>

#include "util/error.h"
#include "util/execution_context.h"

namespace dinar::fl {

const char* to_string(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kStream: return "stream";
  }
  return "?";
}

PipelineMode pipeline_mode_from_name(const std::string& name) {
  if (name == "stream") return PipelineMode::kStream;
  throw Error("unknown pipeline mode '" + name + "' (known: stream)");
}

std::optional<PipelineMode> pipeline_mode_env_override() {
  const char* env = std::getenv("DINAR_PIPELINE");
  if (env == nullptr || *env == '\0') return std::nullopt;
  try {
    return pipeline_mode_from_name(env);
  } catch (const Error&) {
    throw Error(std::string("DINAR_PIPELINE='") + env +
                "' is not a pipeline mode (known: stream; empty/unset "
                "defers to the simulation config)");
  }
}

RoundPipeline::RoundPipeline(PipelineMode mode, const ExecutionContext* exec)
    : mode_(mode), exec_(exec) {}

namespace {

// Shared state between the coordinator and the in-flight tasks of one
// streaming run(). Tasks only touch their own slot plus the mutex/cv, so
// the coordinator's ascending scan needs no per-slot atomics.
struct StreamState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<bool> done;
  std::vector<std::exception_ptr> error;
};

}  // namespace

void RoundPipeline::run(std::size_t n, const std::function<void(std::size_t)>& task,
                        const std::function<void(std::size_t)>& commit) const {
  if (n == 0) return;

  // Without real workers there is nothing to overlap; the inline form
  // interleaves task(i); commit(i), which observably matches the threaded
  // schedule (commit i always runs after task i and commit i-1).
  if (exec_ == nullptr || !exec_->parallel() || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) {
      task(i);
      commit(i);
    }
    return;
  }

  // Threaded stream: every task is its own pool submission; the
  // coordinator (this thread) sweeps the indices in ascending order,
  // sleeping on the cv until the next one finishes, and commits it
  // immediately — so commits overlap whatever tail is still running.
  StreamState st;
  st.done.assign(n, false);
  st.error.assign(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    exec_->submit([&st, &task, i] {
      std::exception_ptr err;
      try {
        task(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(st.mu);
      st.done[i] = true;
      st.error[i] = err;
      st.cv.notify_all();
    });
  }

  const auto drain = [&st, n] {
    std::unique_lock<std::mutex> lock(st.mu);
    st.cv.wait(lock, [&st, n] {
      for (std::size_t i = 0; i < n; ++i)
        if (!st.done[i]) return false;
      return true;
    });
  };

  std::exception_ptr failure;  // lowest-index task error, if any
  for (std::size_t i = 0; i < n; ++i) {
    {
      std::unique_lock<std::mutex> lock(st.mu);
      st.cv.wait(lock, [&st, i] { return st.done[i]; });
      failure = st.error[i];
    }
    // We sweep ascending, so the first error seen is the lowest-index one;
    // commits stop here (the round is aborting) but the remaining tasks
    // must still drain before their captured references go out of scope.
    if (failure) break;
    try {
      commit(i);
    } catch (...) {
      drain();
      throw;
    }
  }
  drain();
  if (failure) std::rethrow_exception(failure);
}

}  // namespace dinar::fl
