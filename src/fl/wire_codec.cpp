#include "fl/wire_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/codec_kernels.h"
#include "util/error.h"
#include "util/memory_tracker.h"

namespace dinar::fl {
namespace {

constexpr std::uint8_t kRunFlagSparse = 1;
constexpr std::uint8_t kMaxEncodingValue = 3;  // kInt8

std::uint64_t value_bytes(WireEncoding e) {
  switch (e) {
    case WireEncoding::kF32:
      return 4;
    case WireEncoding::kF16:
    case WireEncoding::kBf16:
      return 2;
    case WireEncoding::kInt8:
      return 1;
  }
  return 0;
}

// Positive finite scale for an all-finite span: max|v|/127, with all-zero
// spans (and spans so small the division underflows to 0) mapping to 1.0
// so the wire never carries a zero, NaN, or Inf scale.
float int8_scale(float max_abs) {
  float s = max_abs / 127.0f;
  if (!(s > 0.0f)) s = 1.0f;
  return s;
}

void write_coded_values(BinaryWriter& w, WireEncoding e, const float* vals,
                        std::size_t n, float inv_scale) {
  const auto& k = detail::codec_kernel_fns();
  switch (e) {
    case WireEncoding::kF32:
      w.write_bytes(vals, n * sizeof(float));
      break;
    case WireEncoding::kF16: {
      std::vector<std::uint16_t> tmp(n);
      k.pack_f16(vals, n, tmp.data());
      w.write_bytes(tmp.data(), n * sizeof(std::uint16_t));
      break;
    }
    case WireEncoding::kBf16: {
      std::vector<std::uint16_t> tmp(n);
      k.pack_bf16(vals, n, tmp.data());
      w.write_bytes(tmp.data(), n * sizeof(std::uint16_t));
      break;
    }
    case WireEncoding::kInt8: {
      std::vector<std::int8_t> tmp(n);
      k.pack_i8(vals, n, inv_scale, tmp.data());
      w.write_bytes(tmp.data(), n);
      break;
    }
  }
}

// Reads exactly n coded values into `out`. read_raw bounds-checks before
// any scratch allocation, so a truncated run throws instead of allocating.
void read_coded_values(BinaryReader& r, WireEncoding e, std::size_t n,
                       float scale, float* out) {
  const auto& k = detail::codec_kernel_fns();
  switch (e) {
    case WireEncoding::kF32: {
      const std::uint8_t* raw = r.read_raw(n * sizeof(float));
      std::memcpy(out, raw, n * sizeof(float));
      break;
    }
    case WireEncoding::kF16:
    case WireEncoding::kBf16: {
      const std::uint8_t* raw = r.read_raw(n * sizeof(std::uint16_t));
      std::vector<std::uint16_t> tmp(n);
      std::memcpy(tmp.data(), raw, n * sizeof(std::uint16_t));
      if (e == WireEncoding::kF16)
        k.unpack_f16(tmp.data(), n, out);
      else
        k.unpack_bf16(tmp.data(), n, out);
      break;
    }
    case WireEncoding::kInt8: {
      const std::uint8_t* raw = r.read_raw(n);
      std::vector<std::int8_t> tmp(n);
      std::memcpy(tmp.data(), raw, n);
      k.unpack_i8(tmp.data(), n, scale, out);
      break;
    }
  }
}

void write_dense_f32(BinaryWriter& w, std::span<const float> vals) {
  w.write_u8(static_cast<std::uint8_t>(WireEncoding::kF32));
  w.write_u8(0);
  w.write_bytes(vals.data(), vals.size() * sizeof(float));
}

void write_entry_run(BinaryWriter& w, const nn::FlatParams& p, std::size_t i,
                     const KindCodec& codec, const nn::FlatParams* reference) {
  const nn::LayerEntry& e = p.index()->entry(i);
  const std::span<const float> span = p.entry_span(i);
  const std::size_t n = span.size();
  const auto& kf = detail::codec_kernel_fns();

  WireEncoding enc = codec.encoding;
  bool sparse = codec.topk_fraction < 1.0 && n > 0;
  if ((e.is_obfuscated && codec.lossless_obfuscated) || codec.lossless()) {
    enc = WireEncoding::kF32;
    sparse = false;
  }

  if (!sparse && enc == WireEncoding::kF32) {
    write_dense_f32(w, span);
    return;
  }

  if (sparse) {
    DINAR_CHECK(reference != nullptr,
                "sparse update codec needs the round's broadcast as reference "
                "(entry " << e.name << ")");
    DINAR_CHECK(n <= 0xFFFFFFFFu,
                "entry " << e.name << " has " << n
                         << " elements, too many for u32 sparse indices");
    const std::span<const float> ref = reference->entry_span(i);
    std::vector<float> delta(n);
    for (std::size_t j = 0; j < n; ++j) delta[j] = span[j] - ref[j];
    // Non-finite deltas make |delta| ordering meaningless and must reach
    // the server's rejection scan intact: raw f32, no selection.
    if (!kf.absmax(delta.data(), n).all_finite) {
      write_dense_f32(w, span);
      return;
    }
    std::size_t k = static_cast<std::size_t>(
        std::ceil(codec.topk_fraction * static_cast<double>(n)));
    k = std::min(n, std::max<std::size_t>(1, k));
    std::vector<std::uint32_t> idx(n);
    for (std::size_t j = 0; j < n; ++j) idx[j] = static_cast<std::uint32_t>(j);
    // Largest |delta| first, ties to the lower index — a total order, so
    // the kept set is deterministic.
    const auto by_magnitude = [&](std::uint32_t a, std::uint32_t b) {
      const float aa = std::fabs(delta[a]);
      const float ab = std::fabs(delta[b]);
      if (aa != ab) return aa > ab;
      return a < b;
    };
    if (k < n)
      std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                       idx.end(), by_magnitude);
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
    std::vector<float> vals(k);
    for (std::size_t j = 0; j < k; ++j) vals[j] = delta[idx[j]];
    float scale = 1.0f;
    if (enc == WireEncoding::kInt8)
      scale = int8_scale(kf.absmax(vals.data(), k).max_abs);
    w.write_u8(static_cast<std::uint8_t>(enc));
    w.write_u8(kRunFlagSparse);
    if (enc == WireEncoding::kInt8) w.write_f32(scale);
    w.write_u64(k);
    w.write_bytes(idx.data(), k * sizeof(std::uint32_t));
    write_coded_values(w, enc, vals.data(), k, 1.0f / scale);
    return;
  }

  if (enc == WireEncoding::kInt8) {
    const detail::SpanAbsMax am = kf.absmax(span.data(), n);
    // A non-finite span has no meaningful scale; ship it raw so NaN/Inf
    // reach the decoder bit-exactly (IEEE-754 propagation, PR 5 policy).
    if (!am.all_finite) {
      write_dense_f32(w, span);
      return;
    }
    const float scale = int8_scale(am.max_abs);
    w.write_u8(static_cast<std::uint8_t>(enc));
    w.write_u8(0);
    w.write_f32(scale);
    write_coded_values(w, enc, span.data(), n, 1.0f / scale);
    return;
  }

  // f16/bf16 carry NaN and +-Inf natively — no fallback needed.
  w.write_u8(static_cast<std::uint8_t>(enc));
  w.write_u8(0);
  write_coded_values(w, enc, span.data(), n, 1.0f);
}

void validate_kind_codec(const char* kind, const KindCodec& c,
                         bool allow_sparse) {
  DINAR_CHECK(static_cast<std::uint8_t>(c.encoding) <= kMaxEncodingValue,
              kind << " codec has unknown encoding value "
                   << static_cast<int>(c.encoding));
  DINAR_CHECK(c.topk_fraction > 0.0 && c.topk_fraction <= 1.0,
              kind << " codec topk_fraction " << c.topk_fraction
                   << " outside (0, 1]");
  DINAR_CHECK(allow_sparse || c.topk_fraction >= 1.0,
              kind << " codec cannot be sparse: clients have no reference "
                      "snapshot to reconstruct a broadcast against");
}

}  // namespace

const char* wire_encoding_name(WireEncoding e) {
  switch (e) {
    case WireEncoding::kF32:
      return "f32";
    case WireEncoding::kF16:
      return "f16";
    case WireEncoding::kBf16:
      return "bf16";
    case WireEncoding::kInt8:
      return "int8";
  }
  return "unknown";
}

void validate_codec_config(const UpdateCodecConfig& config) {
  validate_kind_codec("broadcast", config.broadcast, /*allow_sparse=*/false);
  validate_kind_codec("update", config.update, /*allow_sparse=*/true);
}

void write_flat_params_v3(BinaryWriter& w, const nn::FlatParams& p,
                          const KindCodec& codec,
                          const nn::FlatParams* reference) {
  DINAR_CHECK(p.index() != nullptr, "cannot serialize empty params as v3");
  if (reference != nullptr)
    DINAR_CHECK(p.same_layout(*reference),
                "v3 reference layout does not match the payload");
  const std::size_t before = w.size();
  nn::write_layer_index(w, *p.index());
  for (std::size_t i = 0; i < p.index()->num_entries(); ++i)
    write_entry_run(w, p, i, codec, reference);
  MemoryTracker::instance().record_copy(w.size() - before);
}

nn::FlatParams read_flat_params_v3(BinaryReader& r, std::uint64_t decoded_bytes,
                                   const nn::FlatParams* reference) {
  auto index = nn::read_layer_index(r);
  const std::int64_t total = index->total_numel();
  // The header's declared decoded size was bounded by the frame/message
  // layers BEFORE this call; tying the index to it here means a tampered
  // shape header cannot make this allocation exceed that bound.
  DINAR_CHECK(total >= 0 && static_cast<std::uint64_t>(total) *
                                    sizeof(float) ==
                                decoded_bytes,
              "v3 params declare " << decoded_bytes
                                   << " decoded bytes but the index holds "
                                   << total << " floats");
  std::vector<float> values(static_cast<std::size_t>(total));
  bool reference_checked = false;
  for (std::size_t i = 0; i < index->num_entries(); ++i) {
    const nn::LayerEntry& e = index->entry(i);
    DINAR_CHECK(e.numel >= 0 && e.offset >= 0 && e.offset + e.numel <= total,
                "v3 entry " << i << " spans [" << e.offset << ", "
                            << e.offset + e.numel << ") outside the " << total
                            << "-float arena");
    const std::size_t n = static_cast<std::size_t>(e.numel);
    float* out = values.data() + e.offset;
    const std::uint8_t enc_raw = r.read_u8();
    DINAR_CHECK(enc_raw <= kMaxEncodingValue,
                "v3 entry " << i << " has unknown encoding "
                            << static_cast<int>(enc_raw));
    const auto enc = static_cast<WireEncoding>(enc_raw);
    const std::uint8_t flags = r.read_u8();
    DINAR_CHECK(flags <= kRunFlagSparse, "v3 entry " << i
                                                     << " has unknown run flags "
                                                     << static_cast<int>(flags));
    float scale = 1.0f;
    if (enc == WireEncoding::kInt8) scale = r.read_f32();
    if ((flags & kRunFlagSparse) != 0) {
      DINAR_CHECK(reference != nullptr,
                  "v3 entry " << i
                              << " is sparse but no reference model is "
                                 "available to reconstruct against");
      if (!reference_checked) {
        DINAR_CHECK(reference->index() != nullptr &&
                        index->same_layout(*reference->index()),
                    "v3 sparse payload layout does not match the reference");
        reference_checked = true;
      }
      // read_length bounds k by the remaining bytes per (index + value)
      // pair before anything is allocated.
      const std::uint64_t k = r.read_length(sizeof(std::uint32_t) +
                                            value_bytes(enc));
      DINAR_CHECK(k <= n, "v3 entry " << i << " keeps " << k << " of " << n
                                      << " coordinates");
      const std::uint8_t* raw_idx = r.read_raw(k * sizeof(std::uint32_t));
      std::vector<std::uint32_t> idx(static_cast<std::size_t>(k));
      std::memcpy(idx.data(), raw_idx, k * sizeof(std::uint32_t));
      std::uint32_t prev = 0;
      for (std::size_t j = 0; j < idx.size(); ++j) {
        DINAR_CHECK(idx[j] < n && (j == 0 || idx[j] > prev),
                    "v3 entry " << i << " sparse index " << idx[j]
                                << " at position " << j
                                << " is out of range or not ascending");
        prev = idx[j];
      }
      std::vector<float> vals(static_cast<std::size_t>(k));
      read_coded_values(r, enc, vals.size(), scale, vals.data());
      const std::span<const float> ref = reference->entry_span(i);
      std::memcpy(out, ref.data(), n * sizeof(float));
      for (std::size_t j = 0; j < idx.size(); ++j)
        out[idx[j]] = ref[idx[j]] + vals[j];
    } else {
      read_coded_values(r, enc, n, scale, out);
    }
  }
  MemoryTracker::instance().record_copy(values.size() * sizeof(float));
  return nn::FlatParams(std::move(index), std::move(values));
}

std::uint64_t flat_params_v2_bytes(const nn::FlatParams& p) {
  std::uint64_t bytes = 8;  // entry count
  if (p.index() != nullptr) {
    for (const nn::LayerEntry& e : p.index()->entries())
      bytes += 8 + e.name.size()  // name
               + 4                 // layer id
               + 1                 // flags
               + 8 + e.shape.size() * 8;  // shape
  }
  return bytes + 8 + static_cast<std::uint64_t>(p.numel()) * sizeof(float);
}

}  // namespace dinar::fl
