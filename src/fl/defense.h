// Privacy-defense middleware interfaces.
//
// The FL runtime defines the hook points; defenses are plugins:
//  - ClientDefense wraps a client's round: what happens when the global
//    model arrives (DINAR personalizes here) and what the client actually
//    uploads (DINAR obfuscates, LDP/WDP add noise, GC sparsifies, SA masks).
//  - ServerDefense wraps aggregation (CDP perturbs the aggregate here).
//
// This mirrors the paper's claim that DINAR is non-intrusive middleware:
// the FL loop below never special-cases any defense.
#pragma once

#include <memory>
#include <string>

#include "nn/model.h"
#include "util/serde.h"

namespace dinar::fl {

class ClientDefense {
 public:
  virtual ~ClientDefense() = default;

  virtual std::string name() const = 0;

  // -- durable-state serde --------------------------------------------------
  // Defenses that carry cross-round state (DINAR's stored private layers
  // and its obfuscation RNG) persist it here so a crash-recovered client
  // resumes bit-identically. Stateless defenses inherit the no-ops. The
  // durable store tags the bytes with name(), so a restore into a
  // different defense fails loudly instead of misparsing.
  virtual void save_state(BinaryWriter& /*w*/) const {}
  virtual void restore_state(BinaryReader& /*r*/) {}

  // Invoked once before the first round, after the client's model exists.
  virtual void initialize(nn::Model& /*model*/, int /*client_id*/) {}

  // The global model arrived. Default behaviour installs it verbatim;
  // DINAR overrides to keep the client's private layer (personalization).
  virtual void on_download(nn::Model& model, const nn::FlatParams& global_params) {
    model.set_parameters(global_params);
  }

  // Local training finished; transform what gets uploaded. `params` is a
  // flat snapshot of the trained model; defenses mutate layer/arena spans
  // in place. Returns the payload parameters and may set `pre_weighted`
  // (see message.h).
  virtual nn::FlatParams before_upload(nn::Model& /*model*/, nn::FlatParams params,
                                       std::int64_t /*num_samples*/,
                                       bool& /*pre_weighted*/) {
    return params;
  }
};

class ServerDefense {
 public:
  virtual ~ServerDefense() = default;
  virtual std::string name() const = 0;

  // Aggregation produced `params`; mutate before broadcast (CDP noise).
  virtual void after_aggregate(nn::FlatParams& /*params*/) {}

  // Durable-state serde; see ClientDefense.
  virtual void save_state(BinaryWriter& /*w*/) const {}
  virtual void restore_state(BinaryReader& /*r*/) {}
};

// Pass-through defenses: the paper's "no defense" baseline.
class NoClientDefense final : public ClientDefense {
 public:
  std::string name() const override { return "none"; }
};

class NoServerDefense final : public ServerDefense {
 public:
  std::string name() const override { return "none"; }
};

}  // namespace dinar::fl
