#include "fl/trainer.h"

#include "nn/loss.h"
#include "util/error.h"

namespace dinar::fl {

TrainStats train_local(nn::Model& model, const data::Dataset& dataset,
                       opt::Optimizer& optimizer, const TrainConfig& config, Rng& rng) {
  DINAR_CHECK(!dataset.empty(), "cannot train on an empty dataset");
  optimizer.reset();

  TrainStats stats;
  double loss_sum = 0.0;
  double correct_weighted = 0.0;
  std::int64_t last_epoch_samples = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const bool last_epoch = (epoch == config.epochs - 1);
    data::BatchIterator batches(dataset, config.batch_size, rng);
    data::BatchIterator::Batch batch;
    if (last_epoch) {
      correct_weighted = 0.0;
      last_epoch_samples = 0;
    }
    while (batches.next(batch)) {
      Tensor logits = model.forward(batch.features, /*train=*/true);
      nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
      model.zero_grad();
      model.backward(loss.grad_logits);
      optimizer.step(model);
      loss_sum += loss.mean_loss;
      ++stats.steps;
      if (last_epoch) {
        correct_weighted += nn::accuracy(logits, batch.labels) *
                            static_cast<double>(batch.labels.size());
        last_epoch_samples += static_cast<std::int64_t>(batch.labels.size());
      }
    }
  }
  stats.mean_loss = stats.steps > 0 ? loss_sum / static_cast<double>(stats.steps) : 0.0;
  stats.accuracy = last_epoch_samples > 0
                       ? correct_weighted / static_cast<double>(last_epoch_samples)
                       : 0.0;
  return stats;
}

EvalStats evaluate(nn::Model& model, const data::Dataset& dataset,
                   std::int64_t batch_size) {
  EvalStats stats;
  if (dataset.empty()) return stats;
  Rng no_shuffle_rng(0);
  data::BatchIterator batches(dataset, batch_size, no_shuffle_rng, /*shuffle=*/false);
  data::BatchIterator::Batch batch;
  double loss_sum = 0.0;
  double correct = 0.0;
  std::int64_t samples = 0;
  while (batches.next(batch)) {
    Tensor logits = model.forward(batch.features, /*train=*/false);
    const std::vector<double> losses = nn::per_sample_cross_entropy(logits, batch.labels);
    for (double l : losses) loss_sum += l;
    correct += nn::accuracy(logits, batch.labels) * static_cast<double>(batch.labels.size());
    samples += static_cast<std::int64_t>(batch.labels.size());
  }
  stats.mean_loss = loss_sum / static_cast<double>(samples);
  stats.accuracy = correct / static_cast<double>(samples);
  return stats;
}

}  // namespace dinar::fl
