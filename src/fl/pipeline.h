// Streaming round engine (DESIGN.md §13).
//
// The original barriered round protocol (PR 3) ran every client exchange
// as a phase-A task, waited for ALL of them, then replayed
// validation/commit in a sequential phase B — so the fastest client's
// commit work waited on the slowest straggler, synchronization the
// paper's personalization loop does not require.
//
// RoundPipeline treats each exchange completion as an *event*: the moment
// client idx's task finishes AND every commit below idx has run,
// commit(idx) runs on the coordinator thread — folding the update into
// its shard's in-progress accumulator (ShardAccumulator) while later
// clients are still training or sleeping on a slow link. The determinism
// argument splits the schedule in two:
//
//   compute order  — tasks run in any order on any thread count; they are
//                    isolated by construction (randomness keyed by
//                    (seed, round, client), accounting deferred into
//                    per-client receipts);
//   commit order   — strictly ascending index, exactly the old phase B, so
//                    every order-sensitive step (stats sums, validation,
//                    acceptance, absorb) sees the identical sequence.
//
// Hence the streaming schedule is bit-identical to the barriered one for
// any thread count — the pipeline only changes *when* commits run relative
// to the task fan-out, never their order or inputs. The legacy barrier
// mode was removed after its one-release bisection window; kStream is the
// only schedule, and the enum/env seam remains for a future one.
//
// Error contract: a task exception aborts the round. The coordinator stops
// committing at the first failed index, drains every outstanding task
// (references into the caller's frame stay valid), and rethrows the
// lowest failed index's exception — the same deterministic surfacing rule
// as ThreadPool::parallel_for. Commits below the failed index have already
// run, but a task exception aborts the whole round, so no committed state
// survives to expose that.
#pragma once

#include <functional>
#include <optional>
#include <string>

namespace dinar {
class ExecutionContext;
}

namespace dinar::fl {

enum class PipelineMode {
  kStream,  // event-driven: commits overlap the straggler tail (the only mode)
};
const char* to_string(PipelineMode mode);
// Throws dinar::Error naming the unknown mode and listing the known ones
// (mirrors aggregator_kind_from_name).
PipelineMode pipeline_mode_from_name(const std::string& name);

// DINAR_PIPELINE env pin: "stream" forces the mode for every simulation in
// the process (read at simulation construction), "" / unset defers to
// SimulationConfig::pipeline. Unknown values — including the removed
// "barrier" — throw, the same strictness as DINAR_GEMM_KERNEL, so a stale
// CI pin fails loudly instead of silently testing the wrong path.
std::optional<PipelineMode> pipeline_mode_env_override();

class RoundPipeline {
 public:
  // `exec` may be null (sequential). The pipeline holds the pointer only
  // for the duration of each run() call.
  RoundPipeline(PipelineMode mode, const ExecutionContext* exec);

  PipelineMode mode() const { return mode_; }

  // Runs task(idx) for idx in [0, n) across the pool and commit(idx) for
  // every idx strictly in ascending order on the calling thread:
  // commit(idx) runs as soon as task(idx) and commits [0, idx) are done.
  // Returns only after every task AND every commit finished (or the round
  // aborted — see the error contract above). Sequential contexts and pool
  // workers degrade to an inline loop whose observable behavior matches
  // the threaded one.
  void run(std::size_t n, const std::function<void(std::size_t)>& task,
           const std::function<void(std::size_t)>& commit) const;

 private:
  PipelineMode mode_;
  const ExecutionContext* exec_;
};

}  // namespace dinar::fl
