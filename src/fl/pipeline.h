// Streaming round engine (DESIGN.md §13).
//
// The barriered round protocol (PR 3) runs every client exchange as a
// phase-A task, waits for ALL of them, then replays validation/commit in a
// sequential phase B. The barrier means the fastest client's commit work
// waits on the slowest straggler — exactly the synchronization the paper's
// personalization loop does not require.
//
// RoundPipeline removes the barrier by treating each exchange completion
// as an *event*: the moment client idx's task finishes AND every commit
// below idx has run, commit(idx) runs on the coordinator thread — folding
// the update into its shard's in-progress accumulator (ShardAccumulator)
// while later clients are still training or sleeping on a slow link. The
// determinism argument splits the schedule in two:
//
//   compute order  — tasks run in any order on any thread count; they are
//                    isolated by construction (randomness keyed by
//                    (seed, round, client), accounting deferred into
//                    per-client receipts);
//   commit order   — strictly ascending index, exactly the old phase B, so
//                    every order-sensitive step (stats sums, validation,
//                    acceptance, absorb) sees the identical sequence.
//
// Hence kStream is bit-identical to kBarrier for any thread count — the
// pipeline only changes *when* commits run relative to the task fan-out,
// never their order or inputs. kBarrier remains available for one release
// as the legacy path and as a single-variable baseline for determinism
// triage (ctest pins it alongside DINAR_GEMM_KERNEL=scalar).
//
// Error contract: a task exception aborts the round. The coordinator stops
// committing at the first failed index, drains every outstanding task
// (references into the caller's frame stay valid), and rethrows the
// lowest failed index's exception — the same deterministic surfacing rule
// as ThreadPool::parallel_for. In kStream mode commits below the failed
// index have already run; in kBarrier mode none have. Both modes leave the
// round aborted, so the divergence is unobservable by any committed state.
#pragma once

#include <functional>
#include <optional>
#include <string>

namespace dinar {
class ExecutionContext;
}

namespace dinar::fl {

enum class PipelineMode {
  kBarrier,  // phase A fan-out, then phase B commits (PR 3; one release)
  kStream,   // event-driven: commits overlap the straggler tail (default)
};
const char* to_string(PipelineMode mode);
// Throws dinar::Error naming the unknown mode and listing the known ones
// (mirrors aggregator_kind_from_name).
PipelineMode pipeline_mode_from_name(const std::string& name);

// DINAR_PIPELINE env pin: "barrier" | "stream" force the mode for every
// simulation in the process (read at simulation construction), "" / unset
// defers to SimulationConfig::pipeline. Unknown values throw — the same
// strictness as DINAR_GEMM_KERNEL, so a typo'd CI pin fails loudly instead
// of silently testing the wrong path.
std::optional<PipelineMode> pipeline_mode_env_override();

class RoundPipeline {
 public:
  // `exec` may be null (sequential). The pipeline holds the pointer only
  // for the duration of each run() call.
  RoundPipeline(PipelineMode mode, const ExecutionContext* exec);

  PipelineMode mode() const { return mode_; }

  // Runs task(idx) for idx in [0, n) across the pool and commit(idx) for
  // every idx strictly in ascending order on the calling thread. kBarrier:
  // all tasks complete before the first commit. kStream: commit(idx) runs
  // as soon as task(idx) and commits [0, idx) are done. Returns only after
  // every task AND every commit finished (or the round aborted — see the
  // error contract above). Sequential contexts and pool workers degrade to
  // an inline loop whose observable behavior matches the threaded one.
  void run(std::size_t n, const std::function<void(std::size_t)>& task,
           const std::function<void(std::size_t)>& commit) const;

 private:
  PipelineMode mode_;
  const ExecutionContext* exec_;
};

}  // namespace dinar::fl
