// In-memory byte transport between the FL server and its clients.
//
// Messages really are serialized into byte buffers on send and parsed on
// receive, so (a) traffic accounting reflects genuine payload sizes and
// (b) nothing can leak between endpoints except through bytes — the same
// isolation a socket would give. A pluggable per-byte latency model lets
// cost experiments include simulated network time.
//
// The fault-tolerant round protocol uses the framed path: ship() wraps the
// payload in a checksummed frame (magic + length + FNV-1a 64), routes it
// through an optional FaultInjector (drop / duplicate / corrupt / delay /
// straggler slowdown), and open() verifies the frame on receive — so any
// in-flight corruption is detected instead of silently aggregated.
// bytes_up/bytes_down keep counting pure payload bytes (the quantity the
// cost experiments report); frame overhead is accounted separately.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fl/faults.h"

namespace dinar::fl {

struct TransportStats {
  std::uint64_t messages_up = 0;      // client -> server (delivered copies)
  std::uint64_t messages_down = 0;    // server -> client
  std::uint64_t bytes_up = 0;         // payload bytes, excluding frames
  std::uint64_t bytes_down = 0;
  std::uint64_t frame_bytes_up = 0;   // checksum-frame overhead
  std::uint64_t frame_bytes_down = 0;
  // What bytes_up/bytes_down WOULD have been under the lossless v2 format
  // — the other side of the wire-codec savings ratio. Accounted per
  // delivered copy by the simulation only when a compressed codec is
  // active; zero otherwise (ratio undefined → report as 1x).
  std::uint64_t bytes_up_uncoded = 0;
  std::uint64_t bytes_down_uncoded = 0;
  double simulated_latency_seconds = 0.0;

  // -- socket transport (all zero on the in-process transport) -------------
  std::uint64_t socket_frames_tx = 0;  // envelope frames written to the wire
  std::uint64_t socket_frames_rx = 0;  // envelope frames read off the wire
  std::uint64_t socket_bytes_tx = 0;   // wire bytes, envelope framing included
  std::uint64_t socket_bytes_rx = 0;
  std::uint64_t socket_reconnects = 0;       // client reconnections
  std::uint64_t socket_evictions = 0;        // server-side evictions of our peers
  std::uint64_t socket_queue_drops = 0;      // frames shed by bounded send queues
  std::uint64_t socket_protocol_errors = 0;  // poisoned streams (either side)

  // Counter-wise accumulate (used when folding deferred receipts back in).
  void merge(const TransportStats& other);
};

// Deferred accounting for one client's exchange. The parallel round
// protocol ships with a receipt so concurrent exchanges never race on the
// shared stats, then the coordinator commit()s receipts in deterministic
// client-id order — double-precision latency sums come out bit-identical
// for any thread count. Under the streaming round engine (DESIGN.md §13)
// an exchange task's completion IS the arrival event: ship() stays
// synchronous within the task, and the receipt commit happens the moment
// the coordinator reaches that client in ascending order — possibly while
// later clients' exchanges are still in flight.
struct ShipReceipt {
  TransportStats transport;
  FaultStats faults;
};

class Transport {
 public:
  // bandwidth_bytes_per_sec <= 0 disables latency simulation.
  explicit Transport(double bandwidth_bytes_per_sec = 0.0,
                     double per_message_latency_seconds = 0.0)
      : bandwidth_(bandwidth_bytes_per_sec), per_message_(per_message_latency_seconds) {}
  virtual ~Transport() = default;

  // Ships a payload client -> server; returns the delivered bytes.
  // Fault-free, unframed legacy path (kept for byte-exact cost accounting).
  std::vector<std::uint8_t> uplink(std::vector<std::uint8_t> payload);
  // Ships a payload server -> client.
  std::vector<std::uint8_t> downlink(std::vector<std::uint8_t> payload);

  // -- fault-tolerant framed path ----------------------------------------
  // Attaches a fault injector; subsequent ship() calls suffer its faults.
  void enable_faults(const FaultConfig& config);
  // The attached injector, or nullptr when running fault-free.
  FaultInjector* faults() { return injector_.get(); }
  const FaultInjector* faults() const { return injector_.get(); }

  // Frames the payload, applies faults (if enabled), and accounts every
  // delivered copy. Returns the framed copies that arrived (possibly none
  // — dropped — or two — duplicated). With `receipt == nullptr` the
  // accounting lands directly in stats() (legacy sequential path). With a
  // receipt, all accounting is deferred into it and the caller must later
  // commit() it — this is the thread-safe path: concurrent ship() calls
  // for different clients touch no shared mutable state.
  //
  // Virtual: this is the transport seam. The base class delivers in
  // process; SocketTransport (fl/socket_transport.h) overrides it to move
  // the identical framed copies over real loopback TCP, so the simulation
  // runs unchanged on either.
  virtual std::vector<std::vector<std::uint8_t>> ship(
      LinkDir dir, int client_id, const std::vector<std::uint8_t>& payload,
      ShipReceipt* receipt = nullptr);

  // Folds a deferred receipt into stats() (and the injector's fault
  // stats). Call in deterministic order, from one thread.
  void commit(const ShipReceipt& receipt);

  // Wraps a payload in [magic | u64 length | u64 FNV-1a checksum | bytes].
  static std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload);
  // Verifies and strips a frame; throws dinar::Error on a bad magic,
  // length, or checksum (the message was corrupted in flight).
  static std::vector<std::uint8_t> open(const std::vector<std::uint8_t>& framed);

  // Adds simulated wall-clock (retry backoff, deadline waits).
  void add_latency(double seconds) { stats_.simulated_latency_seconds += seconds; }

  const TransportStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TransportStats{}; }
  // Crash recovery: installs the persisted post-round counters verbatim
  // (absolute values, not deltas, so the double-valued latency clock —
  // which gates retry deadlines — matches the uninterrupted run bit for
  // bit).
  void restore_stats(const TransportStats& stats) { stats_ = stats; }

 protected:
  // Derived transports (socket) fold their wire accounting in here when
  // shipping without a receipt. Receipt-path accounting must go through the
  // receipt instead — concurrent ship() calls may not touch shared state.
  TransportStats& mutable_stats() { return stats_; }

 private:
  void account(std::size_t bytes, bool up);

  double bandwidth_;
  double per_message_;
  TransportStats stats_;
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace dinar::fl
