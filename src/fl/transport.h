// In-memory byte transport between the FL server and its clients.
//
// Messages really are serialized into byte buffers on send and parsed on
// receive, so (a) traffic accounting reflects genuine payload sizes and
// (b) nothing can leak between endpoints except through bytes — the same
// isolation a socket would give. A pluggable per-byte latency model lets
// cost experiments include simulated network time.
#pragma once

#include <cstdint>
#include <vector>

namespace dinar::fl {

struct TransportStats {
  std::uint64_t messages_up = 0;      // client -> server
  std::uint64_t messages_down = 0;    // server -> client
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  double simulated_latency_seconds = 0.0;
};

class Transport {
 public:
  // bandwidth_bytes_per_sec <= 0 disables latency simulation.
  explicit Transport(double bandwidth_bytes_per_sec = 0.0,
                     double per_message_latency_seconds = 0.0)
      : bandwidth_(bandwidth_bytes_per_sec), per_message_(per_message_latency_seconds) {}

  // Ships a payload client -> server; returns the delivered bytes.
  std::vector<std::uint8_t> uplink(std::vector<std::uint8_t> payload);
  // Ships a payload server -> client.
  std::vector<std::uint8_t> downlink(std::vector<std::uint8_t> payload);

  const TransportStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TransportStats{}; }

 private:
  void account(std::size_t bytes, bool up);

  double bandwidth_;
  double per_message_;
  TransportStats stats_;
};

}  // namespace dinar::fl
