// Local training and evaluation driver shared by FL clients, the
// sensitivity analyzer (which needs gradients from trained models) and the
// attack's shadow models.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "nn/model.h"
#include "opt/optimizer.h"

namespace dinar::fl {

struct TrainConfig {
  int epochs = 1;
  std::int64_t batch_size = 64;
};

struct TrainStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;     // on the training data, last epoch
  std::int64_t steps = 0;
};

// Runs `config.epochs` epochs of minibatch SGD-family training. The
// optimizer's accumulated state is reset first (Algorithm 1 line 8 resets
// G at the start of each round).
TrainStats train_local(nn::Model& model, const data::Dataset& dataset,
                       opt::Optimizer& optimizer, const TrainConfig& config, Rng& rng);

struct EvalStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;
};

// Full-dataset evaluation in inference mode (no gradient caching).
EvalStats evaluate(nn::Model& model, const data::Dataset& dataset,
                   std::int64_t batch_size = 256);

}  // namespace dinar::fl
