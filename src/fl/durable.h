// Durable-state wire formats for the FL simulation.
//
// The generic store (store/round_store.h) moves opaque blobs; this header
// defines what the simulation puts inside them:
//
//  - WAL round record (kind kRoundCommit): everything round N changed —
//    the RoundOutcome event-log entry, an XOR bit-delta of the global
//    model arena (XOR, not subtraction: float arithmetic does not round-
//    trip, XOR of bit patterns reconstructs the new arena exactly), the
//    full post-round state of every client that participated (model,
//    training-RNG stream, defense state), and the absolute post-round
//    transport/fault/attack counters. Replaying a record is O(changed
//    state), not O(run length) — that is the O(delta) resume.
//
//  - WAL eval record (kind kEvalRecord): one RoundRecord appended to the
//    accuracy history at an eval round.
//
//  - Full-state snapshot ("DFST"): the complete simulation state the WAL
//    records patch — server, all clients, both logs, all counters. The
//    store compacts the WAL onto one of these periodically. A legacy DCKP
//    checkpoint (global model + round only) is also accepted as a snapshot
//    payload: recovery detects the magic and falls back to the
//    server-only restore path.
//
// All read_* functions validate lengths against the remaining buffer and
// throw dinar::Error on malformed input; recovery treats such a throw as
// a corrupt record and stops replay there (longest-valid-prefix
// semantics), never crashing.
//
// Streaming round engine interaction (DESIGN.md §13): under
// PipelineMode::kStream the WAL append/fsync of round N overlaps the
// serialization of round N+1's broadcast on the pool. That prefetch holds
// no durable state — the record formats here carry nothing about it, a
// crash at any point discards it harmlessly, and every recovery path
// drops any in-flight prefetch before restoring. RoundOutcome::timings is
// measurement-only and is deliberately excluded from write_round_outcome.
#pragma once

#include <cstdint>

#include "fl/simulation.h"
#include "store/round_store.h"

namespace dinar::fl {

// First byte of every WAL record payload.
enum class WalRecordKind : std::uint8_t {
  kRoundCommit = 1,
  kEvalRecord = 2,
};

// Magic + version of the full-state snapshot payload. v2 widened the
// transport-stats block with the socket transport's wire counters; v3
// appended the hierarchical-aggregation per-shard stats to every
// RoundOutcome; v4 widened the transport-stats block again with the wire
// codec's uncoded-bytes counters. Older snapshots (and the WAL records
// written alongside them) are rejected, which recovery treats like any
// other unreadable state.
inline constexpr std::uint32_t kFullStateMagic = 0x54534644;  // "DFST"
inline constexpr std::uint32_t kFullStateVersion = 4;
// Magic of the legacy monolithic checkpoint (simulation.cpp's DCKP),
// re-declared here so recovery can sniff snapshot payloads.
inline constexpr std::uint32_t kLegacyCheckpointMagic = 0x44434B50;  // "DCKP"

// -- protocol-struct serde ---------------------------------------------------
void write_round_outcome(BinaryWriter& w, const RoundOutcome& out);
RoundOutcome read_round_outcome(BinaryReader& r);

void write_round_record(BinaryWriter& w, const RoundRecord& rec);
RoundRecord read_round_record(BinaryReader& r);

void write_fault_stats(BinaryWriter& w, const FaultStats& s);
FaultStats read_fault_stats(BinaryReader& r);

void write_transport_stats(BinaryWriter& w, const TransportStats& s);
TransportStats read_transport_stats(BinaryReader& r);

void write_attack_stats(BinaryWriter& w, const AttackStats& s);
AttackStats read_attack_stats(BinaryReader& r);

// -- legacy import -----------------------------------------------------------
// Installs a monolithic DCKP checkpoint file as the store's snapshot, so a
// pre-store run can be continued under the durable protocol. Returns the
// checkpoint's round (used as the snapshot label). Throws dinar::Error if
// the file is missing or not a DCKP checkpoint.
std::int64_t import_legacy_checkpoint(store::RoundStore& store,
                                      const std::string& dckp_path);

}  // namespace dinar::fl
