#include "fl/transport.h"

#include <cstring>

#include "util/error.h"

namespace dinar::fl {
namespace {

constexpr std::uint32_t kFrameMagic = 0x4446524D;  // "DFRM"
constexpr std::size_t kFrameHeaderBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void TransportStats::merge(const TransportStats& other) {
  messages_up += other.messages_up;
  messages_down += other.messages_down;
  bytes_up += other.bytes_up;
  bytes_down += other.bytes_down;
  frame_bytes_up += other.frame_bytes_up;
  frame_bytes_down += other.frame_bytes_down;
  simulated_latency_seconds += other.simulated_latency_seconds;
}

std::vector<std::uint8_t> Transport::uplink(std::vector<std::uint8_t> payload) {
  account(payload.size(), /*up=*/true);
  return payload;
}

std::vector<std::uint8_t> Transport::downlink(std::vector<std::uint8_t> payload) {
  account(payload.size(), /*up=*/false);
  return payload;
}

void Transport::enable_faults(const FaultConfig& config) {
  injector_ = std::make_unique<FaultInjector>(config);
}

std::vector<std::uint8_t> Transport::frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> framed(kFrameHeaderBytes + payload.size());
  const std::uint64_t length = payload.size();
  const std::uint64_t checksum = fnv1a64(payload.data(), payload.size());
  std::memcpy(framed.data(), &kFrameMagic, sizeof kFrameMagic);
  std::memcpy(framed.data() + sizeof kFrameMagic, &length, sizeof length);
  std::memcpy(framed.data() + sizeof kFrameMagic + sizeof length, &checksum,
              sizeof checksum);
  if (!payload.empty())
    std::memcpy(framed.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return framed;
}

std::vector<std::uint8_t> Transport::open(const std::vector<std::uint8_t>& framed) {
  DINAR_CHECK(framed.size() >= kFrameHeaderBytes,
              "transport frame: " << framed.size() << " bytes is shorter than the "
                                  << kFrameHeaderBytes << "-byte header");
  std::uint32_t magic = 0;
  std::uint64_t length = 0, checksum = 0;
  std::memcpy(&magic, framed.data(), sizeof magic);
  std::memcpy(&length, framed.data() + sizeof magic, sizeof length);
  std::memcpy(&checksum, framed.data() + sizeof magic + sizeof length,
              sizeof checksum);
  DINAR_CHECK(magic == kFrameMagic, "transport frame: bad magic");
  DINAR_CHECK(length == framed.size() - kFrameHeaderBytes,
              "transport frame: length field " << length << " does not match "
                                               << framed.size() - kFrameHeaderBytes
                                               << " payload bytes");
  const std::uint8_t* payload = framed.data() + kFrameHeaderBytes;
  DINAR_CHECK(fnv1a64(payload, length) == checksum,
              "transport frame: checksum mismatch (payload corrupted in flight)");
  return std::vector<std::uint8_t>(payload, payload + length);
}

std::vector<std::vector<std::uint8_t>> Transport::ship(
    LinkDir dir, int client_id, const std::vector<std::uint8_t>& payload,
    ShipReceipt* receipt) {
  const bool up = dir == LinkDir::kUp;
  const std::size_t payload_bytes = payload.size();
  TransportStats& acc = receipt != nullptr ? receipt->transport : stats_;

  std::vector<std::vector<std::uint8_t>> copies;
  double latency_factor = 1.0;
  if (injector_ != nullptr) {
    FaultedDelivery delivery = injector_->apply(
        dir, client_id, frame(payload),
        receipt != nullptr ? &receipt->faults : nullptr);
    copies = std::move(delivery.copies);
    acc.simulated_latency_seconds += delivery.extra_delay_seconds;
    latency_factor = injector_->straggler_factor(client_id);
  } else {
    copies.push_back(frame(payload));
  }

  for (const std::vector<std::uint8_t>& copy : copies) {
    if (up) {
      ++acc.messages_up;
      acc.bytes_up += payload_bytes;
      acc.frame_bytes_up += copy.size() - payload_bytes;
    } else {
      ++acc.messages_down;
      acc.bytes_down += payload_bytes;
      acc.frame_bytes_down += copy.size() - payload_bytes;
    }
    if (bandwidth_ > 0.0)
      acc.simulated_latency_seconds +=
          latency_factor *
          (per_message_ + static_cast<double>(copy.size()) / bandwidth_);
  }
  return copies;
}

void Transport::commit(const ShipReceipt& receipt) {
  stats_.merge(receipt.transport);
  if (injector_ != nullptr) injector_->merge_stats(receipt.faults);
}

void Transport::account(std::size_t bytes, bool up) {
  if (up) {
    ++stats_.messages_up;
    stats_.bytes_up += bytes;
  } else {
    ++stats_.messages_down;
    stats_.bytes_down += bytes;
  }
  if (bandwidth_ > 0.0)
    stats_.simulated_latency_seconds +=
        per_message_ + static_cast<double>(bytes) / bandwidth_;
}

}  // namespace dinar::fl
