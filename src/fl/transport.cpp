#include "fl/transport.h"

#include "net/frame.h"
#include "util/error.h"

namespace dinar::fl {

void TransportStats::merge(const TransportStats& other) {
  messages_up += other.messages_up;
  messages_down += other.messages_down;
  bytes_up += other.bytes_up;
  bytes_down += other.bytes_down;
  frame_bytes_up += other.frame_bytes_up;
  frame_bytes_down += other.frame_bytes_down;
  bytes_up_uncoded += other.bytes_up_uncoded;
  bytes_down_uncoded += other.bytes_down_uncoded;
  simulated_latency_seconds += other.simulated_latency_seconds;
  socket_frames_tx += other.socket_frames_tx;
  socket_frames_rx += other.socket_frames_rx;
  socket_bytes_tx += other.socket_bytes_tx;
  socket_bytes_rx += other.socket_bytes_rx;
  socket_reconnects += other.socket_reconnects;
  socket_evictions += other.socket_evictions;
  socket_queue_drops += other.socket_queue_drops;
  socket_protocol_errors += other.socket_protocol_errors;
}

std::vector<std::uint8_t> Transport::uplink(std::vector<std::uint8_t> payload) {
  account(payload.size(), /*up=*/true);
  return payload;
}

std::vector<std::uint8_t> Transport::downlink(std::vector<std::uint8_t> payload) {
  account(payload.size(), /*up=*/false);
  return payload;
}

void Transport::enable_faults(const FaultConfig& config) {
  injector_ = std::make_unique<FaultInjector>(config);
}

// The DFRM codec lives in net/frame.h so the socket layer and the
// in-process transport can never drift apart; these statics stay as the
// fl-facing names the round protocol and its tests use.
std::vector<std::uint8_t> Transport::frame(const std::vector<std::uint8_t>& payload) {
  return net::frame(payload);
}

std::vector<std::uint8_t> Transport::open(const std::vector<std::uint8_t>& framed) {
  return net::open_frame(framed);
}

std::vector<std::vector<std::uint8_t>> Transport::ship(
    LinkDir dir, int client_id, const std::vector<std::uint8_t>& payload,
    ShipReceipt* receipt) {
  const bool up = dir == LinkDir::kUp;
  const std::size_t payload_bytes = payload.size();
  TransportStats& acc = receipt != nullptr ? receipt->transport : stats_;

  std::vector<std::vector<std::uint8_t>> copies;
  double latency_factor = 1.0;
  if (injector_ != nullptr) {
    FaultedDelivery delivery = injector_->apply(
        dir, client_id, frame(payload),
        receipt != nullptr ? &receipt->faults : nullptr);
    copies = std::move(delivery.copies);
    acc.simulated_latency_seconds += delivery.extra_delay_seconds;
    latency_factor = injector_->straggler_factor(client_id);
  } else {
    copies.push_back(frame(payload));
  }

  for (const std::vector<std::uint8_t>& copy : copies) {
    if (up) {
      ++acc.messages_up;
      acc.bytes_up += payload_bytes;
      acc.frame_bytes_up += copy.size() - payload_bytes;
    } else {
      ++acc.messages_down;
      acc.bytes_down += payload_bytes;
      acc.frame_bytes_down += copy.size() - payload_bytes;
    }
    if (bandwidth_ > 0.0)
      acc.simulated_latency_seconds +=
          latency_factor *
          (per_message_ + static_cast<double>(copy.size()) / bandwidth_);
  }
  return copies;
}

void Transport::commit(const ShipReceipt& receipt) {
  stats_.merge(receipt.transport);
  if (injector_ != nullptr) injector_->merge_stats(receipt.faults);
}

void Transport::account(std::size_t bytes, bool up) {
  if (up) {
    ++stats_.messages_up;
    stats_.bytes_up += bytes;
  } else {
    ++stats_.messages_down;
    stats_.bytes_down += bytes;
  }
  if (bandwidth_ > 0.0)
    stats_.simulated_latency_seconds +=
        per_message_ + static_cast<double>(bytes) / bandwidth_;
}

}  // namespace dinar::fl
