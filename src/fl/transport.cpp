#include "fl/transport.h"

namespace dinar::fl {

std::vector<std::uint8_t> Transport::uplink(std::vector<std::uint8_t> payload) {
  account(payload.size(), /*up=*/true);
  return payload;
}

std::vector<std::uint8_t> Transport::downlink(std::vector<std::uint8_t> payload) {
  account(payload.size(), /*up=*/false);
  return payload;
}

void Transport::account(std::size_t bytes, bool up) {
  if (up) {
    ++stats_.messages_up;
    stats_.bytes_up += bytes;
  } else {
    ++stats_.messages_down;
    stats_.bytes_down += bytes;
  }
  if (bandwidth_ > 0.0)
    stats_.simulated_latency_seconds +=
        per_message_ + static_cast<double>(bytes) / bandwidth_;
}

}  // namespace dinar::fl
