// Byzantine-robust aggregation strategies behind a two-phase API.
//
// FedAvg trusts every well-formed update: a single sign-flipping or
// model-replacement client steers the global model arbitrarily. The
// aggregators here bound that influence — coordinate-wise median, trimmed
// mean, norm-clipped FedAvg, and Krum / Multi-Krum selection — and report,
// per client, whether the update was excluded, down-weighted or clipped and
// why, so RoundOutcome can attribute repair work to specific clients.
//
// Two-phase interface (hierarchical aggregation, DESIGN.md §12):
//
//   shard_aggregate(span<updates>, global) -> ShardSummary
//       An edge aggregator runs the full robust strategy over one client
//       shard and emits a compact summary: one aggregate arena, the
//       per-client flags, and per-shard statistics (accepted / flagged
//       counts, scored-delta-norm distribution, sample weight).
//   combine(span<summaries>, global) -> RobustAggregateResult
//       The root merges shard summaries with flat chunked loops: the
//       result is the shard-weight-proportional mean of the shard arenas,
//       summaries visited in ascending position order (fixed reduction
//       order, bit-identical for any thread count). Empty summaries (a
//       shard whose clients all churned away or were quarantined) are
//       skipped. With exactly one non-empty summary the arena is copied
//       verbatim, so the single-shard path is bit-identical to the flat
//       aggregation it replaced.
//
//   begin_shard(global) -> ShardAccumulator
//       Streaming form of the edge phase (streaming round engine,
//       DESIGN.md §13): one accumulator per shard absorbs validated
//       updates as their exchanges complete; finalize() emits the summary
//       shard_aggregate() would have produced for the same updates in the
//       same order — bit-for-bit.
//
// aggregate() is the flat convenience over the two phases (one shard =
// the whole cohort) and produces exactly the pre-redesign results.
//
// All strategies are *layer-aware*: `RobustConfig::excluded_tensors` names
// layer-index entry positions (normally the DINAR-obfuscated sensitive
// layer) that are excluded from every distance / norm / outlier
// computation. Honest DINAR clients legitimately upload random values
// there (Algorithm 1's model obfuscation), so a naive outlier filter would
// quarantine exactly the clients it is meant to protect. Excluded tensors
// are still averaged (plain weighted FedAvg) so the broadcast keeps its
// structure; their content is obfuscation noise that personalization
// discards anyway. The exclusions apply identically inside every shard.
//
// Robust aggregation needs to see individual updates, so it is incompatible
// with secure aggregation's pre-weighted masked sums; every strategy except
// plain FedAvg rejects pre_weighted updates (per shard, like the flat path).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fl/message.h"

namespace dinar {
class ExecutionContext;
}

namespace dinar::fl {

// Named registry of the aggregation strategies (mirrors the
// DINAR_GEMM_KERNEL pin pattern: construction sites name a kind, unknown
// names fail with an error listing every registered kind).
enum class AggregatorKind {
  kFedAvg,
  kMedian,
  kTrimmedMean,
  kNormClip,
  kKrum,
  kMultiKrum,
};
const char* to_string(AggregatorKind kind);
// Throws dinar::Error naming the unknown kind and listing the known ones.
AggregatorKind aggregator_kind_from_name(const std::string& name);

struct RobustConfig {
  // fedavg | median | trimmed_mean | norm_clip | krum | multi_krum
  std::string method = "fedavg";
  // Fraction of clients trimmed from *each* end per coordinate
  // (trimmed_mean); must lie in [0, 0.5).
  double trim_fraction = 0.2;
  // median / trimmed_mean outlier screen: a client whose distance to the
  // coordinate-wise median exceeds `outlier_threshold` x the median of all
  // client distances is excluded before the statistic is taken. Must be
  // >= 1 so the screen can never flag more than half the cohort.
  double outlier_threshold = 4.0;
  // norm_clip: per-update delta norms are clipped to
  // `clip_multiplier` x median(delta norms); must be > 0.
  double clip_multiplier = 2.0;
  // krum / multi_krum: the number f of Byzantine clients the scoring
  // assumes; clamped so every client keeps >= 1 scored neighbor. Under
  // sharding the clamp applies per shard (a shard of n members assumes at
  // most n - 3 Byzantine members).
  std::size_t assumed_byzantine = 0;
  // multi_krum: how many best-scored updates are averaged (0 = n - f).
  std::size_t multi_krum_select = 0;
  // When true the simulation appends the defense bundle's obfuscated
  // layers to `excluded_tensors`; false reproduces the naive filter (used
  // by the regression test proving the naive filter quarantines honest
  // DINAR updates).
  bool layer_aware = true;
  // Layer-index entry positions excluded from all scoring (see header
  // comment).
  std::vector<std::size_t> excluded_tensors;
};

// One client's treatment by the aggregator, beyond plain acceptance.
struct AggregatorFlag {
  int client_id = 0;
  std::string reason;     // e.g. "median-outlier: ...", "krum-rank: ..."
  bool excluded = false;  // true: the update did not enter the aggregate
};

// Deterministic per-shard statistics: what one edge aggregator saw and
// decided. Everything here is a pure function of the shard's updates, so
// the stats are safe to persist in durable RoundOutcome records and to
// compare across thread counts (no wall-clock, no pointers).
struct ShardStats {
  std::uint32_t shard_id = 0;
  std::uint64_t num_updates = 0;   // updates that entered the shard phase
  std::uint64_t num_accepted = 0;  // updates that entered the aggregate
  std::uint64_t num_flagged = 0;   // flags raised (excluded or clipped)
  // Sample weight of the accepted members (the root's merge weight).
  double weight = 0.0;
  // Distribution of the members' scored-delta L2 norms vs the pre-round
  // global model (obfuscated tensors excluded). All zero for pre-weighted
  // (secure-aggregation) shards, whose parameters are not comparable to
  // the global model before unweighting.
  double min_norm = 0.0;
  double median_norm = 0.0;
  double max_norm = 0.0;
};

// An edge aggregator's compact output: one aggregate arena — regardless of
// how many clients the shard held — plus flags and stats. The arena's
// precise meaning is strategy-defined (shard robust mean, shard Krum
// selection average, ...); combine() of the same strategy interprets it.
// A default-constructed summary is the empty shard (no clients this
// round); combine() skips it.
struct ShardSummary {
  ShardStats stats;
  nn::FlatParams params;
  std::vector<AggregatorFlag> flags;

  bool empty() const { return stats.num_updates == 0; }
};

struct RobustAggregateResult {
  nn::FlatParams params;
  std::vector<AggregatorFlag> flags;
};

// Incremental edge aggregation (streaming round pipeline, DESIGN.md §13):
// one accumulator per shard, opened by RobustAggregator::begin_shard()
// before any update arrives. absorb() folds one validated update into the
// in-progress shard state as its exchange completes; finalize() (exactly
// once) emits the same ShardSummary the batch shard_aggregate() would have
// produced for the absorbed updates in absorb order — that equivalence is
// the pipeline's bit-identity contract, enforced by the determinism
// gauntlet. finalize() after zero absorbs returns the empty summary
// (mirrors an empty shard in plan_shards, which combine() skips).
//
// absorb() is called from the commit path (one thread, ascending client-id
// order) and must run its loops inline rather than fanning out across the
// pool: the pool's queue is full of still-running client exchanges, and an
// absorb that waited on it would serialize the very tail it exists to
// overlap. finalize() runs after the fan-out drains and may parallelize.
class ShardAccumulator {
 public:
  virtual ~ShardAccumulator() = default;
  virtual void absorb(const ModelUpdateMsg& update) = 0;
  virtual ShardSummary finalize() = 0;
};

class RobustAggregator {
 public:
  virtual ~RobustAggregator() = default;
  virtual std::string name() const = 0;

  // Phase 1 — edge: aggregates one shard's validated updates (non-empty,
  // structurally consistent with `global`). `global` is the pre-round
  // model — several strategies work on deltas theta_i - global rather than
  // raw parameters. All loops stream contiguous arena spans chunked by the
  // execution context. The caller owns stats.shard_id (left 0 here).
  virtual ShardSummary shard_aggregate(std::span<const ModelUpdateMsg> updates,
                                       const nn::FlatParams& global) = 0;

  // Phase 2 — root: merges shard summaries into the round's aggregate with
  // flat chunked loops (see the header comment for the exact semantics and
  // the single-shard bit-identity contract). Throws when every summary is
  // empty: the caller must carry the previous model forward instead.
  virtual RobustAggregateResult combine(std::span<const ShardSummary> summaries,
                                        const nn::FlatParams& global);

  // Phase 1, streaming form — opens an incremental accumulator for one
  // shard (see ShardAccumulator above). `global` is the pre-round model
  // and must stay alive and unmodified until finalize() returns. The
  // default implementation buffers absorbed updates and finalizes through
  // shard_aggregate(), so every strategy is streamable (trivially
  // bit-identical); strategies whose statistic folds update-by-update
  // override it with a true constant-memory accumulator (FedAvg does).
  virtual std::unique_ptr<ShardAccumulator> begin_shard(const nn::FlatParams& global);

  // Flat convenience: the whole cohort as one shard. Bit-identical to the
  // pre-redesign monolithic aggregate(). Spans only — the PR 8 vector
  // overload shims are gone; wrap braced lists in a named vector.
  RobustAggregateResult aggregate(std::span<const ModelUpdateMsg> updates,
                                  const nn::FlatParams& global);

  // Shared execution context for the per-coordinate / pairwise-distance
  // loops; nullptr (the default) runs them sequentially. Results are
  // bit-identical for any thread count — every coordinate is computed
  // wholly within one chunk, in the sequential order.
  void set_execution_context(const ExecutionContext* exec) { exec_ = exec; }

 protected:
  const ExecutionContext* exec_ = nullptr;
};

// Registry factory; throws dinar::Error on an out-of-range parameter.
// `config.method` is ignored by the kind overload (the kind wins).
std::unique_ptr<RobustAggregator> make_robust_aggregator(AggregatorKind kind,
                                                         RobustConfig config = {});
// Name-keyed convenience over the registry: resolves config.method via
// aggregator_kind_from_name (named error on unknown methods).
std::unique_ptr<RobustAggregator> make_robust_aggregator(const RobustConfig& config);
std::vector<std::string> robust_aggregator_names();

}  // namespace dinar::fl
