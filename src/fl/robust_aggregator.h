// Byzantine-robust aggregation strategies.
//
// FedAvg trusts every well-formed update: a single sign-flipping or
// model-replacement client steers the global model arbitrarily. The
// aggregators here bound that influence — coordinate-wise median, trimmed
// mean, norm-clipped FedAvg, and Krum / Multi-Krum selection — and report,
// per client, whether the update was excluded, down-weighted or clipped and
// why, so RoundOutcome can attribute repair work to specific clients.
//
// All of them are *layer-aware*: `RobustConfig::excluded_tensors` names
// layer-index entry positions (normally the DINAR-obfuscated sensitive
// layer) that are excluded from every distance / norm / outlier
// computation. Honest
// DINAR clients legitimately upload random values there (Algorithm 1's
// model obfuscation), so a naive outlier filter would quarantine exactly
// the clients it is meant to protect. Excluded tensors are still averaged
// (plain weighted FedAvg) so the broadcast keeps its structure; their
// content is obfuscation noise that personalization discards anyway.
//
// Robust aggregation needs to see individual updates, so it is incompatible
// with secure aggregation's pre-weighted masked sums; every strategy except
// plain FedAvg rejects pre_weighted updates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fl/message.h"

namespace dinar {
class ExecutionContext;
}

namespace dinar::fl {

struct RobustConfig {
  // fedavg | median | trimmed_mean | norm_clip | krum | multi_krum
  std::string method = "fedavg";
  // Fraction of clients trimmed from *each* end per coordinate
  // (trimmed_mean); must lie in [0, 0.5).
  double trim_fraction = 0.2;
  // median / trimmed_mean outlier screen: a client whose distance to the
  // coordinate-wise median exceeds `outlier_threshold` x the median of all
  // client distances is excluded before the statistic is taken. Must be
  // >= 1 so the screen can never flag more than half the cohort.
  double outlier_threshold = 4.0;
  // norm_clip: per-update delta norms are clipped to
  // `clip_multiplier` x median(delta norms); must be > 0.
  double clip_multiplier = 2.0;
  // krum / multi_krum: the number f of Byzantine clients the scoring
  // assumes; clamped so every client keeps >= 1 scored neighbor.
  std::size_t assumed_byzantine = 0;
  // multi_krum: how many best-scored updates are averaged (0 = n - f).
  std::size_t multi_krum_select = 0;
  // When true the simulation appends the defense bundle's obfuscated
  // layers to `excluded_tensors`; false reproduces the naive filter (used
  // by the regression test proving the naive filter quarantines honest
  // DINAR updates).
  bool layer_aware = true;
  // Layer-index entry positions excluded from all scoring (see header
  // comment).
  std::vector<std::size_t> excluded_tensors;
};

// One client's treatment by the aggregator, beyond plain acceptance.
struct AggregatorFlag {
  int client_id = 0;
  std::string reason;     // e.g. "median-outlier: ...", "krum-rank: ..."
  bool excluded = false;  // true: the update did not enter the aggregate
};

struct RobustAggregateResult {
  nn::FlatParams params;
  std::vector<AggregatorFlag> flags;
};

class RobustAggregator {
 public:
  virtual ~RobustAggregator() = default;
  virtual std::string name() const = 0;

  // Aggregates validated updates (non-empty, structurally consistent with
  // `global`). `global` is the pre-round model — several strategies work
  // on deltas theta_i - global rather than raw parameters. All loops
  // stream contiguous arena spans chunked by the execution context.
  virtual RobustAggregateResult aggregate(const std::vector<ModelUpdateMsg>& updates,
                                          const nn::FlatParams& global) = 0;

  // Shared execution context for the per-coordinate / pairwise-distance
  // loops; nullptr (the default) runs them sequentially. Results are
  // bit-identical for any thread count — every coordinate is computed
  // wholly within one chunk, in the sequential order.
  void set_execution_context(const ExecutionContext* exec) { exec_ = exec; }

 protected:
  const ExecutionContext* exec_ = nullptr;
};

// Factory over RobustConfig::method; throws dinar::Error on an unknown
// method or out-of-range parameter.
std::unique_ptr<RobustAggregator> make_robust_aggregator(const RobustConfig& config);
std::vector<std::string> robust_aggregator_names();

}  // namespace dinar::fl
