#include "fl/faults.h"

#include "util/error.h"

namespace dinar::fl {

bool FaultConfig::any() const {
  return drop_up > 0.0 || drop_down > 0.0 || duplicate_up > 0.0 ||
         duplicate_down > 0.0 || corrupt_up > 0.0 || corrupt_down > 0.0 ||
         delay_prob > 0.0 || !crash_at_round.empty() || !straggler_factor.empty();
}

namespace {

void check_probability(double p, const char* name) {
  DINAR_CHECK(p >= 0.0 && p <= 1.0, "fault probability " << name << " = " << p
                                                         << " outside [0, 1]");
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), base_rng_(config_.seed), rng_(config_.seed) {
  check_probability(config_.drop_up, "drop_up");
  check_probability(config_.drop_down, "drop_down");
  check_probability(config_.duplicate_up, "duplicate_up");
  check_probability(config_.duplicate_down, "duplicate_down");
  check_probability(config_.corrupt_up, "corrupt_up");
  check_probability(config_.corrupt_down, "corrupt_down");
  check_probability(config_.delay_prob, "delay_prob");
  DINAR_CHECK(config_.delay_max_seconds >= 0.0, "negative delay_max_seconds");
  for (const auto& [client, factor] : config_.straggler_factor)
    DINAR_CHECK(factor >= 1.0, "straggler factor for client " << client
                                                              << " must be >= 1");
  begin_round(0);
}

void FaultInjector::begin_round(std::int64_t round) {
  round_ = round;
  rng_ = base_rng_.fork(0xF417ULL + static_cast<std::uint64_t>(round));
}

bool FaultInjector::is_crashed(int client_id) const {
  const auto it = config_.crash_at_round.find(client_id);
  return it != config_.crash_at_round.end() && round_ >= it->second;
}

double FaultInjector::straggler_factor(int client_id) const {
  const auto it = config_.straggler_factor.find(client_id);
  return it == config_.straggler_factor.end() ? 1.0 : it->second;
}

FaultedDelivery FaultInjector::apply(LinkDir dir, std::vector<std::uint8_t> payload) {
  const bool up = dir == LinkDir::kUp;
  FaultedDelivery delivery;

  if (rng_.bernoulli(up ? config_.drop_up : config_.drop_down)) {
    ++(up ? stats_.drops_up : stats_.drops_down);
    return delivery;
  }

  delivery.copies.push_back(std::move(payload));
  if (rng_.bernoulli(up ? config_.duplicate_up : config_.duplicate_down)) {
    ++(up ? stats_.duplicates_up : stats_.duplicates_down);
    delivery.copies.push_back(delivery.copies.front());
  }

  const double p_corrupt = up ? config_.corrupt_up : config_.corrupt_down;
  for (std::vector<std::uint8_t>& copy : delivery.copies) {
    if (!copy.empty() && rng_.bernoulli(p_corrupt)) {
      ++(up ? stats_.corruptions_up : stats_.corruptions_down);
      corrupt_bytes(copy);
    }
  }

  if (rng_.bernoulli(config_.delay_prob)) {
    ++stats_.delays_injected;
    delivery.extra_delay_seconds = rng_.uniform(0.0, config_.delay_max_seconds);
    stats_.injected_delay_seconds += delivery.extra_delay_seconds;
  }
  return delivery;
}

void FaultInjector::corrupt_bytes(std::vector<std::uint8_t>& payload) {
  // Flip 1-4 bytes at random positions; the xor mask is drawn from
  // [1, 255] so every flip genuinely changes the byte.
  const std::uint64_t flips = 1 + rng_.uniform_index(4);
  for (std::uint64_t f = 0; f < flips; ++f) {
    const std::size_t pos = static_cast<std::size_t>(rng_.uniform_index(payload.size()));
    payload[pos] ^= static_cast<std::uint8_t>(1 + rng_.uniform_index(255));
  }
}

}  // namespace dinar::fl
