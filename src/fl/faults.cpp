#include "fl/faults.h"

#include "util/error.h"

namespace dinar::fl {

bool FaultConfig::any() const {
  return drop_up > 0.0 || drop_down > 0.0 || duplicate_up > 0.0 ||
         duplicate_down > 0.0 || corrupt_up > 0.0 || corrupt_down > 0.0 ||
         delay_prob > 0.0 || !crash_at_round.empty() || !straggler_factor.empty() ||
         !straggler_wall_seconds.empty();
}

namespace {

void check_probability(double p, const char* name) {
  DINAR_CHECK(p >= 0.0 && p <= 1.0, "fault probability " << name << " = " << p
                                                         << " outside [0, 1]");
}

// Order-free fork stream for one message's fault draws. Mixing odd
// multipliers per component keeps distinct (client, dir, seq) triples on
// distinct streams; client -1 (the legacy entry point) lands on its own
// family of streams.
std::uint64_t message_stream(int client_id, LinkDir dir, std::uint64_t seq) {
  std::uint64_t h = 0xFA17BA5EULL;
  h ^= static_cast<std::uint64_t>(client_id + 2) * 0x9E3779B97F4A7C15ULL;
  h ^= (dir == LinkDir::kUp ? 0x5BD1E995ULL : 0xC2B2AE3D27D4EB4FULL);
  h ^= (seq + 1) * 0x94D049BB133111EBULL;
  return h;
}

}  // namespace

void FaultStats::merge(const FaultStats& other) {
  drops_up += other.drops_up;
  drops_down += other.drops_down;
  duplicates_up += other.duplicates_up;
  duplicates_down += other.duplicates_down;
  corruptions_up += other.corruptions_up;
  corruptions_down += other.corruptions_down;
  crashed_contacts += other.crashed_contacts;
  delays_injected += other.delays_injected;
  injected_delay_seconds += other.injected_delay_seconds;
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), base_rng_(config_.seed), round_rng_(config_.seed) {
  check_probability(config_.drop_up, "drop_up");
  check_probability(config_.drop_down, "drop_down");
  check_probability(config_.duplicate_up, "duplicate_up");
  check_probability(config_.duplicate_down, "duplicate_down");
  check_probability(config_.corrupt_up, "corrupt_up");
  check_probability(config_.corrupt_down, "corrupt_down");
  check_probability(config_.delay_prob, "delay_prob");
  DINAR_CHECK(config_.delay_max_seconds >= 0.0, "negative delay_max_seconds");
  for (const auto& [client, factor] : config_.straggler_factor)
    DINAR_CHECK(factor >= 1.0, "straggler factor for client " << client
                                                              << " must be >= 1");
  for (const auto& [client, seconds] : config_.straggler_wall_seconds)
    DINAR_CHECK(seconds >= 0.0, "straggler wall seconds for client "
                                    << client << " must be >= 0");
  begin_round(0);
}

void FaultInjector::begin_round(std::int64_t round) {
  round_ = round;
  round_rng_ = base_rng_.fork(0xF417ULL + static_cast<std::uint64_t>(round));
  std::lock_guard<std::mutex> lock(mu_);
  seq_.clear();
}

std::uint64_t FaultInjector::next_seq(LinkDir dir, int client_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_[{client_id, dir == LinkDir::kUp ? 1 : 0}]++;
}

bool FaultInjector::is_crashed(int client_id) const {
  const auto it = config_.crash_at_round.find(client_id);
  return it != config_.crash_at_round.end() && round_ >= it->second;
}

double FaultInjector::straggler_factor(int client_id) const {
  const auto it = config_.straggler_factor.find(client_id);
  return it == config_.straggler_factor.end() ? 1.0 : it->second;
}

double FaultInjector::straggler_wall_seconds(int client_id) const {
  const auto it = config_.straggler_wall_seconds.find(client_id);
  return it == config_.straggler_wall_seconds.end() ? 0.0 : it->second;
}

FaultedDelivery FaultInjector::apply(LinkDir dir, int client_id,
                                     std::vector<std::uint8_t> payload,
                                     FaultStats* sink) {
  const bool up = dir == LinkDir::kUp;
  Rng rng = round_rng_.fork(message_stream(client_id, dir, next_seq(dir, client_id)));
  FaultStats local;
  FaultedDelivery delivery;

  const auto commit = [&] {
    if (sink != nullptr) {
      sink->merge(local);
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.merge(local);
    }
  };

  if (rng.bernoulli(up ? config_.drop_up : config_.drop_down)) {
    ++(up ? local.drops_up : local.drops_down);
    commit();
    return delivery;
  }

  delivery.copies.push_back(std::move(payload));
  if (rng.bernoulli(up ? config_.duplicate_up : config_.duplicate_down)) {
    ++(up ? local.duplicates_up : local.duplicates_down);
    delivery.copies.push_back(delivery.copies.front());
  }

  const double p_corrupt = up ? config_.corrupt_up : config_.corrupt_down;
  for (std::vector<std::uint8_t>& copy : delivery.copies) {
    if (!copy.empty() && rng.bernoulli(p_corrupt)) {
      ++(up ? local.corruptions_up : local.corruptions_down);
      corrupt_bytes(copy, rng);
    }
  }

  if (rng.bernoulli(config_.delay_prob)) {
    ++local.delays_injected;
    delivery.extra_delay_seconds = rng.uniform(0.0, config_.delay_max_seconds);
    local.injected_delay_seconds += delivery.extra_delay_seconds;
  }
  commit();
  return delivery;
}

void FaultInjector::corrupt_bytes(std::vector<std::uint8_t>& payload, Rng& rng) {
  // Flip 1-4 bytes at random positions; the xor mask is drawn from
  // [1, 255] so every flip genuinely changes the byte.
  const std::uint64_t flips = 1 + rng.uniform_index(4);
  for (std::uint64_t f = 0; f < flips; ++f) {
    const std::size_t pos = static_cast<std::size_t>(rng.uniform_index(payload.size()));
    payload[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
  }
}

FaultStats fault_stats_delta(const FaultStats& now, const FaultStats& before) {
  FaultStats d;
  d.drops_up = now.drops_up - before.drops_up;
  d.drops_down = now.drops_down - before.drops_down;
  d.duplicates_up = now.duplicates_up - before.duplicates_up;
  d.duplicates_down = now.duplicates_down - before.duplicates_down;
  d.corruptions_up = now.corruptions_up - before.corruptions_up;
  d.corruptions_down = now.corruptions_down - before.corruptions_down;
  d.crashed_contacts = now.crashed_contacts - before.crashed_contacts;
  d.delays_injected = now.delays_injected - before.delays_injected;
  d.injected_delay_seconds = now.injected_delay_seconds - before.injected_delay_seconds;
  return d;
}

// -- Byzantine (adversarial) clients ----------------------------------------

const char* to_string(AttackType type) {
  switch (type) {
    case AttackType::kSignFlip: return "sign-flip";
    case AttackType::kModelReplacement: return "model-replacement";
    case AttackType::kGaussianNoise: return "gaussian-noise";
    case AttackType::kColluding: return "colluding";
  }
  return "unknown";
}

namespace {

// Distinct, order-free fork streams per (round, client) and per round.
std::uint64_t attack_stream(std::int64_t round, int client_id) {
  return 0xADF00000ULL + static_cast<std::uint64_t>(round) * 100003ULL +
         static_cast<std::uint64_t>(client_id);
}
std::uint64_t collusion_stream(std::int64_t round) {
  return 0xC011DE00ULL + static_cast<std::uint64_t>(round);
}

}  // namespace

AdversaryEngine::AdversaryEngine(AdversaryConfig config)
    : config_(std::move(config)), base_rng_(config_.seed) {
  DINAR_CHECK(config_.active_from_round >= 0, "negative adversary active_from_round");
  DINAR_CHECK(config_.sign_flip_scale > 0.0, "sign_flip_scale must be positive");
  DINAR_CHECK(config_.replacement_scale > 0.0, "replacement_scale must be positive");
  DINAR_CHECK(config_.noise_std >= 0.0, "negative noise_std");
  for (const auto& [client, type] : config_.attackers)
    DINAR_CHECK(client >= 0, "negative attacker client id " << client
                                                            << " (" << to_string(type)
                                                            << ")");
}

bool AdversaryEngine::is_attacker(int client_id) const {
  return round_ >= config_.active_from_round &&
         config_.attackers.count(client_id) != 0;
}

void AdversaryEngine::corrupt_update(const nn::FlatParams& global,
                                     ModelUpdateMsg& update) {
  DINAR_CHECK(is_attacker(update.client_id),
              "corrupt_update called for honest client " << update.client_id);
  DINAR_CHECK(update.params.same_layout(global),
              "attacker " << update.client_id << " update shape differs from global");
  const AttackType type = config_.attackers.at(update.client_id);
  const std::span<const float> vg = global.as_span();
  const std::span<float> vu = update.params.as_span();

  switch (type) {
    case AttackType::kSignFlip:
      // Invert the client's own delta: the aggregate is pushed backwards
      // along an honest descent direction.
      for (std::size_t j = 0; j < vu.size(); ++j)
        vu[j] = static_cast<float>(
            static_cast<double>(vg[j]) -
            config_.sign_flip_scale *
                (static_cast<double>(vu[j]) - static_cast<double>(vg[j])));
      record(AttackType::kSignFlip);
      break;

    case AttackType::kModelReplacement:
      // Boost the own delta so a weighted mean is dominated by it (the
      // classic model-replacement / scaling backdoor vehicle).
      for (std::size_t j = 0; j < vu.size(); ++j)
        vu[j] = static_cast<float>(
            static_cast<double>(vg[j]) +
            config_.replacement_scale *
                (static_cast<double>(vu[j]) - static_cast<double>(vg[j])));
      record(AttackType::kModelReplacement);
      break;

    case AttackType::kGaussianNoise: {
      // One draw per coordinate in arena order — the same order the old
      // per-tensor loop consumed the stream in.
      Rng rng = base_rng_.fork(attack_stream(round_, update.client_id));
      for (float& v : vu)
        v = static_cast<float>(static_cast<double>(v) +
                               rng.gaussian(0.0, config_.noise_std));
      record(AttackType::kGaussianNoise);
      break;
    }

    case AttackType::kColluding: {
      // Every colluder regenerates the identical round target from the
      // same (seed, round) stream, so their uploads mutually support each
      // other in distance-based scoring (the scenario Krum is weakest in).
      Rng rng = base_rng_.fork(collusion_stream(round_));
      for (std::size_t j = 0; j < vu.size(); ++j)
        vu[j] = static_cast<float>(static_cast<double>(vg[j]) +
                                   config_.replacement_scale * rng.gaussian());
      record(AttackType::kColluding);
      break;
    }
  }
}

void AdversaryEngine::record(AttackType type) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (type) {
    case AttackType::kSignFlip: ++stats_.sign_flips; break;
    case AttackType::kModelReplacement: ++stats_.replacements; break;
    case AttackType::kGaussianNoise: ++stats_.noise_injections; break;
    case AttackType::kColluding: ++stats_.colluding_uploads; break;
  }
  ++stats_.corrupted_updates;
}

}  // namespace dinar::fl
