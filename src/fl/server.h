// FL server: FedAvg aggregation with a pluggable server-side defense.
//
// Two aggregation paths:
//  - aggregate(): the strict seed path — any malformed update throws and
//    aborts the round (used by trusted in-process experiments);
//  - validate_update() / try_aggregate() / carry_forward(): the hardened
//    path behind the fault-tolerant round protocol. Every incoming update
//    is checked (round match, structure match against the global model,
//    NaN/Inf scan, positive sample count, consistent weighting convention,
//    duplicate-client rejection) and invalid ones are quarantined with a
//    reason instead of throwing; aggregation proceeds once a quorum of
//    valid updates is available, and a round with no quorum carries the
//    previous global model forward as a degraded-but-live round.
//
// Aggregation itself is pluggable (set_aggregator): the default is the
// seed's plain FedAvg; Byzantine-robust strategies (coordinate-wise
// median, trimmed mean, norm-clipped FedAvg, Krum / Multi-Krum) bound the
// influence of adversarial but well-formed updates and report per-client
// flags that the round protocol surfaces in RoundOutcome.
//
// Both paths route through the hierarchical aggregation tree
// (set_shards, DESIGN.md §12): the cohort is partitioned into client
// shards, each shard runs the robust strategy independently (in parallel
// under an execution context), and a root combiner merges the shard
// summaries. The default single-shard tree is bit-identical to flat
// aggregation.
//
// The streaming round engine (DESIGN.md §13) drives the same tree
// incrementally through the session API — begin_aggregation() /
// absorb_validated() / finalize_aggregation() — so each validated update
// folds into its shard the moment its exchange commits instead of waiting
// for the round barrier. finalize_aggregation() is bit-identical to
// aggregate_validated() over the same updates in absorb order.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "fl/defense.h"
#include "fl/message.h"
#include "fl/robust_aggregator.h"
#include "fl/shard.h"
#include "util/timer.h"

namespace dinar::fl {

// Why the hardened path refused an update.
enum class RejectReason {
  kWrongRound,
  kStructureMismatch,
  kNonFinite,
  kNoSamples,
  kMixedWeighting,
  kDuplicateClient,
};
const char* to_string(RejectReason reason);

struct UpdateVerdict {
  bool accepted = true;
  RejectReason reason = RejectReason::kWrongRound;
  std::string detail;  // human-readable, names the offending field/tensor
};

struct AggregateOutcome {
  struct Rejection {
    int client_id = 0;
    RejectReason reason = RejectReason::kWrongRound;
    std::string detail;
  };
  std::vector<int> accepted;
  std::vector<Rejection> quarantined;
  // Per-client aggregator treatment (Krum exclusion, norm clipping,
  // outlier-screen quarantine) for the updates that passed validation.
  std::vector<AggregatorFlag> aggregator_flags;
  // Per-shard statistics from the aggregation tree (one entry per shard,
  // empty shards included); empty when no aggregation ran.
  std::vector<ShardStats> shards;
  bool aggregated = false;  // quorum met; the global model advanced
};

class FlServer {
 public:
  FlServer(nn::FlatParams initial_params, std::unique_ptr<ServerDefense> defense);

  const nn::FlatParams& global_params() const { return global_; }
  std::int64_t round() const { return round_; }

  // Builds this round's broadcast message.
  GlobalModelMsg broadcast() const;

  // -- wire codec (DESIGN.md §14) ------------------------------------------
  // Installs the negotiated codec pair (throws on an unusable config).
  // Set once, before the first round. serialize_broadcast() reads only the
  // immutable codec and its argument, so round engines may call it from a
  // worker task on a coordinator-made message copy.
  void set_wire_codec(const UpdateCodecConfig& codec);
  const UpdateCodecConfig& wire_codec() const { return codec_; }
  std::vector<std::uint8_t> serialize_broadcast(const GlobalModelMsg& msg) const {
    return msg.serialize(codec_.broadcast);
  }

  // FedAvg over this round's updates:
  //   global = sum_i w_i * theta_i / sum_i w_i
  // where w_i is the client's sample count, and theta_i arrives either raw
  // or pre-weighted (secure aggregation). A round must not mix the two
  // conventions. Runs the server defense afterwards and advances the round.
  // Spans only — the PR 8 vector overload shims are gone; wrap braced
  // lists in a named vector.
  void aggregate(std::span<const ModelUpdateMsg> updates);

  // -- hardened path -------------------------------------------------------
  // Checks one update against the current round and global model.
  // `accepted_ids` are clients already accepted this round (duplicate
  // rejection); `weighting` is the convention locked in by the first
  // accepted update (nullopt until then).
  UpdateVerdict validate_update(const ModelUpdateMsg& update,
                                const std::unordered_set<int>& accepted_ids,
                                std::optional<bool> weighting) const;

  // Validates every update, quarantining invalid ones; aggregates and
  // advances the round iff at least max(1, min_valid) updates survive.
  // Spans only (see aggregate()).
  AggregateOutcome try_aggregate(std::span<const ModelUpdateMsg> updates,
                                 std::size_t min_valid);

  // Aggregates updates the caller has already validated (they must all
  // pass validate_update against the current round). Advances the round.
  // Returns the aggregator's per-client flags (empty under plain FedAvg).
  std::vector<AggregatorFlag> aggregate_validated(
      std::span<const ModelUpdateMsg> updates);

  // -- streaming session (event-driven round pipeline, DESIGN.md §13) ------
  // Opens an incremental aggregation over the current global model and
  // shard configuration: one ShardAccumulator per shard. At most one
  // session may be open, and the global model / shards / aggregator /
  // execution context must not change while it is. validate_update()
  // still checks against the current round, which only advances at
  // finalize — so the validate-then-absorb commit sequence sees exactly
  // the state the barriered validate-then-aggregate sequence would.
  void begin_aggregation();

  // Folds one update the caller has already validated (validate_update
  // must have accepted it this round) into its shard. Single-threaded,
  // ascending-commit-order calls only; runs inline on the caller — see
  // ShardAccumulator for why it must not touch the pool.
  void absorb_validated(const ModelUpdateMsg& update);

  // Closes the shard accumulators, runs the root combine, the defense, and
  // advances the round — bit-identical to aggregate_validated() over the
  // absorbed updates in absorb order. Throws (leaving the session closed
  // and the round NOT advanced) when every shard stayed empty; requires at
  // least one absorb. Returns the aggregator's per-client flags.
  std::vector<AggregatorFlag> finalize_aggregation();

  // Abandons an open session without advancing the round (the no-quorum /
  // carry-forward path). Safe to call with no session open.
  void abort_aggregation();

  bool aggregation_open() const { return session_ != nullptr; }

  // Installs a Byzantine-robust aggregation strategy; the default is the
  // seed's plain FedAvg. Takes effect from the next aggregation. The
  // server's execution context (if set) is applied to the new aggregator.
  void set_aggregator(std::unique_ptr<RobustAggregator> aggregator);
  const RobustAggregator& aggregator() const { return *aggregator_; }

  // Shares the execution context with the aggregator so its coordinate
  // loops parallelize; must outlive the server. nullptr = sequential.
  void set_execution_context(const ExecutionContext* exec);

  // Shapes the aggregation tree (default: one shard = flat aggregation).
  // Takes effect from the next aggregation; the roster-size interaction is
  // validated by the simulation config (a server only sees cohorts).
  void set_shards(const ShardConfig& config);
  const ShardConfig& shards() const { return shard_config_; }

  // Per-shard statistics of the most recent aggregation (shard-id order,
  // empty shards included); empty before the first aggregation.
  const std::vector<ShardStats>& last_shard_stats() const {
    return last_shard_stats_;
  }

  // Wall-clock breakdown of the most recent aggregation (batch or
  // streaming). Timing only — never persisted or compared; feeds the
  // per-phase columns in RoundOutcome::timings.
  struct AggregateTimings {
    double shard_seconds = 0.0;    // sum over shards: edge absorb+finalize
    double combine_seconds = 0.0;  // root merge
  };
  const AggregateTimings& last_aggregate_timings() const { return last_timings_; }

  // Degraded round: the previous global model survives unchanged and the
  // round counter advances, keeping the federation live. Abandons any open
  // streaming session (its absorbed updates are discarded).
  void carry_forward() {
    session_.reset();
    ++round_;
  }

  // Checkpoint resume: installs a saved global model and round counter.
  void restore(std::int64_t round, nn::FlatParams params);

  // Wall-clock spent inside aggregate() (Table 3's server-side metric).
  const CumulativeTimer& aggregation_timer() const { return agg_timer_; }
  ServerDefense& defense() { return *defense_; }

 private:
  // Shared aggregation core; assumes updates are structurally valid.
  // Returns the aggregator's per-client flags.
  std::vector<AggregatorFlag> apply_aggregate(std::span<const ModelUpdateMsg> updates);
  // Installs an aggregation tree result (batch or streaming): defense,
  // global model, stats, timings, round advance.
  std::vector<AggregatorFlag> commit_aggregate(HierarchicalResult h);

  nn::FlatParams global_;
  UpdateCodecConfig codec_;
  std::unique_ptr<ServerDefense> defense_;
  std::unique_ptr<RobustAggregator> aggregator_;
  const ExecutionContext* exec_ = nullptr;
  ShardConfig shard_config_;
  std::vector<ShardStats> last_shard_stats_;
  AggregateTimings last_timings_;
  std::unique_ptr<ShardedAggregationSession> session_;
  std::int64_t round_ = 0;
  CumulativeTimer agg_timer_;
};

}  // namespace dinar::fl
