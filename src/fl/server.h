// FL server: FedAvg aggregation with a pluggable server-side defense.
#pragma once

#include <memory>
#include <vector>

#include "fl/defense.h"
#include "fl/message.h"
#include "util/timer.h"

namespace dinar::fl {

class FlServer {
 public:
  FlServer(nn::ParamList initial_params, std::unique_ptr<ServerDefense> defense);

  const nn::ParamList& global_params() const { return global_; }
  std::int64_t round() const { return round_; }

  // Builds this round's broadcast message.
  GlobalModelMsg broadcast() const;

  // FedAvg over this round's updates:
  //   global = sum_i w_i * theta_i / sum_i w_i
  // where w_i is the client's sample count, and theta_i arrives either raw
  // or pre-weighted (secure aggregation). A round must not mix the two
  // conventions. Runs the server defense afterwards and advances the round.
  void aggregate(const std::vector<ModelUpdateMsg>& updates);

  // Wall-clock spent inside aggregate() (Table 3's server-side metric).
  const CumulativeTimer& aggregation_timer() const { return agg_timer_; }
  ServerDefense& defense() { return *defense_; }

 private:
  nn::ParamList global_;
  std::unique_ptr<ServerDefense> defense_;
  std::int64_t round_ = 0;
  CumulativeTimer agg_timer_;
};

}  // namespace dinar::fl
