#include "fl/socket_transport.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/error.h"

namespace dinar::fl {
namespace {

constexpr std::uint32_t kHelloTag = 0x4F4C4548;  // "HELO"
constexpr std::uint32_t kDataTag = 0x41544144;   // "DATA"
constexpr std::size_t kEnvelopeHeadBytes = sizeof(std::uint32_t) + sizeof(std::uint64_t);

std::vector<std::uint8_t> envelope(std::uint32_t tag, int client_id,
                                   const std::vector<std::uint8_t>& inner) {
  std::vector<std::uint8_t> env(kEnvelopeHeadBytes + inner.size());
  const std::uint64_t id = static_cast<std::uint64_t>(client_id);
  std::memcpy(env.data(), &tag, sizeof tag);
  std::memcpy(env.data() + sizeof tag, &id, sizeof id);
  if (!inner.empty())
    std::memcpy(env.data() + kEnvelopeHeadBytes, inner.data(), inner.size());
  return env;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)), server_(options_.server) {
  server_.set_frame_handler([this](int conn, std::vector<std::uint8_t> payload) {
    if (payload.size() < kEnvelopeHeadBytes) return false;  // not ours: shed
    std::uint32_t tag = 0;
    std::uint64_t id64 = 0;
    std::memcpy(&tag, payload.data(), sizeof tag);
    std::memcpy(&id64, payload.data() + sizeof tag, sizeof id64);
    if (tag != kHelloTag && tag != kDataTag) return false;
    const int client_id = static_cast<int>(id64);
    {
      std::lock_guard<std::mutex> lk(mu_);
      // Latest-wins registration: a reconnected client's new conn replaces
      // the stale mapping even before the old conn's disconnect fires.
      const auto old = conn_of_client_.find(client_id);
      if (old != conn_of_client_.end() && old->second != conn)
        client_of_conn_.erase(old->second);
      conn_of_client_[client_id] = conn;
      client_of_conn_[conn] = client_id;
      if (tag == kDataTag)
        inbox_[client_id].emplace_back(payload.begin() + kEnvelopeHeadBytes,
                                       payload.end());
    }
    cv_.notify_all();
    return true;
  });
  server_.set_disconnect_handler([this](int conn, net::EvictReason reason) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = client_of_conn_.find(conn);
    if (it == client_of_conn_.end()) return;
    const int client_id = it->second;
    client_of_conn_.erase(it);
    if (const auto c = conn_of_client_.find(client_id);
        c != conn_of_client_.end() && c->second == conn)
      conn_of_client_.erase(c);
    if (reason != net::EvictReason::kServerStop &&
        reason != net::EvictReason::kPeerClosed)
      ++evictions_of_client_[client_id];
  });
  server_.start();
}

SocketTransport::~SocketTransport() { server_.stop(); }

SocketTransport::Endpoint& SocketTransport::endpoint(int client_id) {
  std::lock_guard<std::mutex> lk(mu_);
  std::unique_ptr<Endpoint>& slot = endpoints_[client_id];
  if (slot == nullptr) {
    slot = std::make_unique<Endpoint>();
    net::ClientConfig cc = options_.client;
    cc.port = server_.port();
    // Distinct backoff jitter stream per client, derived deterministically
    // so a run's reconnect schedule is reproducible.
    cc.jitter_seed = options_.client.jitter_seed +
                     0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(client_id) + 1);
    slot->client = std::make_unique<net::TcpClient>(cc);
  }
  return *slot;
}

bool SocketTransport::ensure_ready(int client_id, Endpoint& ep, double deadline) {
  if (!ep.client->ensure_connected()) return false;
  if (ep.client->stats().connects != ep.hello_connects) {
    if (!ep.client->send_frame(envelope(kHelloTag, client_id, {}))) return false;
    ep.hello_connects = ep.client->stats().connects;
  }
  std::unique_lock<std::mutex> lk(mu_);
  while (conn_of_client_.find(client_id) == conn_of_client_.end()) {
    const double now = net::monotonic_seconds();
    if (now >= deadline) return false;
    cv_.wait_for(lk, std::chrono::duration<double>(
                         std::min(0.05, deadline - now)));
  }
  return true;
}

std::vector<std::vector<std::uint8_t>> SocketTransport::tunnel_up(
    int client_id, Endpoint& ep,
    const std::vector<std::vector<std::uint8_t>>& copies, double deadline,
    std::uint64_t& wire_tx, std::uint64_t& queue_drops) {
  std::size_t sent = 0;
  for (const std::vector<std::uint8_t>& copy : copies) {
    const std::vector<std::uint8_t> env = envelope(kDataTag, client_id, copy);
    bool ok = false;
    for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
      if (!ensure_ready(client_id, ep, deadline)) break;
      ok = ep.client->send_frame(env);  // failure closes the socket; retry once
    }
    if (ok) {
      ++sent;
      wire_tx += net::kFrameHeaderBytes + env.size();
    } else {
      ++queue_drops;
    }
  }

  std::vector<std::vector<std::uint8_t>> delivered;
  delivered.reserve(sent);
  std::unique_lock<std::mutex> lk(mu_);
  std::deque<std::vector<std::uint8_t>>& box = inbox_[client_id];
  while (delivered.size() < sent) {
    if (!box.empty()) {
      delivered.push_back(std::move(box.front()));
      box.pop_front();
      continue;
    }
    const double now = net::monotonic_seconds();
    if (now >= deadline) break;  // stragglers count as lost; protocol retries
    cv_.wait_for(lk, std::chrono::duration<double>(std::min(0.05, deadline - now)));
  }
  return delivered;
}

std::vector<std::vector<std::uint8_t>> SocketTransport::tunnel_down(
    int client_id, Endpoint& ep,
    const std::vector<std::vector<std::uint8_t>>& copies, double deadline,
    std::uint64_t& wire_tx, std::uint64_t& queue_drops) {
  std::vector<std::vector<std::uint8_t>> delivered;
  if (!ensure_ready(client_id, ep, deadline)) return delivered;

  std::size_t sent = 0;
  for (const std::vector<std::uint8_t>& copy : copies) {
    int conn = -1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      const auto it = conn_of_client_.find(client_id);
      if (it != conn_of_client_.end()) conn = it->second;
    }
    if (conn >= 0 && server_.send(conn, copy)) {
      ++sent;
      wire_tx += net::kFrameHeaderBytes + copy.size();
    } else {
      ++queue_drops;  // full send queue or just-evicted conn: shed the copy
    }
  }

  delivered.reserve(sent);
  while (delivered.size() < sent) {
    const double now = net::monotonic_seconds();
    if (now >= deadline) break;
    auto payload = ep.client->recv_frame(std::min(0.25, deadline - now));
    if (payload.has_value()) {
      delivered.push_back(std::move(*payload));
      continue;
    }
    // Timeout keeps the connection usable; a disconnect means the copies
    // queued on the old conn are gone for good.
    if (!ep.client->connected()) break;
  }
  return delivered;
}

std::vector<std::vector<std::uint8_t>> SocketTransport::ship(
    LinkDir dir, int client_id, const std::vector<std::uint8_t>& payload,
    ShipReceipt* receipt) {
  // Framing, fault injection and payload/latency accounting are the base
  // class's job; what it returns is exactly what must cross the wire.
  std::vector<std::vector<std::uint8_t>> copies =
      Transport::ship(dir, client_id, payload, receipt);

  Endpoint& ep = endpoint(client_id);
  const double deadline =
      net::monotonic_seconds() + options_.exchange_timeout_seconds;
  std::uint64_t wire_tx = 0, queue_drops = 0;
  std::vector<std::vector<std::uint8_t>> delivered =
      dir == LinkDir::kUp
          ? tunnel_up(client_id, ep, copies, deadline, wire_tx, queue_drops)
          : tunnel_down(client_id, ep, copies, deadline, wire_tx, queue_drops);

  TransportStats& acc = receipt != nullptr ? receipt->transport : mutable_stats();
  acc.socket_frames_tx += copies.size() - queue_drops;
  acc.socket_frames_rx += delivered.size();
  acc.socket_bytes_tx += wire_tx;
  for (const std::vector<std::uint8_t>& d : delivered) {
    acc.socket_bytes_rx += net::kFrameHeaderBytes + d.size() +
                           (dir == LinkDir::kUp ? kEnvelopeHeadBytes : 0);
  }
  acc.socket_queue_drops += queue_drops;
  const net::ClientStats& cs = ep.client->stats();
  acc.socket_reconnects += cs.reconnects - ep.harvested_reconnects;
  ep.harvested_reconnects = cs.reconnects;
  acc.socket_protocol_errors += cs.protocol_errors - ep.harvested_protocol_errors;
  ep.harvested_protocol_errors = cs.protocol_errors;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (const auto it = evictions_of_client_.find(client_id);
        it != evictions_of_client_.end()) {
      acc.socket_evictions += it->second;
      evictions_of_client_.erase(it);
    }
  }
  return delivered;
}

}  // namespace dinar::fl
