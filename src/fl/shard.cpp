#include "fl/shard.h"

#include <chrono>

#include "util/error.h"
#include "util/execution_context.h"

namespace dinar::fl {
namespace {

// splitmix64 (Steele/Lea/Flood): full-avalanche 64-bit mix, the standard
// cheap hash for seeding and bucketing.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint32_t shard_of(int client_id, const ShardConfig& config) {
  DINAR_CHECK(config.num_shards >= 1, "shard.num_shards must be >= 1, got "
                                          << config.num_shards);
  const std::uint64_t h = splitmix64(
      config.assignment_seed ^
      static_cast<std::uint64_t>(static_cast<std::int64_t>(client_id)));
  return static_cast<std::uint32_t>(h % config.num_shards);
}

std::vector<std::span<const ModelUpdateMsg>> plan_shards(
    std::span<const ModelUpdateMsg> updates, const ShardConfig& config,
    std::vector<ModelUpdateMsg>& scratch) {
  const std::size_t num_shards = config.num_shards;
  DINAR_CHECK(num_shards >= 1, "shard.num_shards must be >= 1, got " << num_shards);

  std::vector<std::uint32_t> shard_ids(updates.size());
  std::vector<std::size_t> counts(num_shards, 0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    shard_ids[i] = shard_of(updates[i].client_id, config);
    ++counts[shard_ids[i]];
  }

  // Zero-copy fast path: every shard's members already form one contiguous
  // block of the input (true when the caller pre-sorted by shard_of, and
  // trivially for num_shards == 1). Each span aliases the input directly.
  bool grouped = true;
  std::vector<bool> closed(num_shards, false);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const std::uint32_t s = shard_ids[i];
    if (i == 0 || shard_ids[i - 1] != s) {
      if (closed[s]) {
        grouped = false;  // shard s reappears after a different shard
        break;
      }
      closed[s] = true;
    }
  }

  std::vector<std::span<const ModelUpdateMsg>> shards(num_shards);
  if (grouped) {
    std::size_t begin = 0;
    for (std::size_t i = 0; i <= updates.size(); ++i) {
      if (i == updates.size() || (i > 0 && shard_ids[i] != shard_ids[i - 1])) {
        if (i > begin) shards[shard_ids[begin]] = updates.subspan(begin, i - begin);
        begin = i;
      }
    }
    return shards;
  }

  // Gather path: copy the updates into `scratch`, grouped by ascending
  // shard id, preserving input order within a shard. The copies deep-copy
  // each arena — fine for simulation rosters; million-client callers
  // pre-sort and hit the zero-copy path above.
  std::vector<std::size_t> offsets(num_shards, 0);
  for (std::size_t s = 1; s < num_shards; ++s)
    offsets[s] = offsets[s - 1] + counts[s - 1];
  const std::vector<std::size_t> begins = offsets;
  scratch.clear();
  scratch.resize(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i)
    scratch[offsets[shard_ids[i]]++] = updates[i];
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (counts[s] > 0)
      shards[s] = std::span<const ModelUpdateMsg>(scratch).subspan(begins[s], counts[s]);
  }
  return shards;
}

HierarchicalResult hierarchical_aggregate(RobustAggregator& aggregator,
                                          std::span<const ModelUpdateMsg> updates,
                                          const nn::FlatParams& global,
                                          const ShardConfig& config,
                                          const ExecutionContext* exec) {
  DINAR_CHECK(!updates.empty(), "hierarchical_aggregate of an empty cohort");
  std::vector<ModelUpdateMsg> scratch;
  const std::vector<std::span<const ModelUpdateMsg>> plan =
      plan_shards(updates, config, scratch);
  const std::size_t num_shards = plan.size();

  // Edge phase: one task per shard. Each task writes only its own slot, so
  // the fan-out is race-free; shard_aggregate's inner loops degrade to
  // sequential on pool workers (nested parallelism), and with one shard
  // the task runs inline on the caller so they keep the full pool.
  std::vector<ShardSummary> summaries(num_shards);
  std::vector<double> seconds(num_shards, 0.0);
  const auto edge = [&](std::size_t s) {
    summaries[s].stats.shard_id = static_cast<std::uint32_t>(s);
    if (plan[s].empty()) return;  // empty shard: summary stays empty
    const auto t0 = std::chrono::steady_clock::now();
    ShardSummary summary = aggregator.shard_aggregate(plan[s], global);
    summary.stats.shard_id = static_cast<std::uint32_t>(s);
    summaries[s] = std::move(summary);
    seconds[s] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  if (exec != nullptr)
    exec->for_each_task(num_shards, edge);
  else
    for (std::size_t s = 0; s < num_shards; ++s) edge(s);

  // Root phase: merge in ascending shard-id order (fixed reduction order).
  HierarchicalResult out;
  const auto c0 = std::chrono::steady_clock::now();
  out.result = aggregator.combine(summaries, global);
  out.combine_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - c0).count();
  out.shards.reserve(num_shards);
  for (const ShardSummary& s : summaries) out.shards.push_back(s.stats);
  out.shard_seconds = std::move(seconds);
  return out;
}

ShardedAggregationSession::ShardedAggregationSession(RobustAggregator& aggregator,
                                                     const nn::FlatParams& global,
                                                     const ShardConfig& config,
                                                     const ExecutionContext* exec)
    : aggregator_(aggregator), global_(global), config_(config), exec_(exec) {
  DINAR_CHECK(config_.num_shards >= 1, "shard.num_shards must be >= 1, got "
                                           << config_.num_shards);
  accumulators_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s)
    accumulators_.push_back(aggregator_.begin_shard(global_));
  shard_seconds_.assign(config_.num_shards, 0.0);
}

void ShardedAggregationSession::absorb(const ModelUpdateMsg& update) {
  const std::uint32_t s = shard_of(update.client_id, config_);
  const auto t0 = std::chrono::steady_clock::now();
  accumulators_[s]->absorb(update);
  shard_seconds_[s] +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ++absorbed_;
}

HierarchicalResult ShardedAggregationSession::finalize() {
  const std::size_t num_shards = accumulators_.size();
  // Close the accumulators as one task per shard (race-free slots), like
  // the barriered edge fan-out: by the time finalize runs the round's
  // exchange tasks have drained, so buffering strategies get the pool for
  // their whole-shard pass. Order cannot matter — each finalize is a pure
  // function of its own shard's absorbed sequence.
  std::vector<ShardSummary> summaries(num_shards);
  const auto close = [&](std::size_t s) {
    const auto t0 = std::chrono::steady_clock::now();
    ShardSummary summary = accumulators_[s]->finalize();
    summary.stats.shard_id = static_cast<std::uint32_t>(s);
    summaries[s] = std::move(summary);
    shard_seconds_[s] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  if (exec_ != nullptr)
    exec_->for_each_task(num_shards, close);
  else
    for (std::size_t s = 0; s < num_shards; ++s) close(s);

  HierarchicalResult out;
  const auto c0 = std::chrono::steady_clock::now();
  out.result = aggregator_.combine(summaries, global_);
  out.combine_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - c0).count();
  out.shards.reserve(num_shards);
  for (const ShardSummary& s : summaries) out.shards.push_back(s.stats);
  out.shard_seconds = std::move(shard_seconds_);
  return out;
}

}  // namespace dinar::fl
