#include "fl/durable.h"

#include "store/io.h"
#include "util/error.h"

namespace dinar::fl {
namespace {

void write_int_vector(BinaryWriter& w, const std::vector<int>& v) {
  w.write_u64(v.size());
  for (const int x : v) w.write_i64(x);
}

std::vector<int> read_int_vector(BinaryReader& r) {
  const std::uint64_t n = r.read_length(sizeof(std::int64_t));
  std::vector<int> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(static_cast<int>(r.read_i64()));
  return v;
}

}  // namespace

void write_fault_stats(BinaryWriter& w, const FaultStats& s) {
  w.write_u64(s.drops_up);
  w.write_u64(s.drops_down);
  w.write_u64(s.duplicates_up);
  w.write_u64(s.duplicates_down);
  w.write_u64(s.corruptions_up);
  w.write_u64(s.corruptions_down);
  w.write_u64(s.crashed_contacts);
  w.write_u64(s.delays_injected);
  w.write_f64(s.injected_delay_seconds);
}

FaultStats read_fault_stats(BinaryReader& r) {
  FaultStats s;
  s.drops_up = r.read_u64();
  s.drops_down = r.read_u64();
  s.duplicates_up = r.read_u64();
  s.duplicates_down = r.read_u64();
  s.corruptions_up = r.read_u64();
  s.corruptions_down = r.read_u64();
  s.crashed_contacts = r.read_u64();
  s.delays_injected = r.read_u64();
  s.injected_delay_seconds = r.read_f64();
  return s;
}

void write_transport_stats(BinaryWriter& w, const TransportStats& s) {
  w.write_u64(s.messages_up);
  w.write_u64(s.messages_down);
  w.write_u64(s.bytes_up);
  w.write_u64(s.bytes_down);
  w.write_u64(s.frame_bytes_up);
  w.write_u64(s.frame_bytes_down);
  w.write_u64(s.bytes_up_uncoded);
  w.write_u64(s.bytes_down_uncoded);
  w.write_f64(s.simulated_latency_seconds);
  w.write_u64(s.socket_frames_tx);
  w.write_u64(s.socket_frames_rx);
  w.write_u64(s.socket_bytes_tx);
  w.write_u64(s.socket_bytes_rx);
  w.write_u64(s.socket_reconnects);
  w.write_u64(s.socket_evictions);
  w.write_u64(s.socket_queue_drops);
  w.write_u64(s.socket_protocol_errors);
}

TransportStats read_transport_stats(BinaryReader& r) {
  TransportStats s;
  s.messages_up = r.read_u64();
  s.messages_down = r.read_u64();
  s.bytes_up = r.read_u64();
  s.bytes_down = r.read_u64();
  s.frame_bytes_up = r.read_u64();
  s.frame_bytes_down = r.read_u64();
  s.bytes_up_uncoded = r.read_u64();
  s.bytes_down_uncoded = r.read_u64();
  s.simulated_latency_seconds = r.read_f64();
  s.socket_frames_tx = r.read_u64();
  s.socket_frames_rx = r.read_u64();
  s.socket_bytes_tx = r.read_u64();
  s.socket_bytes_rx = r.read_u64();
  s.socket_reconnects = r.read_u64();
  s.socket_evictions = r.read_u64();
  s.socket_queue_drops = r.read_u64();
  s.socket_protocol_errors = r.read_u64();
  return s;
}

void write_attack_stats(BinaryWriter& w, const AttackStats& s) {
  w.write_u64(s.corrupted_updates);
  w.write_u64(s.sign_flips);
  w.write_u64(s.replacements);
  w.write_u64(s.noise_injections);
  w.write_u64(s.colluding_uploads);
}

AttackStats read_attack_stats(BinaryReader& r) {
  AttackStats s;
  s.corrupted_updates = r.read_u64();
  s.sign_flips = r.read_u64();
  s.replacements = r.read_u64();
  s.noise_injections = r.read_u64();
  s.colluding_uploads = r.read_u64();
  return s;
}

void write_round_outcome(BinaryWriter& w, const RoundOutcome& out) {
  w.write_i64(out.round);
  write_int_vector(w, out.selected);
  write_int_vector(w, out.crashed);
  write_int_vector(w, out.missed_broadcast);
  write_int_vector(w, out.lost_update);
  w.write_u64(out.quarantined.size());
  for (const RoundOutcome::Rejection& q : out.quarantined) {
    w.write_i64(q.client_id);
    w.write_string(q.reason);
  }
  write_int_vector(w, out.accepted);
  w.write_i64(out.retries_used);
  w.write_u8(out.quorum_met ? 1 : 0);
  w.write_u8(out.carried_forward ? 1 : 0);
  write_int_vector(w, out.attackers);
  w.write_string(out.aggregator);
  w.write_u64(out.aggregator_flags.size());
  for (const AggregatorFlag& f : out.aggregator_flags) {
    w.write_i64(f.client_id);
    w.write_string(f.reason);
    w.write_u8(f.excluded ? 1 : 0);
  }
  w.write_u64(out.roster_size);
  write_int_vector(w, out.joined);
  write_int_vector(w, out.departed);
  write_fault_stats(w, out.fault_delta);
  w.write_u64(out.shards.size());
  for (const ShardStats& s : out.shards) {
    w.write_u32(s.shard_id);
    w.write_u64(s.num_updates);
    w.write_u64(s.num_accepted);
    w.write_u64(s.num_flagged);
    w.write_f64(s.weight);
    w.write_f64(s.min_norm);
    w.write_f64(s.median_norm);
    w.write_f64(s.max_norm);
  }
}

RoundOutcome read_round_outcome(BinaryReader& r) {
  RoundOutcome out;
  out.round = r.read_i64();
  out.selected = read_int_vector(r);
  out.crashed = read_int_vector(r);
  out.missed_broadcast = read_int_vector(r);
  out.lost_update = read_int_vector(r);
  const std::uint64_t nq = r.read_length(1);
  out.quarantined.reserve(nq);
  for (std::uint64_t i = 0; i < nq; ++i) {
    RoundOutcome::Rejection q;
    q.client_id = static_cast<int>(r.read_i64());
    q.reason = r.read_string();
    out.quarantined.push_back(std::move(q));
  }
  out.accepted = read_int_vector(r);
  out.retries_used = static_cast<int>(r.read_i64());
  out.quorum_met = r.read_u8() != 0;
  out.carried_forward = r.read_u8() != 0;
  out.attackers = read_int_vector(r);
  out.aggregator = r.read_string();
  const std::uint64_t nf = r.read_length(1);
  out.aggregator_flags.reserve(nf);
  for (std::uint64_t i = 0; i < nf; ++i) {
    AggregatorFlag f;
    f.client_id = static_cast<int>(r.read_i64());
    f.reason = r.read_string();
    f.excluded = r.read_u8() != 0;
    out.aggregator_flags.push_back(std::move(f));
  }
  out.roster_size = r.read_u64();
  out.joined = read_int_vector(r);
  out.departed = read_int_vector(r);
  out.fault_delta = read_fault_stats(r);
  const std::uint64_t ns = r.read_length(4 + 3 * 8 + 4 * 8);
  out.shards.reserve(ns);
  for (std::uint64_t i = 0; i < ns; ++i) {
    ShardStats s;
    s.shard_id = r.read_u32();
    s.num_updates = r.read_u64();
    s.num_accepted = r.read_u64();
    s.num_flagged = r.read_u64();
    s.weight = r.read_f64();
    s.min_norm = r.read_f64();
    s.median_norm = r.read_f64();
    s.max_norm = r.read_f64();
    out.shards.push_back(s);
  }
  return out;
}

void write_round_record(BinaryWriter& w, const RoundRecord& rec) {
  w.write_i64(rec.round);
  w.write_f64(rec.global_test_accuracy);
  w.write_f64(rec.global_test_loss);
  w.write_f64(rec.personalized_test_accuracy);
  w.write_f64(rec.mean_client_train_accuracy);
}

RoundRecord read_round_record(BinaryReader& r) {
  RoundRecord rec;
  rec.round = r.read_i64();
  rec.global_test_accuracy = r.read_f64();
  rec.global_test_loss = r.read_f64();
  rec.personalized_test_accuracy = r.read_f64();
  rec.mean_client_train_accuracy = r.read_f64();
  return rec;
}

std::int64_t import_legacy_checkpoint(store::RoundStore& store,
                                      const std::string& dckp_path) {
  const auto bytes = store::read_file(dckp_path);
  DINAR_CHECK(bytes.has_value(), "no checkpoint file at " << dckp_path);
  BinaryReader r(*bytes);
  DINAR_CHECK(r.remaining() >= 16 && r.read_u32() == kLegacyCheckpointMagic,
              dckp_path << " is not a DCKP simulation checkpoint");
  r.read_u32();  // version; restore_checkpoint() validates it on recovery
  const std::int64_t round = r.read_i64();
  DINAR_CHECK(round >= 0, "DCKP checkpoint claims negative round " << round);
  store.install_snapshot(round, *bytes);
  return round;
}

}  // namespace dinar::fl
