// DFRM v3 compressed payload codec: per-layer element encodings + top-k
// sparsification for the two FL message kinds (DESIGN.md §14).
//
// v2 ships every parameter arena as raw f32. v3 keeps the v2 header
// structure (magic, kind, version, message fields, layer-index header) and
// replaces the contiguous f32 arena with one coded run per index entry:
//
//   entry run := u8 encoding (WireEncoding)
//                u8 run_flags (bit0 = sparse)
//                [encoding == kInt8]  f32 scale
//                [sparse]  u64 k, k × u32 ascending entry-relative indices,
//                          k coded values
//                [dense]   numel coded values
//
// The encoding is chosen PER ENTRY at serialization time, which is what
// lets compression compose with the DINAR mechanism: entries tagged
// is_obfuscated carry the privacy-bearing obfuscated layer, and with
// `lossless_obfuscated` (the default) they are always emitted as dense raw
// f32 regardless of the configured encoding, so quantization noise never
// stacks on top of the obfuscation or DP noise the defense calibrated.
//
// Sparse runs code DELTAS against a reference snapshot — the round's
// decoded broadcast — not raw parameters: non-kept coordinates decode to
// the reference value, so dropping them loses the client's small moves,
// not the model. Both sides must use the byte-identical reference; the
// client keeps its decoded broadcast (FlClient::receive_global) and the
// server decodes its own broadcast bytes once per round, so even a lossy
// broadcast yields the same reference on both ends.
//
// Numerics policy (PR 5): NaN/Inf propagate per IEEE-754, they are never
// laundered into numbers. Entries whose candidate values are not all
// finite fall back to dense raw f32 — int8 scales are therefore always
// positive and finite, and a poisoned update still decodes poisoned so the
// server's non-finite scan rejects it. Pack/unpack run on the
// tensor/codec_kernels.h tiers, whose output is byte-identical across
// scalar and AVX2, so encoded frames do not depend on the host ISA.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/flat_params.h"
#include "util/serde.h"

namespace dinar::fl {

// Element encodings for coded runs. Wire values — do not renumber.
enum class WireEncoding : std::uint8_t {
  kF32 = 0,   // raw little-endian f32 (lossless)
  kF16 = 1,   // IEEE binary16, RNE
  kBf16 = 2,  // bfloat16, RNE
  kInt8 = 3,  // q = clamp(rne(v / scale), -127, 127), per-entry f32 scale
};

const char* wire_encoding_name(WireEncoding e);

// Codec for one message kind (broadcast or update).
struct KindCodec {
  WireEncoding encoding = WireEncoding::kF32;
  // Fraction of each entry's coordinates kept (largest |delta| first,
  // ties to the lower index); 1.0 = dense. Sparse runs need a reference,
  // so only the update kind may set this below 1.
  double topk_fraction = 1.0;
  // Emit DINAR-obfuscated entries as dense raw f32 regardless of
  // `encoding` (keeps the privacy mechanism's noise calibration intact).
  bool lossless_obfuscated = true;
  // Emit the v3 container even when the codec is lossless; used by tests
  // and benches to exercise the v3 path with bit-exact payload values.
  bool force_v3 = false;

  bool lossless() const {
    return encoding == WireEncoding::kF32 && topk_fraction >= 1.0;
  }
  // Whether this kind serializes as version 3 (else byte-identical v2).
  bool v3() const { return force_v3 || !lossless(); }
};

struct UpdateCodecConfig {
  KindCodec broadcast;  // server -> clients
  KindCodec update;     // clients -> server
  bool active() const { return broadcast.v3() || update.v3(); }
};

// Throws dinar::Error on an unusable config: unknown encoding value,
// topk_fraction outside (0, 1], or a sparse broadcast codec (clients have
// no reference to reconstruct against before the first broadcast lands).
void validate_codec_config(const UpdateCodecConfig& config);

// Writes the v3 params body (index header + coded runs). `reference` is
// required when codec.topk_fraction < 1 and must have the same layout as
// `p`; it may be null for dense codecs.
void write_flat_params_v3(BinaryWriter& w, const nn::FlatParams& p,
                          const KindCodec& codec,
                          const nn::FlatParams* reference);

// Reads the v3 params body. `decoded_bytes` is the header's declared
// decoded size, already bounded by the frame/message layers; the arena is
// only allocated after the index's numel is checked against it, so a
// tampered shape header cannot allocate beyond the declared (and capped)
// size. `reference` is required to decode sparse runs (dinar::Error
// otherwise) and must match the decoded layout.
nn::FlatParams read_flat_params_v3(BinaryReader& r, std::uint64_t decoded_bytes,
                                   const nn::FlatParams* reference);

// Size of the v2 params body (index header + raw f32 arena) for `p`,
// computed without serializing — the "uncoded bytes" side of the
// bytes-saved accounting in TransportStats.
std::uint64_t flat_params_v2_bytes(const nn::FlatParams& p);

}  // namespace dinar::fl
