#include "fl/server.h"

#include <cmath>
#include <sstream>

#include "util/error.h"

namespace dinar::fl {
const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kWrongRound: return "wrong-round";
    case RejectReason::kStructureMismatch: return "structure-mismatch";
    case RejectReason::kNonFinite: return "non-finite";
    case RejectReason::kNoSamples: return "no-samples";
    case RejectReason::kMixedWeighting: return "mixed-weighting";
    case RejectReason::kDuplicateClient: return "duplicate-client";
  }
  return "unknown";
}

FlServer::FlServer(nn::FlatParams initial_params, std::unique_ptr<ServerDefense> defense)
    : global_(std::move(initial_params)), defense_(std::move(defense)),
      aggregator_(make_robust_aggregator(RobustConfig{})) {
  DINAR_CHECK(!global_.empty(), "server needs a non-empty initial model");
  DINAR_CHECK(defense_ != nullptr, "server defense must not be null");
}

void FlServer::set_aggregator(std::unique_ptr<RobustAggregator> aggregator) {
  DINAR_CHECK(aggregator != nullptr, "aggregator must not be null");
  aggregator_ = std::move(aggregator);
  aggregator_->set_execution_context(exec_);
}

void FlServer::set_execution_context(const ExecutionContext* exec) {
  exec_ = exec;
  if (aggregator_ != nullptr) aggregator_->set_execution_context(exec_);
}

void FlServer::set_shards(const ShardConfig& config) {
  DINAR_CHECK(config.num_shards >= 1, "shard.num_shards must be >= 1, got "
                                          << config.num_shards);
  shard_config_ = config;
}

void FlServer::set_wire_codec(const UpdateCodecConfig& codec) {
  validate_codec_config(codec);
  codec_ = codec;
}

GlobalModelMsg FlServer::broadcast() const {
  GlobalModelMsg msg;
  msg.round = round_;
  msg.params = global_;
  return msg;
}

void FlServer::aggregate(std::span<const ModelUpdateMsg> updates) {
  DINAR_CHECK(!updates.empty(), "aggregate called with no updates");
  ScopedTimer timing(agg_timer_);

  const bool pre_weighted = updates.front().pre_weighted;
  for (const ModelUpdateMsg& u : updates) {
    DINAR_CHECK(u.pre_weighted == pre_weighted,
                "round mixes pre-weighted and raw updates");
    DINAR_CHECK(u.num_samples > 0, "update from client " << u.client_id
                                                         << " has no samples");
    DINAR_CHECK(u.params.same_layout(global_),
                "update from client " << u.client_id << " has wrong structure");
  }
  apply_aggregate(updates);
}

UpdateVerdict FlServer::validate_update(const ModelUpdateMsg& update,
                                        const std::unordered_set<int>& accepted_ids,
                                        std::optional<bool> weighting) const {
  const auto reject = [&](RejectReason reason, const std::string& detail) {
    UpdateVerdict v;
    v.accepted = false;
    v.reason = reason;
    v.detail = std::string(to_string(reason)) + ": " + detail;
    return v;
  };

  if (update.round != round_) {
    std::ostringstream os;
    os << "client " << update.client_id << " sent round " << update.round
       << ", server is at round " << round_;
    return reject(RejectReason::kWrongRound, os.str());
  }
  if (accepted_ids.count(update.client_id) != 0) {
    std::ostringstream os;
    os << "client " << update.client_id << " already accepted this round";
    return reject(RejectReason::kDuplicateClient, os.str());
  }
  if (!update.params.same_layout(global_)) {
    std::ostringstream os;
    os << "client " << update.client_id << " sent "
       << (update.params.index() ? update.params.index()->num_entries() : 0)
       << " entries, global model has " << global_.index()->num_entries()
       << " (or a shape differs)";
    return reject(RejectReason::kStructureMismatch, os.str());
  }
  if (const std::size_t bad = nn::flat_first_non_finite_entry(update.params);
      bad < update.params.index()->num_entries()) {
    std::ostringstream os;
    os << "client " << update.client_id << " param tensor " << bad
       << " contains NaN/Inf";
    return reject(RejectReason::kNonFinite, os.str());
  }
  if (update.num_samples <= 0) {
    std::ostringstream os;
    os << "client " << update.client_id << " reports " << update.num_samples
       << " samples";
    return reject(RejectReason::kNoSamples, os.str());
  }
  if (weighting.has_value() && update.pre_weighted != *weighting) {
    std::ostringstream os;
    os << "client " << update.client_id << " sent a "
       << (update.pre_weighted ? "pre-weighted" : "raw")
       << " update into a " << (*weighting ? "pre-weighted" : "raw") << " round";
    return reject(RejectReason::kMixedWeighting, os.str());
  }
  return UpdateVerdict{};
}

AggregateOutcome FlServer::try_aggregate(std::span<const ModelUpdateMsg> updates,
                                         std::size_t min_valid) {
  AggregateOutcome outcome;
  std::vector<ModelUpdateMsg> valid;
  std::unordered_set<int> accepted_ids;
  std::optional<bool> weighting;
  for (const ModelUpdateMsg& u : updates) {
    const UpdateVerdict verdict = validate_update(u, accepted_ids, weighting);
    if (verdict.accepted) {
      accepted_ids.insert(u.client_id);
      weighting = u.pre_weighted;
      outcome.accepted.push_back(u.client_id);
      valid.push_back(u);
    } else {
      outcome.quarantined.push_back({u.client_id, verdict.reason, verdict.detail});
    }
  }
  if (valid.size() >= std::max<std::size_t>(1, min_valid)) {
    outcome.aggregator_flags = aggregate_validated(valid);
    outcome.shards = last_shard_stats_;
    outcome.aggregated = true;
  }
  return outcome;
}

std::vector<AggregatorFlag> FlServer::aggregate_validated(
    std::span<const ModelUpdateMsg> updates) {
  DINAR_CHECK(!updates.empty(), "aggregate_validated called with no updates");
  ScopedTimer timing(agg_timer_);
  return apply_aggregate(updates);
}

void FlServer::begin_aggregation() {
  DINAR_CHECK(session_ == nullptr,
              "begin_aggregation with a streaming session already open");
  session_ = std::make_unique<ShardedAggregationSession>(*aggregator_, global_,
                                                         shard_config_, exec_);
}

void FlServer::absorb_validated(const ModelUpdateMsg& update) {
  DINAR_CHECK(session_ != nullptr, "absorb_validated with no open session");
  ScopedTimer timing(agg_timer_);
  session_->absorb(update);
}

std::vector<AggregatorFlag> FlServer::finalize_aggregation() {
  DINAR_CHECK(session_ != nullptr, "finalize_aggregation with no open session");
  DINAR_CHECK(session_->absorbed() > 0,
              "finalize_aggregation with no absorbed updates; use "
              "abort_aggregation + carry_forward for an empty round");
  ScopedTimer timing(agg_timer_);
  // Close the session before mutating server state: a combine() throw
  // (every shard empty) must leave the round un-advanced for carry-forward.
  const std::unique_ptr<ShardedAggregationSession> session = std::move(session_);
  HierarchicalResult h = session->finalize();
  return commit_aggregate(std::move(h));
}

void FlServer::abort_aggregation() { session_.reset(); }

void FlServer::restore(std::int64_t round, nn::FlatParams params) {
  DINAR_CHECK(round >= 0, "checkpoint carries negative round " << round);
  DINAR_CHECK(params.same_layout(global_),
              "checkpoint parameters do not match the server's model structure");
  session_.reset();
  global_ = std::move(params);
  round_ = round;
}

std::vector<AggregatorFlag> FlServer::apply_aggregate(
    std::span<const ModelUpdateMsg> updates) {
  HierarchicalResult h =
      hierarchical_aggregate(*aggregator_, updates, global_, shard_config_, exec_);
  return commit_aggregate(std::move(h));
}

std::vector<AggregatorFlag> FlServer::commit_aggregate(HierarchicalResult h) {
  defense_->after_aggregate(h.result.params);
  global_ = std::move(h.result.params);
  last_shard_stats_ = std::move(h.shards);
  last_timings_ = AggregateTimings{};
  for (double s : h.shard_seconds) last_timings_.shard_seconds += s;
  last_timings_.combine_seconds = h.combine_seconds;
  ++round_;
  return std::move(h.result.flags);
}

}  // namespace dinar::fl
