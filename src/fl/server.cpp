#include "fl/server.h"

#include "util/error.h"

namespace dinar::fl {

FlServer::FlServer(nn::ParamList initial_params, std::unique_ptr<ServerDefense> defense)
    : global_(std::move(initial_params)), defense_(std::move(defense)) {
  DINAR_CHECK(!global_.empty(), "server needs a non-empty initial model");
  DINAR_CHECK(defense_ != nullptr, "server defense must not be null");
}

GlobalModelMsg FlServer::broadcast() const {
  GlobalModelMsg msg;
  msg.round = round_;
  msg.params = global_;
  return msg;
}

void FlServer::aggregate(const std::vector<ModelUpdateMsg>& updates) {
  DINAR_CHECK(!updates.empty(), "aggregate called with no updates");
  ScopedTimer timing(agg_timer_);

  const bool pre_weighted = updates.front().pre_weighted;
  double total_weight = 0.0;
  for (const ModelUpdateMsg& u : updates) {
    DINAR_CHECK(u.pre_weighted == pre_weighted,
                "round mixes pre-weighted and raw updates");
    DINAR_CHECK(u.num_samples > 0, "update from client " << u.client_id
                                                         << " has no samples");
    DINAR_CHECK(nn::param_list_same_shape(u.params, global_),
                "update from client " << u.client_id << " has wrong structure");
    total_weight += static_cast<double>(u.num_samples);
  }

  nn::ParamList sum;
  sum.reserve(global_.size());
  for (const Tensor& t : global_) sum.emplace_back(t.shape());
  for (const ModelUpdateMsg& u : updates) {
    const float w = pre_weighted ? 1.0f : static_cast<float>(u.num_samples);
    nn::param_list_add_scaled(sum, u.params, w);
  }
  nn::param_list_scale(sum, static_cast<float>(1.0 / total_weight));

  defense_->after_aggregate(sum);
  global_ = std::move(sum);
  ++round_;
}

}  // namespace dinar::fl
