// Loopback TCP implementation of the Transport seam.
//
// SocketTransport overrides Transport::ship() so every framed copy the
// in-process transport would hand over directly instead crosses a real
// kernel socket: the shipping client endpoint writes it to a TcpClient
// connection, the TcpServer event loop reads it back, and ship() returns
// the bytes as they arrived off the wire. The base class still does all
// framing, fault injection and payload accounting, so a simulation run
// over sockets is bit-identical to the in-process run — including under
// injected faults, because a corrupted inner frame is tunneled as the
// payload of a clean outer envelope (the corruption genuinely crosses the
// wire, but cannot desync the TCP stream, which would otherwise turn one
// injected bit flip into a torn connection).
//
// Wire protocol (all envelope frames are ordinary DFRM frames):
//   client -> server: [u32 tag 'HELO' | u64 client_id]             registration
//                     [u32 tag 'DATA' | u64 client_id | inner...]  uplink copy
//   server -> client: [inner...]                                   downlink copy
//
// Degradation mirrors the round protocol's fault model: a copy that cannot
// be sent (send-queue cap, dead connection) or does not arrive before the
// exchange deadline is simply absent from ship()'s return value — the
// caller treats it exactly like an injected drop and retries. Evictions,
// reconnects, queue drops and poisoned streams are surfaced through the
// socket_* counters of TransportStats.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fl/transport.h"
#include "net/client.h"
#include "net/server.h"

namespace dinar::fl {

struct SocketTransportOptions {
  // Wall-clock cap on one ship(): sends plus the wait for the copies to
  // come back off the wire. Copies still in flight at the deadline are
  // reported as lost (the round protocol retries).
  double exchange_timeout_seconds = 30.0;
  net::ServerConfig server;  // port 0 binds an ephemeral loopback port
  net::ClientConfig client;  // host/port are filled in from the server
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions options = {});
  ~SocketTransport() override;

  std::vector<std::vector<std::uint8_t>> ship(
      LinkDir dir, int client_id, const std::vector<std::uint8_t>& payload,
      ShipReceipt* receipt = nullptr) override;

  // The bound loopback port (for tests and external clients).
  std::uint16_t port() const { return server_.port(); }
  // Raw wire-level counters of the embedded server (eviction reasons,
  // queue drops) — TransportStats carries the per-simulation rollup.
  net::ServerStats server_stats() const { return server_.stats(); }

 private:
  struct Endpoint {
    std::unique_ptr<net::TcpClient> client;
    // connects() value at the last HELO sent; a difference means the
    // connection was remade and the server must be re-told who we are.
    std::uint64_t hello_connects = 0;
    // High-water marks already folded into TransportStats.
    std::uint64_t harvested_reconnects = 0;
    std::uint64_t harvested_protocol_errors = 0;
  };

  Endpoint& endpoint(int client_id);
  // Connects (with backoff) and registers the endpoint; true when the
  // server has acknowledged the mapping before `deadline`.
  bool ensure_ready(int client_id, Endpoint& ep, double deadline);
  std::vector<std::vector<std::uint8_t>> tunnel_up(
      int client_id, Endpoint& ep,
      const std::vector<std::vector<std::uint8_t>>& copies, double deadline,
      std::uint64_t& wire_tx, std::uint64_t& queue_drops);
  std::vector<std::vector<std::uint8_t>> tunnel_down(
      int client_id, Endpoint& ep,
      const std::vector<std::vector<std::uint8_t>>& copies, double deadline,
      std::uint64_t& wire_tx, std::uint64_t& queue_drops);

  SocketTransportOptions options_;
  net::TcpServer server_;

  std::mutex mu_;  // guards everything below
  std::condition_variable cv_;
  std::map<int, std::unique_ptr<Endpoint>> endpoints_;  // by client_id
  std::map<int, int> conn_of_client_;
  std::map<int, int> client_of_conn_;
  std::map<int, std::deque<std::vector<std::uint8_t>>> inbox_;  // uplink copies
  std::map<int, std::uint64_t> evictions_of_client_;  // pending harvest
};

}  // namespace dinar::fl
