// DINAR middleware entry points.
//
// DinarInitializer implements the paper's preliminary phase (§4.1): every
// client trains a short warm-up model on its own shard, measures each
// layer's member/non-member gradient divergence, proposes its most
// sensitive layer, and the Byzantine-tolerant broadcast vote fixes the
// common index p. make_dinar_bundle() then equips an FL simulation with
// DinarDefense clients protecting that layer.
#pragma once

#include <optional>
#include <vector>

#include "core/consensus.h"
#include "core/dinar_defense.h"
#include "core/sensitivity.h"
#include "fl/simulation.h"

namespace dinar::core {

struct DinarInitConfig {
  // Warm-up local training before measuring sensitivities.
  fl::TrainConfig warmup{/*epochs=*/4, /*batch_size=*/64};
  std::string optimizer = "adagrad";
  double learning_rate = 1e-3;
  SensitivityConfig sensitivity{};
  // Indices of clients that behave Byzantine during the vote.
  std::vector<int> byzantine_clients;
  std::uint64_t seed = 17;
};

struct DinarInitResult {
  std::size_t agreed_layer = 0;
  ConsensusResult consensus;
  // Per-client proposals and full per-layer measurements (Figure 1 data).
  std::vector<std::size_t> proposals;
  std::vector<std::vector<LayerSensitivity>> client_sensitivities;
};

// Runs the preliminary phase over the clients' shards. `non_members`
// supplies each client's D^n pool (data not used for training).
DinarInitResult run_dinar_initialization(const nn::ModelFactory& factory,
                                         const std::vector<data::Dataset>& client_train,
                                         const data::Dataset& non_members,
                                         const DinarInitConfig& config);

// Defense bundle protecting `layers` on every client (usually the single
// index produced by run_dinar_initialization).
fl::DefenseBundle make_dinar_bundle(
    std::vector<std::size_t> layers, std::uint64_t seed = 29,
    ObfuscationStrategy strategy = ObfuscationStrategy::kScaledUniform);

}  // namespace dinar::core
