#include "core/dinar.h"

#include <algorithm>

#include "fl/trainer.h"
#include "opt/optimizers.h"
#include "util/error.h"
#include "util/logging.h"

namespace dinar::core {

DinarInitResult run_dinar_initialization(const nn::ModelFactory& factory,
                                         const std::vector<data::Dataset>& client_train,
                                         const data::Dataset& non_members,
                                         const DinarInitConfig& config) {
  DINAR_CHECK(!client_train.empty(), "initialization needs clients");
  DINAR_CHECK(!non_members.empty(), "initialization needs non-member data");

  Rng rng(config.seed);
  DinarInitResult result;
  result.proposals.reserve(client_train.size());
  result.client_sensitivities.reserve(client_train.size());

  std::size_t num_layers = 0;
  for (std::size_t i = 0; i < client_train.size(); ++i) {
    Rng client_rng = rng.fork(i + 1);
    // Warm-up: a locally trained model exhibiting a real generalization
    // gap — an untrained model leaks nothing and would make the
    // measurement meaningless.
    nn::Model model = factory(client_rng);
    auto optimizer = opt::make_optimizer(config.optimizer, config.learning_rate);
    fl::train_local(model, client_train[i], *optimizer, config.warmup, client_rng);

    SensitivityConfig sens = config.sensitivity;
    sens.seed = client_rng.next_u64();
    std::vector<LayerSensitivity> layers =
        analyze_layer_sensitivity(model, client_train[i], non_members, sens);
    num_layers = layers.size();
    result.proposals.push_back(most_sensitive_layer(layers));
    result.client_sensitivities.push_back(std::move(layers));
    DINAR_DEBUG << "client " << i << " proposes layer " << result.proposals.back();
  }

  std::vector<bool> byzantine(client_train.size(), false);
  for (int idx : config.byzantine_clients) {
    DINAR_CHECK(idx >= 0 && static_cast<std::size_t>(idx) < byzantine.size(),
                "byzantine client index out of range");
    byzantine[static_cast<std::size_t>(idx)] = true;
  }

  Rng vote_rng = rng.fork(0xB0BE);
  result.consensus =
      run_layer_consensus(result.proposals, byzantine, num_layers, vote_rng);
  result.agreed_layer = result.consensus.agreed_layer;
  DINAR_INFO << "DINAR initialization agreed on layer " << result.agreed_layer;
  return result;
}

fl::DefenseBundle make_dinar_bundle(std::vector<std::size_t> layers,
                                    std::uint64_t seed,
                                    ObfuscationStrategy strategy) {
  fl::DefenseBundle bundle;
  bundle.name = "dinar";
  // Advertise the obfuscated layers so layer-aware robust aggregation can
  // exclude them from outlier scoring: honest DINAR uploads carry random
  // values there by design and must not be quarantined for it.
  bundle.obfuscated_layers = layers;
  bundle.make_client = [layers = std::move(layers), seed, strategy](int client_id) {
    return std::make_unique<DinarDefense>(
        layers, Rng(seed).fork(static_cast<std::uint64_t>(client_id)), strategy);
  };
  return bundle;
}

}  // namespace dinar::core
