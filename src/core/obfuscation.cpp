#include "core/obfuscation.h"

#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace dinar::core {

void obfuscate_span(std::span<float> values, Rng& rng) {
  RunningStat stat;
  for (float v : values) stat.add(v);
  // Fallback scale for degenerate (all-zero) spans.
  const double spread = stat.stddev() > 1e-8 ? 3.0 * stat.stddev() : 0.1;
  for (float& v : values)
    v = static_cast<float>(rng.uniform(-spread, spread));
}

void obfuscate_span_with(std::span<float> values, ObfuscationStrategy strategy,
                         Rng& rng) {
  switch (strategy) {
    case ObfuscationStrategy::kScaledUniform:
      obfuscate_span(values, rng);
      return;
    case ObfuscationStrategy::kZeros:
      for (float& v : values) v = 0.0f;
      return;
    case ObfuscationStrategy::kLargeGaussian:
      for (float& v : values) v = static_cast<float>(rng.gaussian(0.0, 1.0));
      return;
  }
}

void obfuscate_tensor(Tensor& t, Rng& rng) { obfuscate_span(t.values(), rng); }

void obfuscate_tensor_with(Tensor& t, ObfuscationStrategy strategy, Rng& rng) {
  obfuscate_span_with(t.values(), strategy, rng);
}

void obfuscate_layer_in_snapshot(nn::Model& model, nn::FlatParams& snapshot,
                                 std::size_t layer_index, Rng& rng,
                                 ObfuscationStrategy strategy) {
  const auto [begin, end] = model.layer_param_span(layer_index);
  DINAR_CHECK(end <= snapshot.index()->num_entries(),
              "snapshot smaller than model parameters");
  for (std::size_t i = begin; i < end; ++i)
    obfuscate_span_with(snapshot.entry_span(i), strategy, rng);
}

}  // namespace dinar::core
