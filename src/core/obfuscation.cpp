#include "core/obfuscation.h"

#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace dinar::core {

void obfuscate_tensor(Tensor& t, Rng& rng) {
  RunningStat stat;
  for (float v : t.values()) stat.add(v);
  // Fallback scale for degenerate (all-zero) tensors.
  const double spread = stat.stddev() > 1e-8 ? 3.0 * stat.stddev() : 0.1;
  for (float& v : t.values())
    v = static_cast<float>(rng.uniform(-spread, spread));
}

void obfuscate_tensor_with(Tensor& t, ObfuscationStrategy strategy, Rng& rng) {
  switch (strategy) {
    case ObfuscationStrategy::kScaledUniform:
      obfuscate_tensor(t, rng);
      return;
    case ObfuscationStrategy::kZeros:
      t.zero();
      return;
    case ObfuscationStrategy::kLargeGaussian:
      for (float& v : t.values()) v = static_cast<float>(rng.gaussian(0.0, 1.0));
      return;
  }
}

void obfuscate_layer_in_snapshot(nn::Model& model, nn::ParamList& snapshot,
                                 std::size_t layer_index, Rng& rng,
                                 ObfuscationStrategy strategy) {
  const auto [begin, end] = model.layer_param_span(layer_index);
  DINAR_CHECK(end <= snapshot.size(), "snapshot smaller than model parameters");
  for (std::size_t i = begin; i < end; ++i)
    obfuscate_tensor_with(snapshot[i], strategy, rng);
}

}  // namespace dinar::core
