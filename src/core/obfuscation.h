// Layer obfuscation (paper §4.2, Algorithm 1 line 17).
//
// Obfuscation replaces a layer's parameters with random values before
// upload. The replacement draws match the layer's own value scale
// (uniform over ±3x the layer's standard deviation) so the obfuscated
// tensor is statistically plausible as weights — a server cannot detect
// and strip the obfuscation by magnitude inspection — while carrying no
// information about the true parameters.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/model.h"

namespace dinar::core {

// How the private layer is destroyed before upload. The paper specifies
// "random values"; the ablation bench compares the design alternatives:
//  - kScaledUniform (default): uniform over ±3x the layer's own stddev —
//    statistically plausible as weights, undetectable by magnitude;
//  - kZeros: zero the layer — trivially detectable, and biases FedAvg;
//  - kLargeGaussian: N(0, 1) noise — hides the layer but its magnitude
//    outs the obfuscation and pollutes the aggregate scale.
enum class ObfuscationStrategy { kScaledUniform, kZeros, kLargeGaussian };

// Randomizes one value span in place, scale-matched to its current
// contents. Spans map 1:1 to layer-index entries, so statistics stay at
// the original per-tensor granularity.
void obfuscate_span(std::span<float> values, Rng& rng);

// Strategy-selected variant.
void obfuscate_span_with(std::span<float> values, ObfuscationStrategy strategy,
                         Rng& rng);

// Tensor conveniences (ablation benches and tests obfuscate lone tensors).
void obfuscate_tensor(Tensor& t, Rng& rng);
void obfuscate_tensor_with(Tensor& t, ObfuscationStrategy strategy, Rng& rng);

// Randomizes the entries of layer `layer_index` inside a flat parameter
// snapshot laid out like `model`'s parameters() (used by the defense's
// before_upload, which transforms the outgoing copy, never the live
// model). Each entry is randomized separately so the draw sequence
// matches the old per-tensor implementation.
void obfuscate_layer_in_snapshot(
    nn::Model& model, nn::FlatParams& snapshot, std::size_t layer_index, Rng& rng,
    ObfuscationStrategy strategy = ObfuscationStrategy::kScaledUniform);

}  // namespace dinar::core
