#include "core/dinar_defense.h"

#include <algorithm>

#include "core/obfuscation.h"
#include "util/error.h"
#include "util/logging.h"

namespace dinar::core {

DinarDefense::DinarDefense(std::vector<std::size_t> protected_layers, Rng rng,
                           ObfuscationStrategy strategy)
    : protected_layers_(std::move(protected_layers)), strategy_(strategy), rng_(rng) {
  DINAR_CHECK(!protected_layers_.empty(), "DINAR needs at least one protected layer");
  std::sort(protected_layers_.begin(), protected_layers_.end());
  DINAR_CHECK(std::adjacent_find(protected_layers_.begin(), protected_layers_.end()) ==
                  protected_layers_.end(),
              "duplicate protected layer");
}

void DinarDefense::initialize(nn::Model& model, int client_id) {
  client_id_ = client_id;
  const std::size_t num_layers = model.num_param_layers();
  for (std::size_t p : protected_layers_)
    DINAR_CHECK(p < num_layers,
                "protected layer " << p << " out of range (model has " << num_layers
                                   << " parameterized layers)");
  // Seed theta_p^* with the initial weights so the very first download
  // has something to restore (a no-op while global == initial).
  stored_private_.clear();
  for (std::size_t p : protected_layers_)
    stored_private_.push_back(model.layer_parameters(p));
  DINAR_DEBUG << "DINAR client " << client_id << " protecting "
              << protected_layers_.size() << " layer(s)";
}

void DinarDefense::on_download(nn::Model& model, const nn::FlatParams& global_params) {
  // Model Personalization: take every layer from the global model except
  // the protected ones, which are restored from theta_p^*.
  model.set_parameters(global_params);
  for (std::size_t i = 0; i < protected_layers_.size(); ++i)
    model.set_layer_parameters(protected_layers_[i], stored_private_[i]);
}

nn::FlatParams DinarDefense::before_upload(nn::Model& model, nn::FlatParams params,
                                           std::int64_t /*num_samples*/,
                                           bool& /*pre_weighted*/) {
  // Model Obfuscation: persist the trained private layers, then randomize
  // them in the outgoing snapshot only.
  for (std::size_t i = 0; i < protected_layers_.size(); ++i) {
    stored_private_[i] = model.layer_parameters(protected_layers_[i]);
    obfuscate_layer_in_snapshot(model, params, protected_layers_[i], rng_, strategy_);
  }
  // Tag the obfuscated entries in the outgoing index so downstream
  // consumers (wire format, robust aggregation) can see which spans carry
  // no information.
  params.reset_index(params.index()->with_obfuscated(protected_layers_));
  return params;
}

void DinarDefense::save_state(BinaryWriter& w) const {
  w.write_u64(stored_private_.size());
  for (const nn::FlatParams& p : stored_private_) nn::write_flat_params(w, p);
  rng_.save_state(w);
}

void DinarDefense::restore_state(BinaryReader& r) {
  const std::uint64_t n = r.read_u64();
  DINAR_CHECK(n == protected_layers_.size(),
              "DINAR state holds " << n << " private layers, defense protects "
                                   << protected_layers_.size());
  // initialize() ran during reconstruction, so stored_private_ is sized;
  // overwrite each slot with the persisted theta_p^*.
  stored_private_.clear();
  for (std::uint64_t i = 0; i < n; ++i)
    stored_private_.push_back(nn::read_flat_params(r));
  rng_.restore_state(r);
}

}  // namespace dinar::core
