// DINAR client middleware: personalization + obfuscation (Algorithm 1).
//
// Per FL round, for each protected layer p:
//   - on_download (Model Personalization, lines 1-6): install the global
//     model but keep the client's own stored private-layer parameters
//     theta_p^* instead of the server's obfuscated ones;
//   - before_upload (Model Obfuscation, lines 15-17): store the trained
//     private layer as theta_p^*, then replace it with random values in
//     the outgoing snapshot. The client's live model keeps the real
//     layer — that personalized model serves the client's predictions.
//
// The set of protected layers is normally the single consensus-agreed
// index; Figure 5's multi-layer sweep passes several.
#pragma once

#include <vector>

#include "core/obfuscation.h"
#include "fl/defense.h"
#include "util/rng.h"

namespace dinar::core {

class DinarDefense final : public fl::ClientDefense {
 public:
  DinarDefense(std::vector<std::size_t> protected_layers, Rng rng,
               ObfuscationStrategy strategy = ObfuscationStrategy::kScaledUniform);

  std::string name() const override { return "dinar"; }
  void initialize(nn::Model& model, int client_id) override;
  void on_download(nn::Model& model, const nn::FlatParams& global_params) override;
  nn::FlatParams before_upload(nn::Model& model, nn::FlatParams params,
                               std::int64_t num_samples, bool& pre_weighted) override;

  // Durable-state serde: theta_p^* per protected layer + the obfuscation
  // RNG, so a crash-recovered client re-personalizes and re-obfuscates
  // bit-identically to the uninterrupted run.
  void save_state(BinaryWriter& w) const override;
  void restore_state(BinaryReader& r) override;

  const std::vector<std::size_t>& protected_layers() const { return protected_layers_; }

 private:
  std::vector<std::size_t> protected_layers_;
  // theta_p^* per protected layer, aligned with protected_layers_.
  std::vector<nn::FlatParams> stored_private_;
  ObfuscationStrategy strategy_;
  Rng rng_;
  int client_id_ = -1;
};

}  // namespace dinar::core
