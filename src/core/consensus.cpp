#include "core/consensus.h"

#include "util/error.h"
#include "util/logging.h"

namespace dinar::core {

VotingNode::VotingNode(int id, std::size_t proposal, bool byzantine)
    : id_(id), proposal_(proposal), byzantine_(byzantine) {}

std::size_t VotingNode::cast_vote(std::size_t num_layers, Rng& rng) const {
  if (byzantine_) return static_cast<std::size_t>(rng.uniform_index(num_layers));
  return proposal_;
}

void VotingNode::receive_vote(int /*from*/, std::size_t vote) { ++tally_[vote]; }

std::size_t VotingNode::decide() const {
  DINAR_CHECK(!tally_.empty(), "node " << id_ << " decided without votes");
  std::size_t best = tally_.begin()->first;
  int best_count = tally_.begin()->second;
  for (const auto& [layer, count] : tally_) {
    if (count > best_count) {  // std::map iterates keys ascending, so the
      best = layer;            // first maximum is the lowest index.
      best_count = count;
    }
  }
  return best;
}

ConsensusResult run_layer_consensus(const std::vector<std::size_t>& proposals,
                                    const std::vector<bool>& byzantine,
                                    std::size_t num_layers, Rng& rng) {
  DINAR_CHECK(!proposals.empty(), "consensus needs at least one voter");
  DINAR_CHECK(proposals.size() == byzantine.size(), "proposal/fault flag mismatch");
  DINAR_CHECK(num_layers > 0, "consensus over zero layers");

  std::vector<VotingNode> nodes;
  nodes.reserve(proposals.size());
  bool any_honest = false;
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    DINAR_CHECK(proposals[i] < num_layers, "proposal out of range");
    nodes.emplace_back(static_cast<int>(i), proposals[i], byzantine[i]);
    any_honest = any_honest || !byzantine[i];
  }
  DINAR_CHECK(any_honest, "consensus requires at least one honest node");

  // Broadcast: every node sends one vote to every node (including itself,
  // which is how DMVR counts self-votes). A Byzantine sender may send a
  // different arbitrary vote to each receiver.
  for (VotingNode& sender : nodes) {
    for (VotingNode& receiver : nodes) {
      receiver.receive_vote(sender.id(), sender.cast_vote(num_layers, rng));
    }
  }

  ConsensusResult result;
  result.node_decisions.reserve(nodes.size());
  for (const VotingNode& node : nodes) result.node_decisions.push_back(node.decide());
  result.tally = nodes.front().tally();

  // The agreed value is the honest nodes' common decision. Byzantine
  // receivers may "decide" anything; they are bound by the protocol's
  // outcome regardless (§4.1: all clients obfuscate the chosen layer).
  bool first = true;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (byzantine[i]) continue;
    if (first) {
      result.agreed_layer = result.node_decisions[i];
      first = false;
    } else if (result.node_decisions[i] != result.agreed_layer) {
      result.honest_agreement = false;
    }
  }
  DINAR_INFO << "consensus decided layer " << result.agreed_layer
             << (result.honest_agreement ? "" : " (honest nodes disagreed!)");
  return result;
}

}  // namespace dinar::core
