#include "core/sensitivity.h"

#include <cmath>

#include "nn/loss.h"
#include "util/error.h"
#include "util/stats.h"

namespace dinar::core {
namespace {

// Collects, per layer, the distribution of *per-sample* gradient L2 norms
// over `samples_per_pool` single-sample predictions from `pool`.
//
// Per-sample norms are the membership-relevant statistic: a sample the
// model has memorized produces a near-zero gradient, a fresh sample a
// large one, and the gap concentrates in the layers closest to the loss
// (Mo et al. [29, 30]). Comparing raw gradient-value histograms instead
// would let the (much wider) early layers dominate by sheer parameter
// count.
std::vector<std::vector<float>> collect_layer_gradient_norms(
    nn::Model& model, const data::Dataset& pool, const SensitivityConfig& config,
    Rng& rng) {
  const std::size_t num_layers = model.num_param_layers();
  std::vector<std::vector<float>> norms(num_layers);

  // batch_size 1: exact per-sample gradients.
  data::BatchIterator batches(pool, 1, rng);
  data::BatchIterator::Batch batch;
  int used = 0;
  while (used < config.samples_per_pool && batches.next(batch)) {
    Tensor logits = model.forward(batch.features, /*train=*/true);
    nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
    model.zero_grad();
    model.backward(loss.grad_logits);

    std::size_t layer = 0;
    for (const nn::ParamGroup& group : model.param_layers()) {
      double sq = 0.0;
      for (const Tensor* grad : group.grads) sq += grad->squared_l2_norm();
      norms[layer].push_back(static_cast<float>(std::sqrt(sq)));
      ++layer;
    }
    ++used;
  }
  DINAR_CHECK(used > 0, "sensitivity pool produced no samples");
  return norms;
}

}  // namespace

std::vector<LayerSensitivity> analyze_layer_sensitivity(
    nn::Model& model, const data::Dataset& members, const data::Dataset& non_members,
    const SensitivityConfig& config) {
  DINAR_CHECK(!members.empty() && !non_members.empty(),
              "sensitivity analysis needs member and non-member data");
  Rng rng(config.seed);
  const std::vector<std::vector<float>> member_norms =
      collect_layer_gradient_norms(model, members, config, rng);
  const std::vector<std::vector<float>> non_member_norms =
      collect_layer_gradient_norms(model, non_members, config, rng);

  std::vector<nn::ParamGroup> groups = model.param_layers();
  std::vector<LayerSensitivity> out;
  out.reserve(groups.size());
  for (std::size_t l = 0; l < groups.size(); ++l) {
    LayerSensitivity s;
    s.layer_index = l;
    s.layer_name = groups[l].name;
    s.divergence = js_divergence_samples(member_norms[l], non_member_norms[l],
                                         config.histogram_bins);
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t most_sensitive_layer(const std::vector<LayerSensitivity>& sensitivities) {
  DINAR_CHECK(!sensitivities.empty(), "no sensitivities to rank");
  double max_div = 0.0;
  for (const LayerSensitivity& s : sensitivities)
    max_div = std::max(max_div, s.divergence);
  // Deepest-of-near-ties: with small sample pools several layers often sit
  // within measurement noise of the maximum. Among those, prefer the layer
  // closest to the loss — the literature the paper builds on ([29, 30])
  // and its own Figure 4 show late layers carry the membership signal, and
  // the paper's consensus "typically converges to the penultimate layer".
  constexpr double kTieTolerance = 0.7;
  std::size_t best = 0;
  for (std::size_t i = 0; i < sensitivities.size(); ++i)
    if (sensitivities[i].divergence >= kTieTolerance * max_div)
      best = i;
  return sensitivities[best].layer_index;
}

}  // namespace dinar::core
