// Per-layer privacy-sensitivity analysis (paper §3 and §4.1).
//
// For each parameterized layer, the analyzer compares the distribution of
// that layer's per-sample gradient norms when the model predicts on
// *member* data against the distribution on *non-member* data, measuring
// the gap with the Jensen-Shannon divergence. Memorized (member) samples
// produce near-zero gradients while fresh samples do not, and the gap
// concentrates in the layers nearest the loss; the layer with the largest
// divergence leaks the most membership information and is DINAR's
// obfuscation target (empirically a late / penultimate layer — Figure 1).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"

namespace dinar::core {

struct LayerSensitivity {
  std::size_t layer_index = 0;
  std::string layer_name;
  double divergence = 0.0;  // JS divergence in [0, ln 2]
};

struct SensitivityConfig {
  // Number of single-sample predictions drawn from each pool; each yields
  // one per-layer gradient-norm observation.
  int samples_per_pool = 192;
  int histogram_bins = 16;
  std::uint64_t seed = 99;
};

// Computes one LayerSensitivity per parameterized layer of `model`.
std::vector<LayerSensitivity> analyze_layer_sensitivity(
    nn::Model& model, const data::Dataset& members, const data::Dataset& non_members,
    const SensitivityConfig& config = {});

// Index of the layer with the maximum divergence.
std::size_t most_sensitive_layer(const std::vector<LayerSensitivity>& sensitivities);

}  // namespace dinar::core
