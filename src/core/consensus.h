// Byzantine-tolerant agreement on the layer to obfuscate (paper §4.1).
//
// Broadcast distributed voting in the style of DMVR [39] as used by [2]:
// every client broadcasts its locally-measured most-sensitive layer index
// to all peers; each node tallies all received votes and decides the
// value with the majority (deterministic lowest-index tie-break, so all
// honest nodes decide identically). With fewer than half the voters
// Byzantine, the honest majority's common proposal wins.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.h"

namespace dinar::core {

// One participant in the vote. Byzantine nodes broadcast an arbitrary
// (randomized) index instead of their proposal and may vote
// inconsistently between peers.
class VotingNode {
 public:
  VotingNode(int id, std::size_t proposal, bool byzantine = false);

  int id() const { return id_; }
  bool byzantine() const { return byzantine_; }

  // The vote this node sends to a given peer.
  std::size_t cast_vote(std::size_t num_layers, Rng& rng) const;
  void receive_vote(int from, std::size_t vote);

  // Majority decision over received votes (lowest index wins ties).
  std::size_t decide() const;
  const std::map<std::size_t, int>& tally() const { return tally_; }

 private:
  int id_;
  std::size_t proposal_;
  bool byzantine_;
  std::map<std::size_t, int> tally_;
};

struct ConsensusResult {
  std::size_t agreed_layer = 0;
  bool honest_agreement = true;               // all honest nodes decided alike
  std::vector<std::size_t> node_decisions;    // per node
  std::map<std::size_t, int> tally;           // as seen by node 0
};

// Runs the full broadcast round. `byzantine[i]` marks node i as faulty;
// requires at least one honest node.
ConsensusResult run_layer_consensus(const std::vector<std::size_t>& proposals,
                                    const std::vector<bool>& byzantine,
                                    std::size_t num_layers, Rng& rng);

}  // namespace dinar::core
