// TCP client speaking DFRM frames, with reconnect and capped backoff.
//
// The client is the retrying half of the robustness contract: the server
// evicts freely (slow peer, framing error, overload shedding, restart
// after kill -9) and relies on every client treating a lost connection as
// routine. ensure_connected() retries with capped exponential backoff plus
// jitter — backoff keeps a restarting server from being trampled by its
// own reconnect storm, jitter desynchronizes the herd (hundreds of clients
// evicted by one restart must not come back in lockstep). The jitter
// stream is an explicitly seeded Rng like every other random draw in the
// codebase, so a load test's connection schedule is reproducible.
//
// send_frame()/recv_frame() move whole checksummed frames with deadlines;
// any I/O failure or framing violation closes the socket so the next call
// reconnects from a clean stream (a poisoned FrameReader cannot resync —
// see net/frame.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "util/rng.h"

namespace dinar::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_timeout_seconds = 5.0;
  double io_timeout_seconds = 10.0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Reconnect policy for one ensure_connected() call.
  int max_connect_attempts = 10;
  double backoff_initial_seconds = 0.005;
  double backoff_max_seconds = 0.5;
  // Uniform multiplicative jitter in [1 - j, 1 + j] on every backoff step.
  double backoff_jitter = 0.5;
  std::uint64_t jitter_seed = 0x7E7E7;
};

struct ClientStats {
  std::uint64_t connects = 0;          // successful connections
  std::uint64_t reconnects = 0;        // successful connections after the first
  std::uint64_t connect_failures = 0;  // failed attempts (before backoff)
  std::uint64_t frames_tx = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t bytes_tx = 0;  // wire bytes, frame headers included
  std::uint64_t bytes_rx = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t recv_timeouts = 0;
  std::uint64_t protocol_errors = 0;  // poisoned inbound stream
};

class TcpClient {
 public:
  explicit TcpClient(ClientConfig config);

  bool connected() const { return sock_.valid(); }

  // Connects if disconnected, retrying up to max_connect_attempts with
  // capped exponential backoff + jitter. Returns false when every attempt
  // failed (the caller decides whether to give up or come back later).
  bool ensure_connected();
  void disconnect();

  // Frames and sends one payload; on failure the socket is closed (the
  // next ensure_connected() reconnects) and false is returned.
  bool send_frame(const std::vector<std::uint8_t>& payload);

  // Sends raw bytes verbatim — no framing. This is the fault-injection
  // hook: a load test ships deliberately corrupted frames to prove the
  // server detects and evicts them.
  bool send_raw(const std::vector<std::uint8_t>& bytes);

  // Receives the next complete frame payload, waiting up to
  // `timeout_seconds` (<= 0 uses config.io_timeout_seconds). nullopt on
  // timeout, disconnect, or a poisoned stream (which also disconnects).
  std::optional<std::vector<std::uint8_t>> recv_frame(double timeout_seconds = 0.0);

  const ClientStats& stats() const { return stats_; }
  const ClientConfig& config() const { return config_; }

 private:
  ClientConfig config_;
  Socket sock_;
  FrameReader reader_;
  Rng jitter_rng_;
  ClientStats stats_;
  bool ever_connected_ = false;
};

}  // namespace dinar::net
