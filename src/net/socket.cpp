#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace dinar::net {
namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

// Polls `fd` for `events` until `deadline`; true iff the event arrived.
bool poll_until(int fd, short events, double deadline) {
  for (;;) {
    const double remain = deadline - monotonic_seconds();
    if (remain <= 0.0) return false;
    struct pollfd p{fd, events, 0};
    const int timeout_ms = static_cast<int>(remain * 1000.0) + 1;
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;  // includes POLLERR/POLLHUP: let the I/O call fail
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Socket tcp_listen(std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Socket();
  int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return Socket();
  if (::listen(s.fd(), backlog) != 0) return Socket();
  if (!set_nonblocking(s.fd())) return Socket();
  return s;
}

std::uint16_t local_port(const Socket& s) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   double timeout_seconds) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Socket();
  if (!set_nonblocking(s.fd())) return Socket();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return Socket();

  const double deadline = monotonic_seconds() + timeout_seconds;
  const int rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) return Socket();
    if (!poll_until(s.fd(), POLLOUT, deadline)) return Socket();
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0)
      return Socket();
  }
  set_nodelay(s.fd());
  return s;
}

Socket tcp_accept(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();
  Socket s(fd);
  if (!set_nonblocking(fd)) return Socket();
  set_nodelay(fd);
  return s;
}

bool send_all(const Socket& s, const std::uint8_t* data, std::size_t n,
              double deadline) {
  std::size_t sent = 0;
  while (sent < n) {
    const auto rc = ::send(s.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_until(s.fd(), POLLOUT, deadline)) return false;
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return false;  // peer gone
  }
  return true;
}

long recv_some(const Socket& s, std::uint8_t* out, std::size_t cap, double deadline) {
  for (;;) {
    const auto rc = ::recv(s.fd(), out, cap, 0);
    if (rc >= 0) return static_cast<long>(rc);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_until(s.fd(), POLLIN, deadline)) return -1;
      continue;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

}  // namespace dinar::net
