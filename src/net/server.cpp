#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <fcntl.h>

#include "util/error.h"

namespace dinar::net {
namespace {

// One read() budget per connection per loop iteration: large enough to
// drain a burst, small enough that one firehose peer cannot starve the
// other connections of the event thread.
constexpr std::size_t kReadChunk = 64u << 10;
constexpr std::size_t kReadBudget = 4 * kReadChunk;

EvictReason reason_for(FrameReader::Error e) {
  switch (e) {
    case FrameReader::Error::kBadMagic: return EvictReason::kBadMagic;
    case FrameReader::Error::kOversize: return EvictReason::kOversizeFrame;
    case FrameReader::Error::kBadChecksum: return EvictReason::kBadChecksum;
    case FrameReader::Error::kNone: break;
  }
  return EvictReason::kPeerClosed;
}

}  // namespace

const char* to_string(EvictReason reason) {
  switch (reason) {
    case EvictReason::kPeerClosed: return "peer_closed";
    case EvictReason::kBadMagic: return "bad_magic";
    case EvictReason::kOversizeFrame: return "oversize_frame";
    case EvictReason::kBadChecksum: return "bad_checksum";
    case EvictReason::kSlowPeer: return "slow_peer";
    case EvictReason::kIdle: return "idle";
    case EvictReason::kShed: return "shed";
    case EvictReason::kServerStop: return "server_stop";
  }
  return "unknown";
}

TcpServer::TcpServer(ServerConfig config) : config_(config) {}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  DINAR_CHECK(!running_, "TcpServer::start() while already running");
  listener_ = tcp_listen(config_.port, config_.backlog);
  DINAR_CHECK(listener_.valid(),
              "TcpServer: cannot listen on 127.0.0.1:" << config_.port);
  port_ = local_port(listener_);
  DINAR_CHECK(::pipe(wake_pipe_) == 0, "TcpServer: wake pipe creation failed");
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
  running_ = true;
  thread_ = std::thread([this] { event_loop(); });
}

void TcpServer::stop() {
  if (!running_) return;
  running_ = false;
  wake();
  if (thread_.joinable()) thread_.join();

  std::vector<int> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, conn] : conns_) ids.push_back(id);
  }
  for (const int id : ids) evict(id, EvictReason::kServerStop);
  listener_.close();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void TcpServer::wake() {
  if (wake_pipe_[1] >= 0) {
    const std::uint8_t byte = 1;
    [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
  }
}

bool TcpServer::send(int conn_id, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> framed = frame(payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return false;
    Conn& c = *it->second;
    if (c.sendq.size() >= config_.send_queue_frames ||
        c.sendq_bytes + framed.size() > config_.send_queue_bytes) {
      ++stats_.tx_queue_drops;
      return false;  // shed the newest frame; the round protocol retries
    }
    if (c.sendq.empty()) c.blocked_since = monotonic_seconds();
    c.sendq_bytes += framed.size();
    c.sendq.push_back(std::move(framed));
  }
  wake();
  return true;
}

std::size_t TcpServer::connection_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

ServerStats TcpServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TcpServer::count_eviction(EvictReason reason) {
  // Caller holds mu_.
  switch (reason) {
    case EvictReason::kPeerClosed: ++stats_.evicted_peer_closed; break;
    case EvictReason::kBadMagic: ++stats_.evicted_bad_magic; break;
    case EvictReason::kOversizeFrame: ++stats_.evicted_oversize; break;
    case EvictReason::kBadChecksum: ++stats_.evicted_bad_checksum; break;
    case EvictReason::kSlowPeer: ++stats_.evicted_slow_peer; break;
    case EvictReason::kIdle: ++stats_.evicted_idle; break;
    case EvictReason::kShed: ++stats_.connections_shed; break;
    case EvictReason::kServerStop: break;  // shutdown is not an eviction
  }
}

void TcpServer::evict(int id, EvictReason reason) {
  std::unique_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
    count_eviction(reason);
  }
  if (on_disconnect_) on_disconnect_(id, reason);
  // `conn` closes the socket on destruction.
}

void TcpServer::accept_pending() {
  for (;;) {
    Socket accepted = tcp_accept(listener_);
    if (!accepted.valid()) return;
    bool shed = false;
    int id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conns_.size() >= config_.max_connections) {
        ++stats_.connections_shed;
        shed = true;  // closing `accepted` on scope exit IS the shedding
      } else {
        id = next_conn_id_++;
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(accepted);
        conn->reader = FrameReader(config_.max_frame_bytes);
        conn->last_rx = monotonic_seconds();
        conns_.emplace(id, std::move(conn));
        ++stats_.connections_accepted;
      }
    }
    (void)shed;
  }
}

void TcpServer::service_readable(int id, std::vector<std::vector<std::uint8_t>>& frames,
                                 bool& evict_conn, EvictReason& reason) {
  // Only the event thread reads sockets or touches readers, so the
  // syscalls run lock-free; stats and queue state take mu_.
  Conn* c = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    c = it->second.get();
  }
  std::uint8_t chunk[kReadChunk];
  std::size_t total = 0;
  bool peer_closed = false;
  while (total < kReadBudget) {
    const auto rc = ::recv(c->sock.fd(), chunk, sizeof chunk, 0);
    if (rc > 0) {
      c->reader.feed(chunk, static_cast<std::size_t>(rc));
      total += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;  // ECONNRESET and friends
    break;
  }

  while (auto payload = c->reader.next()) frames.push_back(std::move(*payload));

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_rx += total;
    stats_.frames_rx += frames.size();
    if (!frames.empty()) c->last_rx = monotonic_seconds();
  }

  if (c->reader.poisoned()) {
    evict_conn = true;
    reason = reason_for(c->reader.error());
  } else if (peer_closed) {
    evict_conn = true;
    reason = EvictReason::kPeerClosed;
  }
}

void TcpServer::flush_writable(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  while (!c.sendq.empty()) {
    const std::vector<std::uint8_t>& front = c.sendq.front();
    const auto rc = ::send(c.sock.fd(), front.data() + c.send_off,
                           front.size() - c.send_off, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: kernel buffer full again; anything else: the peer is gone
      // and the next read will evict it. Either way, stop here.
      return;
    }
    stats_.bytes_tx += static_cast<std::uint64_t>(rc);
    c.send_off += static_cast<std::size_t>(rc);
    c.blocked_since = monotonic_seconds();  // progress resets the stall clock
    if (c.send_off == front.size()) {
      c.sendq_bytes -= front.size();
      c.sendq.pop_front();
      c.send_off = 0;
      ++stats_.frames_tx;
    }
  }
}

void TcpServer::sweep_timeouts() {
  const double now = monotonic_seconds();
  std::vector<std::pair<int, EvictReason>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, conn] : conns_) {
      if (config_.write_stall_timeout_seconds > 0.0 && !conn->sendq.empty() &&
          now - conn->blocked_since > config_.write_stall_timeout_seconds) {
        victims.emplace_back(id, EvictReason::kSlowPeer);
      } else if (config_.idle_timeout_seconds > 0.0 &&
                 now - conn->last_rx > config_.idle_timeout_seconds) {
        victims.emplace_back(id, EvictReason::kIdle);
      }
    }
  }
  for (const auto& [id, reason] : victims) evict(id, reason);
}

void TcpServer::event_loop() {
  while (running_) {
    // Snapshot the connection set; only this thread mutates it, so the ids
    // stay valid until we evict them ourselves.
    std::vector<struct pollfd> fds;
    std::vector<int> ids;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fds.reserve(conns_.size() + 2);
      fds.push_back({listener_.fd(), POLLIN, 0});
      fds.push_back({wake_pipe_[0], POLLIN, 0});
      for (const auto& [id, conn] : conns_) {
        short events = POLLIN;
        if (!conn->sendq.empty()) events |= POLLOUT;
        fds.push_back({conn->sock.fd(), events, 0});
        ids.push_back(id);
      }
    }

    const int timeout_ms =
        static_cast<int>(config_.poll_interval_seconds * 1000.0) + 1;
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (!running_) break;
    if (rc < 0 && errno != EINTR) break;

    if (fds[1].revents & POLLIN) {  // drain wakeup bytes
      std::uint8_t buf[64];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) accept_pending();

    for (std::size_t i = 2; i < fds.size(); ++i) {
      const int id = ids[i - 2];
      if (fds[i].revents & POLLOUT) flush_writable(id);
      if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        std::vector<std::vector<std::uint8_t>> frames;
        bool evict_conn = false;
        EvictReason reason = EvictReason::kPeerClosed;
        service_readable(id, frames, evict_conn, reason);
        // Handler runs without the lock: it may call send() re-entrantly.
        for (std::vector<std::uint8_t>& payload : frames) {
          const bool accepted = !on_frame_ || on_frame_(id, std::move(payload));
          if (!accepted) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.rx_queue_drops;
          }
        }
        if (evict_conn) evict(id, reason);
      }
    }
    sweep_timeouts();
  }
}

}  // namespace dinar::net
