// TCP server speaking DFRM frames, built for graceful degradation.
//
// One poll()-based event thread owns every connection: it accepts, reads
// stream fragments into per-connection FrameReaders, hands complete
// checksum-verified payloads to the application handler, and flushes
// bounded per-peer send queues. Robustness is the design center, in order
// of violence:
//
//  - backpressure, not buffering: each peer's send queue is capped in
//    frames and bytes. A full queue drops the *newest* enqueued frame
//    (tx_queue_drops) — in the FL round protocol a lost frame is a retry,
//    an unbounded queue is an OOM. The receive side mirrors it: a handler
//    that cannot absorb a frame returns false and the frame is dropped
//    where it stands (rx_queue_drops), never parked in hidden memory.
//  - eviction with named reasons: a peer whose stream breaks framing
//    (bad magic / oversize length / checksum failure — a TCP stream has no
//    resync point after any of these), stalls its reads so long the send
//    queue cannot drain (slow peer), or goes silent past the idle timeout
//    is disconnected and counted under its specific reason. Eviction is
//    recovery, not failure: the client reconnects with backoff and the
//    round protocol retries.
//  - overload shedding: accepts beyond max_connections are closed on
//    arrival (connections_shed). Shedding the newest work keeps every
//    in-flight round intact; quorum aggregation absorbs the losses.
//
// Threading: handlers run on the event thread (keep them short — the
// round server aggregates in O(model) which is the intended use).
// send() / stats() are safe from any thread; a self-pipe wakes the poll
// loop when a cross-thread send needs flushing.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"

namespace dinar::net {

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned (read back via port())
  int backlog = 256;
  std::size_t max_connections = 1024;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Per-peer send queue caps; the tighter one wins.
  std::size_t send_queue_frames = 128;
  std::size_t send_queue_bytes = 64u << 20;
  // Evict a peer whose send queue has been blocked (no write progress
  // while data is queued) for this long. 0 disables.
  double write_stall_timeout_seconds = 10.0;
  // Evict a peer that has not delivered a frame for this long. 0 disables.
  double idle_timeout_seconds = 0.0;
  // Upper bound on one poll() sleep; timeout sweeps run at this cadence.
  double poll_interval_seconds = 0.05;
};

// Why the server dropped a connection.
enum class EvictReason {
  kPeerClosed,     // orderly or abortive close from the peer
  kBadMagic,       // stream bytes stopped being DFRM frames
  kOversizeFrame,  // length field exceeded max_frame_bytes
  kBadChecksum,    // complete frame failed FNV-1a verification
  kSlowPeer,       // send queue blocked past write_stall_timeout
  kIdle,           // no frame received within idle_timeout
  kShed,           // accepted beyond max_connections, closed on arrival
  kServerStop,     // server shut down
};
const char* to_string(EvictReason reason);

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_shed = 0;
  std::uint64_t evicted_peer_closed = 0;
  std::uint64_t evicted_bad_magic = 0;
  std::uint64_t evicted_oversize = 0;
  std::uint64_t evicted_bad_checksum = 0;
  std::uint64_t evicted_slow_peer = 0;
  std::uint64_t evicted_idle = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t bytes_rx = 0;  // wire bytes read, frame headers included
  std::uint64_t bytes_tx = 0;
  std::uint64_t rx_queue_drops = 0;  // handler refused the frame
  std::uint64_t tx_queue_drops = 0;  // send queue cap shed the frame

  // Framing evictions = protocol errors (the load-test smoke gate).
  std::uint64_t protocol_errors() const {
    return evicted_bad_magic + evicted_oversize + evicted_bad_checksum;
  }
};

class TcpServer {
 public:
  // Returns true to accept the frame; false sheds it (rx_queue_drops).
  using FrameHandler = std::function<bool(int conn_id, std::vector<std::uint8_t> payload)>;
  using DisconnectHandler = std::function<void(int conn_id, EvictReason reason)>;

  explicit TcpServer(ServerConfig config);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  void set_frame_handler(FrameHandler handler) { on_frame_ = std::move(handler); }
  void set_disconnect_handler(DisconnectHandler handler) {
    on_disconnect_ = std::move(handler);
  }

  // Binds, listens and starts the event thread. Throws dinar::Error if the
  // port cannot be bound.
  void start();
  // Stops the event thread and closes every connection (kServerStop).
  void stop();
  bool running() const { return running_; }

  // The bound port (resolves config.port == 0 after start()).
  std::uint16_t port() const { return port_; }

  // Frames `payload` and enqueues it for `conn_id`. Returns false — and
  // counts a tx_queue_drop — when the peer's queue is at either cap, and
  // false without accounting when the connection no longer exists.
  // Thread-safe.
  bool send(int conn_id, const std::vector<std::uint8_t>& payload);

  // Live connection count. Thread-safe.
  std::size_t connection_count() const;

  // Counter snapshot. Thread-safe.
  ServerStats stats() const;

 private:
  struct Conn {
    Socket sock;
    FrameReader reader;
    std::deque<std::vector<std::uint8_t>> sendq;  // framed bytes
    std::size_t sendq_bytes = 0;
    std::size_t send_off = 0;  // progress inside sendq.front()
    double last_rx = 0.0;
    // Time of the last write progress while data was queued; the slow-peer
    // sweep evicts when (now - blocked_since) exceeds the stall timeout.
    double blocked_since = 0.0;
  };

  void event_loop();
  void accept_pending();
  // Reads once from `conn`; returns the completed frames. Sets `evict` when
  // the connection must go (reason mapped from the reader error / close).
  void service_readable(int id, std::vector<std::vector<std::uint8_t>>& frames,
                        bool& evict, EvictReason& reason);
  void flush_writable(int id);
  void sweep_timeouts();
  void evict(int id, EvictReason reason);
  void count_eviction(EvictReason reason);
  void wake();

  ServerConfig config_;
  FrameHandler on_frame_;
  DisconnectHandler on_disconnect_;

  Socket listener_;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> running_{false};

  mutable std::mutex mu_;  // guards conns_, stats_
  std::map<int, std::unique_ptr<Conn>> conns_;
  int next_conn_id_ = 1;
  ServerStats stats_;
};

}  // namespace dinar::net
