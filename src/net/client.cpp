#include "net/client.h"

#include <algorithm>
#include <thread>

namespace dinar::net {

TcpClient::TcpClient(ClientConfig config)
    : config_(std::move(config)), jitter_rng_(config_.jitter_seed) {}

void TcpClient::disconnect() {
  sock_.close();
  reader_ = FrameReader(config_.max_frame_bytes);
}

bool TcpClient::ensure_connected() {
  if (sock_.valid()) return true;
  double backoff = config_.backoff_initial_seconds;
  for (int attempt = 0; attempt < config_.max_connect_attempts; ++attempt) {
    if (attempt > 0) {
      const double jitter =
          1.0 + config_.backoff_jitter * (2.0 * jitter_rng_.uniform() - 1.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(0.0, backoff * jitter)));
      backoff = std::min(backoff * 2.0, config_.backoff_max_seconds);
    }
    Socket s = tcp_connect(config_.host, config_.port, config_.connect_timeout_seconds);
    if (s.valid()) {
      sock_ = std::move(s);
      reader_ = FrameReader(config_.max_frame_bytes);
      ++stats_.connects;
      if (ever_connected_) ++stats_.reconnects;
      ever_connected_ = true;
      return true;
    }
    ++stats_.connect_failures;
  }
  return false;
}

bool TcpClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  if (!sock_.valid()) return false;
  const double deadline = monotonic_seconds() + config_.io_timeout_seconds;
  if (!send_all(sock_, bytes.data(), bytes.size(), deadline)) {
    ++stats_.send_failures;
    disconnect();
    return false;
  }
  stats_.bytes_tx += bytes.size();
  return true;
}

bool TcpClient::send_frame(const std::vector<std::uint8_t>& payload) {
  if (!send_raw(frame(payload))) return false;
  ++stats_.frames_tx;
  return true;
}

std::optional<std::vector<std::uint8_t>> TcpClient::recv_frame(
    double timeout_seconds) {
  if (!sock_.valid()) return std::nullopt;
  const double timeout =
      timeout_seconds > 0.0 ? timeout_seconds : config_.io_timeout_seconds;
  const double deadline = monotonic_seconds() + timeout;
  for (;;) {
    if (auto payload = reader_.next()) {
      ++stats_.frames_rx;
      return payload;
    }
    if (reader_.poisoned()) {
      ++stats_.protocol_errors;
      disconnect();
      return std::nullopt;
    }
    std::uint8_t chunk[64 << 10];
    const long rc = recv_some(sock_, chunk, sizeof chunk, deadline);
    if (rc < 0) {
      ++stats_.recv_timeouts;
      return std::nullopt;  // deadline passed; connection stays usable
    }
    if (rc == 0) {  // server closed (eviction or restart): reconnect later
      disconnect();
      return std::nullopt;
    }
    stats_.bytes_rx += static_cast<std::uint64_t>(rc);
    reader_.feed(chunk, static_cast<std::size_t>(rc));
  }
}

}  // namespace dinar::net
