#include "net/frame.h"

#include <cstring>

#include "util/error.h"

namespace dinar::net {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> framed(kFrameHeaderBytes + payload.size());
  const std::uint64_t length = payload.size();
  const std::uint64_t checksum = fnv1a64(payload.data(), payload.size());
  std::memcpy(framed.data(), &kFrameMagic, sizeof kFrameMagic);
  std::memcpy(framed.data() + sizeof kFrameMagic, &length, sizeof length);
  std::memcpy(framed.data() + sizeof kFrameMagic + sizeof length, &checksum,
              sizeof checksum);
  if (!payload.empty())
    std::memcpy(framed.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return framed;
}

std::vector<std::uint8_t> open_frame(const std::vector<std::uint8_t>& framed) {
  DINAR_CHECK(framed.size() >= kFrameHeaderBytes,
              "transport frame: " << framed.size() << " bytes is shorter than the "
                                  << kFrameHeaderBytes << "-byte header");
  std::uint32_t magic = 0;
  std::uint64_t length = 0, checksum = 0;
  std::memcpy(&magic, framed.data(), sizeof magic);
  std::memcpy(&length, framed.data() + sizeof magic, sizeof length);
  std::memcpy(&checksum, framed.data() + sizeof magic + sizeof length,
              sizeof checksum);
  DINAR_CHECK(magic == kFrameMagic, "transport frame: bad magic");
  DINAR_CHECK(length == framed.size() - kFrameHeaderBytes,
              "transport frame: length field " << length << " does not match "
                                               << framed.size() - kFrameHeaderBytes
                                               << " payload bytes");
  const std::uint8_t* payload = framed.data() + kFrameHeaderBytes;
  DINAR_CHECK(fnv1a64(payload, length) == checksum,
              "transport frame: checksum mismatch (payload corrupted in flight)");
  const auto decoded = declared_decoded_bytes(payload, length);
  DINAR_CHECK(!decoded.has_value() || *decoded <= kDefaultMaxDecodedBytes,
              "transport frame: v3 payload declares "
                  << (decoded ? *decoded : 0) << " decoded bytes, over the "
                  << kDefaultMaxDecodedBytes << "-byte cap");
  return std::vector<std::uint8_t>(payload, payload + length);
}

std::optional<std::uint64_t> declared_decoded_bytes(const std::uint8_t* payload,
                                                    std::size_t n) {
  if (n < kMessageDecodedSizeOffset + sizeof(std::uint64_t)) return std::nullopt;
  std::uint32_t magic = 0, version = 0;
  std::memcpy(&magic, payload, sizeof magic);
  std::memcpy(&version, payload + sizeof magic + 1, sizeof version);
  if (magic != kMessageMagic || version != kMessageVersionCompressed)
    return std::nullopt;
  std::uint64_t decoded = 0;
  std::memcpy(&decoded, payload + kMessageDecodedSizeOffset, sizeof decoded);
  return decoded;
}

const char* FrameReader::to_string(Error e) {
  switch (e) {
    case Error::kNone: return "none";
    case Error::kBadMagic: return "bad_magic";
    case Error::kOversize: return "oversize_frame";
    case Error::kBadChecksum: return "bad_checksum";
    case Error::kOversizeDecoded: return "oversize_decoded";
  }
  return "unknown";
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (error_ != Error::kNone || n == 0) return;
  // Reclaim the consumed prefix before growing: a long-lived connection
  // must not accumulate every byte it ever received.
  if (consumed_ > 0 && (consumed_ >= buf_.size() || consumed_ > (64u << 10))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  if (error_ != Error::kNone) return std::nullopt;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return std::nullopt;

  const std::uint8_t* head = buf_.data() + consumed_;
  std::uint32_t magic = 0;
  std::uint64_t length = 0, checksum = 0;
  std::memcpy(&magic, head, sizeof magic);
  std::memcpy(&length, head + sizeof magic, sizeof length);
  std::memcpy(&checksum, head + sizeof magic + sizeof length, sizeof checksum);
  if (magic != kFrameMagic) {
    error_ = Error::kBadMagic;
    return std::nullopt;
  }
  if (length > max_frame_bytes_) {
    error_ = Error::kOversize;
    return std::nullopt;
  }
  if (avail - kFrameHeaderBytes < length) return std::nullopt;  // wait for more

  const std::uint8_t* payload = head + kFrameHeaderBytes;
  if (fnv1a64(payload, length) != checksum) {
    error_ = Error::kBadChecksum;
    return std::nullopt;
  }
  // Checksum-valid frames may still be hostile: a v3 message declares the
  // size decoding will allocate, which the wire length does not bound.
  if (const auto decoded = declared_decoded_bytes(payload, length);
      decoded.has_value() && *decoded > max_decoded_bytes_) {
    error_ = Error::kOversizeDecoded;
    return std::nullopt;
  }
  std::vector<std::uint8_t> out(payload, payload + length);
  consumed_ += kFrameHeaderBytes + static_cast<std::size_t>(length);
  return out;
}

}  // namespace dinar::net
