// Thin RAII layer over POSIX TCP sockets.
//
// Everything here is deliberately boring: an fd owner, loopback-friendly
// listen/connect with deadlines, and poll()-based send/recv helpers that
// tolerate partial transfers and EINTR. The interesting robustness
// machinery (framing, queues, eviction, backoff) lives one layer up in
// server.h / client.h; keeping the syscall handling in one place means the
// event loops never touch errno directly.
//
// All functions throw dinar::Error only on programmer errors (e.g. invalid
// arguments); runtime network failures are reported through return values,
// because a peer resetting a connection is normal operation for a server.
#pragma once

#include <cstdint>
#include <string>

namespace dinar::net {

// Move-only owner of a socket fd (-1 = empty). Closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void close();

 private:
  int fd_ = -1;
};

// Monotonic clock in seconds (deadline arithmetic).
double monotonic_seconds();

// Listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port).
// Returns an invalid Socket on failure; on success the socket is
// nonblocking with SO_REUSEADDR set.
Socket tcp_listen(std::uint16_t port, int backlog);

// The local port a bound socket listens on (resolves port 0).
std::uint16_t local_port(const Socket& s);

// Connects to host:port with a wall-clock deadline; returns an invalid
// Socket on failure/timeout. The socket comes back nonblocking with
// TCP_NODELAY set (frames are latency-sensitive request/response units).
Socket tcp_connect(const std::string& host, std::uint16_t port,
                   double timeout_seconds);

// Accepts one pending connection (nonblocking listener); invalid Socket if
// none is ready. The accepted socket is nonblocking with TCP_NODELAY.
Socket tcp_accept(const Socket& listener);

// Writes all of `data`, polling for writability until `deadline`
// (monotonic_seconds() timebase). Returns false on timeout or a dead peer.
bool send_all(const Socket& s, const std::uint8_t* data, std::size_t n,
              double deadline);

// Reads at most `cap` bytes once the socket is readable, waiting until
// `deadline`. Returns the byte count; 0 = orderly peer close; -1 = timeout
// or error.
long recv_some(const Socket& s, std::uint8_t* out, std::size_t cap, double deadline);

}  // namespace dinar::net
