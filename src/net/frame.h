// DFRM wire framing and its stream-oriented decoder.
//
// A frame is [u32 magic 'DFRM' | u64 payload length | u64 FNV-1a 64
// checksum | payload bytes]. The format predates this header (PR 1's
// fault-tolerant round protocol introduced it for the in-process
// transport); it moves down here so the in-process transport and the TCP
// socket layer share one definition instead of two drifting copies.
//
// FrameReader applies the WAL's longest-valid-prefix discipline to a byte
// *stream*: bytes arrive in arbitrary fragments (TCP is not
// message-preserving), the reader buffers them, and next() hands back each
// complete, checksum-verified payload in order. A frame that is merely
// incomplete is not an error — it is the expected state between reads.
// A frame that can never become valid (bad magic, oversize length, failed
// checksum) poisons the stream: unlike a file of independent records,
// a TCP stream has no resynchronization point after a framing error, so
// the reader latches the error and the connection must be torn down (the
// peer reconnects and retransmits). The error is named so eviction
// accounting can attribute it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dinar::net {

inline constexpr std::uint32_t kFrameMagic = 0x4446524D;  // "DFRM"
inline constexpr std::size_t kFrameHeaderBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

// Frame size any in-tree endpoint accepts by default: large enough for the
// biggest model broadcast we ship, small enough that one malicious length
// field cannot make a peer allocate gigabytes.
inline constexpr std::size_t kDefaultMaxFrameBytes = 256u << 20;

// Compressed (DFRM v3) message payloads additionally declare the size of
// the DECODED parameter arena in their header, because the wire length no
// longer bounds what decoding allocates: an int8 + top-k payload can be
// 30x smaller than its arena, so a tiny frame passing the kOversize check
// could still declare a multi-GB decompressed arena (a decompression
// bomb). The net layer cannot include fl/message.h (layering), so the few
// header fields it sniffs are mirrored here; fl/message.cpp includes this
// header and static-asserts against drift. Offsets: u32 magic @0, u8 kind
// @4, u32 version @5, u64 decoded size @9.
inline constexpr std::uint32_t kMessageMagic = 0x4D524644;  // "DFRM" (message order)
inline constexpr std::uint32_t kMessageVersionCompressed = 3;
inline constexpr std::size_t kMessageDecodedSizeOffset =
    sizeof(std::uint32_t) + sizeof(std::uint8_t) + sizeof(std::uint32_t);
inline constexpr std::size_t kDefaultMaxDecodedBytes = 1u << 30;

// The decoded size a v3 message payload declares, or nullopt when the
// payload is not a v3 DFRM message (v2 and foreign payloads decode no
// larger than their wire size, which kOversize already bounds).
std::optional<std::uint64_t> declared_decoded_bytes(const std::uint8_t* payload,
                                                    std::size_t n);

// FNV-1a 64 over the payload (the frame checksum).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

// Wraps a payload in a DFRM frame.
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload);

// Verifies and strips a frame held as one complete buffer; throws
// dinar::Error naming the defect (short header, bad magic, length
// mismatch, checksum mismatch).
std::vector<std::uint8_t> open_frame(const std::vector<std::uint8_t>& framed);

class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                       std::size_t max_decoded_bytes = kDefaultMaxDecodedBytes)
      : max_frame_bytes_(max_frame_bytes),
        max_decoded_bytes_(max_decoded_bytes) {}

  enum class Error {
    kNone,
    kBadMagic,         // stream bytes are not a DFRM header
    kOversize,         // length field exceeds the configured cap
    kBadChecksum,      // complete frame whose payload fails FNV-1a
    kOversizeDecoded,  // v3 payload declares a decoded arena over the cap
  };
  static const char* to_string(Error e);

  // Appends freshly read stream bytes. No-op once the stream is poisoned.
  void feed(const std::uint8_t* data, std::size_t n);

  // Extracts the next complete payload, or nullopt when more bytes are
  // needed or the stream is poisoned (check error()).
  std::optional<std::vector<std::uint8_t>> next();

  // First unrecoverable framing error seen, if any. Latched: once set the
  // reader stays poisoned and next() yields nothing.
  Error error() const { return error_; }
  bool poisoned() const { return error_ != Error::kNone; }

  // Bytes buffered but not yet returned (backpressure accounting).
  std::size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  std::size_t max_frame_bytes_;
  std::size_t max_decoded_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  // prefix of buf_ already handed out
  Error error_ = Error::kNone;
};

}  // namespace dinar::net
