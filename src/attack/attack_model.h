// Binary membership classifier: regularized logistic regression over the
// membership feature rows, trained by full-batch gradient descent with
// feature standardization. Small, deterministic, and strong enough to
// recover the loss/confidence gap MIAs exploit.
#pragma once

#include <vector>

#include "attack/features.h"

namespace dinar::attack {

struct AttackFitConfig {
  int epochs = 300;
  double learning_rate = 0.5;
  double l2 = 1e-4;
};

class LogisticAttackModel {
 public:
  using FitConfig = AttackFitConfig;

  // labels: true = member. Standardizes features internally.
  void fit(const std::vector<FeatureRow>& features, const std::vector<bool>& labels,
           const FitConfig& config = FitConfig());

  // P(member) for one row.
  double score(const FeatureRow& row) const;
  std::vector<double> score_all(const std::vector<FeatureRow>& rows) const;

  bool trained() const { return trained_; }

 private:
  std::array<double, kNumMembershipFeatures> weights_{};
  double bias_ = 0.0;
  std::array<double, kNumMembershipFeatures> mean_{};
  std::array<double, kNumMembershipFeatures> stddev_{};
  bool trained_ = false;
};

}  // namespace dinar::attack
