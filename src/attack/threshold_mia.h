// Loss-threshold membership-inference attack (Yeom et al. style).
//
// A simpler, shadow-free MIA used as a second attack surface when
// evaluating defenses (the paper's future-work direction of testing
// resilience against other attack families): the attacker scores each
// sample by the negated per-sample loss — members of an overfit model
// have systematically lower loss — and the ROC-AUC over member /
// non-member pools measures leakage directly, with the classical
// calibrated variant thresholding at the mean training loss.
#pragma once

#include "data/dataset.h"
#include "nn/model.h"

namespace dinar::attack {

struct ThresholdAttackResult {
  double auc = 0.5;             // ROC-AUC of -loss as the membership score
  double threshold = 0.0;       // calibrated loss threshold (mean member loss)
  double accuracy_at_threshold = 0.5;  // balanced accuracy of the thresholded rule
  double mean_member_loss = 0.0;
  double mean_non_member_loss = 0.0;
};

// Runs the attack against `target`. Pools are balanced by subsampling the
// larger one (seeded by `seed`).
ThresholdAttackResult loss_threshold_attack(nn::Model& target,
                                            const data::Dataset& members,
                                            const data::Dataset& non_members,
                                            std::uint64_t seed = 0xA77AC);

}  // namespace dinar::attack
