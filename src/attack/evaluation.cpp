#include "attack/evaluation.h"

#include "util/logging.h"

namespace dinar::attack {

PrivacyReport evaluate_privacy(fl::FederatedSimulation& sim, ShadowMia& mia,
                               std::int64_t max_members_global) {
  PrivacyReport report;

  // Member pool for the global attack: all clients' training data.
  data::Dataset all_members;
  for (fl::FlClient& client : sim.clients()) {
    all_members = all_members.empty()
                      ? client.train_data()
                      : data::Dataset::concat(all_members, client.train_data());
  }
  if (all_members.size() > max_members_global)
    all_members = all_members.take(max_members_global);

  nn::Model global = sim.global_model();
  report.global_attack_auc = mia.attack_auc(global, all_members, sim.test_data());

  // Local surface: attack each upload the server saw in the last round
  // (with client sampling, non-participants shipped nothing to attack).
  const std::vector<std::size_t> participants = sim.last_participants();
  double local_sum = 0.0;
  for (std::size_t i : participants) {
    nn::Model view = sim.server_view_of_client(i);
    local_sum += mia.attack_auc(view, sim.clients()[i].train_data(), sim.test_data());
  }
  report.mean_local_attack_auc =
      participants.empty() ? 0.5
                           : local_sum / static_cast<double>(participants.size());

  DINAR_INFO << "privacy: global AUC " << report.global_attack_auc << ", mean local AUC "
             << report.mean_local_attack_auc;
  return report;
}

}  // namespace dinar::attack
