#include "attack/threshold_mia.h"

#include "nn/loss.h"
#include "util/error.h"
#include "util/stats.h"

namespace dinar::attack {
namespace {

std::vector<double> per_sample_losses(nn::Model& model, const data::Dataset& pool) {
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(pool.size()));
  Rng no_shuffle(0);
  data::BatchIterator batches(pool, 256, no_shuffle, /*shuffle=*/false);
  data::BatchIterator::Batch batch;
  while (batches.next(batch)) {
    Tensor logits = model.forward(batch.features, /*train=*/false);
    for (double l : nn::per_sample_cross_entropy(logits, batch.labels))
      losses.push_back(l);
  }
  return losses;
}

data::Dataset balance(const data::Dataset& d, std::int64_t n, Rng& rng) {
  if (d.size() <= n) return d;
  std::vector<std::size_t> idx = rng.permutation(static_cast<std::size_t>(d.size()));
  idx.resize(static_cast<std::size_t>(n));
  return d.subset(idx);
}

}  // namespace

ThresholdAttackResult loss_threshold_attack(nn::Model& target,
                                            const data::Dataset& members,
                                            const data::Dataset& non_members,
                                            std::uint64_t seed) {
  DINAR_CHECK(!members.empty() && !non_members.empty(),
              "threshold attack needs both pools");
  Rng rng(seed);
  const std::int64_t n = std::min(members.size(), non_members.size());
  data::Dataset m = balance(members, n, rng);
  data::Dataset nm = balance(non_members, n, rng);

  const std::vector<double> member_losses = per_sample_losses(target, m);
  const std::vector<double> non_member_losses = per_sample_losses(target, nm);

  ThresholdAttackResult result;
  result.mean_member_loss = mean(member_losses);
  result.mean_non_member_loss = mean(non_member_losses);

  // Score = -loss: members (low loss) should rank above non-members.
  std::vector<double> scores;
  std::vector<bool> labels;
  scores.reserve(member_losses.size() + non_member_losses.size());
  for (double l : member_losses) {
    scores.push_back(-l);
    labels.push_back(true);
  }
  for (double l : non_member_losses) {
    scores.push_back(-l);
    labels.push_back(false);
  }
  result.auc = roc_auc(scores, labels);

  // Yeom's calibrated rule: classify "member" iff loss < mean member loss.
  result.threshold = result.mean_member_loss;
  std::size_t correct = 0;
  for (double l : member_losses)
    if (l < result.threshold) ++correct;
  for (double l : non_member_losses)
    if (l >= result.threshold) ++correct;
  result.accuracy_at_threshold =
      static_cast<double>(correct) /
      static_cast<double>(member_losses.size() + non_member_losses.size());
  return result;
}

}  // namespace dinar::attack
