#include "attack/features.h"

#include <algorithm>
#include <cmath>

#include "nn/loss.h"
#include "util/error.h"

namespace dinar::attack {

std::vector<FeatureRow> extract_membership_features(nn::Model& model,
                                                    const data::Dataset& dataset,
                                                    std::int64_t batch_size) {
  std::vector<FeatureRow> rows;
  rows.reserve(static_cast<std::size_t>(dataset.size()));
  Rng no_shuffle(0);
  data::BatchIterator batches(dataset, batch_size, no_shuffle, /*shuffle=*/false);
  data::BatchIterator::Batch batch;
  while (batches.next(batch)) {
    Tensor logits = model.forward(batch.features, /*train=*/false);
    Tensor probs = nn::softmax(logits);
    const std::int64_t b = probs.dim(0), c = probs.dim(1);
    for (std::int64_t i = 0; i < b; ++i) {
      const float* row = probs.data() + i * c;
      const int label = batch.labels[static_cast<std::size_t>(i)];

      // Top-3 confidences (partial sort of a copy).
      std::vector<float> sorted(row, row + c);
      const std::int64_t k = std::min<std::int64_t>(3, c);
      std::partial_sort(sorted.begin(), sorted.begin() + k, sorted.end(),
                        std::greater<float>());

      double entropy = 0.0;
      for (std::int64_t j = 0; j < c; ++j)
        if (row[j] > 0.0f) entropy -= static_cast<double>(row[j]) * std::log(row[j]);

      const double p_label = std::max<double>(row[label], 1e-12);
      FeatureRow f{};
      f[0] = -std::log(p_label);                       // loss
      f[1] = entropy;                                  // prediction entropy
      f[2] = sorted[0];                                // top-1 confidence
      f[3] = k > 1 ? sorted[1] : 0.0;                  // top-2
      f[4] = k > 2 ? sorted[2] : 0.0;                  // top-3
      const float* arg = std::max_element(row, row + c);
      f[5] = (arg - row) == label ? 1.0 : 0.0;         // correctness
      rows.push_back(f);
    }
  }
  return rows;
}

}  // namespace dinar::attack
