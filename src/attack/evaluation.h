// Privacy evaluation drivers matching the paper's two attack surfaces
// (§2.2, Appendix A):
//  - global-model attack: a client-side adversary attacks the broadcast
//    global model; members are (a sample of) all clients' training data;
//  - local-model attack: a server-side adversary attacks each client's
//    uploaded model as received on the wire; the reported metric is the
//    mean attack AUC over clients.
#pragma once

#include "attack/mia.h"
#include "fl/simulation.h"

namespace dinar::attack {

struct PrivacyReport {
  double global_attack_auc = 0.5;
  double mean_local_attack_auc = 0.5;
};

// Runs both attacks against the simulation's final state.
PrivacyReport evaluate_privacy(fl::FederatedSimulation& sim, ShadowMia& mia,
                               std::int64_t max_members_global = 2000);

}  // namespace dinar::attack
