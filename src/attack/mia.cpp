#include "attack/mia.h"

#include <algorithm>

#include "opt/optimizers.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/stats.h"

namespace dinar::attack {
namespace {

// Subsamples a dataset to at most `n` rows (seeded).
data::Dataset cap(const data::Dataset& d, std::int64_t n, Rng& rng) {
  if (d.size() <= n) return d;
  std::vector<std::size_t> idx = rng.permutation(static_cast<std::size_t>(d.size()));
  idx.resize(static_cast<std::size_t>(n));
  return d.subset(idx);
}

}  // namespace

ShadowMia::ShadowMia(nn::ModelFactory factory, data::Dataset attacker_prior,
                     MiaConfig config)
    : factory_(std::move(factory)), prior_(std::move(attacker_prior)), config_(config),
      rng_(config.seed) {
  DINAR_CHECK(prior_.size() >= 64, "attacker prior too small for shadow training");
  DINAR_CHECK(config_.num_shadows >= 1, "need at least one shadow model");
}

void ShadowMia::fit() {
  std::vector<FeatureRow> features;
  std::vector<bool> labels;

  for (int s = 0; s < config_.num_shadows; ++s) {
    Rng shadow_rng = rng_.fork(static_cast<std::uint64_t>(s) + 1);

    // Random half of the prior is this shadow's training set (members).
    data::Dataset shuffled =
        prior_.subset(shadow_rng.permutation(static_cast<std::size_t>(prior_.size())));
    const std::int64_t half = prior_.size() / 2;
    data::Dataset shadow_members = shuffled.take(half);
    data::Dataset shadow_non_members = shuffled.drop(half);

    nn::Model shadow = factory_(shadow_rng);
    auto optimizer = opt::make_optimizer(config_.optimizer, config_.learning_rate);
    fl::train_local(shadow, shadow_members, *optimizer, config_.shadow_train, shadow_rng);

    data::Dataset member_rows = cap(shadow_members, config_.max_rows_per_shadow,
                                    shadow_rng);
    data::Dataset non_member_rows = cap(shadow_non_members, config_.max_rows_per_shadow,
                                        shadow_rng);
    for (const FeatureRow& f : extract_membership_features(shadow, member_rows)) {
      features.push_back(f);
      labels.push_back(true);
    }
    for (const FeatureRow& f : extract_membership_features(shadow, non_member_rows)) {
      features.push_back(f);
      labels.push_back(false);
    }
    DINAR_DEBUG << "shadow " << s << " trained; feature pool " << features.size();
  }

  attack_model_.fit(features, labels, config_.attack_fit);
}

double ShadowMia::attack_auc(nn::Model& target, const data::Dataset& members,
                             const data::Dataset& non_members) {
  DINAR_CHECK(fitted(), "ShadowMia::fit must run before attack_auc");
  DINAR_CHECK(!members.empty() && !non_members.empty(),
              "attack needs both member and non-member pools");

  // Balance the pools so AUC is not skewed by class imbalance.
  Rng balance_rng = rng_.fork(0xBA1A);
  const std::int64_t n = std::min(members.size(), non_members.size());
  data::Dataset m = cap(members, n, balance_rng);
  data::Dataset nm = cap(non_members, n, balance_rng);

  std::vector<double> scores;
  std::vector<bool> labels;
  for (const FeatureRow& f : extract_membership_features(target, m)) {
    scores.push_back(attack_model_.score(f));
    labels.push_back(true);
  }
  for (const FeatureRow& f : extract_membership_features(target, nm)) {
    scores.push_back(attack_model_.score(f));
    labels.push_back(false);
  }
  return roc_auc(scores, labels);
}

}  // namespace dinar::attack
