#include "attack/attack_model.h"

#include <cmath>

#include "util/error.h"

namespace dinar::attack {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

void LogisticAttackModel::fit(const std::vector<FeatureRow>& features,
                              const std::vector<bool>& labels, const FitConfig& config) {
  DINAR_CHECK(features.size() == labels.size(), "feature/label count mismatch");
  DINAR_CHECK(!features.empty(), "cannot fit attack model on no data");
  const auto n = static_cast<double>(features.size());

  // Standardization statistics.
  mean_.fill(0.0);
  stddev_.fill(0.0);
  for (const FeatureRow& row : features)
    for (std::size_t j = 0; j < kNumMembershipFeatures; ++j) mean_[j] += row[j];
  for (double& m : mean_) m /= n;
  for (const FeatureRow& row : features)
    for (std::size_t j = 0; j < kNumMembershipFeatures; ++j)
      stddev_[j] += (row[j] - mean_[j]) * (row[j] - mean_[j]);
  for (double& s : stddev_) s = std::max(std::sqrt(s / n), 1e-9);

  // Pre-standardize once.
  std::vector<FeatureRow> x = features;
  for (FeatureRow& row : x)
    for (std::size_t j = 0; j < kNumMembershipFeatures; ++j)
      row[j] = (row[j] - mean_[j]) / stddev_[j];

  weights_.fill(0.0);
  bias_ = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::array<double, kNumMembershipFeatures> grad_w{};
    double grad_b = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      double z = bias_;
      for (std::size_t j = 0; j < kNumMembershipFeatures; ++j)
        z += weights_[j] * x[i][j];
      const double err = sigmoid(z) - (labels[i] ? 1.0 : 0.0);
      for (std::size_t j = 0; j < kNumMembershipFeatures; ++j)
        grad_w[j] += err * x[i][j];
      grad_b += err;
    }
    for (std::size_t j = 0; j < kNumMembershipFeatures; ++j) {
      grad_w[j] = grad_w[j] / n + config.l2 * weights_[j];
      weights_[j] -= config.learning_rate * grad_w[j];
    }
    bias_ -= config.learning_rate * grad_b / n;
  }
  trained_ = true;
}

double LogisticAttackModel::score(const FeatureRow& row) const {
  DINAR_CHECK(trained_, "attack model not trained");
  double z = bias_;
  for (std::size_t j = 0; j < kNumMembershipFeatures; ++j)
    z += weights_[j] * (row[j] - mean_[j]) / stddev_[j];
  return sigmoid(z);
}

std::vector<double> LogisticAttackModel::score_all(
    const std::vector<FeatureRow>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const FeatureRow& row : rows) out.push_back(score(row));
  return out;
}

}  // namespace dinar::attack
