// Shadow-model membership-inference attack (Shokri et al. [41]), the
// attack used throughout the paper's evaluation.
//
// The attacker holds half of the dataset as prior knowledge (§5.1). fit()
// trains `num_shadows` shadow models of the target architecture, each on
// a random half of the prior (members) with the other half as
// non-members, then trains the logistic attack model on the shadows'
// membership features. attack_auc() scores a target model on known
// member/non-member pools and reports ROC-AUC — 50% is the optimal
// (blind-attacker) defense outcome, higher means leakage.
#pragma once

#include "attack/attack_model.h"
#include "data/dataset.h"
#include "fl/trainer.h"
#include "nn/model_zoo.h"

namespace dinar::attack {

struct MiaConfig {
  int num_shadows = 3;
  // Shadow training should roughly match the target's per-client effort so
  // shadow models exhibit a comparable generalization gap.
  fl::TrainConfig shadow_train{/*epochs=*/8, /*batch_size=*/64};
  std::string optimizer = "adagrad";
  double learning_rate = 1e-3;
  LogisticAttackModel::FitConfig attack_fit{};
  // Cap on member/non-member rows per shadow (keeps feature extraction
  // bounded on large priors).
  std::int64_t max_rows_per_shadow = 2000;
  std::uint64_t seed = 1234;
};

class ShadowMia {
 public:
  ShadowMia(nn::ModelFactory factory, data::Dataset attacker_prior, MiaConfig config);

  // Trains shadow models and the attack classifier.
  void fit();
  bool fitted() const { return attack_model_.trained(); }

  // ROC-AUC of the attack against `target` using balanced member /
  // non-member pools (subsampled to the smaller of the two).
  double attack_auc(nn::Model& target, const data::Dataset& members,
                    const data::Dataset& non_members);

  const LogisticAttackModel& attack_model() const { return attack_model_; }

 private:
  nn::ModelFactory factory_;
  data::Dataset prior_;
  MiaConfig config_;
  LogisticAttackModel attack_model_;
  Rng rng_;
};

}  // namespace dinar::attack
