// Membership-feature extraction.
//
// The MIA of Shokri et al. [41] (the attack the paper evaluates against,
// §5.5) classifies a sample as member/non-member from the target model's
// prediction behaviour on it. Each sample is summarized by a fixed
// feature vector:
//   [ per-sample loss, prediction entropy, top-1/2/3 confidence,
//     correctness indicator ]
// — the standard confidence+loss attack surface.
#pragma once

#include <array>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"

namespace dinar::attack {

inline constexpr std::size_t kNumMembershipFeatures = 6;

using FeatureRow = std::array<double, kNumMembershipFeatures>;

// Runs the model over the dataset (inference mode) and extracts one
// feature row per sample.
std::vector<FeatureRow> extract_membership_features(nn::Model& model,
                                                    const data::Dataset& dataset,
                                                    std::int64_t batch_size = 256);

}  // namespace dinar::attack
