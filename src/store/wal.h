// Append-only, CRC-framed write-ahead log.
//
// File layout:
//   [u32 magic 'DWAL'][u32 version]
//   record*:  [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// Append durability: each append() writes the frame with a single write()
// and fsyncs before returning, so an acked record survives kill -9 and
// power loss. A crash *during* an append leaves a torn tail: a partial
// header, a header whose payload is cut short, or a complete frame whose
// CRC does not match the (partially written or bit-rotted) payload.
//
// Recovery contract (scan()): return the longest valid prefix of records
// and stop at the first frame that is incomplete, overlong, or fails its
// CRC. Scanning NEVER throws on corruption — a torn tail is the expected
// aftermath of a crash, not an error; only genuine I/O failures throw.
// The writer constructor re-opens an existing log by scanning it and
// positioning the append cursor at the end of the valid prefix, so a torn
// tail is silently overwritten by the next append.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dinar::store {

inline constexpr std::uint32_t kWalMagic = 0x4C415744;  // "DWAL" little-endian
inline constexpr std::uint32_t kWalVersion = 1;

class Wal {
 public:
  struct ScanResult {
    std::vector<std::vector<std::uint8_t>> records;  // valid prefix, in order
    // Bytes of the valid prefix (header + intact records); anything past
    // this offset was discarded as torn or corrupt.
    std::uint64_t valid_bytes = 0;
    // True if the file held bytes beyond the valid prefix (torn append,
    // bit flip, or truncated header) that recovery ignored.
    bool tail_discarded = false;
    // True if the file was missing or had no intact header.
    bool missing_or_empty = false;
  };

  // Scans without opening for append. Never throws on corruption.
  static ScanResult scan(const std::string& path);

  // Opens `path` for appending, creating it (with a fresh header) if
  // missing, and truncating any torn tail left by a previous crash.
  explicit Wal(std::string path);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Durably appends one record (frame write + fsync). Crashpoints:
  // wal.append.{pre_write, mid_write, pre_fsync, post_fsync}.
  void append(std::span<const std::uint8_t> payload);

  // Truncates the log back to a bare header (snapshot compaction). The
  // truncation is fsynced before returning.
  void reset();

  const std::string& path() const { return path_; }
  // Records appended or recovered through this handle's lifetime cursor.
  std::uint64_t size_bytes() const { return cursor_; }

 private:
  void open_and_position();

  std::string path_;
  int fd_ = -1;
  std::uint64_t cursor_ = 0;  // append offset = end of valid prefix
};

}  // namespace dinar::store
