#include "store/round_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "store/io.h"
#include "util/crashpoint.h"
#include "util/error.h"

namespace dinar::store {
namespace {

constexpr std::size_t kSnapHeaderBytes = 8 + 8 + 8 + 4;  // magic+ver+round+len+crc

std::vector<std::uint8_t> frame_snapshot(std::int64_t round,
                                         std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> bytes(kSnapHeaderBytes + payload.size());
  std::uint8_t* p = bytes.data();
  const std::uint32_t magic = kSnapshotMagic, version = kSnapshotVersion;
  const std::uint64_t len = payload.size();
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  std::memcpy(p, &magic, 4);
  std::memcpy(p + 4, &version, 4);
  std::memcpy(p + 8, &round, 8);
  std::memcpy(p + 16, &len, 8);
  std::memcpy(p + 24, &crc, 4);
  if (!payload.empty())  // empty span's data() is null; memcpy forbids null
    std::memcpy(p + kSnapHeaderBytes, payload.data(), payload.size());
  return bytes;
}

// Validates a snapshot file's framing + CRC; nullopt on any mismatch
// (treated as a torn/corrupt snapshot, not an error).
std::optional<std::vector<std::uint8_t>> unframe_snapshot(
    const std::vector<std::uint8_t>& bytes, std::int64_t expect_round) {
  if (bytes.size() < kSnapHeaderBytes) return std::nullopt;
  std::uint32_t magic, version, crc;
  std::int64_t round;
  std::uint64_t len;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&round, bytes.data() + 8, 8);
  std::memcpy(&len, bytes.data() + 16, 8);
  std::memcpy(&crc, bytes.data() + 24, 4);
  if (magic != kSnapshotMagic || version != kSnapshotVersion) return std::nullopt;
  if (round != expect_round) return std::nullopt;
  if (len != bytes.size() - kSnapHeaderBytes) return std::nullopt;
  if (crc32(bytes.data() + kSnapHeaderBytes, len) != crc) return std::nullopt;
  return std::vector<std::uint8_t>(bytes.begin() + kSnapHeaderBytes, bytes.end());
}

}  // namespace

RoundStore::RoundStore(std::string dir)
    : dir_((ensure_dir(dir), dir)), wal_(dir + "/wal.log") {}

void RoundStore::append(std::span<const std::uint8_t> payload) {
  wal_.append(payload);
}

std::string RoundStore::snapshot_path(std::int64_t round) const {
  char name[48];
  std::snprintf(name, sizeof name, "snapshot-%012lld.snap",
                static_cast<long long>(round));
  return dir_ + "/" + name;
}

std::vector<std::int64_t> RoundStore::snapshot_rounds() const {
  std::vector<std::int64_t> rounds;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    long long round = -1;
    if (std::sscanf(name.c_str(), "snapshot-%lld.snap", &round) == 1 && round >= 0 &&
        name == std::string(snapshot_path(round), dir_.size() + 1))
      rounds.push_back(round);
  }
  std::sort(rounds.rbegin(), rounds.rend());
  return rounds;
}

void RoundStore::install_snapshot(std::int64_t round,
                                  std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> framed = frame_snapshot(round, payload);
  // 1. Durably install the new snapshot (crash-safe: old snapshot + WAL
  //    still recover until the rename lands).
  atomic_write_file(snapshot_path(round), framed, "snapshot");
  crashpoint("snapshot.post_rename");
  // 2. Compact the WAL. A crash between 1 and 2 leaves absorbed records in
  //    the log; recovery dedupes them by round.
  wal_.reset();
  // 3. Prune old generations, keeping a fallback in case the newest
  //    snapshot is later found torn.
  const std::vector<std::int64_t> rounds = snapshot_rounds();
  for (std::size_t i = kKeepSnapshots; i < rounds.size(); ++i)
    remove_file(snapshot_path(rounds[i]));
}

RoundStore::Recovered RoundStore::recover() const {
  Recovered out;
  for (const std::int64_t round : snapshot_rounds()) {
    const auto bytes = read_file(snapshot_path(round));
    if (!bytes.has_value()) continue;
    auto payload = unframe_snapshot(*bytes, round);
    if (!payload.has_value()) {
      ++out.snapshots_rejected;  // torn or bit-rotted: fall back to older
      continue;
    }
    out.snapshot = std::move(payload);
    out.snapshot_round = round;
    break;
  }
  Wal::ScanResult walscan = Wal::scan(wal_.path());
  out.wal_records = std::move(walscan.records);
  out.wal_tail_discarded = walscan.tail_discarded;
  return out;
}

bool RoundStore::empty() const {
  if (!snapshot_rounds().empty()) return false;
  return Wal::scan(wal_.path()).records.empty();
}

}  // namespace dinar::store
