// RoundStore: a crash-consistent directory of {snapshots + WAL}.
//
// The store is generic: payloads are opaque byte blobs supplied by the
// owner (the FL simulation serializes round deltas and full-state
// snapshots into them). The store's job is the durability protocol:
//
//   <dir>/wal.log                    append-only CRC-framed round records
//   <dir>/snapshot-<round>.snap      periodic compacted full snapshots
//
// Commit protocol (append): one fsynced WAL append per committed round —
// a round is durable iff its record's fsync returned.
//
// Compaction protocol (install_snapshot): write the snapshot via
// temp + fsync + atomic rename, *then* truncate the WAL, then delete older
// snapshots. Each step is individually crash-safe and the ordering makes
// every interleaving recoverable:
//   - crash before the rename: the old snapshot + full WAL still recover;
//   - crash after the rename, before the WAL reset: recovery sees the new
//     snapshot plus WAL records it has already absorbed — replay skips
//     records at or below the snapshot round (the owner dedupes by round);
//   - crash before old-snapshot deletion: recovery prefers the newest
//     *valid* snapshot and falls back to the older one if the newest is
//     torn or corrupt.
//
// Recovery (recover()): newest valid snapshot (CRC-checked, falling back
// to older generations, tolerating none at all) + the longest valid WAL
// prefix. Corruption never throws — it only shrinks what is recovered.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/wal.h"

namespace dinar::store {

inline constexpr std::uint32_t kSnapshotMagic = 0x504E5344;  // "DSNP"
inline constexpr std::uint32_t kSnapshotVersion = 1;

class RoundStore {
 public:
  // Opens (creating if needed) the store directory and its WAL, trimming
  // any torn WAL tail left by a crash.
  explicit RoundStore(std::string dir);

  const std::string& dir() const { return dir_; }

  // Durably appends one opaque round record to the WAL.
  void append(std::span<const std::uint8_t> payload);

  // Durably installs a compacted snapshot labeled with the round it
  // captures (state *after* that many committed rounds), truncates the
  // WAL, and prunes all but the latest kKeepSnapshots generations.
  void install_snapshot(std::int64_t round, std::span<const std::uint8_t> payload);

  struct Recovered {
    // Newest snapshot that passed validation, if any.
    std::optional<std::vector<std::uint8_t>> snapshot;
    std::int64_t snapshot_round = -1;
    // Longest valid WAL prefix, oldest first. May contain records already
    // absorbed by the snapshot or duplicated by a crash between append and
    // ack — the owner must dedupe by round.
    std::vector<std::vector<std::uint8_t>> wal_records;
    bool wal_tail_discarded = false;
    // Snapshot files that failed validation and were skipped.
    std::size_t snapshots_rejected = 0;
  };

  // Read-only recovery scan; never throws on corruption.
  Recovered recover() const;

  // True if the directory holds neither a snapshot nor any WAL record.
  bool empty() const;

  std::uint64_t wal_size_bytes() const { return wal_.size_bytes(); }
  std::string wal_path() const { return wal_.path(); }

  // Snapshot generations kept after compaction (newest + one fallback).
  static constexpr int kKeepSnapshots = 2;

 private:
  std::string snapshot_path(std::int64_t round) const;
  // Rounds of all snapshot files present, descending.
  std::vector<std::int64_t> snapshot_rounds() const;

  std::string dir_;
  Wal wal_;
};

}  // namespace dinar::store
