// Durable file I/O primitives for the state store.
//
// Every byte the store trusts after a crash went through one of these
// helpers. The contract is the classic one:
//   - atomic_write_file(): write to `<path>.tmp`, fsync the file, rename()
//     over the destination, fsync the containing directory. A reader can
//     observe either the complete old file or the complete new file, never
//     a prefix of either — rename() is atomic on POSIX filesystems.
//   - CRC-32 framing (crc32()) guards the *contents*: rename atomicity says
//     nothing about bit rot or a torn append inside a log file, so every
//     record and snapshot carries a checksum that recovery verifies before
//     believing a single byte.
//
// All functions throw dinar::Error on I/O failure; corruption is *not* an
// error here — detecting and tolerating it is the recovery layer's job.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dinar::store {

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the classic log-record
// checksum. `seed` chains multi-buffer checksums: pass a previous result.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

// Reads a whole file; std::nullopt if it does not exist. Throws on other
// I/O errors.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

// Durably replaces `path` with `bytes` via temp + fsync + rename + parent
// directory fsync. When `crash_site` is non-null, crashpoints
// "<crash_site>.pre_write", "<crash_site>.pre_fsync" and
// "<crash_site>.rename" fire at the matching steps (see util/crashpoint.h).
void atomic_write_file(const std::string& path, std::span<const std::uint8_t> bytes,
                       const char* crash_site = nullptr);

// fsyncs the directory containing `path` so a freshly created/renamed
// entry survives power loss. No-op on filesystems that refuse directory
// fds.
void fsync_parent_dir(const std::string& path);

// True if `path` exists (any file type).
bool path_exists(const std::string& path);

// Creates `dir` (and parents) if missing; throws if it cannot.
void ensure_dir(const std::string& dir);

// Removes a file if present; ignores a missing file, throws on other
// failures.
void remove_file(const std::string& path);

}  // namespace dinar::store
