#include "store/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/crashpoint.h"
#include "util/error.h"

namespace dinar::store {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

// RAII fd that never throws from its destructor.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    const int f = fd;
    fd = -1;
    return f;
  }
};

void write_all(int fd, const std::uint8_t* data, std::size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      DINAR_CHECK(false, "write to " << path << " failed: " << std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  Fd f{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (f.fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    DINAR_CHECK(false, "cannot open " << path << ": " << std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> buf;
  for (;;) {
    const ssize_t r = ::read(f.fd, buf.data(), buf.size());
    if (r < 0) {
      if (errno == EINTR) continue;
      DINAR_CHECK(false, "read from " << path << " failed: " << std::strerror(errno));
    }
    if (r == 0) break;
    bytes.insert(bytes.end(), buf.data(), buf.data() + r);
  }
  return bytes;
}

void fsync_parent_dir(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  Fd d{::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
  if (d.fd < 0) return;  // some filesystems refuse directory fds; best effort
  ::fsync(d.fd);         // ditto for the sync itself
}

void atomic_write_file(const std::string& path, std::span<const std::uint8_t> bytes,
                       const char* crash_site) {
  const std::string site = crash_site == nullptr ? std::string() : crash_site;
  const std::string tmp = path + ".tmp";
  if (!site.empty()) crashpoint((site + ".pre_write").c_str());
  {
    Fd f{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644)};
    DINAR_CHECK(f.fd >= 0, "cannot create " << tmp << ": " << std::strerror(errno));
    write_all(f.fd, bytes.data(), bytes.size(), tmp);
    if (!site.empty()) crashpoint((site + ".pre_fsync").c_str());
    DINAR_CHECK(::fsync(f.fd) == 0, "fsync of " << tmp << " failed: "
                                                << std::strerror(errno));
  }
  if (!site.empty()) crashpoint((site + ".rename").c_str());
  DINAR_CHECK(::rename(tmp.c_str(), path.c_str()) == 0,
              "rename " << tmp << " -> " << path << " failed: "
                        << std::strerror(errno));
  fsync_parent_dir(path);
}

bool path_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  DINAR_CHECK(!ec, "cannot create directory " << dir << ": " << ec.message());
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return;
  DINAR_CHECK(false, "cannot remove " << path << ": " << std::strerror(errno));
}

}  // namespace dinar::store
