#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "store/io.h"
#include "util/crashpoint.h"
#include "util/error.h"

namespace dinar::store {
namespace {

constexpr std::size_t kHeaderBytes = 8;        // magic + version
constexpr std::size_t kFrameHeaderBytes = 8;   // payload_len + crc
// A record longer than this is taken as frame corruption, not a real
// payload — it bounds the allocation a corrupted length prefix can cause.
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void write_all_fd(int fd, const std::uint8_t* data, std::size_t n,
                  const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      DINAR_CHECK(false, "WAL write to " << path << " failed: "
                                         << std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

Wal::ScanResult Wal::scan(const std::string& path) {
  ScanResult out;
  const auto bytes_opt = read_file(path);
  if (!bytes_opt.has_value()) {
    out.missing_or_empty = true;
    return out;
  }
  const std::vector<std::uint8_t>& bytes = *bytes_opt;
  if (bytes.size() < kHeaderBytes || get_u32(bytes.data()) != kWalMagic ||
      get_u32(bytes.data() + 4) != kWalVersion) {
    out.missing_or_empty = true;
    out.tail_discarded = !bytes.empty();
    return out;
  }
  std::size_t pos = kHeaderBytes;
  out.valid_bytes = pos;
  while (pos + kFrameHeaderBytes <= bytes.size()) {
    const std::uint32_t len = get_u32(bytes.data() + pos);
    const std::uint32_t crc = get_u32(bytes.data() + pos + 4);
    if (len > kMaxRecordBytes || pos + kFrameHeaderBytes + len > bytes.size())
      break;  // torn tail: header claims more bytes than the file holds
    const std::uint8_t* payload = bytes.data() + pos + kFrameHeaderBytes;
    if (crc32(payload, len) != crc) break;  // bit flip or partially written
    out.records.emplace_back(payload, payload + len);
    pos += kFrameHeaderBytes + len;
    out.valid_bytes = pos;
  }
  out.tail_discarded = out.valid_bytes < bytes.size();
  return out;
}

Wal::Wal(std::string path) : path_(std::move(path)) { open_and_position(); }

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

void Wal::open_and_position() {
  const ScanResult existing = scan(path_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  DINAR_CHECK(fd_ >= 0, "cannot open WAL " << path_ << ": " << std::strerror(errno));
  if (existing.missing_or_empty) {
    // Fresh (or unrecognizable) log: write a clean header. An
    // unrecognizable file has no salvageable records by definition.
    std::uint8_t header[kHeaderBytes];
    put_u32(header, kWalMagic);
    put_u32(header + 4, kWalVersion);
    DINAR_CHECK(::ftruncate(fd_, 0) == 0,
                "cannot truncate WAL " << path_ << ": " << std::strerror(errno));
    write_all_fd(fd_, header, kHeaderBytes, path_);
    DINAR_CHECK(::fsync(fd_) == 0,
                "fsync of WAL " << path_ << " failed: " << std::strerror(errno));
    fsync_parent_dir(path_);
    cursor_ = kHeaderBytes;
    return;
  }
  // Existing log: drop any torn tail so the next append starts on a clean
  // frame boundary.
  cursor_ = existing.valid_bytes;
  if (existing.tail_discarded) {
    DINAR_CHECK(::ftruncate(fd_, static_cast<off_t>(cursor_)) == 0,
                "cannot trim torn WAL tail of " << path_ << ": "
                                                << std::strerror(errno));
    DINAR_CHECK(::fsync(fd_) == 0,
                "fsync of WAL " << path_ << " failed: " << std::strerror(errno));
  }
  DINAR_CHECK(::lseek(fd_, static_cast<off_t>(cursor_), SEEK_SET) >= 0,
              "cannot seek WAL " << path_ << ": " << std::strerror(errno));
}

void Wal::append(std::span<const std::uint8_t> payload) {
  DINAR_CHECK(payload.size() <= kMaxRecordBytes,
              "WAL record of " << payload.size() << " bytes exceeds the "
                               << kMaxRecordBytes << "-byte frame limit");
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
  put_u32(frame.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32(frame.data() + 4, crc32(payload.data(), payload.size()));
  if (!payload.empty())  // empty span's data() is null; memcpy forbids null
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());

  crashpoint("wal.append.pre_write");
  if (crashpoint_armed()) {
    // Split the write so the mid_write crashpoint leaves a genuinely torn
    // frame (header + partial payload) on disk. Unarmed processes keep the
    // single-write fast path.
    const std::size_t half = frame.size() / 2;
    write_all_fd(fd_, frame.data(), half, path_);
    crashpoint("wal.append.mid_write");
    write_all_fd(fd_, frame.data() + half, frame.size() - half, path_);
  } else {
    write_all_fd(fd_, frame.data(), frame.size(), path_);
  }
  crashpoint("wal.append.pre_fsync");
  DINAR_CHECK(::fsync(fd_) == 0,
              "fsync of WAL " << path_ << " failed: " << std::strerror(errno));
  crashpoint("wal.append.post_fsync");
  cursor_ += frame.size();
}

void Wal::reset() {
  DINAR_CHECK(::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) == 0,
              "cannot reset WAL " << path_ << ": " << std::strerror(errno));
  DINAR_CHECK(::lseek(fd_, static_cast<off_t>(kHeaderBytes), SEEK_SET) >= 0,
              "cannot seek WAL " << path_ << ": " << std::strerror(errno));
  DINAR_CHECK(::fsync(fd_) == 0,
              "fsync of WAL " << path_ << " failed: " << std::strerror(errno));
  cursor_ = kHeaderBytes;
}

}  // namespace dinar::store
