#include "util/execution_context.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace dinar {

ExecutionContext::ExecutionContext(ExecConfig config) : config_(config) {
  threads_ = config_.threads == 0
                 ? std::max(1u, std::thread::hardware_concurrency())
                 : config_.threads;
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

void ExecutionContext::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::size_t grain) const {
  if (n <= 0) return;
  const std::int64_t min_chunk = static_cast<std::int64_t>(
      std::max<std::size_t>(1, grain == 0 ? config_.grain : grain));
  if (pool_ == nullptr || ThreadPool::on_worker_thread() || n <= min_chunk) {
    fn(0, n);
    return;
  }
  // Contiguous disjoint chunks; the chunk count only affects scheduling,
  // never results (see determinism contract in the header).
  const std::int64_t max_chunks = (n + min_chunk - 1) / min_chunk;
  const std::int64_t chunks =
      std::min<std::int64_t>(max_chunks, static_cast<std::int64_t>(threads_));
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  pool_->parallel_for(static_cast<std::size_t>(chunks), [&](std::size_t c) {
    const std::int64_t begin = static_cast<std::int64_t>(c) * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    if (begin < end) fn(begin, end);
  });
}

std::future<void> ExecutionContext::submit(std::function<void()> fn) const {
  if (pool_ == nullptr || ThreadPool::on_worker_thread()) {
    std::promise<void> done;
    try {
      fn();
      done.set_value();
    } catch (...) {
      done.set_exception(std::current_exception());
    }
    return done.get_future();
  }
  return pool_->submit(std::move(fn));
}

void ExecutionContext::for_each_task(std::size_t n,
                                     const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  if (pool_ == nullptr || ThreadPool::on_worker_thread() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->parallel_for(n, fn);
}

}  // namespace dinar
