#include "util/crashpoint.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>

#include "util/error.h"

namespace dinar {
namespace {

struct ArmedState {
  std::string name;
  int hit = 1;       // die on the hit-th execution of the site
  int seen = 0;      // executions observed so far
};

std::mutex g_mu;
ArmedState g_armed;
// Fast-path gate: crashpoint() is called inside WAL appends on every round,
// so the unarmed case must not take the mutex.
std::atomic<bool> g_any{false};
std::once_flag g_env_once;

void load_from_env() {
  const char* env = std::getenv("DINAR_CRASHPOINT");
  if (env == nullptr || *env == '\0') return;  // unset/empty = injection off
  const CrashpointSpec parsed = parse_crashpoint_spec(env);
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed = ArmedState{parsed.site, parsed.hit, 0};
  g_any.store(true, std::memory_order_release);
}

}  // namespace

CrashpointSpec parse_crashpoint_spec(const std::string& spec) {
  CrashpointSpec out{spec, 1};
  if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
    const std::string count = spec.substr(colon + 1);
    if (count.empty() || count.find_first_not_of("0123456789") != std::string::npos)
      throw Error("DINAR_CRASHPOINT: hit count after ':' must be a positive "
                  "integer in spec '" + spec + "'");
    errno = 0;
    const long long hit = std::strtoll(count.c_str(), nullptr, 10);
    if (errno == ERANGE || hit < 1 ||
        hit > std::numeric_limits<int>::max())
      throw Error("DINAR_CRASHPOINT: hit count out of range [1, 2^31) in spec '" +
                  spec + "'");
    out.site = spec.substr(0, colon);
    out.hit = static_cast<int>(hit);
  }
  if (out.site.empty())
    throw Error("DINAR_CRASHPOINT: empty crash site in spec '" + spec + "'");
  return out;
}

void crashpoint(const char* name) {
  std::call_once(g_env_once, load_from_env);
  if (!g_any.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_armed.name != name) return;
  if (++g_armed.seen < g_armed.hit) return;
  // Report to stderr without touching buffered streams, then die without
  // unwinding — the on-disk state must be whatever the kernel already has.
  std::string msg = "[crashpoint] dying at " + g_armed.name + "\n";
  [[maybe_unused]] const auto n = ::write(STDERR_FILENO, msg.data(), msg.size());
  ::_exit(kCrashpointExitCode);
}

void crashpoint_arm(const std::string& name, int hit) {
  std::call_once(g_env_once, load_from_env);  // keep env parse one-shot
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed = ArmedState{name, hit < 1 ? 1 : hit, 0};
  g_any.store(true, std::memory_order_release);
}

void crashpoint_disarm() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed = ArmedState{};
  g_any.store(false, std::memory_order_release);
}

bool crashpoint_armed() {
  std::call_once(g_env_once, load_from_env);
  return g_any.load(std::memory_order_acquire);
}

const std::vector<std::string>& crashpoint_registry() {
  // Ordered roughly by how often each site executes; the crash-matrix
  // driver iterates this list verbatim.
  static const std::vector<std::string> kSites = {
      "wal.append.pre_write",   // nothing of this record on disk yet
      "wal.append.mid_write",   // torn tail: header + partial payload
      "wal.append.pre_fsync",   // full record written, not yet durable
      "wal.append.post_fsync",  // record durable, append not yet acked
      "snapshot.pre_write",     // before the temp snapshot file exists
      "snapshot.pre_fsync",     // temp written, not yet durable
      "snapshot.rename",        // temp durable, not yet installed
      "snapshot.post_rename",   // installed, WAL not yet compacted
      "round.commit.mid",       // state mutated in memory, WAL not appended
      "round.commit.post_append",  // WAL appended, snapshot cadence pending
      "checkpoint.pre_fsync",   // legacy DCKP temp written, not durable
      "checkpoint.rename",      // legacy DCKP temp durable, not installed
  };
  return kSites;
}

}  // namespace dinar
