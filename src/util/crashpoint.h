// Crashpoint injection: deterministic kill -9 at named code sites.
//
// Crash-consistency can only be tested by actually dying at the worst
// moments — between a write and its fsync, between a temp file and its
// rename — and checking that recovery rebuilds the exact pre-crash state.
// A crashpoint is a named marker compiled into durability-critical code
// paths (the WAL appender, the snapshot installer, the round commit).
// When armed, the Nth execution of that marker terminates the process
// immediately via _exit(): no stack unwinding, no destructors, no stream
// flushes — the closest userspace approximation of `kill -9`, leaving on
// disk exactly the bytes the kernel had received so far.
//
// Arming:
//   - environment: DINAR_CRASHPOINT="wal.append.pre_fsync"     (1st hit)
//                  DINAR_CRASHPOINT="wal.append.pre_fsync:3"   (3rd hit)
//     parsed once at the first crashpoint() call in the process;
//   - programmatic: crashpoint_arm(name, hit) / crashpoint_disarm() —
//     used by in-process death tests (gtest EXPECT_EXIT forks a child,
//     so the arm call inside the tested statement only affects the child).
//
// An unarmed crashpoint is a relaxed atomic load and costs nothing on the
// hot path. The process exits with kCrashpointExitCode so drivers can
// distinguish an injected crash from a real failure.
#pragma once

#include <string>
#include <vector>

namespace dinar {

// Exit code used by an armed crashpoint (mirrors a SIGKILLed process).
inline constexpr int kCrashpointExitCode = 137;

// Marks a crash site. If `name` is armed and this is the armed hit count,
// the process dies via _exit(kCrashpointExitCode). Thread-safe.
void crashpoint(const char* name);

// A parsed "site[:N]" spec. Parsing is strict: a spec with a colon must
// carry a positive integer hit count after it (digits only — ":x", ":0"
// and ":-3" are all rejected), and the site name must be non-empty either
// way. Malformed specs throw dinar::Error rather than silently arming the
// wrong site (or nothing): a crash-matrix driver that misspells a spec
// must fail loudly, not report a bogus "recovered cleanly" pass because no
// crash was ever injected.
struct CrashpointSpec {
  std::string site;
  int hit = 1;
};
CrashpointSpec parse_crashpoint_spec(const std::string& spec);

// Programmatic arming (overrides any environment arming). `hit` counts
// executions of the named site: 1 = die on the first hit.
void crashpoint_arm(const std::string& name, int hit = 1);
void crashpoint_disarm();

// True if a crashpoint is currently armed (env or programmatic).
bool crashpoint_armed();

// Every crashpoint site compiled into the durability paths, for drivers
// that iterate the full kill matrix. Names are "<component>.<step>";
// keep this list in sync with the crashpoint() call sites.
const std::vector<std::string>& crashpoint_registry();

}  // namespace dinar
