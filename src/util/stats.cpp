#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace dinar {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  DINAR_CHECK(bins > 0, "histogram needs at least one bin");
  DINAR_CHECK(hi > lo, "histogram range must be non-empty");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  const int b = static_cast<int>((x - lo_) / (hi_ - lo_) * bins());
  const int clamped = std::clamp(b, 0, bins() - 1);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

void Histogram::add_all(const std::vector<float>& xs) {
  for (float x : xs) add(x);
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> p(counts_.size());
  if (total_ == 0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(counts_.size()));
    return p;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i)
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  return p;
}

double kl_divergence(const std::vector<double>& p, const std::vector<double>& q,
                     double eps) {
  DINAR_CHECK(p.size() == q.size(), "KL divergence: dimension mismatch");
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    kl += p[i] * std::log(p[i] / std::max(q[i], eps));
  }
  return kl;
}

double js_divergence(const std::vector<double>& p, const std::vector<double>& q) {
  DINAR_CHECK(p.size() == q.size(), "JS divergence: dimension mismatch");
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m);
}

double js_divergence_samples(const std::vector<float>& a, const std::vector<float>& b,
                             int bins) {
  if (a.empty() || b.empty()) return 0.0;
  auto [amin, amax] = std::minmax_element(a.begin(), a.end());
  auto [bmin, bmax] = std::minmax_element(b.begin(), b.end());
  double lo = std::min<double>(*amin, *bmin);
  double hi = std::max<double>(*amax, *bmax);
  if (hi <= lo) hi = lo + 1e-9;
  Histogram ha(lo, hi, bins), hb(lo, hi, bins);
  ha.add_all(a);
  hb.add_all(b);
  return js_divergence(ha.pmf(), hb.pmf());
}

double roc_auc(const std::vector<double>& scores, const std::vector<bool>& labels) {
  DINAR_CHECK(scores.size() == labels.size(), "roc_auc: size mismatch");
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return scores[i] < scores[j]; });

  // Mann-Whitney U with midranks for ties.
  std::vector<double> ranks(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }

  double rank_sum_pos = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels[k]) {
      rank_sum_pos += ranks[k];
      ++n_pos;
    }
  }
  const std::size_t n_neg = labels.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = rank_sum_pos - static_cast<double>(n_pos) *
                                      (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace dinar
