// Binary serialization primitives.
//
// FL messages (model updates, votes, aggregated models) are serialized to
// byte buffers before crossing the transport, so the runtime measures real
// payload sizes and defenses such as secure aggregation operate on the same
// bytes a networked deployment would ship. Format: little-endian, no
// padding, length-prefixed containers. A four-byte magic + version header
// guards model checkpoints.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.h"

namespace dinar {

class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { append(&v, sizeof v); }
  void write_u32(std::uint32_t v) { append(&v, sizeof v); }
  void write_u64(std::uint64_t v) { append(&v, sizeof v); }
  void write_i64(std::int64_t v) { append(&v, sizeof v); }
  void write_f32(float v) { append(&v, sizeof v); }
  void write_f64(double v) { append(&v, sizeof v); }

  void write_bytes(const void* data, std::size_t n) { append(data, n); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    append(s.data(), s.size());
  }

  void write_f32_span(const float* data, std::size_t n) {
    write_u64(n);
    append(data, n * sizeof(float));
  }

  void write_i64_vector(const std::vector<std::int64_t>& v) {
    write_u64(v.size());
    append(v.data(), v.size() * sizeof(std::int64_t));
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* data, std::size_t n) {
    if (n == 0) return;  // empty spans may come with a null pointer
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const std::uint64_t n = read_length(1);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  void read_f32_span(std::vector<float>& out) {
    const std::uint64_t n = read_length(sizeof(float));
    out.resize(n);
    if (n != 0) std::memcpy(out.data(), data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
  }

  std::vector<std::int64_t> read_i64_vector() {
    const std::uint64_t n = read_length(sizeof(std::int64_t));
    std::vector<std::int64_t> v(n);
    if (n != 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(std::int64_t));
    pos_ += n * sizeof(std::int64_t);
    return v;
  }

  // Bounds-checked raw read: returns a pointer to the next `n` bytes inside
  // the buffer and advances past them. The pointer aliases the input buffer
  // (valid for its lifetime) and has no alignment guarantee — memcpy out of
  // it for anything wider than a byte.
  const std::uint8_t* read_raw(std::uint64_t n) {
    require(n);
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  // Reads a u64 element count and checks it against the remaining buffer
  // *before* the caller allocates, so a corrupted length prefix throws
  // dinar::Error instead of attempting a multi-GB resize. The division
  // keeps `n * elem_size` from overflowing.
  std::uint64_t read_length(std::uint64_t elem_size) {
    const std::uint64_t n = read_u64();
    DINAR_CHECK(n <= (size_ - pos_) / elem_size,
                "serde length prefix " << n << " (" << elem_size
                                       << "-byte elements) exceeds the "
                                       << (size_ - pos_) << " remaining bytes");
    return n;
  }

 private:
  template <typename T>
  T read_pod() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  // Overflow-safe: `pos_ + n` is never formed, so an attacker-controlled n
  // near 2^64 cannot wrap past the bounds check.
  void require(std::uint64_t n) {
    DINAR_CHECK(n <= size_ - pos_,
                "serde underrun: need " << n << " bytes, have " << (size_ - pos_));
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace dinar
