// Wall-clock and CPU timers used by the cost experiments (paper Table 3).
//
// Client-side training duration and server-side aggregation duration are
// measured with WallTimer; CumulativeTimer aggregates many short intervals
// (e.g. per-round defense overhead) into a single figure.
#pragma once

#include <chrono>
#include <cstdint>

namespace dinar {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates disjoint timed sections; thread-compatible (one per thread).
class CumulativeTimer {
 public:
  void start() { timer_.reset(); }
  void stop() {
    total_seconds_ += timer_.elapsed_seconds();
    ++intervals_;
  }
  void reset() {
    total_seconds_ = 0.0;
    intervals_ = 0;
  }

  double total_seconds() const { return total_seconds_; }
  std::uint64_t intervals() const { return intervals_; }
  double mean_seconds() const {
    return intervals_ == 0 ? 0.0 : total_seconds_ / static_cast<double>(intervals_);
  }

 private:
  WallTimer timer_;
  double total_seconds_ = 0.0;
  std::uint64_t intervals_ = 0;
};

// RAII section timing: adds the scope's duration to a CumulativeTimer.
class ScopedTimer {
 public:
  explicit ScopedTimer(CumulativeTimer& target) : target_(target) { target_.start(); }
  ~ScopedTimer() { target_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  CumulativeTimer& target_;
};

}  // namespace dinar
