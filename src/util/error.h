// Error handling primitives for the DINAR library.
//
// All recoverable failures throw dinar::Error (derived from std::runtime_error)
// carrying a formatted message. Internal invariant violations use DINAR_CHECK,
// which throws in all build types: in a middleware that manipulates model
// parameters, silently corrupting a tensor is strictly worse than aborting a
// round.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dinar {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "DINAR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace dinar

// Checks `cond`; on failure throws dinar::Error with file/line context.
// Usage: DINAR_CHECK(a.size() == b.size(), "size mismatch " << a.size());
#define DINAR_CHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream dinar_check_os_;                                   \
      __VA_OPT__(dinar_check_os_ << __VA_ARGS__;)                           \
      ::dinar::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                           dinar_check_os_.str());          \
    }                                                                       \
  } while (false)
