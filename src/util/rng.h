// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (weight init, data synthesis,
// batching, obfuscation, DP noise, secure-aggregation masks) draws from an
// explicitly seeded Rng so that experiments are reproducible run-to-run and
// independent streams can be derived per client / per round.
//
// The generator is xoshiro256**, seeded through splitmix64 — fast, decent
// statistical quality, and trivially forkable, which std::mt19937 is not.
#pragma once

#include <cstdint>
#include <vector>

#include "util/serde.h"

namespace dinar {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derives an independent stream; fork(i) != fork(j) for i != j.
  Rng fork(std::uint64_t stream) const;

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (cached second value).
  double gaussian();
  double gaussian(double mean, double stddev);
  // Bernoulli with probability p of true.
  bool bernoulli(double p);

  // Samples from a Dirichlet(alpha * 1) distribution of dimension k using
  // the Gamma-ratio construction (Marsaglia-Tsang). Used by the non-IID
  // data partitioner (paper §5.8).
  std::vector<double> dirichlet(double alpha, int k);

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  // -- durable-state serde --------------------------------------------------
  // The four xoshiro words plus the Box-Muller cache are the generator's
  // entire state, so a restored stream continues bit-exactly where the
  // saved one stopped (the durable round store persists per-client
  // training streams this way).
  void save_state(BinaryWriter& w) const;
  void restore_state(BinaryReader& r);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
      std::swap(v[i], v[j]);
    }
  }

 private:
  double gamma_sample(double shape);

  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace dinar
