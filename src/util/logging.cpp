#include "util/logging.h"

namespace dinar {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << msg << '\n';
}

}  // namespace dinar
