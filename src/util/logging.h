// Minimal leveled logger.
//
// The FL runtime logs round progress, consensus decisions and defense
// activity at Info; per-batch detail goes to Debug. Benches lower the level
// to Warn so experiment tables stay clean.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace dinar {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  std::mutex mu_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) { os_ << tag; }
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

struct LogSink {
  // Swallows a disabled log line without evaluating nothing extra.
  template <typename T>
  LogSink& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(Logger::instance().level());
}

}  // namespace dinar

#define DINAR_LOG_AT(level, tag)                     \
  if (!::dinar::log_enabled(level)) {                \
  } else                                             \
    ::dinar::detail::LogLine(level, tag)

#define DINAR_DEBUG DINAR_LOG_AT(::dinar::LogLevel::kDebug, "[debug] ")
#define DINAR_INFO DINAR_LOG_AT(::dinar::LogLevel::kInfo, "[info] ")
#define DINAR_WARN DINAR_LOG_AT(::dinar::LogLevel::kWarn, "[warn] ")
#define DINAR_ERROR DINAR_LOG_AT(::dinar::LogLevel::kError, "[error] ")
