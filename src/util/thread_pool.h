// Fixed-size thread pool.
//
// The parallel execution engine (util/execution_context.h) wraps this pool;
// nothing else should reach it directly. Each FL client task carries its
// own Rng stream so results are identical regardless of scheduling. On a
// single-core host the pool degrades to sequential execution.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dinar {

class ThreadPool {
 public:
  // `threads` is clamped to at least one worker: the default argument
  // forwards std::thread::hardware_concurrency(), which is allowed to
  // return 0, and a zero-worker pool would deadlock every submit().
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // True when called from inside a pool worker thread (any pool). Used to
  // run nested parallel sections inline instead of deadlocking on a
  // saturated queue.
  static bool on_worker_thread();

  // Schedules `fn` and returns a future for its completion/exception.
  std::future<void> submit(std::function<void()> fn);

  // Runs fn(i) for i in [0, n) across the pool and waits. Worker exceptions
  // are captured per index and the lowest-index one is rethrown on the
  // caller's thread, so the error surfaced is deterministic — not whichever
  // task happened to fail first under this schedule.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void enqueue(std::function<void()> fn);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dinar
