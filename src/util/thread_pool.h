// Fixed-size thread pool.
//
// The FL orchestrator uses it to run client local-training in parallel
// (cross-silo clients are independent machines); each task carries its own
// Rng stream so results are identical regardless of scheduling. On a
// single-core host the pool degrades to sequential execution.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dinar {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Schedules `fn` and returns a future for its completion/exception.
  std::future<void> submit(std::function<void()> fn);

  // Runs fn(i) for i in [0, n) across the pool and waits; the first thrown
  // exception is rethrown on the caller's thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dinar
