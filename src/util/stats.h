// Statistical primitives shared by the sensitivity analyzer, the attack
// evaluator and the experiment harness: running moments, fixed-bin
// histograms, and the Jensen-Shannon divergence the paper uses as its
// per-layer generalization-gap measure (§3, Figure 1).
#pragma once

#include <cstdint>
#include <vector>

namespace dinar {

// Welford single-pass mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  // Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Equal-width histogram over [lo, hi]; out-of-range samples clamp into the
// edge bins so no probability mass is dropped when distributions have tails.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  void add_all(const std::vector<float>& xs);
  void add_all(const std::vector<double>& xs);

  std::uint64_t total() const { return total_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  // Normalized probability mass function; uniform if the histogram is empty.
  std::vector<double> pmf() const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Kullback-Leibler divergence KL(p || q), natural log; p and q must be
// same-length probability vectors. Terms with p[i] == 0 contribute zero;
// q is smoothed with `eps` to keep the divergence finite.
double kl_divergence(const std::vector<double>& p, const std::vector<double>& q,
                     double eps = 1e-12);

// Jensen-Shannon divergence: 0.5*KL(p||m) + 0.5*KL(q||m), m = (p+q)/2.
// Symmetric, bounded in [0, ln 2]. The paper computes this between the
// per-layer gradient distributions of member and non-member samples.
double js_divergence(const std::vector<double>& p, const std::vector<double>& q);

// Convenience: JS divergence between two samples, binned over their joint
// range with `bins` equal-width bins.
double js_divergence_samples(const std::vector<float>& a, const std::vector<float>& b,
                             int bins = 64);

// Area under the ROC curve for binary scores: P(score_pos > score_neg) with
// tie correction (Mann-Whitney U). `labels[i]` true means positive (member).
double roc_auc(const std::vector<double>& scores, const std::vector<bool>& labels);

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

}  // namespace dinar
