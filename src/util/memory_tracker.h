// Peak-memory accounting for the cost experiments (paper Table 3 reports
// peak GPU memory per defense; our substrate is CPU, so we track the peak
// of live tensor bytes instead — the analogous quantity, since the paper's
// overheads come from extra parameter-sized buffers held by each defense).
//
// Tensors and FlatParams arenas register their allocations here. Beyond
// the live/peak gauges, the tracker counts discrete allocation events and
// copied bytes so bench_copybw can report per-round heap-allocation and
// copy-bandwidth costs of the parameter exchange+aggregate path.
// Thread-safe via atomics; the peak is maintained with a CAS loop.
#pragma once

#include <atomic>
#include <cstdint>

namespace dinar {

class MemoryTracker {
 public:
  static MemoryTracker& instance();

  void allocate(std::size_t bytes);
  void release(std::size_t bytes);
  // Accounts a bulk parameter copy (snapshot, serde payload, arena clone).
  void record_copy(std::size_t bytes);

  std::uint64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  std::uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  // Number of allocate() calls since process start (monotonic).
  std::uint64_t alloc_events() const {
    return alloc_events_.load(std::memory_order_relaxed);
  }
  // Total bytes ever passed to allocate() (monotonic).
  std::uint64_t allocated_bytes_total() const {
    return allocated_total_.load(std::memory_order_relaxed);
  }
  // Total bytes ever passed to record_copy() (monotonic).
  std::uint64_t copied_bytes_total() const {
    return copied_total_.load(std::memory_order_relaxed);
  }

  // Restarts peak tracking from the current live size (used between
  // Table 3 scenarios so each defense reports its own peak).
  void reset_peak();

 private:
  MemoryTracker() = default;
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> alloc_events_{0};
  std::atomic<std::uint64_t> allocated_total_{0};
  std::atomic<std::uint64_t> copied_total_{0};
};

}  // namespace dinar
