#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace dinar {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream) const {
  // Hash the current state together with the stream id into a fresh seed.
  std::uint64_t h = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3];
  h ^= 0x2545f4914f6cdd1dULL * (stream + 1);
  return Rng(h);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  DINAR_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~0ULL) / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::gamma_sample(double shape) {
  DINAR_CHECK(shape > 0.0, "gamma shape must be positive");
  if (shape < 1.0) {
    // Boost to shape >= 1 (Johnk transform).
    const double u = uniform();
    return gamma_sample(shape + 1.0) * std::pow(u <= 1e-300 ? 1e-300 : u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u <= 1e-300) continue;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::dirichlet(double alpha, int k) {
  DINAR_CHECK(k > 0, "dirichlet dimension must be positive");
  DINAR_CHECK(alpha > 0.0, "dirichlet alpha must be positive");
  std::vector<double> out(static_cast<std::size_t>(k));
  double sum = 0.0;
  for (auto& v : out) {
    v = gamma_sample(alpha);
    sum += v;
  }
  if (sum <= 0.0) {
    // Degenerate draw (all zeros under extreme alpha); fall back to uniform.
    for (auto& v : out) v = 1.0 / k;
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

void Rng::save_state(BinaryWriter& w) const {
  for (const std::uint64_t s : s_) w.write_u64(s);
  w.write_f64(cached_gaussian_);
  w.write_u8(has_cached_gaussian_ ? 1 : 0);
}

void Rng::restore_state(BinaryReader& r) {
  for (std::uint64_t& s : s_) s = r.read_u64();
  cached_gaussian_ = r.read_f64();
  has_cached_gaussian_ = r.read_u8() != 0;
}

}  // namespace dinar
