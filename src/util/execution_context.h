// Parallel execution engine: the single seam between DINAR's compute and
// the thread pool.
//
// An ExecutionContext owns (at most) one ThreadPool and is passed
// explicitly — through SimulationConfig into the simulation, from there
// into clients, models and aggregators, and as an optional argument into
// tensor kernels. There are no global singletons: whoever constructs the
// context decides its size and lifetime, and everything downstream either
// received a pointer or runs sequentially.
//
// Determinism contract: parallel_for splits [0, n) into contiguous,
// disjoint chunks. A kernel whose writes are disjoint per index (every
// output element is produced entirely by one chunk, with a fixed internal
// reduction order) therefore produces bit-identical results for every
// thread count, including 1. All tensor kernels in this repo are written to
// that contract; reductions that are NOT order-free (double sums of
// per-client latencies, FedAvg accumulation) must instead be collected
// per task and merged sequentially in a fixed order — see
// fl/simulation.cpp's phased round protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>

#include "util/thread_pool.h"

namespace dinar {

struct ExecConfig {
  // Worker threads; 1 = sequential (no pool is created), 0 = one per
  // hardware thread.
  unsigned threads = 1;
  // Minimum indices per parallel_for chunk when the caller does not pass
  // its own grain; keeps tiny loops from paying scheduling overhead.
  std::size_t grain = 1024;
  // Reserved knob: every kernel is bit-identical across thread counts by
  // construction, so this currently only documents intent. A future
  // non-deterministic fast path (atomic reductions, work stealing) must
  // check it before reordering any floating-point reduction.
  bool deterministic = true;
};

class ExecutionContext {
 public:
  explicit ExecutionContext(ExecConfig config = {});

  const ExecConfig& config() const { return config_; }
  unsigned threads() const { return threads_; }
  bool parallel() const { return threads_ > 1; }

  // Splits [0, n) into contiguous chunks of at least max(grain,
  // config().grain) indices and runs fn(begin, end) across the pool,
  // waiting for completion. Runs inline when sequential, when the range is
  // a single chunk, or when called from a pool worker (nested parallelism
  // degrades to sequential instead of deadlocking). The lowest-index
  // chunk's exception is rethrown.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn,
                    std::size_t grain = 0) const;

  // Runs fn(i) for each i in [0, n), one pool task per index — the
  // round-level granularity where each task is one client's whole
  // exchange. Same inline/nesting rules as parallel_for; the lowest-index
  // exception is rethrown.
  void for_each_task(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  // Schedules one task on the pool and returns a future for its
  // completion/exception. Runs fn inline (returning an already-resolved
  // future) when sequential or when called from a pool worker — same
  // degradation rule as the fan-out primitives, so a submit can never
  // deadlock on a saturated queue. This is the seam the streaming round
  // pipeline uses to treat each client exchange as an independent event
  // and to overlap next-round downlink serialization with commit work.
  std::future<void> submit(std::function<void()> fn) const;

 private:
  ExecConfig config_;
  unsigned threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace dinar
