#include "util/memory_tracker.h"

namespace dinar {

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::allocate(std::size_t bytes) {
  alloc_events_.fetch_add(1, std::memory_order_relaxed);
  allocated_total_.fetch_add(bytes, std::memory_order_relaxed);
  const std::uint64_t now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::release(std::size_t bytes) {
  live_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::record_copy(std::size_t bytes) {
  copied_total_.fetch_add(bytes, std::memory_order_relaxed);
}

void MemoryTracker::reset_peak() {
  peak_.store(live_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

}  // namespace dinar
