#include "util/thread_pool.h"

#include <algorithm>

namespace dinar {
namespace {

thread_local bool t_on_worker_thread = false;

}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

ThreadPool::ThreadPool(unsigned threads) {
  // hardware_concurrency() may legally return 0 (the header's default
  // argument forwards it); a pool with zero workers would never drain its
  // queue, so submit()/parallel_for() would block forever.
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(fn));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> fut = promise->get_future();
  enqueue([promise, fn = std::move(fn)] {
    try {
      fn();
      promise->set_value();
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return fut;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Shared completion state: a counter the caller waits on, plus one
  // exception slot per index so errors survive the task's stack unwinding
  // and are rethrown deterministically (lowest index first).
  struct Sync {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = n;
  sync->errors.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    enqueue([sync, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        sync->errors[i] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(sync->mu);
      if (--sync->remaining == 0) sync->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(sync->mu);
  sync->done.wait(lock, [&] { return sync->remaining == 0; });
  for (const std::exception_ptr& e : sync->errors)
    if (e) std::rethrow_exception(e);
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace dinar
