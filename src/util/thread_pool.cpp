#include "util/thread_pool.h"

#include <algorithm>

namespace dinar {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) futures.push_back(submit([&fn, i] { fn(i); }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // Exceptions are captured in the packaged_task's future.
  }
}

}  // namespace dinar
