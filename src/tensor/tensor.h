// Dense row-major float32 tensor.
//
// This is the numeric substrate under dinar::nn. Design goals, in order:
// correctness, determinism, then speed — the gemm hot path runs a
// runtime-dispatched SIMD microkernel (tensor/cpu_features.h), but only
// under a numerics contract the scalar oracle can always re-check.
// Storage is a contiguous std::vector<float>; shapes are explicit
// and checked on every op. All allocations are reported to MemoryTracker
// so the cost experiments can observe per-defense memory footprints.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/cpu_features.h"
#include "util/rng.h"

namespace dinar {

class ExecutionContext;  // util/execution_context.h

using Shape = std::vector<std::int64_t>;

std::string shape_to_string(const Shape& shape);
std::int64_t shape_numel(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);  // zero-initialized
  Tensor(Shape shape, std::vector<float> values);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  // U(lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo = -1.0f, float hi = 1.0f);
  // N(0, stddev) entries.
  static Tensor gaussian(Shape shape, Rng& rng, float stddev = 1.0f);
  // Kaiming-uniform fan-in initialization (what our Dense/Conv layers use).
  static Tensor kaiming(Shape shape, std::int64_t fan_in, Rng& rng);

  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> values() { return {data_.data(), data_.size()}; }
  std::span<const float> values() const { return {data_.data(), data_.size()}; }

  float& at(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float at(std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }
  // 2-D accessor: row-major [rows, cols].
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;

  // Returns a tensor with the same data and a new shape (same numel).
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  // In-place arithmetic; shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);
  // Fused a*x + this (axpy); shape-checked.
  void add_scaled(const Tensor& x, float a);
  // Elementwise product accumulate: this += x ⊙ y.
  void add_product(const Tensor& x, const Tensor& y);

  double sum() const;
  double squared_l2_norm() const;
  double l2_norm() const;
  float max_abs() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  void track_alloc();
  void track_release();

  Shape shape_;
  std::int64_t numel_ = 0;
  std::vector<float> data_;
};

// out = a + b (shape-checked).
Tensor add(const Tensor& a, const Tensor& b);
// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
// out = a * s.
Tensor scale(const Tensor& a, float s);

// Operand orientation for gemm: kN uses the tensor as stored, kT uses its
// transpose (without materializing it).
enum class Trans : std::uint8_t { kN, kT };

// General matrix multiply: op(a) op(b) -> [m, n], where op is identity
// (kN) or transpose (kT). This is the single compute entry point that
// replaced the matmul / matmul_tn / matmul_nt trio. Both operands are
// packed into register-block panels and multiplied by an 8x8 microkernel
// selected at runtime (tensor/cpu_features.h): AVX2+FMA where the build
// and host allow it, a structurally identical scalar oracle everywhere
// else; `DINAR_GEMM_KERNEL=scalar|avx2` pins the choice process-wide.
// When `exec` is non-null the output is parallelized over whole 8-row
// blocks via ExecutionContext::parallel_for. Every output element is
// accumulated by exactly one block in ascending k-order, so for a given
// kernel results are bit-identical for every thread count (and to
// `exec == nullptr`); scalar and SIMD kernels agree within a small
// relative tolerance (FMA rounding only — see DESIGN.md §9).
Tensor gemm(Trans trans_a, Trans trans_b, const Tensor& a, const Tensor& b,
            const ExecutionContext* exec = nullptr);

// Same, with an explicit kernel tier (tests and benches A/B the tiers
// in-process; gemm_kernel_available(kernel) must hold).
Tensor gemm(Trans trans_a, Trans trans_b, const Tensor& a, const Tensor& b,
            const ExecutionContext* exec, GemmKernel kernel);

// -- span kernels ------------------------------------------------------------
// Elementwise math over raw float ranges. These are the inner loops of the
// FlatParams parameter space (nn/flat_params.h): whole-model snapshots live
// in one contiguous arena and every consumer — FedAvg, robust aggregation,
// DP noise, SA masks — streams these spans instead of walking tensor lists.
// All of them are length-checked and accumulate in ascending index order,
// so chunked parallel callers that partition the range get bit-identical
// results to a single sequential pass.

// a += b.
void span_add(std::span<float> a, std::span<const float> b);
// a *= s.
void span_scale(std::span<float> a, float s);
// a += s * x (float axpy, the FedAvg accumulation primitive).
void span_axpy(std::span<float> a, std::span<const float> x, float s);
// sum of squared entries, double-accumulated in ascending order.
double span_squared_l2(std::span<const float> a);

}  // namespace dinar
