// Runtime CPU feature detection and gemm kernel dispatch.
//
// The gemm hot path ships several register-blocked microkernels (see
// tensor/gemm_kernels.h); which one runs is decided once per process, the
// first time a kernel is needed:
//
//   1. `DINAR_GEMM_KERNEL=scalar|avx2` forces a kernel (A/B testing, CI
//      scalar-oracle legs). Requesting a kernel the build or host cannot
//      run is an error, not a silent fallback — a CI leg that thinks it
//      pinned the kernel must never quietly measure a different one.
//   2. Otherwise the widest kernel that is both compiled in
//      (DINAR_SIMD=ON and an x86-64 toolchain) and supported by the host
//      (AVX2 + FMA per cpuid) is selected.
//
// Tests and benches can bypass the process-wide choice by passing an
// explicit kernel to the gemm overload in tensor/tensor.h; availability is
// still enforced.
#pragma once

#include <cstdint>

namespace dinar {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

// Host capabilities, detected once and cached.
const CpuFeatures& cpu_features();

// Kernel tiers, narrowest first. A NEON tier slots in here as another
// enumerator plus one gemm_kernels_neon.cpp TU; the dispatch and packing
// layers are already width-agnostic (see DESIGN.md §9).
enum class GemmKernel : std::uint8_t { kScalar, kAvx2 };

// True when `kernel` is compiled into this binary and the host can run it.
// kScalar is always available.
bool gemm_kernel_available(GemmKernel kernel);

// The kernel gemm() uses when the caller does not pass one: the
// DINAR_GEMM_KERNEL override or the widest available tier. Resolved once;
// throws dinar::Error on an unknown or unavailable override value.
GemmKernel active_gemm_kernel();

const char* gemm_kernel_name(GemmKernel kernel);

// Wire-codec pack/unpack kernel tiers (tensor/codec_kernels.h) — the same
// seam as gemm, resolved independently: `DINAR_CODEC_KERNEL=scalar|avx2`
// pins a tier (erroring when it is unavailable), otherwise the widest
// compiled-and-supported tier runs. The codec AVX2 TU needs only the AVX2
// bit (no FMA), so availability is checked separately from gemm.
enum class CodecKernel : std::uint8_t { kScalar, kAvx2 };

bool codec_kernel_available(CodecKernel kernel);

// Resolved once per process; throws dinar::Error on an unknown or
// unavailable DINAR_CODEC_KERNEL value.
CodecKernel active_codec_kernel();

const char* codec_kernel_name(CodecKernel kernel);

}  // namespace dinar
