#include "tensor/tensor_serde.h"

namespace dinar {

void write_tensor(BinaryWriter& w, const Tensor& t) {
  w.write_i64_vector(t.shape());
  w.write_f32_span(t.data(), static_cast<std::size_t>(t.numel()));
}

Tensor read_tensor(BinaryReader& r) {
  Shape shape = r.read_i64_vector();
  std::vector<float> values;
  r.read_f32_span(values);
  return Tensor(std::move(shape), std::move(values));
}

}  // namespace dinar
