// Wire-codec pack/unpack kernels (DFRM v3 compressed payloads).
//
// The v3 update format (fl/wire_codec.h) stores each layer entry's floats
// in one of four element encodings — f32 (raw), f16, bf16, or int8 with a
// per-entry scale — optionally restricted to a top-k subset. These kernels
// are the bulk converters: contiguous span in, contiguous span out, no
// allocation, no index logic. Sparsity selection and framing live in the
// fl layer; only the per-element conversions are hot enough to vectorize.
//
// Numerics contract shared by every tier:
//
//   - conversions are ROUND-TO-NEAREST-EVEN, implemented with the same
//     integer bit algorithms in every tier (the AVX2 tier vectorizes the
//     scalar algorithm rather than using F16C), so all tiers produce
//     BYTE-IDENTICAL encoded output for the same input — enforced by
//     codec_kernel_test and required for cross-tier wire compatibility of
//     deterministic runs;
//   - NaN stays NaN (quieted, payload truncated by the narrower format)
//     and +-Inf stays +-Inf through f16/bf16, so a poisoned update decodes
//     to a poisoned arena and the server's non-finite scan still rejects
//     it (the PR 5 numerics policy: propagate per IEEE-754, never launder
//     a NaN into a number);
//   - int8 quantization assumes an all-finite span and a positive finite
//     scale; codec_span_absmax reports non-finite spans so the encoder
//     can fall back to lossless f32 for them (see fl/wire_codec.cpp).
//
// Dispatch follows the gemm seam: tensor/cpu_features.h picks the tier
// once per process (DINAR_CODEC_KERNEL pin or widest available), and the
// AVX2 TU is compiled with its ISA flags per-file (DINAR_CODEC_HAVE_AVX2).
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/cpu_features.h"

namespace dinar::detail {

// max |v| over the finite elements of the span (0 when none are finite or
// n == 0), plus whether every element was finite. One pass; the encoder
// uses it both for the int8 scale and for the lossless-fallback decision.
struct SpanAbsMax {
  float max_abs = 0.0f;
  bool all_finite = true;
};

// f32 -> IEEE 754 binary16 (RNE, subnormals handled, overflow to Inf).
// f32 -> bfloat16 (RNE on the dropped 16 bits, NaN quieted).
// int8: q = clamp(rne(v * inv_scale), -127, 127); decode v = q * scale.
// Encoders and decoders may not alias their input and output.
using SpanAbsMaxFn = SpanAbsMax (*)(const float* in, std::size_t n);
using PackF16Fn = void (*)(const float* in, std::size_t n, std::uint16_t* out);
using UnpackF16Fn = void (*)(const std::uint16_t* in, std::size_t n, float* out);
using PackI8Fn = void (*)(const float* in, std::size_t n, float inv_scale,
                          std::int8_t* out);
using UnpackI8Fn = void (*)(const std::int8_t* in, std::size_t n, float scale,
                            float* out);

// One tier's full conversion set (f16 and bf16 share the 16-bit signatures).
struct CodecKernelFns {
  SpanAbsMaxFn absmax;
  PackF16Fn pack_f16;
  UnpackF16Fn unpack_f16;
  PackF16Fn pack_bf16;
  UnpackF16Fn unpack_bf16;
  PackI8Fn pack_i8;
  UnpackI8Fn unpack_i8;
};

// Scalar tier (always compiled; the oracle every other tier must match
// byte for byte).
SpanAbsMax codec_absmax_scalar(const float* in, std::size_t n);
void codec_pack_f16_scalar(const float* in, std::size_t n, std::uint16_t* out);
void codec_unpack_f16_scalar(const std::uint16_t* in, std::size_t n, float* out);
void codec_pack_bf16_scalar(const float* in, std::size_t n, std::uint16_t* out);
void codec_unpack_bf16_scalar(const std::uint16_t* in, std::size_t n, float* out);
void codec_pack_i8_scalar(const float* in, std::size_t n, float inv_scale,
                          std::int8_t* out);
void codec_unpack_i8_scalar(const std::int8_t* in, std::size_t n, float scale,
                            float* out);

// Single-element converters shared by both tiers (the scalar kernels are
// loops over these; the AVX2 tier uses them for its tail elements). Kept
// in the header so tests can probe exact bit patterns directly.
std::uint16_t f32_bits_to_f16_bits(std::uint32_t x);
std::uint32_t f16_bits_to_f32_bits(std::uint16_t h);
std::uint16_t f32_bits_to_bf16_bits(std::uint32_t x);

#if DINAR_CODEC_HAVE_AVX2
// Compiled with -mavx2 in its own TU; call only when
// codec_kernel_available(CodecKernel::kAvx2) is true.
SpanAbsMax codec_absmax_avx2(const float* in, std::size_t n);
void codec_pack_f16_avx2(const float* in, std::size_t n, std::uint16_t* out);
void codec_unpack_f16_avx2(const std::uint16_t* in, std::size_t n, float* out);
void codec_pack_bf16_avx2(const float* in, std::size_t n, std::uint16_t* out);
void codec_unpack_bf16_avx2(const std::uint16_t* in, std::size_t n, float* out);
void codec_pack_i8_avx2(const float* in, std::size_t n, float inv_scale,
                        std::int8_t* out);
void codec_unpack_i8_avx2(const std::int8_t* in, std::size_t n, float scale,
                          float* out);
#endif

// The active tier's function table (tensor/cpu_features.h resolves which).
const CodecKernelFns& codec_kernel_fns();

// A specific tier's table; throws dinar::Error when that tier is not
// compiled in or not runnable on this host. Tests use this to compare
// tiers byte-for-byte without touching DINAR_CODEC_HAVE_AVX2 themselves.
const CodecKernelFns& codec_kernel_fns(CodecKernel kernel);

}  // namespace dinar::detail
