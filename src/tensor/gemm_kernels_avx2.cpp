// AVX2 + FMA tier of the packed-panel gemm microkernel.
//
// This TU is compiled with -mavx2 -mfma (see src/tensor/CMakeLists.txt);
// nothing outside it may be inlined into AVX2 code paths, and callers must
// consult gemm_kernel_available(GemmKernel::kAvx2) first so the binary
// still runs on pre-AVX2 hosts.
//
// Layout per B panel: 8 ymm accumulators, one per A row; each kk step
// loads one 8-wide B group and issues 8 broadcast-FMA updates. Accumulation
// is ascending-kk with a single accumulator per element — the same order as
// the scalar oracle, differing only by FMA rounding.
#include "tensor/gemm_kernels.h"

#if DINAR_GEMM_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>

namespace dinar::detail {

void gemm_block_avx2(std::int64_t rows, std::int64_t n, std::int64_t k,
                     const float* apack, const float* bpack, float* c) {
  static_assert(kGemmMR == 8 && kGemmNR == 8,
                "AVX2 microkernel is written for an 8x8 register block");
  for (std::int64_t j0 = 0, bj = 0; j0 < n; j0 += kGemmNR, ++bj) {
    const float* panel = bpack + bj * k * kGemmNR;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    __m256 acc4 = _mm256_setzero_ps();
    __m256 acc5 = _mm256_setzero_ps();
    __m256 acc6 = _mm256_setzero_ps();
    __m256 acc7 = _mm256_setzero_ps();
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const __m256 bv = _mm256_loadu_ps(panel + kk * kGemmNR);
      const float* av = apack + kk * kGemmMR;
      acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 0), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 1), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 2), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 3), bv, acc3);
      acc4 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 4), bv, acc4);
      acc5 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 5), bv, acc5);
      acc6 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 6), bv, acc6);
      acc7 = _mm256_fmadd_ps(_mm256_broadcast_ss(av + 7), bv, acc7);
    }
    const std::int64_t cols = std::min<std::int64_t>(kGemmNR, n - j0);
    if (cols == kGemmNR) {
      float* crow = c + j0;
      if (rows > 0) _mm256_storeu_ps(crow + 0 * n, acc0);
      if (rows > 1) _mm256_storeu_ps(crow + 1 * n, acc1);
      if (rows > 2) _mm256_storeu_ps(crow + 2 * n, acc2);
      if (rows > 3) _mm256_storeu_ps(crow + 3 * n, acc3);
      if (rows > 4) _mm256_storeu_ps(crow + 4 * n, acc4);
      if (rows > 5) _mm256_storeu_ps(crow + 5 * n, acc5);
      if (rows > 6) _mm256_storeu_ps(crow + 6 * n, acc6);
      if (rows > 7) _mm256_storeu_ps(crow + 7 * n, acc7);
    } else {
      // Edge panel: spill the tile and copy only the real columns. The
      // store path never changes values, so edge elements match full-panel
      // arithmetic exactly.
      alignas(32) float tile[kGemmMR][kGemmNR];
      _mm256_store_ps(tile[0], acc0);
      _mm256_store_ps(tile[1], acc1);
      _mm256_store_ps(tile[2], acc2);
      _mm256_store_ps(tile[3], acc3);
      _mm256_store_ps(tile[4], acc4);
      _mm256_store_ps(tile[5], acc5);
      _mm256_store_ps(tile[6], acc6);
      _mm256_store_ps(tile[7], acc7);
      for (std::int64_t r = 0; r < rows; ++r) {
        float* crow = c + r * n + j0;
        for (std::int64_t j = 0; j < cols; ++j) crow[j] = tile[r][j];
      }
    }
  }
}

}  // namespace dinar::detail

#endif  // DINAR_GEMM_HAVE_AVX2
