// Tensor (de)serialization over the util binary codec.
//
// Wire layout: rank-prefixed i64 shape vector followed by the raw f32
// payload. Model updates shipped over the FL transport are sequences of
// these records; the byte counts the transport reports therefore reflect
// exactly what a networked deployment would transfer.
#pragma once

#include "tensor/tensor.h"
#include "util/serde.h"

namespace dinar {

void write_tensor(BinaryWriter& w, const Tensor& t);
Tensor read_tensor(BinaryReader& r);

}  // namespace dinar
