// Internal packed-panel gemm microkernels (included by tensor.cpp and the
// per-ISA kernel TUs only — not part of the public tensor API).
//
// gemm() packs both operands before any arithmetic:
//
//   packed A row-block:  k contiguous groups of kGemmMR floats; group kk
//                        holds op(a)[i0+0 .. i0+MR-1][kk], rows past m
//                        zero-padded.
//   packed B col-panel:  per panel bj, k contiguous groups of kGemmNR
//                        floats; group kk holds op(b)[kk][bj*NR .. +NR-1],
//                        columns past n zero-padded.
//
// A microkernel invocation multiplies one packed A row-block against every
// packed B panel and writes up to kGemmMR finished rows of C. Numerics
// contract shared by every kernel tier:
//
//   - each output element has exactly one accumulator, updated in
//     ascending-kk order, so results are bit-identical for any chunking of
//     the row-block dimension (the only axis gemm parallelizes);
//   - zero-padding never leaks: padded lanes are computed and discarded at
//     the store, real lanes see only real operands;
//   - tiers differ from each other only in rounding (FMA contraction,
//     vector lane evaluation), never in accumulation order — scalar is the
//     testing oracle, SIMD agrees within a small relative tolerance.
//
// A NEON tier is one more TU implementing GemmBlockFn with 4-lane float32x4
// accumulators; packing, dispatch (tensor/cpu_features.h) and the blocking
// logic in tensor.cpp need no changes.
#pragma once

#include <cstdint>

namespace dinar::detail {

// Register block: one microkernel call produces a kGemmMR x kGemmNR output
// tile per B panel (8x8 = 8 ymm accumulators in the AVX2 tier).
inline constexpr std::int64_t kGemmMR = 8;
inline constexpr std::int64_t kGemmNR = 8;

// Multiplies one packed A row-block (`rows` <= kGemmMR real rows) against
// the whole packed B (ceil(n / kGemmNR) panels) and stores rows x n
// finished elements at `c` (row stride n).
using GemmBlockFn = void (*)(std::int64_t rows, std::int64_t n, std::int64_t k,
                             const float* apack, const float* bpack, float* c);

void gemm_block_scalar(std::int64_t rows, std::int64_t n, std::int64_t k,
                       const float* apack, const float* bpack, float* c);

#if DINAR_GEMM_HAVE_AVX2
// Compiled with -mavx2 -mfma in its own TU; only call when
// gemm_kernel_available(GemmKernel::kAvx2) is true.
void gemm_block_avx2(std::int64_t rows, std::int64_t n, std::int64_t k,
                     const float* apack, const float* bpack, float* c);
#endif

}  // namespace dinar::detail
