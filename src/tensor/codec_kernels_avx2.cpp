// AVX2 tier of the wire-codec pack/unpack kernels.
//
// This TU is compiled with -mavx2 (see src/tensor/CMakeLists.txt); callers
// must consult codec_kernel_available(CodecKernel::kAvx2) first so the
// binary still runs on pre-AVX2 hosts.
//
// Deliberately NOT F16C: the float<->half conversions vectorize the exact
// integer RNE algorithms of the scalar tier (codec_kernels_scalar.cpp)
// with per-lane masks instead of branches, so every tier emits
// byte-identical payloads — hardware vcvtps2ph differs from a portable
// scalar oracle in NaN payload handling, and cross-tier byte identity is
// an acceptance gate, not a nice-to-have. Bodies of 8 elements run
// vectorized; tails fall back to the shared single-element converters,
// which compute the identical bits.
#include "tensor/codec_kernels.h"

#if DINAR_CODEC_HAVE_AVX2

#include <immintrin.h>

#include <bit>
#include <cmath>

namespace dinar::detail {
namespace {

// Packs the low u16 of each epi32 lane into 8 contiguous u16 (values must
// already fit in 16 bits).
inline void store_epi32_as_u16(__m256i v, std::uint16_t* out) {
  __m256i p = _mm256_packus_epi32(v, _mm256_setzero_si256());
  p = _mm256_permute4x64_epi64(p, 0x08);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm256_castsi256_si128(p));
}

inline __m256i blend32(__m256i a, __m256i b, __m256i mask) {
  return _mm256_blendv_epi8(a, b, mask);
}

}  // namespace

SpanAbsMax codec_absmax_avx2(const float* in, std::size_t n) {
  SpanAbsMax r;
  const std::size_t body = n & ~std::size_t{7};
  const __m256i abs_mask = _mm256_set1_epi32(0x7FFFFFFF);
  const __m256i max_finite = _mm256_set1_epi32(0x7F7FFFFF);
  __m256 maxv = _mm256_setzero_ps();
  __m256i nonfinite = _mm256_setzero_si256();
  for (std::size_t i = 0; i < body; i += 8) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i abs_bits = _mm256_and_si256(bits, abs_mask);
    // |v| bits > 0x7F7FFFFF <=> Inf or NaN (both operands non-negative, so
    // the signed compare is exact).
    const __m256i nf = _mm256_cmpgt_epi32(abs_bits, max_finite);
    nonfinite = _mm256_or_si256(nonfinite, nf);
    // Zero non-finite lanes so the max never sees a NaN.
    const __m256 a = _mm256_andnot_ps(_mm256_castsi256_ps(nf),
                                      _mm256_castsi256_ps(abs_bits));
    maxv = _mm256_max_ps(maxv, a);
  }
  if (body != 0) {
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, maxv);
    for (float a : lanes)
      if (a > r.max_abs) r.max_abs = a;
    if (_mm256_movemask_epi8(nonfinite) != 0) r.all_finite = false;
  }
  for (std::size_t i = body; i < n; ++i) {
    const float v = in[i];
    if (!std::isfinite(v)) {
      r.all_finite = false;
      continue;
    }
    const float a = std::fabs(v);
    if (a > r.max_abs) r.max_abs = a;
  }
  return r;
}

void codec_pack_f16_avx2(const float* in, std::size_t n, std::uint16_t* out) {
  const std::size_t body = n & ~std::size_t{7};
  const __m256i c_one = _mm256_set1_epi32(1);
  for (std::size_t i = 0; i < body; i += 8) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i sign =
        _mm256_and_si256(_mm256_srli_epi32(x, 16), _mm256_set1_epi32(0x8000));
    const __m256i absx = _mm256_and_si256(x, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i exp = _mm256_sub_epi32(
        _mm256_and_si256(_mm256_srli_epi32(x, 23), _mm256_set1_epi32(0xFF)),
        _mm256_set1_epi32(112));
    const __m256i mant = _mm256_and_si256(x, _mm256_set1_epi32(0x7FFFFF));

    // Normal halves (1 <= exp <= 30) with RNE on the 13 dropped bits; the
    // rounding carry may roll into the Inf pattern, which is correct.
    __m256i half_n = _mm256_or_si256(
        _mm256_or_si256(sign, _mm256_slli_epi32(exp, 10)),
        _mm256_srli_epi32(mant, 13));
    {
      const __m256i rem = _mm256_and_si256(mant, _mm256_set1_epi32(0x1FFF));
      const __m256i gt = _mm256_cmpgt_epi32(rem, _mm256_set1_epi32(0x1000));
      const __m256i eq = _mm256_cmpeq_epi32(rem, _mm256_set1_epi32(0x1000));
      const __m256i odd =
          _mm256_cmpeq_epi32(_mm256_and_si256(half_n, c_one), c_one);
      half_n = _mm256_sub_epi32(half_n,
                                _mm256_or_si256(gt, _mm256_and_si256(eq, odd)));
    }

    // Subnormal halves (-10 <= exp <= 0): variable-shift the implicit-bit
    // mantissa with RNE; out-of-range shifts produce garbage that the
    // underflow blend below discards (srlv/sllv are defined for any count).
    __m256i half_s;
    {
      const __m256i m = _mm256_or_si256(mant, _mm256_set1_epi32(0x800000));
      const __m256i shift = _mm256_sub_epi32(_mm256_set1_epi32(14), exp);
      __m256i base = _mm256_srlv_epi32(m, shift);
      const __m256i low_mask =
          _mm256_sub_epi32(_mm256_sllv_epi32(c_one, shift), c_one);
      const __m256i rem = _mm256_and_si256(m, low_mask);
      const __m256i halfway =
          _mm256_sllv_epi32(c_one, _mm256_sub_epi32(shift, c_one));
      const __m256i gt = _mm256_cmpgt_epi32(rem, halfway);
      const __m256i eq = _mm256_cmpeq_epi32(rem, halfway);
      const __m256i odd =
          _mm256_cmpeq_epi32(_mm256_and_si256(base, c_one), c_one);
      base = _mm256_sub_epi32(base,
                              _mm256_or_si256(gt, _mm256_and_si256(eq, odd)));
      half_s = _mm256_or_si256(sign, base);
    }

    const __m256i nan_v = _mm256_or_si256(
        _mm256_or_si256(sign, _mm256_set1_epi32(0x7E00)),
        _mm256_and_si256(_mm256_srli_epi32(absx, 13), _mm256_set1_epi32(0x1FF)));

    __m256i r = half_n;
    r = blend32(r, half_s, _mm256_cmpgt_epi32(c_one, exp));            // exp <= 0
    r = blend32(r, sign, _mm256_cmpgt_epi32(_mm256_set1_epi32(-10), exp));  // < -10
    r = blend32(r, _mm256_or_si256(sign, _mm256_set1_epi32(0x7C00)),
                _mm256_cmpgt_epi32(exp, _mm256_set1_epi32(30)));  // Inf / overflow
    r = blend32(r, nan_v,
                _mm256_cmpgt_epi32(absx, _mm256_set1_epi32(0x7F800000)));  // NaN
    store_epi32_as_u16(r, out + i);
  }
  for (std::size_t i = body; i < n; ++i)
    out[i] = f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(in[i]));
}

void codec_unpack_f16_avx2(const std::uint16_t* in, std::size_t n, float* out) {
  const std::size_t body = n & ~std::size_t{7};
  for (std::size_t i = 0; i < body; i += 8) {
    const __m256i h = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)));
    const __m256i sign =
        _mm256_slli_epi32(_mm256_and_si256(h, _mm256_set1_epi32(0x8000)), 16);
    const __m256i exp =
        _mm256_and_si256(_mm256_srli_epi32(h, 10), _mm256_set1_epi32(0x1F));
    const __m256i mant = _mm256_and_si256(h, _mm256_set1_epi32(0x3FF));

    const __m256i normal = _mm256_or_si256(
        _mm256_or_si256(
            sign,
            _mm256_slli_epi32(_mm256_add_epi32(exp, _mm256_set1_epi32(112)), 23)),
        _mm256_slli_epi32(mant, 13));
    const __m256i inf_nan = _mm256_or_si256(
        _mm256_or_si256(sign, _mm256_set1_epi32(0x7F800000)),
        _mm256_slli_epi32(mant, 13));
    // Subnormal half = mant * 2^-24: exact in float arithmetic (mant has at
    // most 10 significant bits), so the bits match the scalar renormalizer.
    const __m256i subnormal = _mm256_or_si256(
        _mm256_castps_si256(_mm256_mul_ps(_mm256_cvtepi32_ps(mant),
                                          _mm256_set1_ps(0x1p-24f))),
        sign);

    const __m256i exp_zero = _mm256_cmpeq_epi32(exp, _mm256_setzero_si256());
    const __m256i mant_zero = _mm256_cmpeq_epi32(mant, _mm256_setzero_si256());
    __m256i r = normal;
    r = blend32(r, subnormal, exp_zero);
    r = blend32(r, sign, _mm256_and_si256(exp_zero, mant_zero));
    r = blend32(r, inf_nan, _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(0x1F)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  for (std::size_t i = body; i < n; ++i)
    out[i] = std::bit_cast<float>(f16_bits_to_f32_bits(in[i]));
}

void codec_pack_bf16_avx2(const float* in, std::size_t n, std::uint16_t* out) {
  const std::size_t body = n & ~std::size_t{7};
  for (std::size_t i = 0; i < body; i += 8) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i rne = _mm256_srli_epi32(
        _mm256_add_epi32(
            x, _mm256_add_epi32(
                   _mm256_set1_epi32(0x7FFF),
                   _mm256_and_si256(_mm256_srli_epi32(x, 16),
                                    _mm256_set1_epi32(1)))),
        16);
    const __m256i quiet_nan = _mm256_or_si256(_mm256_srli_epi32(x, 16),
                                              _mm256_set1_epi32(0x0040));
    const __m256i absx = _mm256_and_si256(x, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i is_nan =
        _mm256_cmpgt_epi32(absx, _mm256_set1_epi32(0x7F800000));
    store_epi32_as_u16(blend32(rne, quiet_nan, is_nan), out + i);
  }
  for (std::size_t i = body; i < n; ++i)
    out[i] = f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(in[i]));
}

void codec_unpack_bf16_avx2(const std::uint16_t* in, std::size_t n, float* out) {
  const std::size_t body = n & ~std::size_t{7};
  for (std::size_t i = 0; i < body; i += 8) {
    const __m256i h = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_slli_epi32(h, 16));
  }
  for (std::size_t i = body; i < n; ++i)
    out[i] = std::bit_cast<float>(static_cast<std::uint32_t>(in[i]) << 16);
}

void codec_pack_i8_avx2(const float* in, std::size_t n, float inv_scale,
                        std::int8_t* out) {
  const std::size_t body = n & ~std::size_t{7};
  const __m256 inv = _mm256_set1_ps(inv_scale);
  const __m256 hi = _mm256_set1_ps(127.0f);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  for (std::size_t i = 0; i < body; i += 8) {
    const __m256 scaled = _mm256_mul_ps(_mm256_loadu_ps(in + i), inv);
    // Ordered-compare mask: false only for NaN lanes, which the and below
    // zeroes — the same NaN -> 0 rule as the scalar tier.
    const __m256 ord = _mm256_cmp_ps(scaled, scaled, _CMP_ORD_Q);
    __m256 q = _mm256_round_ps(scaled, _MM_FROUND_TO_NEAREST_INT |
                                           _MM_FROUND_NO_EXC);
    q = _mm256_min_ps(q, hi);
    q = _mm256_max_ps(q, lo);
    q = _mm256_and_ps(q, ord);
    const __m256i qi = _mm256_cvtps_epi32(q);
    __m256i p16 = _mm256_packs_epi32(qi, qi);
    p16 = _mm256_permute4x64_epi64(p16, 0x08);
    const __m128i p8 =
        _mm_packs_epi16(_mm256_castsi256_si128(p16), _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), p8);
  }
  for (std::size_t i = body; i < n; ++i) {
    float q = std::nearbyintf(in[i] * inv_scale);
    if (q > 127.0f) q = 127.0f;
    if (q < -127.0f) q = -127.0f;
    if (q != q) q = 0.0f;
    out[i] = static_cast<std::int8_t>(q);
  }
}

void codec_unpack_i8_avx2(const std::int8_t* in, std::size_t n, float scale,
                          float* out) {
  const std::size_t body = n & ~std::size_t{7};
  const __m256 s = _mm256_set1_ps(scale);
  for (std::size_t i = 0; i < body; i += 8) {
    const __m256i qi = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + i)));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_cvtepi32_ps(qi), s));
  }
  for (std::size_t i = body; i < n; ++i)
    out[i] = static_cast<float>(in[i]) * scale;
}

}  // namespace dinar::detail

#endif  // DINAR_CODEC_HAVE_AVX2
