// Scalar tier of the wire-codec pack/unpack kernels — the byte-exact
// oracle (see codec_kernels.h): every other tier vectorizes exactly these
// integer algorithms, so encoded payloads are identical across tiers.
#include "tensor/codec_kernels.h"

#include <bit>
#include <cmath>

#include "util/error.h"

namespace dinar::detail {

// f32 -> f16, round-to-nearest-even. Handles subnormal outputs, underflow
// to signed zero, overflow to Inf (including a rounding carry out of the
// largest finite half), and NaN quieting with the top payload bits kept.
std::uint16_t f32_bits_to_f16_bits(std::uint32_t x) {
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t absx = x & 0x7FFFFFFFu;
  if (absx > 0x7F800000u)  // NaN: quiet bit + the 9 payload bits that fit
    return static_cast<std::uint16_t>(sign | 0x7E00u | ((absx >> 13) & 0x1FFu));
  // Unbiased-for-f16 exponent: f32 bias 127 out, f16 bias 15 in.
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFFu) - 112;
  std::uint32_t mant = x & 0x7FFFFFu;
  if (exp >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);  // Inf / overflow
  if (exp <= 0) {
    if (exp < -10) return static_cast<std::uint16_t>(sign);  // underflow to +-0
    // Subnormal half: shift the (implicit-bit) mantissa into place with RNE
    // on the dropped bits; a carry rolls into exponent 1, which is correct.
    mant |= 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exp);  // 14..24
    std::uint32_t half = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  std::uint32_t half = sign | (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  // RNE on the 13 dropped bits; a carry out of the largest finite half
  // produces the Inf bit pattern, the correct rounded result.
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<std::uint16_t>(half);
}

std::uint32_t f16_bits_to_f32_bits(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;
  if (exp == 0) {
    if (mant == 0) return sign;  // +-0
    // Subnormal half = mant * 2^-24, always a normal f32: renormalize.
    std::uint32_t e = 113;  // 127 - 15 + 1
    while ((mant & 0x400u) == 0) {
      mant <<= 1;
      --e;
    }
    return sign | (e << 23) | ((mant & 0x3FFu) << 13);
  }
  if (exp == 0x1Fu) return sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  return sign | ((exp + 112u) << 23) | (mant << 13);
}

// f32 -> bf16: RNE on the dropped 16 bits. The carry chain cannot wrap the
// sign bit (any input that close to the top is a NaN, handled first), and
// rounding the largest finite value overflows to Inf, the correct result.
std::uint16_t f32_bits_to_bf16_bits(std::uint32_t x) {
  if ((x & 0x7FFFFFFFu) > 0x7F800000u)  // NaN: quiet it, keep the top payload
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  return static_cast<std::uint16_t>((x + 0x7FFFu + ((x >> 16) & 1u)) >> 16);
}

SpanAbsMax codec_absmax_scalar(const float* in, std::size_t n) {
  SpanAbsMax r;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = in[i];
    if (!std::isfinite(v)) {
      r.all_finite = false;
      continue;  // non-finite values never contribute to the scale
    }
    const float a = std::fabs(v);
    if (a > r.max_abs) r.max_abs = a;
  }
  return r;
}

void codec_pack_f16_scalar(const float* in, std::size_t n, std::uint16_t* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(in[i]));
}

void codec_unpack_f16_scalar(const std::uint16_t* in, std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = std::bit_cast<float>(f16_bits_to_f32_bits(in[i]));
}

void codec_pack_bf16_scalar(const float* in, std::size_t n, std::uint16_t* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = f32_bits_to_bf16_bits(std::bit_cast<std::uint32_t>(in[i]));
}

void codec_unpack_bf16_scalar(const std::uint16_t* in, std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = std::bit_cast<float>(static_cast<std::uint32_t>(in[i]) << 16);
}

void codec_pack_i8_scalar(const float* in, std::size_t n, float inv_scale,
                          std::int8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    // nearbyintf under the default FP environment is round-to-nearest-even,
    // the same rounding _mm256_round_ps uses in the AVX2 tier. +-Inf clamp
    // to +-127; NaN maps to 0 (defined in both tiers, though the encoder
    // never quantizes a NaN span — it falls back to lossless f32).
    float q = std::nearbyintf(in[i] * inv_scale);
    if (q > 127.0f) q = 127.0f;
    if (q < -127.0f) q = -127.0f;
    if (q != q) q = 0.0f;
    out[i] = static_cast<std::int8_t>(q);
  }
}

void codec_unpack_i8_scalar(const std::int8_t* in, std::size_t n, float scale,
                            float* out) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<float>(in[i]) * scale;
}

const CodecKernelFns& codec_kernel_fns(CodecKernel kernel) {
  DINAR_CHECK(codec_kernel_available(kernel),
              "codec kernel '" << codec_kernel_name(kernel)
                               << "' is not available on this build/host");
  static const CodecKernelFns scalar{
      codec_absmax_scalar,      codec_pack_f16_scalar,
      codec_unpack_f16_scalar,  codec_pack_bf16_scalar,
      codec_unpack_bf16_scalar, codec_pack_i8_scalar,
      codec_unpack_i8_scalar};
#if DINAR_CODEC_HAVE_AVX2
  static const CodecKernelFns avx2{
      codec_absmax_avx2,      codec_pack_f16_avx2,
      codec_unpack_f16_avx2,  codec_pack_bf16_avx2,
      codec_unpack_bf16_avx2, codec_pack_i8_avx2,
      codec_unpack_i8_avx2};
  if (kernel == CodecKernel::kAvx2) return avx2;
#endif
  return scalar;
}

const CodecKernelFns& codec_kernel_fns() {
  static const CodecKernelFns& fns = codec_kernel_fns(active_codec_kernel());
  return fns;
}

}  // namespace dinar::detail
