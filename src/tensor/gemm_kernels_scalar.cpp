// Scalar tier of the packed-panel gemm microkernel — the testing oracle.
//
// Structurally identical to the SIMD tiers (same packing, same 8x8 tile,
// same ascending-kk accumulation with one accumulator per element); the
// inner arithmetic is plain float multiply-add, which the compiler may
// vectorize along the column axis but cannot reorder across kk (no
// -ffast-math), so per-element results are reproducible everywhere.
#include <algorithm>

#include "tensor/gemm_kernels.h"

namespace dinar::detail {

void gemm_block_scalar(std::int64_t rows, std::int64_t n, std::int64_t k,
                       const float* apack, const float* bpack, float* c) {
  for (std::int64_t j0 = 0, bj = 0; j0 < n; j0 += kGemmNR, ++bj) {
    const float* panel = bpack + bj * k * kGemmNR;
    // Full MR x NR tile, padded lanes included; IEEE-754 semantics are
    // preserved (no skip-zero shortcuts), so 0 x NaN / 0 x Inf propagate
    // exactly as in the SIMD tiers.
    float acc[kGemmMR][kGemmNR] = {};
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* av = apack + kk * kGemmMR;
      const float* bv = panel + kk * kGemmNR;
      for (std::int64_t r = 0; r < kGemmMR; ++r) {
        const float a = av[r];
        for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += a * bv[j];
      }
    }
    const std::int64_t cols = std::min<std::int64_t>(kGemmNR, n - j0);
    for (std::int64_t r = 0; r < rows; ++r) {
      float* crow = c + r * n + j0;
      for (std::int64_t j = 0; j < cols; ++j) crow[j] = acc[r][j];
    }
  }
}

}  // namespace dinar::detail
