#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "tensor/gemm_kernels.h"
#include "util/error.h"
#include "util/execution_context.h"
#include "util/memory_tracker.h"

namespace dinar {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    DINAR_CHECK(d >= 0, "negative dimension in shape " << shape_to_string(shape));
    // Deserialized shapes are attacker-controlled; a checked multiply keeps
    // a corrupted shape from tripping signed-overflow UB.
    DINAR_CHECK(d == 0 || n <= std::numeric_limits<std::int64_t>::max() / d,
                "shape " << shape_to_string(shape) << " overflows element count");
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)),
      data_(static_cast<std::size_t>(numel_), 0.0f) {
  track_alloc();
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)), data_(std::move(values)) {
  DINAR_CHECK(static_cast<std::int64_t>(data_.size()) == numel_,
              "value count " << data_.size() << " does not match shape "
                             << shape_to_string(shape_));
  track_alloc();
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), numel_(other.numel_), data_(other.data_) {
  track_alloc();
  MemoryTracker::instance().record_copy(data_.size() * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  track_release();
  shape_ = other.shape_;
  numel_ = other.numel_;
  data_ = other.data_;
  track_alloc();
  MemoryTracker::instance().record_copy(data_.size() * sizeof(float));
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)), numel_(other.numel_),
      data_(std::move(other.data_)) {
  other.numel_ = 0;
  other.shape_.clear();
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  track_release();
  shape_ = std::move(other.shape_);
  numel_ = other.numel_;
  data_ = std::move(other.data_);
  other.numel_ = 0;
  other.shape_.clear();
  return *this;
}

Tensor::~Tensor() { track_release(); }

void Tensor::track_alloc() {
  if (!data_.empty()) MemoryTracker::instance().allocate(data_.size() * sizeof(float));
}

void Tensor::track_release() {
  if (!data_.empty()) MemoryTracker::instance().release(data_.size() * sizeof(float));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::gaussian(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::kaiming(Shape shape, std::int64_t fan_in, Rng& rng) {
  DINAR_CHECK(fan_in > 0, "kaiming init requires positive fan_in");
  const float bound = std::sqrt(1.0f / static_cast<float>(fan_in));
  return uniform(std::move(shape), rng, -bound, bound);
}

std::int64_t Tensor::dim(std::size_t i) const {
  DINAR_CHECK(i < shape_.size(), "dim " << i << " out of rank " << shape_.size());
  return shape_[i];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DINAR_CHECK(shape_numel(new_shape) == numel_,
              "reshape " << shape_to_string(shape_) << " -> "
                         << shape_to_string(new_shape) << " changes numel");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::operator+=(const Tensor& other) {
  DINAR_CHECK(same_shape(other), "+= shape mismatch " << shape_to_string(shape_)
                                                      << " vs "
                                                      << shape_to_string(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  DINAR_CHECK(same_shape(other), "-= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

void Tensor::add_scaled(const Tensor& x, float a) {
  DINAR_CHECK(same_shape(x), "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * x.data_[i];
}

void Tensor::add_product(const Tensor& x, const Tensor& y) {
  DINAR_CHECK(same_shape(x) && same_shape(y), "add_product shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += x.data_[i] * y.data_[i];
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::squared_l2_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

double Tensor::l2_norm() const { return std::sqrt(squared_l2_norm()); }

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

namespace {

using detail::kGemmMR;
using detail::kGemmNR;

// Per-thread packing scratch, reused across gemm calls so the hot loop is
// allocation-free after warm-up. `bpack` holds the shared packed op(b)
// (written by the calling thread / packing chunks, read by everyone);
// `apack` holds one row-block of op(a) and is touched only by the thread
// executing that block. The vectors only ever grow.
struct GemmScratch {
  std::vector<float> bpack;
  std::vector<float> apack;
};

GemmScratch& gemm_scratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

float* grown(std::vector<float>& v, std::size_t need) {
  if (v.size() < need) v.resize(need);
  return v.data();
}

// k*n without signed-overflow UB on degenerate or adversarial shapes:
// saturates instead of wrapping, and maps empty dimensions to 1 so grain
// math never divides by zero.
std::int64_t saturating_per_row_work(std::int64_t k, std::int64_t n) {
  const std::int64_t kk = std::max<std::int64_t>(1, k);
  const std::int64_t nn = std::max<std::int64_t>(1, n);
  if (kk > std::numeric_limits<std::int64_t>::max() / nn)
    return std::numeric_limits<std::int64_t>::max();
  return kk * nn;
}

// Row-blocks per parallel chunk, sized so a chunk is worth a pool
// dispatch. Kernel-aware: the SIMD tiers retire roughly 8x the flops per
// cycle of the scalar oracle, so they need proportionally more work per
// chunk before splitting pays — the old flat 32768-flops heuristic
// over-split the fast kernel into dispatch-bound confetti.
std::size_t gemm_block_grain(GemmKernel kernel, std::int64_t k, std::int64_t n) {
  const std::int64_t target_madds =
      kernel == GemmKernel::kScalar ? 32768 : 262144;
  const std::int64_t per_row = saturating_per_row_work(k, n);
  const std::int64_t rows = std::max<std::int64_t>(1, target_madds / per_row);
  return static_cast<std::size_t>((rows + kGemmMR - 1) / kGemmMR);
}

// B panels per packing chunk (each panel writes k * kGemmNR floats).
std::size_t pack_panel_grain(std::int64_t k) {
  return static_cast<std::size_t>(
      std::max<std::int64_t>(1, 2048 / std::max<std::int64_t>(1, k)));
}

detail::GemmBlockFn gemm_block_fn(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kScalar:
      return detail::gemm_block_scalar;
    case GemmKernel::kAvx2:
#if DINAR_GEMM_HAVE_AVX2
      return detail::gemm_block_avx2;
#else
      break;
#endif
  }
  return detail::gemm_block_scalar;
}

}  // namespace

Tensor gemm(Trans trans_a, Trans trans_b, const Tensor& a, const Tensor& b,
            const ExecutionContext* exec) {
  return gemm(trans_a, trans_b, a, b, exec, active_gemm_kernel());
}

Tensor gemm(Trans trans_a, Trans trans_b, const Tensor& a, const Tensor& b,
            const ExecutionContext* exec, GemmKernel kernel) {
  DINAR_CHECK(a.rank() == 2 && b.rank() == 2, "gemm requires rank-2 tensors");
  const std::int64_t m = trans_a == Trans::kN ? a.dim(0) : a.dim(1);
  const std::int64_t k = trans_a == Trans::kN ? a.dim(1) : a.dim(0);
  const std::int64_t n = trans_b == Trans::kN ? b.dim(1) : b.dim(0);
  const std::int64_t kb = trans_b == Trans::kN ? b.dim(0) : b.dim(1);
  DINAR_CHECK(kb == k, "gemm inner dimension mismatch: "
                           << (trans_a == Trans::kT ? "T " : "") << shape_to_string(a.shape())
                           << " x " << (trans_b == Trans::kT ? "T " : "")
                           << shape_to_string(b.shape()));
  Tensor out({m, n});
  // Degenerate shapes: an empty output, or an empty reduction axis whose
  // product is all zeros — the zero-initialized tensor is already correct,
  // and the packing math below assumes every extent is positive.
  if (m == 0 || n == 0 || k == 0) return out;
  DINAR_CHECK(gemm_kernel_available(kernel),
              "gemm kernel '" << gemm_kernel_name(kernel)
                              << "' is not available in this build/host");
  const detail::GemmBlockFn block_fn = gemm_block_fn(kernel);

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Element (i, kk) of the logical [m, k] operand op(a), and (kk, j) of the
  // logical [k, n] operand op(b), expressed as strides into the stored data
  // so all four Trans combinations share the packing code.
  const std::int64_t a_row_stride = trans_a == Trans::kN ? k : 1;
  const std::int64_t a_k_stride = trans_a == Trans::kN ? 1 : m;
  const std::int64_t b_k_stride = trans_b == Trans::kN ? n : 1;
  const std::int64_t b_col_stride = trans_b == Trans::kN ? 1 : k;

  const std::int64_t mblocks = (m + kGemmMR - 1) / kGemmMR;
  const std::int64_t npanels = (n + kGemmNR - 1) / kGemmNR;

  // Pack op(b) once into the calling thread's arena: per panel, k groups
  // of kGemmNR floats, edge columns zero-padded. Panels are disjoint, so
  // packing parallelizes with deterministic contents.
  float* bpack = grown(gemm_scratch().bpack,
                       static_cast<std::size_t>(npanels * k * kGemmNR));
  const auto pack_b = [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t bj = p0; bj < p1; ++bj) {
      const std::int64_t j0 = bj * kGemmNR;
      const std::int64_t cols = std::min<std::int64_t>(kGemmNR, n - j0);
      float* panel = bpack + bj * k * kGemmNR;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        float* dst = panel + kk * kGemmNR;
        const float* src = pb + kk * b_k_stride + j0 * b_col_stride;
        std::int64_t j = 0;
        for (; j < cols; ++j) dst[j] = src[j * b_col_stride];
        for (; j < kGemmNR; ++j) dst[j] = 0.0f;
      }
    }
  };
  if (exec != nullptr)
    exec->parallel_for(npanels, pack_b, pack_panel_grain(k));
  else
    pack_b(0, npanels);

  // Compute parallelizes over whole row-blocks (never raw rows): a chunk
  // boundary can only fall between blocks, so which rows share a
  // microkernel call — and therefore every element's operation sequence —
  // is independent of the thread count. Each executing thread packs the
  // current A row-block into its own scratch arena right before use.
  const auto row_blocks = [&](std::int64_t blk0, std::int64_t blk1) {
    float* apack =
        grown(gemm_scratch().apack, static_cast<std::size_t>(k * kGemmMR));
    for (std::int64_t bi = blk0; bi < blk1; ++bi) {
      const std::int64_t i0 = bi * kGemmMR;
      const std::int64_t rows = std::min<std::int64_t>(kGemmMR, m - i0);
      if (a_k_stride == 1) {
        // op(a) rows are contiguous: stream each row, strided writes into
        // the L1-resident pack buffer.
        for (std::int64_t r = 0; r < kGemmMR; ++r) {
          if (r < rows) {
            const float* arow = pa + (i0 + r) * a_row_stride;
            for (std::int64_t kk = 0; kk < k; ++kk)
              apack[kk * kGemmMR + r] = arow[kk];
          } else {
            for (std::int64_t kk = 0; kk < k; ++kk)
              apack[kk * kGemmMR + r] = 0.0f;
          }
        }
      } else {
        // Transposed operand: each kk step reads kGemmMR contiguous floats.
        for (std::int64_t kk = 0; kk < k; ++kk) {
          float* dst = apack + kk * kGemmMR;
          const float* src = pa + i0 * a_row_stride + kk * a_k_stride;
          std::int64_t r = 0;
          for (; r < rows; ++r) dst[r] = src[r * a_row_stride];
          for (; r < kGemmMR; ++r) dst[r] = 0.0f;
        }
      }
      block_fn(rows, n, k, apack, bpack, po + i0 * n);
    }
  };
  if (exec != nullptr)
    exec->parallel_for(mblocks, row_blocks, gemm_block_grain(kernel, k, n));
  else
    row_blocks(0, mblocks);
  return out;
}

void span_add(std::span<float> a, std::span<const float> b) {
  DINAR_CHECK(a.size() == b.size(),
              "span_add length mismatch: " << a.size() << " vs " << b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void span_scale(std::span<float> a, float s) {
  for (float& v : a) v *= s;
}

void span_axpy(std::span<float> a, std::span<const float> x, float s) {
  DINAR_CHECK(a.size() == x.size(),
              "span_axpy length mismatch: " << a.size() << " vs " << x.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * x[i];
}

double span_squared_l2(std::span<const float> a) {
  double acc = 0.0;
  for (float v : a) acc += static_cast<double>(v) * static_cast<double>(v);
  return acc;
}

}  // namespace dinar
