#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/error.h"
#include "util/execution_context.h"
#include "util/memory_tracker.h"

namespace dinar {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    DINAR_CHECK(d >= 0, "negative dimension in shape " << shape_to_string(shape));
    // Deserialized shapes are attacker-controlled; a checked multiply keeps
    // a corrupted shape from tripping signed-overflow UB.
    DINAR_CHECK(d == 0 || n <= std::numeric_limits<std::int64_t>::max() / d,
                "shape " << shape_to_string(shape) << " overflows element count");
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)),
      data_(static_cast<std::size_t>(numel_), 0.0f) {
  track_alloc();
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)), data_(std::move(values)) {
  DINAR_CHECK(static_cast<std::int64_t>(data_.size()) == numel_,
              "value count " << data_.size() << " does not match shape "
                             << shape_to_string(shape_));
  track_alloc();
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), numel_(other.numel_), data_(other.data_) {
  track_alloc();
  MemoryTracker::instance().record_copy(data_.size() * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  track_release();
  shape_ = other.shape_;
  numel_ = other.numel_;
  data_ = other.data_;
  track_alloc();
  MemoryTracker::instance().record_copy(data_.size() * sizeof(float));
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)), numel_(other.numel_),
      data_(std::move(other.data_)) {
  other.numel_ = 0;
  other.shape_.clear();
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  track_release();
  shape_ = std::move(other.shape_);
  numel_ = other.numel_;
  data_ = std::move(other.data_);
  other.numel_ = 0;
  other.shape_.clear();
  return *this;
}

Tensor::~Tensor() { track_release(); }

void Tensor::track_alloc() {
  if (!data_.empty()) MemoryTracker::instance().allocate(data_.size() * sizeof(float));
}

void Tensor::track_release() {
  if (!data_.empty()) MemoryTracker::instance().release(data_.size() * sizeof(float));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::gaussian(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::kaiming(Shape shape, std::int64_t fan_in, Rng& rng) {
  DINAR_CHECK(fan_in > 0, "kaiming init requires positive fan_in");
  const float bound = std::sqrt(1.0f / static_cast<float>(fan_in));
  return uniform(std::move(shape), rng, -bound, bound);
}

std::int64_t Tensor::dim(std::size_t i) const {
  DINAR_CHECK(i < shape_.size(), "dim " << i << " out of rank " << shape_.size());
  return shape_[i];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DINAR_CHECK(shape_numel(new_shape) == numel_,
              "reshape " << shape_to_string(shape_) << " -> "
                         << shape_to_string(new_shape) << " changes numel");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::operator+=(const Tensor& other) {
  DINAR_CHECK(same_shape(other), "+= shape mismatch " << shape_to_string(shape_)
                                                      << " vs "
                                                      << shape_to_string(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  DINAR_CHECK(same_shape(other), "-= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

void Tensor::add_scaled(const Tensor& x, float a) {
  DINAR_CHECK(same_shape(x), "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * x.data_[i];
}

void Tensor::add_product(const Tensor& x, const Tensor& y) {
  DINAR_CHECK(same_shape(x) && same_shape(y), "add_product shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += x.data_[i] * y.data_[i];
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::squared_l2_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

double Tensor::l2_norm() const { return std::sqrt(squared_l2_norm()); }

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

namespace {

// Cache tiles for the axpy-form kernels (kN/kT x kN): the B sub-panel of
// kTileK x kTileJ floats (64 KiB) stays resident while every row of the
// chunk streams over it. Tiling only regroups the j loop; each output
// element still accumulates in ascending-k order, so tiled and untiled
// results are bit-identical.
constexpr std::int64_t kTileJ = 256;
constexpr std::int64_t kTileK = 64;

// Rows per parallel chunk, sized so a chunk is worth a pool dispatch.
std::size_t row_grain(std::int64_t k, std::int64_t n) {
  const std::int64_t per_row = std::max<std::int64_t>(1, k * n);
  return static_cast<std::size_t>(std::max<std::int64_t>(1, 32768 / per_row));
}

// op(a) rows x b columns where b is used as stored ([k, n]). `a_row_stride`
// and `a_k_stride` express op(a)'s element layout, so kN ([m, k], strides
// k/1) and kT ([k, m], strides 1/m) share one kernel. Accumulation is a
// float axpy over j in ascending-k order with the seed kernels'
// skip-zero-multiplier fast path.
void gemm_axpy_rows(std::int64_t r0, std::int64_t r1, std::int64_t k, std::int64_t n,
                    const float* pa, std::int64_t a_row_stride, std::int64_t a_k_stride,
                    const float* pb, float* po) {
  for (std::int64_t jb = 0; jb < n; jb += kTileJ) {
    const std::int64_t je = std::min(n, jb + kTileJ);
    for (std::int64_t kb = 0; kb < k; kb += kTileK) {
      const std::int64_t ke = std::min(k, kb + kTileK);
      for (std::int64_t i = r0; i < r1; ++i) {
        const float* arow = pa + i * a_row_stride;
        float* orow = po + i * n;
        for (std::int64_t kk = kb; kk < ke; ++kk) {
          const float av = arow[kk * a_k_stride];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * n;
          for (std::int64_t j = jb; j < je; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

// op(a) rows x b^T rows (b stored [n, k]): a dot product per output
// element, double-accumulated in ascending-k order (the seed matmul_nt
// numerics).
void gemm_dot_rows(std::int64_t r0, std::int64_t r1, std::int64_t k, std::int64_t n,
                   const float* pa, std::int64_t a_row_stride, std::int64_t a_k_stride,
                   const float* pb, float* po) {
  for (std::int64_t i = r0; i < r1; ++i) {
    const float* arow = pa + i * a_row_stride;
    float* orow = po + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk * a_k_stride]) * brow[kk];
      orow[j] = static_cast<float>(acc);
    }
  }
}

}  // namespace

Tensor gemm(Trans trans_a, Trans trans_b, const Tensor& a, const Tensor& b,
            const ExecutionContext* exec) {
  DINAR_CHECK(a.rank() == 2 && b.rank() == 2, "gemm requires rank-2 tensors");
  const std::int64_t m = trans_a == Trans::kN ? a.dim(0) : a.dim(1);
  const std::int64_t k = trans_a == Trans::kN ? a.dim(1) : a.dim(0);
  const std::int64_t n = trans_b == Trans::kN ? b.dim(1) : b.dim(0);
  const std::int64_t kb = trans_b == Trans::kN ? b.dim(0) : b.dim(1);
  DINAR_CHECK(kb == k, "gemm inner dimension mismatch: "
                           << (trans_a == Trans::kT ? "T " : "") << shape_to_string(a.shape())
                           << " x " << (trans_b == Trans::kT ? "T " : "")
                           << shape_to_string(b.shape()));
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // op(a)'s strides: rows of the logical [m, k] operand.
  const std::int64_t a_row_stride = trans_a == Trans::kN ? k : 1;
  const std::int64_t a_k_stride = trans_a == Trans::kN ? 1 : m;

  const auto rows = [&](std::int64_t r0, std::int64_t r1) {
    if (trans_b == Trans::kN)
      gemm_axpy_rows(r0, r1, k, n, pa, a_row_stride, a_k_stride, pb, po);
    else
      gemm_dot_rows(r0, r1, k, n, pa, a_row_stride, a_k_stride, pb, po);
  };
  if (exec != nullptr)
    exec->parallel_for(m, rows, row_grain(k, n));
  else
    rows(0, m);
  return out;
}

void span_add(std::span<float> a, std::span<const float> b) {
  DINAR_CHECK(a.size() == b.size(),
              "span_add length mismatch: " << a.size() << " vs " << b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void span_scale(std::span<float> a, float s) {
  for (float& v : a) v *= s;
}

void span_axpy(std::span<float> a, std::span<const float> x, float s) {
  DINAR_CHECK(a.size() == x.size(),
              "span_axpy length mismatch: " << a.size() << " vs " << x.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * x[i];
}

double span_squared_l2(std::span<const float> a) {
  double acc = 0.0;
  for (float v : a) acc += static_cast<double>(v) * static_cast<double>(v);
  return acc;
}

}  // namespace dinar
