#include "tensor/cpu_features.h"

#include <cstdlib>
#include <string>

#include "util/error.h"

namespace dinar {
namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(_M_X64)) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return f;
}

GemmKernel resolve_active() {
  const char* env = std::getenv("DINAR_GEMM_KERNEL");
  if (env != nullptr && *env != '\0') {
    const std::string v(env);
    if (v == "scalar") return GemmKernel::kScalar;
    if (v == "avx2") {
      DINAR_CHECK(gemm_kernel_available(GemmKernel::kAvx2),
                  "DINAR_GEMM_KERNEL=avx2 but the AVX2 kernel is unavailable "
                  "(built with DINAR_SIMD=OFF, or the host lacks AVX2+FMA)");
      return GemmKernel::kAvx2;
    }
    throw Error("unknown DINAR_GEMM_KERNEL value '" + v + "' (expected scalar|avx2)");
  }
  return gemm_kernel_available(GemmKernel::kAvx2) ? GemmKernel::kAvx2
                                                  : GemmKernel::kScalar;
}

CodecKernel resolve_active_codec() {
  const char* env = std::getenv("DINAR_CODEC_KERNEL");
  if (env != nullptr && *env != '\0') {
    const std::string v(env);
    if (v == "scalar") return CodecKernel::kScalar;
    if (v == "avx2") {
      DINAR_CHECK(codec_kernel_available(CodecKernel::kAvx2),
                  "DINAR_CODEC_KERNEL=avx2 but the AVX2 codec kernels are "
                  "unavailable (built with DINAR_SIMD=OFF, or the host lacks "
                  "AVX2)");
      return CodecKernel::kAvx2;
    }
    throw Error("unknown DINAR_CODEC_KERNEL value '" + v +
                "' (expected scalar|avx2)");
  }
  return codec_kernel_available(CodecKernel::kAvx2) ? CodecKernel::kAvx2
                                                    : CodecKernel::kScalar;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

bool gemm_kernel_available(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kScalar:
      return true;
    case GemmKernel::kAvx2:
#if DINAR_GEMM_HAVE_AVX2
      // The AVX2 TU uses FMA, so both bits are required.
      return cpu_features().avx2 && cpu_features().fma;
#else
      return false;
#endif
  }
  return false;
}

GemmKernel active_gemm_kernel() {
  static const GemmKernel k = resolve_active();
  return k;
}

const char* gemm_kernel_name(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kScalar:
      return "scalar";
    case GemmKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool codec_kernel_available(CodecKernel kernel) {
  switch (kernel) {
    case CodecKernel::kScalar:
      return true;
    case CodecKernel::kAvx2:
#if DINAR_CODEC_HAVE_AVX2
      return cpu_features().avx2;
#else
      return false;
#endif
  }
  return false;
}

CodecKernel active_codec_kernel() {
  static const CodecKernel k = resolve_active_codec();
  return k;
}

const char* codec_kernel_name(CodecKernel kernel) {
  switch (kernel) {
    case CodecKernel::kScalar:
      return "scalar";
    case CodecKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace dinar
