// Concrete optimizers.
//
// Adagrad is the one Algorithm 1 specifies (including the paper's 1e-5
// term inside the square root); SGD is the FL baseline; Adam, AdaMax,
// RMSProp and ADGD are the Figure 11 ablation alternatives.
//
// Optimizer state (momenta, squared-gradient accumulators, previous
// iterates) lives in FlatParams arenas sharing the model's layer index:
// one allocation per state vector, re-initialized only when the model's
// parameter layout changes.
#pragma once

#include <vector>

#include "opt/optimizer.h"

namespace dinar::opt {

class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void step(nn::Model& model) override;
  void reset() override;
  std::string name() const override { return "sgd"; }

 private:
  double momentum_;
  nn::FlatParams velocity_;
};

// Algorithm 1, lines 13-14:  G += g^2;  theta -= lr * g / sqrt(G + 1e-5).
class Adagrad : public Optimizer {
 public:
  explicit Adagrad(double lr, double eps = 1e-5);
  void step(nn::Model& model) override;
  void reset() override;
  std::string name() const override { return "adagrad"; }

 private:
  double eps_;
  nn::FlatParams accum_;  // G
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  void step(nn::Model& model) override;
  void reset() override;
  std::string name() const override { return "adam"; }

 private:
  double beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  nn::FlatParams m_, v_;
};

// Adam variant with an infinity-norm second moment (Kingma & Ba, §7).
class AdaMax : public Optimizer {
 public:
  explicit AdaMax(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  void step(nn::Model& model) override;
  void reset() override;
  std::string name() const override { return "adamax"; }

 private:
  double beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  nn::FlatParams m_, u_;
};

class RmsProp : public Optimizer {
 public:
  explicit RmsProp(double lr, double decay = 0.9, double eps = 1e-8);
  void step(nn::Model& model) override;
  void reset() override;
  std::string name() const override { return "rmsprop"; }

 private:
  double decay_, eps_;
  nn::FlatParams accum_;
};

// Adaptive Gradient Descent without Descent (Malitsky & Mishchenko 2020):
// the step size adapts from local curvature estimates
//   lambda_k = min( sqrt(1 + theta_{k-1}) * lambda_{k-1},
//                   ||x_k - x_{k-1}|| / (2 ||g_k - g_{k-1}||) ).
class Adgd : public Optimizer {
 public:
  explicit Adgd(double lr);
  void step(nn::Model& model) override;
  void reset() override;
  std::string name() const override { return "adgd"; }

 private:
  double lambda_prev_;
  // Malitsky-Mishchenko use theta_0 = +inf; with minibatch gradients that
  // lets the first growth bound explode, so we start conservatively at 1.
  double theta_prev_ = 1.0;
  bool has_prev_ = false;
  nn::FlatParams prev_params_, prev_grads_;
};

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, double lr);

}  // namespace dinar::opt
