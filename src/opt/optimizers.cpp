#include "opt/optimizers.h"

#include <cmath>

#include "util/error.h"

namespace dinar::opt {
namespace {

// Collects aligned (param, grad) tensor pointers from the model.
struct Slots {
  std::vector<Tensor*> params;
  std::vector<Tensor*> grads;
};

Slots collect(nn::Model& model) {
  Slots s;
  for (nn::ParamGroup& g : model.param_layers()) {
    for (Tensor* p : g.params) s.params.push_back(p);
    for (Tensor* gr : g.grads) s.grads.push_back(gr);
  }
  DINAR_CHECK(s.params.size() == s.grads.size(), "param/grad count mismatch");
  return s;
}

// Lazily (re)initializes a state list to zeros matching the params.
void ensure_state(nn::ParamList& state, const std::vector<Tensor*>& params) {
  bool ok = state.size() == params.size();
  for (std::size_t i = 0; ok && i < state.size(); ++i)
    ok = state[i].same_shape(*params[i]);
  if (ok) return;
  state.clear();
  state.reserve(params.size());
  for (const Tensor* p : params) state.emplace_back(p->shape());
}

}  // namespace

Sgd::Sgd(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {}

void Sgd::step(nn::Model& model) {
  Slots s = collect(model);
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < s.params.size(); ++i)
      s.params[i]->add_scaled(*s.grads[i], static_cast<float>(-lr_));
    return;
  }
  ensure_state(velocity_, s.params);
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    velocity_[i] *= static_cast<float>(momentum_);
    velocity_[i].add_scaled(*s.grads[i], 1.0f);
    s.params[i]->add_scaled(velocity_[i], static_cast<float>(-lr_));
  }
}

void Sgd::reset() { velocity_.clear(); }

Adagrad::Adagrad(double lr, double eps) : Optimizer(lr), eps_(eps) {}

void Adagrad::step(nn::Model& model) {
  Slots s = collect(model);
  ensure_state(accum_, s.params);
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    float* g = s.grads[i]->data();
    float* a = accum_[i].data();
    float* p = s.params[i]->data();
    const std::int64_t n = s.params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      a[j] += g[j] * g[j];
      // Paper's exact form: eps inside the square root.
      p[j] -= static_cast<float>(lr_) * g[j] /
              std::sqrt(a[j] + static_cast<float>(eps_));
    }
  }
}

void Adagrad::reset() { accum_.clear(); }

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(nn::Model& model) {
  Slots s = collect(model);
  ensure_state(m_, s.params);
  ensure_state(v_, s.params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    float* g = s.grads[i]->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* p = s.params[i]->data();
    const std::int64_t n = s.params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      m[j] = static_cast<float>(beta1_) * m[j] + static_cast<float>(1.0 - beta1_) * g[j];
      v[j] = static_cast<float>(beta2_) * v[j] +
             static_cast<float>(1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

AdaMax::AdaMax(double lr, double beta1, double beta2, double eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void AdaMax::step(nn::Model& model) {
  Slots s = collect(model);
  ensure_state(m_, s.params);
  ensure_state(u_, s.params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    float* g = s.grads[i]->data();
    float* m = m_[i].data();
    float* u = u_[i].data();
    float* p = s.params[i]->data();
    const std::int64_t n = s.params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      m[j] = static_cast<float>(beta1_) * m[j] + static_cast<float>(1.0 - beta1_) * g[j];
      u[j] = std::max(static_cast<float>(beta2_) * u[j], std::fabs(g[j]));
      p[j] -= static_cast<float>(lr_ / bc1 * m[j] / (u[j] + eps_));
    }
  }
}

void AdaMax::reset() {
  m_.clear();
  u_.clear();
  t_ = 0;
}

RmsProp::RmsProp(double lr, double decay, double eps)
    : Optimizer(lr), decay_(decay), eps_(eps) {}

void RmsProp::step(nn::Model& model) {
  Slots s = collect(model);
  ensure_state(accum_, s.params);
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    float* g = s.grads[i]->data();
    float* a = accum_[i].data();
    float* p = s.params[i]->data();
    const std::int64_t n = s.params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      a[j] = static_cast<float>(decay_) * a[j] +
             static_cast<float>(1.0 - decay_) * g[j] * g[j];
      p[j] -= static_cast<float>(lr_) * g[j] /
              (std::sqrt(a[j]) + static_cast<float>(eps_));
    }
  }
}

void RmsProp::reset() { accum_.clear(); }

Adgd::Adgd(double lr) : Optimizer(lr), lambda_prev_(lr) {}

void Adgd::step(nn::Model& model) {
  Slots s = collect(model);
  nn::ParamList params = model.parameters();
  nn::ParamList grads = model.gradients();

  double lambda = lambda_prev_;
  if (has_prev_) {
    double dx2 = 0.0, dg2 = 0.0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      const float* p = params[i].data();
      const float* pp = prev_params_[i].data();
      const float* g = grads[i].data();
      const float* pg = prev_grads_[i].data();
      const std::int64_t n = params[i].numel();
      for (std::int64_t j = 0; j < n; ++j) {
        const double dp = static_cast<double>(p[j]) - pp[j];
        const double dg = static_cast<double>(g[j]) - pg[j];
        dx2 += dp * dp;
        dg2 += dg * dg;
      }
    }
    const double growth = std::sqrt(1.0 + theta_prev_) * lambda_prev_;
    const double curvature =
        dg2 > 0.0 ? std::sqrt(dx2) / (2.0 * std::sqrt(dg2)) : growth;
    lambda = std::min(growth, curvature);
    if (!(lambda > 0.0) || !std::isfinite(lambda)) lambda = lambda_prev_;
    theta_prev_ = lambda / lambda_prev_;
  }

  for (std::size_t i = 0; i < s.params.size(); ++i)
    s.params[i]->add_scaled(*s.grads[i], static_cast<float>(-lambda));

  prev_params_ = std::move(params);
  prev_grads_ = std::move(grads);
  lambda_prev_ = lambda;
  has_prev_ = true;
}

void Adgd::reset() {
  prev_params_.clear();
  prev_grads_.clear();
  lambda_prev_ = lr_;
  theta_prev_ = 1.0;
  has_prev_ = false;
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, double lr) {
  if (name == "sgd") return std::make_unique<Sgd>(lr);
  if (name == "adagrad") return std::make_unique<Adagrad>(lr);
  if (name == "adam") return std::make_unique<Adam>(lr);
  if (name == "adamax") return std::make_unique<AdaMax>(lr);
  if (name == "rmsprop") return std::make_unique<RmsProp>(lr);
  if (name == "adgd") return std::make_unique<Adgd>(lr);
  throw Error("unknown optimizer: " + name);
}

}  // namespace dinar::opt
