#include "opt/optimizers.h"

#include <cmath>

#include "util/error.h"

namespace dinar::opt {
namespace {

// Collects aligned (param, grad) tensor pointers from the model.
struct Slots {
  std::vector<Tensor*> params;
  std::vector<Tensor*> grads;
};

Slots collect(nn::Model& model) {
  Slots s;
  for (const nn::ParamGroup& g : model.param_layers()) {
    for (Tensor* p : g.params) s.params.push_back(p);
    for (Tensor* gr : g.grads) s.grads.push_back(gr);
  }
  DINAR_CHECK(s.params.size() == s.grads.size(), "param/grad count mismatch");
  return s;
}

// Lazily (re)initializes a state arena to zeros matching the model's
// parameter layout (one contiguous allocation, shared layer index).
void ensure_state(nn::FlatParams& state, nn::Model& model) {
  const auto index = model.layer_index();
  if (!state.empty() && state.index()->same_layout(*index)) return;
  state = nn::FlatParams(index);
}

}  // namespace

Sgd::Sgd(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {}

void Sgd::step(nn::Model& model) {
  Slots s = collect(model);
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < s.params.size(); ++i)
      s.params[i]->add_scaled(*s.grads[i], static_cast<float>(-lr_));
    return;
  }
  ensure_state(velocity_, model);
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    const std::span<float> v = velocity_.entry_span(i);
    span_scale(v, static_cast<float>(momentum_));
    span_axpy(v, s.grads[i]->values(), 1.0f);
    span_axpy(s.params[i]->values(), v, static_cast<float>(-lr_));
  }
}

void Sgd::reset() { velocity_ = {}; }

Adagrad::Adagrad(double lr, double eps) : Optimizer(lr), eps_(eps) {}

void Adagrad::step(nn::Model& model) {
  Slots s = collect(model);
  ensure_state(accum_, model);
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    float* g = s.grads[i]->data();
    float* a = accum_.entry_span(i).data();
    float* p = s.params[i]->data();
    const std::int64_t n = s.params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      a[j] += g[j] * g[j];
      // Paper's exact form: eps inside the square root.
      p[j] -= static_cast<float>(lr_) * g[j] /
              std::sqrt(a[j] + static_cast<float>(eps_));
    }
  }
}

void Adagrad::reset() { accum_ = {}; }

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(nn::Model& model) {
  Slots s = collect(model);
  ensure_state(m_, model);
  ensure_state(v_, model);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    float* g = s.grads[i]->data();
    float* m = m_.entry_span(i).data();
    float* v = v_.entry_span(i).data();
    float* p = s.params[i]->data();
    const std::int64_t n = s.params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      m[j] = static_cast<float>(beta1_) * m[j] + static_cast<float>(1.0 - beta1_) * g[j];
      v[j] = static_cast<float>(beta2_) * v[j] +
             static_cast<float>(1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

void Adam::reset() {
  m_ = {};
  v_ = {};
  t_ = 0;
}

AdaMax::AdaMax(double lr, double beta1, double beta2, double eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void AdaMax::step(nn::Model& model) {
  Slots s = collect(model);
  ensure_state(m_, model);
  ensure_state(u_, model);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    float* g = s.grads[i]->data();
    float* m = m_.entry_span(i).data();
    float* u = u_.entry_span(i).data();
    float* p = s.params[i]->data();
    const std::int64_t n = s.params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      m[j] = static_cast<float>(beta1_) * m[j] + static_cast<float>(1.0 - beta1_) * g[j];
      u[j] = std::max(static_cast<float>(beta2_) * u[j], std::fabs(g[j]));
      p[j] -= static_cast<float>(lr_ / bc1 * m[j] / (u[j] + eps_));
    }
  }
}

void AdaMax::reset() {
  m_ = {};
  u_ = {};
  t_ = 0;
}

RmsProp::RmsProp(double lr, double decay, double eps)
    : Optimizer(lr), decay_(decay), eps_(eps) {}

void RmsProp::step(nn::Model& model) {
  Slots s = collect(model);
  ensure_state(accum_, model);
  for (std::size_t i = 0; i < s.params.size(); ++i) {
    float* g = s.grads[i]->data();
    float* a = accum_.entry_span(i).data();
    float* p = s.params[i]->data();
    const std::int64_t n = s.params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      a[j] = static_cast<float>(decay_) * a[j] +
             static_cast<float>(1.0 - decay_) * g[j] * g[j];
      p[j] -= static_cast<float>(lr_) * g[j] /
              (std::sqrt(a[j]) + static_cast<float>(eps_));
    }
  }
}

void RmsProp::reset() { accum_ = {}; }

Adgd::Adgd(double lr) : Optimizer(lr), lambda_prev_(lr) {}

void Adgd::step(nn::Model& model) {
  Slots s = collect(model);
  nn::FlatParams params = model.parameters();
  nn::FlatParams grads = model.gradients();

  double lambda = lambda_prev_;
  if (has_prev_) {
    double dx2 = 0.0, dg2 = 0.0;
    // One pass over the arenas in ascending order — the same coordinate
    // order the old per-tensor loop accumulated in.
    const std::span<const float> p = params.as_span();
    const std::span<const float> pp = prev_params_.as_span();
    const std::span<const float> g = grads.as_span();
    const std::span<const float> pg = prev_grads_.as_span();
    for (std::size_t j = 0; j < p.size(); ++j) {
      const double dp = static_cast<double>(p[j]) - pp[j];
      const double dg = static_cast<double>(g[j]) - pg[j];
      dx2 += dp * dp;
      dg2 += dg * dg;
    }
    const double growth = std::sqrt(1.0 + theta_prev_) * lambda_prev_;
    const double curvature =
        dg2 > 0.0 ? std::sqrt(dx2) / (2.0 * std::sqrt(dg2)) : growth;
    lambda = std::min(growth, curvature);
    if (!(lambda > 0.0) || !std::isfinite(lambda)) lambda = lambda_prev_;
    theta_prev_ = lambda / lambda_prev_;
  }

  for (std::size_t i = 0; i < s.params.size(); ++i)
    s.params[i]->add_scaled(*s.grads[i], static_cast<float>(-lambda));

  prev_params_ = std::move(params);
  prev_grads_ = std::move(grads);
  lambda_prev_ = lambda;
  has_prev_ = true;
}

void Adgd::reset() {
  prev_params_ = {};
  prev_grads_ = {};
  lambda_prev_ = lr_;
  theta_prev_ = 1.0;
  has_prev_ = false;
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, double lr) {
  if (name == "sgd") return std::make_unique<Sgd>(lr);
  if (name == "adagrad") return std::make_unique<Adagrad>(lr);
  if (name == "adam") return std::make_unique<Adam>(lr);
  if (name == "adamax") return std::make_unique<AdaMax>(lr);
  if (name == "rmsprop") return std::make_unique<RmsProp>(lr);
  if (name == "adgd") return std::make_unique<Adgd>(lr);
  throw Error("unknown optimizer: " + name);
}

}  // namespace dinar::opt
