// Optimizer interface.
//
// DINAR's Algorithm 1 trains with Adagrad-style adaptive gradient descent
// and resets the accumulated statistics at the start of every FL round
// (line 8: G <- 0); the trainer therefore calls reset() per round. The
// ablation of paper Figure 11 swaps in Adam / AdaMax / ADGD through this
// interface.
//
// Optimizer state is held as flat tensor lists aligned with
// Model::parameters() ordering and is lazily (re)initialized when the
// parameter structure changes.
#pragma once

#include <memory>
#include <string>

#include "nn/model.h"

namespace dinar::opt {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the model's currently accumulated gradients.
  virtual void step(nn::Model& model) = 0;

  // Clears accumulated state (start of an FL round in Algorithm 1).
  virtual void reset() = 0;

  virtual std::string name() const = 0;

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

using OptimizerFactory = std::function<std::unique_ptr<Optimizer>()>;

}  // namespace dinar::opt
