// Gradient-compression defense (paper §5.2, baseline GC [7]).
//
// The client uploads the received global model plus only the top-k
// largest-magnitude coordinates of its local update delta; the rest are
// dropped. Less information in the update means less membership signal
// for the attacker — and, as the paper observes, less utility.
#pragma once

#include "fl/defense.h"

namespace dinar::privacy {

class GradientCompressionDefense final : public fl::ClientDefense {
 public:
  // keep_ratio: fraction of delta coordinates transmitted (e.g. 0.1).
  explicit GradientCompressionDefense(double keep_ratio);

  std::string name() const override { return "gc"; }
  void on_download(nn::Model& model, const nn::FlatParams& global_params) override;
  nn::FlatParams before_upload(nn::Model& model, nn::FlatParams params,
                               std::int64_t num_samples, bool& pre_weighted) override;

 private:
  double keep_ratio_;
  nn::FlatParams reference_;  // global model received this round
};

}  // namespace dinar::privacy
