// Factory for the paper's baseline defense bundles (§5.2): none, LDP,
// CDP, WDP, GC, SA. DINAR's own bundle lives in core/dinar_defense.h;
// the experiment harness composes both catalogs.
#pragma once

#include <string>

#include "fl/simulation.h"
#include "privacy/dp.h"

namespace dinar::privacy {

struct BaselineDefenseConfig {
  DpParams dp;                   // LDP / CDP budget (paper: eps 2.2, delta 1e-5)
  double wdp_norm_bound = 5.0;   // paper §5.2
  double wdp_sigma = 0.025;      // paper §5.2
  double gc_keep_ratio = 0.05;
  double sa_mask_stddev = 1000.0;
  int num_clients = 5;           // SA needs the group size up front
  std::uint64_t seed = 7;
};

// name in {"none", "ldp", "cdp", "wdp", "gc", "sa"}; throws on others.
fl::DefenseBundle make_baseline_bundle(const std::string& name,
                                       const BaselineDefenseConfig& config);

}  // namespace dinar::privacy
