#include "privacy/defense_catalog.h"

#include "privacy/gradient_compression.h"
#include "privacy/secure_aggregation.h"
#include "util/error.h"

namespace dinar::privacy {

fl::DefenseBundle make_baseline_bundle(const std::string& name,
                                       const BaselineDefenseConfig& config) {
  fl::DefenseBundle bundle;
  bundle.name = name;

  if (name == "none") return bundle;

  if (name == "ldp") {
    const DpParams dp = config.dp;
    const std::uint64_t seed = config.seed;
    bundle.make_client = [dp, seed](int client_id) {
      return std::make_unique<LdpDefense>(dp, Rng(seed).fork(static_cast<std::uint64_t>(client_id)));
    };
    return bundle;
  }

  if (name == "cdp") {
    const DpParams dp = config.dp;
    const std::uint64_t seed = config.seed;
    bundle.make_server = [dp, seed] {
      return std::make_unique<CdpDefense>(dp, Rng(seed).fork(0x5e37e3));
    };
    return bundle;
  }

  if (name == "wdp") {
    const double bound = config.wdp_norm_bound, sigma = config.wdp_sigma;
    const std::uint64_t seed = config.seed;
    bundle.make_client = [bound, sigma, seed](int client_id) {
      return std::make_unique<WdpDefense>(
          bound, sigma, Rng(seed).fork(0x7D0 + static_cast<std::uint64_t>(client_id)));
    };
    return bundle;
  }

  if (name == "gc") {
    const double keep = config.gc_keep_ratio;
    bundle.make_client = [keep](int) {
      return std::make_unique<GradientCompressionDefense>(keep);
    };
    return bundle;
  }

  if (name == "sa") {
    auto group = std::make_shared<SecureAggregationGroup>(config.num_clients, config.seed,
                                                          config.sa_mask_stddev);
    bundle.make_client = [group](int client_id) {
      return std::make_unique<SecureAggregationDefense>(group, client_id);
    };
    return bundle;
  }

  throw Error("unknown baseline defense: " + name);
}

}  // namespace dinar::privacy
