// Differential-privacy baseline defenses (paper §5.2):
//
//  - LDP: each client clips its outgoing parameters to an L2 bound and
//    adds Gaussian noise calibrated to (epsilon, delta) before upload.
//  - CDP: the server adds the same calibrated noise to the aggregate
//    before broadcast.
//  - WDP ("weak DP", Sun et al. [43]): norm bounding plus fixed
//    low-magnitude Gaussian noise (paper settings: bound 5, sigma 0.025).
//
// Noise is calibrated with the classical Gaussian-mechanism bound
//   sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon.
#pragma once

#include <memory>

#include "fl/defense.h"
#include "util/rng.h"

namespace dinar::privacy {

struct DpParams {
  double epsilon = 2.2;    // paper §5.2
  double delta = 1e-5;     // paper §5.2
  double clip_norm = 5.0;  // L2 bound applied before noising
  // Per-coordinate sensitivity proxy; scales the Gaussian-mechanism sigma.
  double sensitivity = 0.05;

  double sigma() const;
};

// Clips a flat parameter arena to `clip_norm` (global L2) in place.
void clip_l2(nn::FlatParams& params, double clip_norm);
// Adds iid N(0, sigma^2) to every coordinate, drawn in arena order.
void add_gaussian_noise(nn::FlatParams& params, double sigma, Rng& rng);

class LdpDefense final : public fl::ClientDefense {
 public:
  LdpDefense(DpParams params, Rng rng) : params_(params), rng_(rng) {}

  std::string name() const override { return "ldp"; }
  nn::FlatParams before_upload(nn::Model& model, nn::FlatParams params,
                               std::int64_t num_samples, bool& pre_weighted) override;

 private:
  DpParams params_;
  Rng rng_;
};

class CdpDefense final : public fl::ServerDefense {
 public:
  CdpDefense(DpParams params, Rng rng) : params_(params), rng_(rng) {}

  std::string name() const override { return "cdp"; }
  void after_aggregate(nn::FlatParams& params) override;

 private:
  DpParams params_;
  Rng rng_;
};

class WdpDefense final : public fl::ClientDefense {
 public:
  // Paper settings: norm bound 5, sigma 0.025.
  WdpDefense(double norm_bound, double sigma, Rng rng)
      : norm_bound_(norm_bound), sigma_(sigma), rng_(rng) {}

  std::string name() const override { return "wdp"; }
  nn::FlatParams before_upload(nn::Model& model, nn::FlatParams params,
                               std::int64_t num_samples, bool& pre_weighted) override;

 private:
  double norm_bound_;
  double sigma_;
  Rng rng_;
};

}  // namespace dinar::privacy
