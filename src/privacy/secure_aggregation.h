// Secure-aggregation defense (paper §5.2, baseline SA [54]).
//
// Bonawitz-style pairwise additive masking: every client pair (i, j)
// shares a seed; each round client i adds, for every j != i, a mask
// derived from (seed_ij, round) with sign +1 if i < j and -1 otherwise.
// Each individual upload is statistically masked (the server-side
// attacker sees noise), but the masks cancel in the sum, so the
// aggregate is exact. Because cancellation only happens under an
// *unweighted* sum, SA clients pre-multiply their parameters by their
// FedAvg weight and set the update's pre_weighted flag (see
// fl/message.h).
//
// The global model is NOT protected — matching the paper's observation
// that SA reaches 50% attack AUC on local models while leaving the
// global model exposed (Figure 6).
#pragma once

#include <memory>
#include <vector>

#include "fl/defense.h"
#include "util/rng.h"

namespace dinar::privacy {

// Shared coordinator holding the pairwise seeds (the result of the key
// agreement a real deployment would run).
class SecureAggregationGroup {
 public:
  SecureAggregationGroup(int num_clients, std::uint64_t group_seed,
                         double mask_stddev = 1000.0);

  int num_clients() const { return num_clients_; }
  double mask_stddev() const { return mask_stddev_; }
  // Seed shared by the (unordered) pair {i, j}.
  std::uint64_t pair_seed(int i, int j) const;

 private:
  int num_clients_;
  double mask_stddev_;
  std::vector<std::uint64_t> seeds_;  // upper-triangular pair matrix
};

class SecureAggregationDefense final : public fl::ClientDefense {
 public:
  SecureAggregationDefense(std::shared_ptr<const SecureAggregationGroup> group,
                           int client_id);

  std::string name() const override { return "sa"; }
  nn::FlatParams before_upload(nn::Model& model, nn::FlatParams params,
                               std::int64_t num_samples, bool& pre_weighted) override;

 private:
  std::shared_ptr<const SecureAggregationGroup> group_;
  int client_id_;
  std::int64_t round_counter_ = 0;
};

}  // namespace dinar::privacy
