#include "privacy/gradient_compression.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace dinar::privacy {

GradientCompressionDefense::GradientCompressionDefense(double keep_ratio)
    : keep_ratio_(keep_ratio) {
  DINAR_CHECK(keep_ratio > 0.0 && keep_ratio <= 1.0, "keep ratio must be in (0,1]");
}

void GradientCompressionDefense::on_download(nn::Model& model,
                                             const nn::FlatParams& global_params) {
  reference_ = global_params;
  model.set_parameters(global_params);
}

nn::FlatParams GradientCompressionDefense::before_upload(nn::Model& /*model*/,
                                                         nn::FlatParams params,
                                                         std::int64_t /*num_samples*/,
                                                         bool& /*pre_weighted*/) {
  DINAR_CHECK(!reference_.empty(), "GC upload before any download");
  DINAR_CHECK(params.same_layout(reference_),
              "GC reference/update structure mismatch");

  // Magnitudes of the update delta across the whole arena.
  const std::span<const float> r = reference_.as_span();
  const std::span<float> p = params.as_span();
  std::vector<float> magnitudes;
  magnitudes.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    magnitudes.push_back(std::fabs(p[i] - r[i]));
  if (magnitudes.empty()) return params;

  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(keep_ratio_ * static_cast<double>(magnitudes.size())));
  std::vector<float> sorted = magnitudes;
  std::nth_element(sorted.begin(), sorted.end() - static_cast<std::ptrdiff_t>(keep),
                   sorted.end());
  const float threshold = sorted[sorted.size() - keep];

  // Below-threshold coordinates revert to the reference (delta dropped).
  for (std::size_t i = 0; i < p.size(); ++i)
    if (std::fabs(p[i] - r[i]) < threshold) p[i] = r[i];
  return params;
}

}  // namespace dinar::privacy
