#include "privacy/secure_aggregation.h"

#include "util/error.h"

namespace dinar::privacy {

SecureAggregationGroup::SecureAggregationGroup(int num_clients, std::uint64_t group_seed,
                                               double mask_stddev)
    : num_clients_(num_clients), mask_stddev_(mask_stddev) {
  DINAR_CHECK(num_clients >= 2, "secure aggregation needs at least two clients");
  // Derive one seed per unordered pair from the group seed.
  Rng rng(group_seed);
  const std::size_t pairs =
      static_cast<std::size_t>(num_clients) * static_cast<std::size_t>(num_clients - 1) / 2;
  seeds_.reserve(pairs);
  for (std::size_t k = 0; k < pairs; ++k) seeds_.push_back(rng.next_u64());
}

std::uint64_t SecureAggregationGroup::pair_seed(int i, int j) const {
  DINAR_CHECK(i != j && i >= 0 && j >= 0 && i < num_clients_ && j < num_clients_,
              "invalid client pair");
  const int lo = std::min(i, j), hi = std::max(i, j);
  // Index into the flattened strict upper triangle.
  const std::size_t index = static_cast<std::size_t>(lo) *
                                (2 * static_cast<std::size_t>(num_clients_) -
                                 static_cast<std::size_t>(lo) - 1) /
                                2 +
                            static_cast<std::size_t>(hi - lo - 1);
  return seeds_[index];
}

SecureAggregationDefense::SecureAggregationDefense(
    std::shared_ptr<const SecureAggregationGroup> group, int client_id)
    : group_(std::move(group)), client_id_(client_id) {
  DINAR_CHECK(group_ != nullptr, "SA defense needs a group");
  DINAR_CHECK(client_id >= 0 && client_id < group_->num_clients(),
              "client id outside SA group");
}

nn::FlatParams SecureAggregationDefense::before_upload(nn::Model& /*model*/,
                                                       nn::FlatParams params,
                                                       std::int64_t num_samples,
                                                       bool& pre_weighted) {
  // Pre-weight so the server-side unweighted sum equals FedAvg's numerator.
  nn::flat_scale(params, static_cast<float>(num_samples));
  pre_weighted = true;

  for (int other = 0; other < group_->num_clients(); ++other) {
    if (other == client_id_) continue;
    // Fresh per-round mask stream from the shared pair seed; both ends of
    // the pair derive identical masks with opposite signs. One draw per
    // coordinate in arena order — the order the old per-tensor loop used.
    Rng mask_rng(group_->pair_seed(client_id_, other) ^
                 static_cast<std::uint64_t>(round_counter_) * 0x9e3779b97f4a7c15ULL);
    const float sign = client_id_ < other ? 1.0f : -1.0f;
    for (float& v : params.as_span())
      v += sign * static_cast<float>(mask_rng.gaussian(0.0, group_->mask_stddev()));
  }
  ++round_counter_;
  return params;
}

}  // namespace dinar::privacy
