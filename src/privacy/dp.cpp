#include "privacy/dp.h"

#include <cmath>

#include "util/error.h"

namespace dinar::privacy {

double DpParams::sigma() const {
  DINAR_CHECK(epsilon > 0.0 && delta > 0.0 && delta < 1.0, "invalid DP budget");
  return sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

void clip_l2(nn::FlatParams& params, double clip_norm) {
  DINAR_CHECK(clip_norm > 0.0, "clip norm must be positive");
  const double norm = nn::flat_l2_norm(params);
  if (norm <= clip_norm || norm == 0.0) return;
  nn::flat_scale(params, static_cast<float>(clip_norm / norm));
}

void add_gaussian_noise(nn::FlatParams& params, double sigma, Rng& rng) {
  if (sigma <= 0.0) return;
  // One draw per coordinate in arena order — the same order the old
  // per-tensor loop consumed the stream in.
  for (float& v : params.as_span())
    v += static_cast<float>(rng.gaussian(0.0, sigma));
}

nn::FlatParams LdpDefense::before_upload(nn::Model& /*model*/, nn::FlatParams params,
                                         std::int64_t /*num_samples*/,
                                         bool& /*pre_weighted*/) {
  clip_l2(params, params_.clip_norm);
  add_gaussian_noise(params, params_.sigma(), rng_);
  return params;
}

void CdpDefense::after_aggregate(nn::FlatParams& params) {
  clip_l2(params, params_.clip_norm);
  add_gaussian_noise(params, params_.sigma(), rng_);
}

nn::FlatParams WdpDefense::before_upload(nn::Model& /*model*/, nn::FlatParams params,
                                         std::int64_t /*num_samples*/,
                                         bool& /*pre_weighted*/) {
  clip_l2(params, norm_bound_);
  add_gaussian_noise(params, sigma_, rng_);
  return params;
}

}  // namespace dinar::privacy
