// Table 3: cost of each defense relative to the undefended FL baseline
// (GTSRB + VGG-family model): client-side training+defense time per
// round, server-side aggregation time per round, and peak client memory.
// Paper values are percentages over the baseline.
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

struct PaperOverheads {
  const char* defense;
  double train_pct, agg_pct, mem_pct;
};

const PaperOverheads kPaper[] = {
    {"wdp", 35, 0, 257}, {"ldp", 7, 0, 267},  {"cdp", 0, 3000, 261},
    {"gc", 21, 0, 252},  {"sa", 21, 4, 0},    {"dinar", 0, 0, 0},
};

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Table 3 — defense overheads vs FL baseline (GTSRB)",
               "Table 3, §5.6");

  PreparedCase prepared = prepare_case(get_case("gtsrb", scale),
                                       std::numeric_limits<double>::infinity(),
                                       /*fit_mia=*/false);

  const ExperimentResult base =
      run_experiment(prepared, make_bundle("none", prepared, {}));
  const double base_client =
      base.client_train_seconds_per_round + base.client_defense_seconds_per_round;
  const double base_agg = base.server_aggregate_seconds_per_round;
  const double base_mem = static_cast<double>(base.peak_memory_bytes);

  std::printf("\nbaseline: client %.3fs/round, aggregation %.6fs/round, peak "
              "memory %.1f MiB\n\n",
              base_client, base_agg, base_mem / (1024.0 * 1024.0));
  print_table_header("defense", {"train%(p)", "train%(m)", "agg%(p)", "agg%(m)",
                                 "mem%(p)", "mem%(m)"}, 11);

  for (const PaperOverheads& row : kPaper) {
    const ExperimentResult r =
        run_experiment(prepared, make_bundle(row.defense, prepared, {}));
    const double client =
        r.client_train_seconds_per_round + r.client_defense_seconds_per_round;
    const double train_pct = 100.0 * (client - base_client) / base_client;
    const double agg_pct =
        100.0 * (r.server_aggregate_seconds_per_round - base_agg) / base_agg;
    const double mem_pct =
        100.0 * (static_cast<double>(r.peak_memory_bytes) - base_mem) / base_mem;
    print_table_row(row.defense, {row.train_pct, train_pct, row.agg_pct, agg_pct,
                                  row.mem_pct, mem_pct},
                    11);
  }
  std::printf("\n(p) = paper (A40 GPU + Opacus), (m) = measured on this CPU "
              "substrate. The reproduction target is the ordering: DINAR adds "
              "no measurable cost on any axis; CDP's cost is server-side; "
              "client-side defenses cost client time.\n");
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
