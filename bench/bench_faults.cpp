// Robustness sweep: the fault-tolerant round protocol under client
// dropout, mirroring Figure 9's client-count axis (Purchase100). For each
// client count we raise the message-drop rate and report final accuracy
// plus the protocol's repair work (retries, carried-forward rounds,
// quarantined updates). The paper's federation assumes reliable clients;
// this bench measures how far quorum aggregation stretches that assumption
// before utility degrades.
//
// `--smoke` swaps in the small synthetic case and a 2x2 sweep so CI can
// exercise the full bench path in seconds; `--threads N` sizes the
// simulation's execution context (results are identical, only faster). Either way the sweep is also
// written to BENCH_FAULTS.json for machine consumption.
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

struct SweepResult {
  double accuracy = 0.0;
  int carried_forward = 0;
  int retries = 0;
  std::size_t quarantined = 0;
};

SweepResult run_faulty(const DatasetCase& spec, double drop_rate,
                       unsigned threads) {
  Rng rng(spec.seed);
  const data::Dataset full = spec.make_data(rng);
  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = spec.num_clients;
  data::FlSplit split = data::make_fl_split(full, split_cfg, rng);

  fl::SimulationConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.seed = spec.seed + 7;
  cfg.faults.drop_up = drop_rate;
  cfg.faults.drop_down = drop_rate;
  cfg.faults.corrupt_up = drop_rate > 0.0 ? 0.02 : 0.0;
  cfg.min_clients = static_cast<std::size_t>(std::max(1, spec.num_clients / 3));
  cfg.max_retries = 2;
  cfg.exec.threads = threads;

  fl::FederatedSimulation sim(spec.model_factory, std::move(split), cfg,
                              fl::DefenseBundle{});
  sim.run();

  SweepResult out;
  out.accuracy = sim.history().back().global_test_accuracy;
  for (const fl::RoundOutcome& round : sim.round_log()) {
    out.carried_forward += round.carried_forward ? 1 : 0;
    out.retries += round.retries_used;
    out.quarantined += round.quarantined.size();
  }
  return out;
}

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const bool smoke = parse_flag(argc, argv, "--smoke");
  const unsigned threads = parse_threads(argc, argv);
  print_header("Fault tolerance — dropout sweep over FL client counts "
               "(Purchase100)",
               "robustness companion to Figure 9, §5.9");

  const std::vector<int> client_counts = smoke ? std::vector<int>{5}
                                               : std::vector<int>{5, 10, 15, 20};
  const std::vector<double> drop_rates =
      smoke ? std::vector<double>{0.0, 0.3}
            : std::vector<double>{0.0, 0.1, 0.3, 0.5};

  BenchJson json("faults");
  print_table_header("clients", {"drop%", "acc%", "carried", "retries",
                                 "quarantined"});
  for (int clients : client_counts) {
    for (double drop : drop_rates) {
      DatasetCase spec =
          smoke ? small_mlp_case(scale) : get_case("purchase100", scale);
      spec.num_clients = clients;
      const SweepResult r = run_faulty(spec, drop, threads);
      print_table_row(std::to_string(clients),
                      {100.0 * drop, 100.0 * r.accuracy,
                       static_cast<double>(r.carried_forward),
                       static_cast<double>(r.retries),
                       static_cast<double>(r.quarantined)});
      json.begin_row()
          .field("case", spec.name)
          .field("clients", static_cast<std::int64_t>(clients))
          .field("drop_rate", drop)
          .field("accuracy", r.accuracy)
          .field("carried_forward", static_cast<std::int64_t>(r.carried_forward))
          .field("retries", static_cast<std::int64_t>(r.retries))
          .field("quarantined", static_cast<std::int64_t>(r.quarantined));
    }
  }
  std::printf("\nexpected: accuracy holds near the zero-drop baseline while a "
              "quorum still forms each round; carried-forward rounds appear "
              "only once drop+crash outpaces min_clients (= clients/3).\n");
  json.write();
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
