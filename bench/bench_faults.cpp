// Robustness sweep: the fault-tolerant round protocol under client
// dropout, mirroring Figure 9's client-count axis (Purchase100). For each
// client count we raise the message-drop rate and report final accuracy
// plus the protocol's repair work (retries, carried-forward rounds,
// quarantined updates). The paper's federation assumes reliable clients;
// this bench measures how far quorum aggregation stretches that assumption
// before utility degrades.
//
// `--smoke` swaps in the small synthetic case and a 2x2 sweep so CI can
// exercise the full bench path in seconds; `--threads N` sizes the
// simulation's execution context (results are identical, only faster). Either way the sweep is also
// written to BENCH_FAULTS.json for machine consumption.
//
// The second section benchmarks crash recovery: after a kill at `delta`
// rounds past the last durable point, the old resume path reloads a full
// checkpoint and *re-executes* the lost rounds (re-training included),
// while the durable round store replays `delta` O(changed-state) WAL
// records on top of its snapshot — bit-identical by construction. Rows go
// to BENCH_RECOVERY.json; the gate (enforced in every mode, so the smoke
// run guards CI) requires bit-identical recovery on every row and WAL
// replay beating re-execution at the largest delta.
#include <chrono>
#include <filesystem>

#include "fl/durable.h"
#include "store/round_store.h"
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

struct SweepResult {
  double accuracy = 0.0;
  int carried_forward = 0;
  int retries = 0;
  std::size_t quarantined = 0;
};

SweepResult run_faulty(const DatasetCase& spec, double drop_rate,
                       unsigned threads) {
  Rng rng(spec.seed);
  const data::Dataset full = spec.make_data(rng);
  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = spec.num_clients;
  data::FlSplit split = data::make_fl_split(full, split_cfg, rng);

  fl::SimulationConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.seed = spec.seed + 7;
  cfg.faults.drop_up = drop_rate;
  cfg.faults.drop_down = drop_rate;
  cfg.faults.corrupt_up = drop_rate > 0.0 ? 0.02 : 0.0;
  cfg.min_clients = static_cast<std::size_t>(std::max(1, spec.num_clients / 3));
  cfg.max_retries = 2;
  cfg.exec.threads = threads;

  fl::FederatedSimulation sim(spec.model_factory, std::move(split), cfg,
                              fl::DefenseBundle{});
  sim.run();

  SweepResult out;
  out.accuracy = sim.history().back().global_test_accuracy;
  for (const fl::RoundOutcome& round : sim.round_log()) {
    out.carried_forward += round.carried_forward ? 1 : 0;
    out.retries += round.retries_used;
    out.quarantined += round.quarantined.size();
  }
  return out;
}

// -- crash-recovery benchmark ------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

fl::FederatedSimulation make_recovery_sim(const DatasetCase& spec, int rounds,
                                          unsigned threads) {
  Rng rng(spec.seed);
  const data::Dataset full = spec.make_data(rng);
  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = spec.num_clients;
  data::FlSplit split = data::make_fl_split(full, split_cfg, rng);

  fl::SimulationConfig cfg;
  cfg.rounds = rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.seed = spec.seed + 13;
  cfg.faults.drop_up = 0.1;  // outcome-rich WAL records (retries, losses)
  cfg.min_clients = static_cast<std::size_t>(std::max(1, spec.num_clients / 3));
  cfg.max_retries = 2;
  cfg.exec.threads = threads;
  return fl::FederatedSimulation(spec.model_factory, std::move(split), cfg,
                                 fl::DefenseBundle{});
}

std::vector<std::uint8_t> full_state_bytes(const fl::FederatedSimulation& sim) {
  BinaryWriter w;
  sim.save_full_state(w);
  return w.take();
}

// One row: kill `delta` rounds past the last snapshot, then recover both
// ways. Returns false if the gate fails. Bit-identical recovery is required
// for every row; `require_speedup` additionally demands replay beat the
// re-execution path — asserted only at the largest delta, where replay's
// fixed snapshot-load cost is amortised (at delta=1 on the smoke-sized model
// the snapshot load alone can exceed one round of re-training).
bool run_recovery_row(const DatasetCase& spec, int delta, bool require_speedup,
                      unsigned threads, BenchJson& json) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "dinar_bench_recovery").string();
  fs::remove_all(dir);
  // One snapshot at round `delta + 1`, then `delta` WAL-only rounds.
  const int snapshot_every = delta + 1;
  const int rounds = snapshot_every + delta;
  // The kill lands mid-run: configure one more round than we execute so
  // recovery does not treat the resume point as the finished run (which
  // would trigger the final-eval recompute the writer never reached).
  const int config_rounds = rounds + 1;
  const std::string ckpt = dir + "/legacy.ckpt";

  std::vector<std::uint8_t> reference;
  std::uint64_t wal_bytes = 0;
  {
    store::RoundStore store(dir + "/store");
    fl::FederatedSimulation sim = make_recovery_sim(spec, config_rounds, threads);
    sim.attach_store(&store, snapshot_every);
    for (int r = 0; r < rounds; ++r) {
      sim.run_round();
      // The pre-store resume path would have a full checkpoint from the
      // same durable point the snapshot captures.
      if (r + 1 == snapshot_every) sim.save_checkpoint(ckpt);
    }
    reference = full_state_bytes(sim);
    wal_bytes = store.wal_size_bytes();
  }  // the writer "dies" here; everything below starts from disk

  // O(delta) path: snapshot + WAL replay, bit-identical.
  store::RoundStore store(dir + "/store");
  fl::FederatedSimulation replayed = make_recovery_sim(spec, config_rounds, threads);
  replayed.attach_store(&store, snapshot_every);
  const auto t0 = std::chrono::steady_clock::now();
  replayed.recover_from_store();
  const double replay_s = seconds_since(t0);
  const std::vector<std::uint8_t> recovered = full_state_bytes(replayed);
  const bool bit_identical = recovered == reference;
  if (!bit_identical) {
    std::size_t diff = 0;
    while (diff < std::min(recovered.size(), reference.size()) &&
           recovered[diff] == reference[diff])
      ++diff;
    std::printf("  [diverged: sizes %zu vs %zu, first difference at byte %zu]\n",
                recovered.size(), reference.size(), diff);
  }

  // Full-reload path: load the checkpoint, re-execute the lost rounds
  // (local training and all).
  fl::FederatedSimulation reloaded = make_recovery_sim(spec, config_rounds, threads);
  const auto t1 = std::chrono::steady_clock::now();
  reloaded.restore_checkpoint(ckpt);
  for (int r = 0; r < delta; ++r) reloaded.run_round();
  const double rerun_s = seconds_since(t1);

  print_table_row(std::to_string(delta),
                  {1e3 * replay_s, 1e3 * rerun_s, rerun_s / replay_s,
                   static_cast<double>(wal_bytes) / 1024.0,
                   bit_identical ? 1.0 : 0.0});
  json.begin_row()
      .field("case", spec.name)
      .field("delta_rounds", static_cast<std::int64_t>(delta))
      .field("wal_replay_seconds", replay_s)
      .field("full_reload_rerun_seconds", rerun_s)
      .field("speedup", rerun_s / replay_s)
      .field("wal_bytes", static_cast<std::int64_t>(wal_bytes))
      .field("bit_identical", static_cast<std::int64_t>(bit_identical ? 1 : 0));
  fs::remove_all(dir);
  return bit_identical && (!require_speedup || replay_s < rerun_s);
}

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const bool smoke = parse_flag(argc, argv, "--smoke");
  const unsigned threads = parse_threads(argc, argv);
  print_header("Fault tolerance — dropout sweep over FL client counts "
               "(Purchase100)",
               "robustness companion to Figure 9, §5.9");

  const std::vector<int> client_counts = smoke ? std::vector<int>{5}
                                               : std::vector<int>{5, 10, 15, 20};
  const std::vector<double> drop_rates =
      smoke ? std::vector<double>{0.0, 0.3}
            : std::vector<double>{0.0, 0.1, 0.3, 0.5};

  BenchJson json("faults");
  print_table_header("clients", {"drop%", "acc%", "carried", "retries",
                                 "quarantined"});
  for (int clients : client_counts) {
    for (double drop : drop_rates) {
      DatasetCase spec =
          smoke ? small_mlp_case(scale) : get_case("purchase100", scale);
      spec.num_clients = clients;
      const SweepResult r = run_faulty(spec, drop, threads);
      print_table_row(std::to_string(clients),
                      {100.0 * drop, 100.0 * r.accuracy,
                       static_cast<double>(r.carried_forward),
                       static_cast<double>(r.retries),
                       static_cast<double>(r.quarantined)});
      json.begin_row()
          .field("case", spec.name)
          .field("clients", static_cast<std::int64_t>(clients))
          .field("drop_rate", drop)
          .field("accuracy", r.accuracy)
          .field("carried_forward", static_cast<std::int64_t>(r.carried_forward))
          .field("retries", static_cast<std::int64_t>(r.retries))
          .field("quarantined", static_cast<std::int64_t>(r.quarantined));
    }
  }
  std::printf("\nexpected: accuracy holds near the zero-drop baseline while a "
              "quorum still forms each round; carried-forward rounds appear "
              "only once drop+crash outpaces min_clients (= clients/3).\n");
  json.write();

  // ---- crash recovery: full-reload re-execution vs O(delta) WAL replay ----
  print_header("Crash recovery — resume cost at delta rounds past the last "
               "durable point",
               "durable round store; recovery is bit-identical by contract");
  BenchJson recovery_json("recovery");
  print_table_header("delta", {"replay ms", "rerun ms", "speedup", "wal KiB",
                               "identical"});
  const std::vector<int> deltas =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  bool gate_ok = true;
  for (int delta : deltas) {
    const DatasetCase spec =
        smoke ? small_mlp_case(scale) : get_case("purchase100", scale);
    const bool require_speedup = delta == deltas.back();
    if (!run_recovery_row(spec, delta, require_speedup, threads, recovery_json))
      gate_ok = false;
  }
  std::printf("\nexpected: WAL replay deserializes the lost rounds' deltas "
              "instead of re-training them, so the speedup grows with delta; "
              "the recovered state is bit-identical to the pre-kill run.\n");
  recovery_json.write();
  if (!gate_ok) {
    std::printf("GATE FAILED: recovery must be bit-identical on every row and "
                "WAL replay must beat full-reload re-execution at the largest "
                "delta\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
