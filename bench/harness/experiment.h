// Shared experiment harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table/figure. They all share:
//  - the dataset registry: scaled-down analogues of the paper's six
//    datasets (Table 2), each paired with its model architecture and FL
//    schedule (§5.3);
//  - the runner: trains an FL simulation under a named defense, fits the
//    shadow-model MIA once per dataset (the attack depends on data +
//    architecture, not on the defense), and reports privacy (attack AUC),
//    utility (accuracy) and cost metrics;
//  - table printers that emit the measured value next to the paper's
//    reported value for every artifact.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "attack/evaluation.h"
#include "core/dinar.h"
#include "privacy/defense_catalog.h"

namespace dinar::bench {

// A scaled-down analogue of one of the paper's datasets, fully specifying
// data generation, model architecture, FL schedule and attack effort.
struct DatasetCase {
  std::string name;         // e.g. "purchase100"
  std::string paper_model;  // e.g. "6-layer FCNN"
  std::function<data::Dataset(Rng&)> make_data;
  nn::ModelFactory model_factory;
  int num_clients = 5;
  int rounds = 10;
  int local_epochs = 3;
  std::int64_t batch_size = 64;
  double learning_rate = 1e-2;
  attack::MiaConfig mia;
  std::uint64_t seed = 2024;
};

// Registry of the six dataset analogues; `scale` in (0, 1] shrinks sample
// counts and rounds proportionally for quick runs.
DatasetCase get_case(const std::string& name, double scale = 1.0);
std::vector<std::string> all_case_names();

// A deliberately small tabular case (64 features, 8 classes, narrow FCNN)
// for robustness sweeps and CI smoke runs, where the paper-scale cases are
// needlessly heavy. Not part of all_case_names(): the figure benches
// iterate that list and must keep reproducing the paper's six datasets.
DatasetCase small_mlp_case(double scale = 1.0);

// A case with its data realized and the MIA fitted — reused across all
// defenses of one experiment.
struct PreparedCase {
  DatasetCase spec;
  data::FlSplit split;
  std::shared_ptr<attack::ShadowMia> mia;
  std::size_t dinar_layer = 0;  // consensus-agreed protected layer
};

// Generates data, splits it per the paper's layout, runs DINAR
// initialization (consensus on the protected layer), and fits the MIA.
// `dirichlet_alpha` configures non-IID shards (inf = IID).
PreparedCase prepare_case(const DatasetCase& spec,
                          double dirichlet_alpha =
                              std::numeric_limits<double>::infinity(),
                          bool fit_mia = true);

struct ExperimentResult {
  std::string defense;
  double global_attack_auc = 0.5;
  double local_attack_auc = 0.5;
  double global_accuracy = 0.0;
  double personalized_accuracy = 0.0;
  double client_train_seconds_per_round = 0.0;
  double client_defense_seconds_per_round = 0.0;
  double server_aggregate_seconds_per_round = 0.0;
  std::uint64_t peak_memory_bytes = 0;
  std::uint64_t uplink_bytes = 0;
};

// Known defense names: none, ldp, cdp, wdp, gc, sa, dinar.
fl::DefenseBundle make_bundle(const std::string& name, const PreparedCase& prepared,
                              const privacy::BaselineDefenseConfig& baseline_cfg);

// Trains under `bundle` and evaluates privacy + utility + costs.
// `optimizer` overrides the case's optimizer (Figure 11 ablation).
ExperimentResult run_experiment(const PreparedCase& prepared,
                                const fl::DefenseBundle& bundle,
                                const std::string& optimizer = "adagrad");

// ---------------------------------------------------------------- output --

// Parses a bench binary's command line: supports `--scale=<f>` (default
// from DINAR_BENCH_SCALE env or 1.0) and `--quick` (= --scale=0.35).
double parse_scale(int argc, char** argv);

// True if `flag` (e.g. "--smoke") appears on the command line.
bool parse_flag(int argc, char** argv, const char* flag);

// Parses `--threads=N` / `--threads N` (default 1 = sequential; 0 = all
// hardware threads). Feeds SimulationConfig::exec.threads — results are
// bit-identical for any value, only wall-clock changes.
unsigned parse_threads(int argc, char** argv);

// Machine-readable companion to the printed tables: collects rows of named
// values and writes them as a JSON array to BENCH_<NAME>.json (next to the
// working directory the bench ran in), so successive runs can be tracked
// as a trajectory instead of scraping stdout.
class BenchJson {
 public:
  // `bench_name` is lower-case, e.g. "faults" -> BENCH_FAULTS.json.
  explicit BenchJson(std::string bench_name);

  BenchJson& begin_row();
  BenchJson& field(const std::string& key, double value);
  BenchJson& field(const std::string& key, std::int64_t value);
  BenchJson& field(const std::string& key, const std::string& value);

  std::string path() const;
  std::string to_string() const;
  // Writes the file and prints its path; throws dinar::Error on I/O failure.
  void write() const;

 private:
  std::string name_;
  // Rows of (key, already-JSON-encoded value), in insertion order.
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

void print_header(const std::string& title, const std::string& paper_ref);

// Fixed-width row printing: print_row("DINAR", {50.0, 62.1}) etc.
void print_table_row(const std::string& label, const std::vector<double>& values,
                     int width = 12, int precision = 1);
void print_table_header(const std::string& label, const std::vector<std::string>& cols,
                        int width = 12);

}  // namespace dinar::bench
