#include "experiment.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "data/synthetic.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/memory_tracker.h"

namespace dinar::bench {
namespace {

std::int64_t scaled(std::int64_t n, double scale, std::int64_t min_value) {
  return std::max<std::int64_t>(min_value,
                                static_cast<std::int64_t>(static_cast<double>(n) * scale));
}

attack::MiaConfig default_mia(int shadow_epochs, double lr, std::uint64_t seed) {
  attack::MiaConfig mia;
  mia.num_shadows = 2;
  mia.shadow_train = fl::TrainConfig{shadow_epochs, 64};
  mia.learning_rate = lr;
  mia.max_rows_per_shadow = 500;
  mia.seed = seed;
  return mia;
}

}  // namespace

DatasetCase get_case(const std::string& name, double scale) {
  DatasetCase c;
  c.name = name;
  c.seed = 2024;

  if (name == "purchase100") {
    // Paper: 97 324 records, 600 binary features, 100 classes, 6-layer
    // FCNN, 10 clients, 300 rounds, 10 local epochs.
    c.paper_model = "6-layer FCNN";
    const std::int64_t samples = scaled(3000, scale, 800);
    c.make_data = [samples](Rng& rng) {
      data::TabularSpec spec;
      spec.num_samples = samples;
      spec.num_features = 600;
      spec.num_classes = 100;
      spec.label_noise = 0.2;
      return data::make_tabular(spec, rng);
    };
    c.model_factory = nn::fcnn6_factory(600, 100, 256);
    c.num_clients = 10;
    c.rounds = static_cast<int>(scaled(12, scale, 5));
    c.local_epochs = 3;
    c.learning_rate = 1e-2;
    c.mia = default_mia(20, 1e-2, 41);
    return c;
  }

  if (name == "texas100") {
    // Paper: 67 330 records, 6 170 binary features (scaled to 1 024), 100
    // classes, same FCNN as Purchase100.
    c.paper_model = "6-layer FCNN";
    const std::int64_t samples = scaled(2400, scale, 700);
    c.make_data = [samples](Rng& rng) {
      data::TabularSpec spec;
      spec.num_samples = samples;
      spec.num_features = 1024;
      spec.num_classes = 100;
      spec.template_density = 0.1;  // hospital discharge rows are sparse
      spec.label_noise = 0.2;
      return data::make_tabular(spec, rng);
    };
    c.model_factory = nn::fcnn6_factory(1024, 100, 256);
    c.num_clients = 5;
    c.rounds = static_cast<int>(scaled(10, scale, 4));
    c.local_epochs = 3;
    c.learning_rate = 1e-2;
    c.mia = default_mia(18, 1e-2, 42);
    return c;
  }

  if (name == "cifar10" || name == "cifar100") {
    // Paper: 50 000 32x32x3 images, ResNet20, 5 clients, 50 rounds.
    c.paper_model = "ResNet20";
    const int classes = name == "cifar10" ? 10 : 100;
    const std::int64_t samples = scaled(2000, scale, 600);
    c.make_data = [samples, classes](Rng& rng) {
      data::ImageSpec spec;
      spec.num_samples = samples;
      spec.channels = 3;
      spec.image_size = 12;
      spec.num_classes = classes;
      spec.label_noise = 0.2;
      return data::make_images(spec, rng);
    };
    c.model_factory = nn::resnet_small_factory(3, 12, classes);
    c.num_clients = 5;
    c.rounds = static_cast<int>(scaled(8, scale, 4));
    c.local_epochs = 2;
    c.learning_rate = 1e-2;
    c.mia = default_mia(12, 1e-2, name == "cifar10" ? 43 : 44);
    return c;
  }

  if (name == "gtsrb") {
    // Paper: 51 389 images, 43 classes, VGG11.
    c.paper_model = "VGG11";
    const std::int64_t samples = scaled(2000, scale, 600);
    c.make_data = [samples](Rng& rng) {
      data::ImageSpec spec;
      spec.num_samples = samples;
      spec.channels = 3;
      spec.image_size = 12;
      spec.num_classes = 43;
      spec.label_noise = 0.2;
      return data::make_images(spec, rng);
    };
    c.model_factory = nn::vgg_small_factory(3, 12, 43, 4);
    c.num_clients = 5;
    c.rounds = static_cast<int>(scaled(8, scale, 4));
    c.local_epochs = 2;
    c.learning_rate = 1e-2;
    c.mia = default_mia(12, 1e-2, 45);
    return c;
  }

  if (name == "celeba") {
    // Paper: 202 599 faces, 32 composite-attribute classes, VGG11; the
    // Figure 4 analysis uses an 8-parameter-layer CNN — vgg_small with 6
    // conv blocks has exactly 8 parameterized layers.
    c.paper_model = "VGG11 (8 param layers)";
    const std::int64_t samples = scaled(2000, scale, 600);
    c.make_data = [samples](Rng& rng) {
      data::ImageSpec spec;
      spec.num_samples = samples;
      spec.channels = 3;
      spec.image_size = 12;
      spec.num_classes = 32;
      spec.label_noise = 0.2;
      return data::make_images(spec, rng);
    };
    c.model_factory = nn::vgg_small_factory(3, 12, 32, 6);
    c.num_clients = 5;
    c.rounds = static_cast<int>(scaled(8, scale, 4));
    c.local_epochs = 2;
    c.learning_rate = 1e-2;
    c.mia = default_mia(12, 1e-2, 46);
    return c;
  }

  if (name == "speechcommands") {
    // Paper: 64 727 one-second utterances, 35 words, M18 1-D CNN.
    c.paper_model = "M18 (1-D CNN)";
    const std::int64_t samples = scaled(1800, scale, 600);
    c.make_data = [samples](Rng& rng) {
      data::AudioSpec spec;
      spec.num_samples = samples;
      spec.length = 512;
      spec.num_classes = 36;
      spec.label_noise = 0.2;
      return data::make_audio(spec, rng);
    };
    c.model_factory = nn::m5_audio_factory(512, 36);
    c.num_clients = 5;
    c.rounds = static_cast<int>(scaled(8, scale, 4));
    c.local_epochs = 2;
    c.learning_rate = 1e-2;
    c.mia = default_mia(14, 1e-2, 47);
    return c;
  }

  throw Error("unknown dataset case: " + name);
}

std::vector<std::string> all_case_names() {
  return {"purchase100", "texas100", "cifar10", "cifar100",
          "gtsrb",       "celeba",   "speechcommands"};
}

DatasetCase small_mlp_case(double scale) {
  DatasetCase c;
  c.name = "synthetic-small";
  c.paper_model = "narrow FCNN";
  c.seed = 2024;
  const std::int64_t samples = scaled(1600, scale, 320);
  c.make_data = [samples](Rng& rng) {
    data::TabularSpec spec;
    spec.num_samples = samples;
    spec.num_features = 64;
    spec.num_classes = 8;
    spec.label_noise = 0.05;
    return data::make_tabular(spec, rng);
  };
  c.model_factory = nn::fcnn6_factory(64, 8, 32);
  c.num_clients = 10;
  c.rounds = static_cast<int>(scaled(8, scale, 3));
  c.local_epochs = 2;
  c.learning_rate = 2e-2;
  c.mia = default_mia(8, 1e-2, 48);
  return c;
}

PreparedCase prepare_case(const DatasetCase& spec, double dirichlet_alpha, bool fit_mia) {
  PreparedCase prepared;
  prepared.spec = spec;

  Rng rng(spec.seed);
  data::Dataset full = spec.make_data(rng);

  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = spec.num_clients;
  split_cfg.dirichlet_alpha = dirichlet_alpha;
  prepared.split = data::make_fl_split(full, split_cfg, rng);

  // DINAR preliminary phase (§4.1): per-client sensitivity + consensus.
  core::DinarInitConfig init_cfg;
  init_cfg.warmup = fl::TrainConfig{std::max(3, spec.local_epochs * 2),
                                    spec.batch_size};
  init_cfg.learning_rate = spec.learning_rate;
  init_cfg.seed = spec.seed ^ 0xD1AA;
  const core::DinarInitResult init = core::run_dinar_initialization(
      spec.model_factory, prepared.split.client_train, prepared.split.test, init_cfg);
  prepared.dinar_layer = init.agreed_layer;

  if (fit_mia) {
    prepared.mia = std::make_shared<attack::ShadowMia>(
        spec.model_factory, prepared.split.attacker_prior, spec.mia);
    prepared.mia->fit();
  }
  return prepared;
}

fl::DefenseBundle make_bundle(const std::string& name, const PreparedCase& prepared,
                              const privacy::BaselineDefenseConfig& baseline_cfg) {
  if (name == "dinar")
    return core::make_dinar_bundle({prepared.dinar_layer},
                                   prepared.spec.seed ^ 0xD1BA);
  privacy::BaselineDefenseConfig cfg = baseline_cfg;
  cfg.num_clients = prepared.spec.num_clients;
  return privacy::make_baseline_bundle(name, cfg);
}

ExperimentResult run_experiment(const PreparedCase& prepared,
                                const fl::DefenseBundle& bundle,
                                const std::string& optimizer) {
  const DatasetCase& spec = prepared.spec;

  MemoryTracker::instance().reset_peak();

  fl::SimulationConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.optimizer = optimizer;
  cfg.seed = spec.seed + 7;

  fl::FederatedSimulation sim(spec.model_factory, prepared.split, cfg, bundle);
  sim.run();

  ExperimentResult result;
  result.defense = bundle.name;
  const fl::RoundRecord& last = sim.history().back();
  result.global_accuracy = last.global_test_accuracy;
  result.personalized_accuracy = last.personalized_test_accuracy;
  result.client_train_seconds_per_round =
      sim.mean_client_train_seconds() / spec.rounds;
  result.client_defense_seconds_per_round =
      sim.mean_client_defense_seconds() / spec.rounds;
  result.server_aggregate_seconds_per_round =
      sim.server_aggregation_seconds() / spec.rounds;
  result.peak_memory_bytes = MemoryTracker::instance().peak_bytes();
  result.uplink_bytes = sim.transport().stats().bytes_up;

  if (prepared.mia != nullptr) {
    const attack::PrivacyReport report = attack::evaluate_privacy(sim, *prepared.mia);
    result.global_attack_auc = report.global_attack_auc;
    result.local_attack_auc = report.mean_local_attack_auc;
  }
  return result;
}

double parse_scale(int argc, char** argv) {
  double scale = 1.0;
  if (const char* env = std::getenv("DINAR_BENCH_SCALE")) scale = std::atof(env);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = std::atof(argv[i] + 8);
    if (std::strcmp(argv[i], "--quick") == 0) scale = 0.35;
  }
  if (!(scale > 0.0) || scale > 4.0) scale = 1.0;
  return scale;
}

bool parse_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

unsigned parse_threads(int argc, char** argv) {
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
  }
  return threads;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

BenchJson::BenchJson(std::string bench_name) : name_(std::move(bench_name)) {
  DINAR_CHECK(!name_.empty(), "BenchJson needs a bench name");
}

BenchJson& BenchJson::begin_row() {
  rows_.emplace_back();
  return *this;
}

BenchJson& BenchJson::field(const std::string& key, double value) {
  DINAR_CHECK(!rows_.empty(), "BenchJson::field before begin_row");
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.10g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no NaN/Inf
  }
  rows_.back().emplace_back(key, buf);
  return *this;
}

BenchJson& BenchJson::field(const std::string& key, std::int64_t value) {
  DINAR_CHECK(!rows_.empty(), "BenchJson::field before begin_row");
  rows_.back().emplace_back(key, std::to_string(value));
  return *this;
}

BenchJson& BenchJson::field(const std::string& key, const std::string& value) {
  DINAR_CHECK(!rows_.empty(), "BenchJson::field before begin_row");
  rows_.back().emplace_back(key, "\"" + json_escape(value) + "\"");
  return *this;
}

std::string BenchJson::path() const {
  std::string upper = name_;
  for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  return "BENCH_" + upper + ".json";
}

std::string BenchJson::to_string() const {
  std::string out = "{\n  \"bench\": \"" + json_escape(name_) + "\",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    for (std::size_t j = 0; j < rows_[i].size(); ++j) {
      if (j != 0) out += ", ";
      out += "\"" + json_escape(rows_[i][j].first) + "\": " + rows_[i][j].second;
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void BenchJson::write() const {
  const std::string file = path();
  std::ofstream out(file, std::ios::trunc);
  DINAR_CHECK(out.good(), "cannot open " << file << " for writing");
  out << to_string();
  out.flush();
  DINAR_CHECK(out.good(), "failed writing " << file);
  std::printf("\nmachine-readable results: %s (%zu rows)\n", file.c_str(),
              rows_.size());
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s (DINAR, MIDDLEWARE '24)\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

void print_table_header(const std::string& label, const std::vector<std::string>& cols,
                        int width) {
  std::printf("%-24s", label.c_str());
  for (const std::string& c : cols) std::printf("%*s", width, c.c_str());
  std::printf("\n");
  std::printf("%s\n",
              std::string(24 + cols.size() * static_cast<std::size_t>(width), '-')
                  .c_str());
}

void print_table_row(const std::string& label, const std::vector<double>& values,
                     int width, int precision) {
  std::printf("%-24s", label.c_str());
  for (double v : values) std::printf("%*.*f", width, precision, v);
  std::printf("\n");
}

}  // namespace dinar::bench
