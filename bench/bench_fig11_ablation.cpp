// Figure 11: ablation of DINAR's adaptive training (Purchase100). DINAR's
// Adagrad-style optimizer (Algorithm 1) is swapped for Adam, ADGD and
// AdaMax; the paper reports 59/59/60/62% accuracy with identical privacy
// (50% AUC) in all variants.
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

struct Variant {
  const char* label;
  const char* optimizer;
  double paper_accuracy;
};

const Variant kVariants[] = {
    {"DINAR w/ Adam", "adam", 59.0},
    {"DINAR w/ ADGD", "adgd", 59.0},
    {"DINAR w/ AdaMax", "adamax", 60.0},
    {"DINAR (Adagrad)", "adagrad", 62.0},
};

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Figure 11 — ablation of adaptive training (Purchase100)",
               "Figure 11, §5.11");

  PreparedCase prepared = prepare_case(get_case("purchase100", scale));
  print_table_header("variant", {"acc(paper)%", "acc(ours)%", "AUC(ours)%"});
  for (const Variant& v : kVariants) {
    const ExperimentResult r = run_experiment(
        prepared, make_bundle("dinar", prepared, {}), v.optimizer);
    print_table_row(v.label, {v.paper_accuracy, 100.0 * r.personalized_accuracy,
                              100.0 * r.local_attack_auc});
  }
  std::printf("\npaper: every optimizer gives the same 50%% protection; Adagrad "
              "(Algorithm 1) yields the best accuracy of the four.\n");
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
