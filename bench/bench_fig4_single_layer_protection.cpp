// Figure 4 (CelebA, 8-parameter-layer CNN):
//  (a) per-layer member/non-member divergence of the unprotected model;
//  (b) local-model attack AUC when DINAR-style obfuscation is applied to
//      exactly one layer l, for every l.
// Paper's reading: obfuscating the single most-leaking layer already
// drives the attack to the 50% optimum; obfuscating a low-leakage layer
// does not protect the model.
#include "core/sensitivity.h"
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Figure 4 — fine-grained protection per layer (CelebA)",
               "Figure 4, §5.4");

  PreparedCase prepared = prepare_case(get_case("celeba", scale));
  const DatasetCase& spec = prepared.spec;

  // (a) divergence profile of the unprotected trained model.
  fl::SimulationConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.seed = spec.seed + 7;
  fl::FederatedSimulation base(spec.model_factory, prepared.split, cfg,
                               fl::DefenseBundle{});
  base.run();
  data::Dataset members;
  for (fl::FlClient& c : base.clients())
    members = members.empty() ? c.train_data()
                              : data::Dataset::concat(members, c.train_data());
  nn::Model global = base.global_model();
  core::SensitivityConfig sens;
  sens.seed = spec.seed ^ 0xF46;
  const auto divergences =
      core::analyze_layer_sensitivity(global, members, base.test_data(), sens);

  const ExperimentResult unprotected =
      run_experiment(prepared, make_bundle("none", prepared, {}));

  // (b) obfuscate exactly one layer at a time.
  std::printf("\n(a) divergence per layer + (b) local attack AUC when only that "
              "layer is obfuscated\n\n");
  print_table_header("layer", {"divergence", "AUC(ours)%", "AUC(none)%"});
  const std::size_t num_layers = divergences.size();
  for (std::size_t l = 0; l < num_layers; ++l) {
    fl::DefenseBundle bundle = core::make_dinar_bundle({l}, spec.seed ^ 0xF47);
    bundle.name = "dinar[" + std::to_string(l) + "]";
    const ExperimentResult r = run_experiment(prepared, bundle);
    print_table_row("layer " + std::to_string(l),
                    {divergences[l].divergence * 1000.0, 100.0 * r.local_attack_auc,
                     100.0 * unprotected.local_attack_auc});
  }
  std::printf("(divergence scaled x1000)\n");
  std::printf("\npaper: obfuscating the most-leaking layer alone reaches the 50%% "
              "optimum; other layers leave the model exposed. Measured argmax "
              "divergence at layer %zu.\n",
              core::most_sensitive_layer(divergences));
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
