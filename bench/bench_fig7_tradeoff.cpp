// Figure 7: privacy-utility trade-off for local models across six
// datasets x seven defenses. Each point is (mean personalized accuracy,
// mean local attack AUC); the best defense sits bottom-right (high
// accuracy, 50% AUC). Paper: DINAR is the only method at the optimum AUC
// with <1 point of accuracy loss.
#include <cstring>

#include "harness/experiment.h"

namespace dinar::bench {
namespace {

const std::vector<std::string> kDefenses = {"none", "wdp", "ldp", "cdp",
                                            "gc",   "sa",  "dinar"};

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  std::string only;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--only=", 7) == 0) only = argv[i] + 7;

  print_header("Figure 7 — privacy vs utility trade-off (local models)",
               "Figure 7, §5.7");

  for (const char* name : {"purchase100", "cifar10", "cifar100", "speechcommands",
                           "celeba", "gtsrb"}) {
    if (!only.empty() && only != name) continue;
    PreparedCase prepared = prepare_case(get_case(name, scale));
    std::printf("\n--- %s ---\n", name);
    print_table_header("defense", {"accuracy%", "attackAUC%"});

    double none_acc = 0.0, dinar_acc = 0.0, dinar_auc = 0.0;
    for (const std::string& defense : kDefenses) {
      const ExperimentResult r =
          run_experiment(prepared, make_bundle(defense, prepared, {}));
      print_table_row(defense,
                      {100.0 * r.personalized_accuracy, 100.0 * r.local_attack_auc});
      if (defense == "none") none_acc = r.personalized_accuracy;
      if (defense == "dinar") {
        dinar_acc = r.personalized_accuracy;
        dinar_auc = r.local_attack_auc;
      }
    }
    std::printf("DINAR vs no-defense: accuracy delta %+.1f points at AUC %.1f%% "
                "(paper: <1 point drop at the 50%% optimum)\n",
                100.0 * (dinar_acc - none_acc), 100.0 * dinar_auc);
  }
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
