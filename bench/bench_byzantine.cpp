// Byzantine robustness sweep: attacker fraction x aggregation strategy.
//
// The paper's threat model is an honest-but-curious server; its federation
// trusts every client. This bench drops that assumption: a fraction of
// clients uploads well-formed but adversarial updates (scaled sign-flip or
// model replacement) and we compare how plain FedAvg and the robust
// aggregators (coordinate-wise median, trimmed mean, norm-clip, Multi-Krum)
// hold up against each strategy's own attack-free baseline.
//
// Expected shape: plain FedAvg degrades sharply at 30% attackers, while
// Multi-Krum and trimmed mean stay within ~2 accuracy points of their
// clean baseline. Results also land in BENCH_BYZANTINE.json; `--smoke`
// shrinks the sweep to a CI-sized 2x2, and `--threads N` sizes the
// simulation's execution context (identical results, less wall-clock).
#include <algorithm>
#include <cstdio>

#include "harness/experiment.h"

namespace dinar::bench {
namespace {

struct ByzResult {
  double accuracy = 0.0;
  std::size_t attacker_flags = 0;  // aggregator exclusions hitting attackers
  std::size_t honest_flags = 0;    // aggregator exclusions hitting honest clients
  int carried_forward = 0;
};

std::vector<int> pick_attackers(int num_clients, double fraction) {
  const int k = static_cast<int>(fraction * num_clients + 0.5);
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(k));
  // Spread attackers over the roster instead of clustering them at id 0.
  for (int i = 0; i < k; ++i) ids.push_back(i * num_clients / k);
  return ids;
}

ByzResult run_byzantine(const DatasetCase& spec, const std::string& method,
                        fl::AttackType attack, double fraction,
                        unsigned threads) {
  Rng rng(spec.seed);
  const data::Dataset full = spec.make_data(rng);
  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = spec.num_clients;
  data::FlSplit split = data::make_fl_split(full, split_cfg, rng);

  const std::vector<int> attackers =
      fraction > 0.0 ? pick_attackers(spec.num_clients, fraction)
                     : std::vector<int>{};

  fl::SimulationConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.seed = spec.seed + 7;
  cfg.robust.method = method;
  cfg.robust.assumed_byzantine = attackers.size();
  for (const int id : attackers) cfg.adversaries.attackers[id] = attack;
  cfg.adversaries.sign_flip_scale = 4.0;
  cfg.adversaries.replacement_scale = 10.0;
  cfg.exec.threads = threads;

  fl::FederatedSimulation sim(spec.model_factory, std::move(split), cfg,
                              fl::DefenseBundle{});
  sim.run();

  ByzResult out;
  out.accuracy = sim.history().back().global_test_accuracy;
  for (const fl::RoundOutcome& round : sim.round_log()) {
    out.carried_forward += round.carried_forward ? 1 : 0;
    for (const fl::AggregatorFlag& flag : round.aggregator_flags) {
      if (!flag.excluded) continue;
      const bool is_attacker = std::find(attackers.begin(), attackers.end(),
                                         flag.client_id) != attackers.end();
      (is_attacker ? out.attacker_flags : out.honest_flags) += 1;
    }
  }
  return out;
}

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const bool smoke = parse_flag(argc, argv, "--smoke");
  const unsigned threads = parse_threads(argc, argv);
  print_header("Byzantine robustness — attacker fraction x aggregator sweep",
               "robustness extension beyond the paper's honest-client model");

  const std::vector<std::string> methods =
      smoke ? std::vector<std::string>{"fedavg", "multi_krum"}
            : std::vector<std::string>{"fedavg", "median", "trimmed_mean",
                                       "norm_clip", "multi_krum"};
  const std::vector<std::pair<std::string, fl::AttackType>> attacks = {
      {"sign_flip", fl::AttackType::kSignFlip},
      {"replacement", fl::AttackType::kModelReplacement},
  };
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.3} : std::vector<double>{0.1, 0.3};

  BenchJson json("byzantine");
  print_table_header("aggregator",
                     {"attack", "att%", "acc%", "d-clean", "flag-att",
                      "flag-hon"},
                     13);
  for (const std::string& method : methods) {
    const DatasetCase spec = small_mlp_case(scale);
    // Per-aggregator attack-free baseline: robust statistics discard
    // information even with no attacker, so each strategy is judged
    // against its own clean run.
    const ByzResult clean =
        run_byzantine(spec, method, fl::AttackType::kSignFlip, 0.0, threads);
    std::printf("%-24s%13s%13.1f%13.1f%13.1f%13zu%13zu\n", method.c_str(),
                "none", 0.0, 100.0 * clean.accuracy, 0.0, clean.attacker_flags,
                clean.honest_flags);
    json.begin_row()
        .field("aggregator", method)
        .field("attack", std::string("none"))
        .field("attacker_fraction", 0.0)
        .field("accuracy", clean.accuracy)
        .field("delta_vs_clean", 0.0)
        .field("attacker_flags", static_cast<std::int64_t>(clean.attacker_flags))
        .field("honest_flags", static_cast<std::int64_t>(clean.honest_flags))
        .field("carried_forward",
               static_cast<std::int64_t>(clean.carried_forward));

    for (const auto& [attack_name, attack] : attacks) {
      if (smoke && attack == fl::AttackType::kModelReplacement) continue;
      for (const double fraction : fractions) {
        const ByzResult r = run_byzantine(spec, method, attack, fraction, threads);
        const double delta = 100.0 * (r.accuracy - clean.accuracy);
        std::printf("%-24s%13s%13.1f%13.1f%13.1f%13zu%13zu\n", method.c_str(),
                    attack_name.c_str(), 100.0 * fraction, 100.0 * r.accuracy,
                    delta, r.attacker_flags, r.honest_flags);
        json.begin_row()
            .field("aggregator", method)
            .field("attack", attack_name)
            .field("attacker_fraction", fraction)
            .field("accuracy", r.accuracy)
            .field("delta_vs_clean", r.accuracy - clean.accuracy)
            .field("attacker_flags", static_cast<std::int64_t>(r.attacker_flags))
            .field("honest_flags", static_cast<std::int64_t>(r.honest_flags))
            .field("carried_forward",
                   static_cast<std::int64_t>(r.carried_forward));
      }
    }
  }
  std::printf("\nexpected: at 30%% attackers plain FedAvg collapses (d-clean "
              "strongly negative) while multi_krum / trimmed_mean stay within "
              "~2 points of their clean baseline and flag mostly attackers "
              "(flag-att >> flag-hon).\n");
  json.write();
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
