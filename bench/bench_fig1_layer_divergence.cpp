// Figure 1: per-layer Jensen-Shannon divergence between the gradients
// produced by member and non-member predictions on an *unprotected* FL
// model, for GTSRB, CelebA, Texas100 and Purchase100. The paper observes
// one layer (typically the penultimate) leaking markedly more than the
// rest — the motivation for DINAR's fine-grained protection.
#include "core/sensitivity.h"
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Figure 1 — layer-level member/non-member divergence", "Figure 1, §3");

  for (const char* name : {"gtsrb", "celeba", "texas100", "purchase100"}) {
    PreparedCase prepared = prepare_case(get_case(name, scale),
                                         std::numeric_limits<double>::infinity(),
                                         /*fit_mia=*/false);

    // Train the FL model without any protection, as in the paper's setup.
    const DatasetCase& spec = prepared.spec;
    fl::SimulationConfig cfg;
    cfg.rounds = spec.rounds;
    cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
    cfg.learning_rate = spec.learning_rate;
    cfg.seed = spec.seed + 7;
    fl::FederatedSimulation sim(spec.model_factory, prepared.split, cfg,
                                fl::DefenseBundle{});
    sim.run();

    // Member pool: the clients' training data; non-members: the test split.
    data::Dataset members;
    for (fl::FlClient& c : sim.clients())
      members = members.empty() ? c.train_data()
                                : data::Dataset::concat(members, c.train_data());

    nn::Model global = sim.global_model();
    core::SensitivityConfig sens;
    sens.seed = spec.seed ^ 0xF16;
    const std::vector<core::LayerSensitivity> layers =
        core::analyze_layer_sensitivity(global, members, sim.test_data(), sens);

    const std::size_t top = core::most_sensitive_layer(layers);
    std::printf("\n--- %s (%s), J = %zu parameterized layers ---\n", name,
                spec.paper_model.c_str(), layers.size());
    print_table_header("layer", {"JS divergence", "argmax"});
    for (const core::LayerSensitivity& l : layers) {
      std::printf("%-24s%12.4f%12s\n",
                  ("[" + std::to_string(l.layer_index) + "] " + l.layer_name)
                      .substr(0, 24)
                      .c_str(),
                  l.divergence, l.layer_index == top ? "<== max" : "");
    }
    std::printf("paper: one layer (typically the penultimate, index %zu here) "
                "dominates; measured argmax = %zu\n",
                layers.size() - 2, top);
  }
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
