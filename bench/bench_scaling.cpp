// Parallel-execution scaling sweep: clients-per-round x threads.
//
// Measures round wall-clock for the phased parallel round protocol as the
// execution context grows, reporting speedup and efficiency against the
// single-thread run of the same configuration. Because the protocol is
// deterministic by construction (disjoint-output kernels, keyed fault and
// attack streams, sequential phase-B accounting), every cell of the sweep
// must produce the bit-identical final global model — the bench hashes it
// and reports a `deterministic` field per row, so a scheduling regression
// shows up as data, not just as a flaky test.
//
// Results land in BENCH_SCALING.json. `--smoke` shrinks the grid for CI;
// speedup there is meaningless (CI runners are often single-core) but the
// determinism column still must hold.
//
// Second sweep: streaming-engine overlap (DESIGN.md §13) on a
// straggler-laden federation — a real wall-clock sleeper at the tail of
// each shard. The sequential cell (1 thread, the engine's inline
// degradation) serializes every sleep; the threaded cells overlap them.
// Gated: the threaded round rate must be >= 0.97x the sequential one
// (sleeps don't burn CPU, so this holds on single-core CI runners) and
// every cell must hash to the bit-identical final model. Every row also
// carries the RoundPhaseTimings breakdown (downlink / train / uplink /
// validate / shard / combine / commit). The legacy barriered engine this
// sweep used to compare against was removed with its PipelineMode.
//
// Third sweep: sharded hierarchical aggregation (DESIGN.md §12) over a
// synthetic cohort, clients 10^3 -> 10^5 x shards x threads, aggregation
// only (no training) so the tree itself is what's measured. Every
// single-shard cell is gated on bit-identity with the flat
// RobustAggregator::aggregate() path — the exit code reflects the gates,
// so CI (which runs `--smoke` on every matrix leg, including TSan) fails
// on any divergence.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "harness/experiment.h"

namespace dinar::bench {
namespace {

std::uint64_t param_hash(const nn::FlatParams& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const float v : params.as_span()) {
    std::uint32_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    for (int b = 0; b < 32; b += 8) {
      h ^= (bits >> b) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

struct ScalingResult {
  double seconds_per_round = 0.0;
  std::uint64_t final_hash = 0;
  // Per-round means of the RoundPhaseTimings breakdown (task-side phases
  // are summed across concurrent tasks, so they can exceed wall-clock).
  fl::RoundPhaseTimings phase;
};

struct ScalingOpts {
  std::size_t num_shards = 1;
  // > 0 parks a real wall-clock sleep of this length on the last (highest
  // id) client of every shard — the worst case for the streaming engine's
  // overlap, since each shard's accumulator stays open until its tail.
  double straggler_wall_seconds = 0.0;
};

ScalingResult run_scaling(const DatasetCase& spec, unsigned threads,
                          const ScalingOpts& opts = {}) {
  Rng rng(spec.seed);
  const data::Dataset full = spec.make_data(rng);
  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = spec.num_clients;
  data::FlSplit split = data::make_fl_split(full, split_cfg, rng);

  fl::SimulationConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.seed = spec.seed + 7;
  // Mild faults keep the retry machinery on the measured path.
  cfg.faults.drop_up = 0.05;
  cfg.min_clients = static_cast<std::size_t>(std::max(1, spec.num_clients / 2));
  cfg.max_retries = 1;
  cfg.exec.threads = threads;
  cfg.shard.num_shards = opts.num_shards;
  cfg.shard.assignment_seed = 0xD1AA5ULL;
  if (opts.straggler_wall_seconds > 0.0) {
    std::map<std::uint32_t, int> last_of_shard;
    for (int id = 0; id < spec.num_clients; ++id)
      last_of_shard[fl::shard_of(id, cfg.shard)] = id;  // ascending: last wins
    for (const auto& [shard, id] : last_of_shard)
      cfg.faults.straggler_wall_seconds[id] = opts.straggler_wall_seconds;
  }

  fl::FederatedSimulation sim(spec.model_factory, std::move(split), cfg,
                              fl::DefenseBundle{});
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScalingResult out;
  out.seconds_per_round = seconds / spec.rounds;
  out.final_hash = param_hash(sim.server().global_params());
  const double n = static_cast<double>(sim.round_log().size());
  for (const fl::RoundOutcome& o : sim.round_log()) {
    out.phase.downlink_seconds += o.timings.downlink_seconds / n;
    out.phase.train_seconds += o.timings.train_seconds / n;
    out.phase.uplink_seconds += o.timings.uplink_seconds / n;
    out.phase.validate_seconds += o.timings.validate_seconds / n;
    out.phase.shard_seconds += o.timings.shard_seconds / n;
    out.phase.combine_seconds += o.timings.combine_seconds / n;
    out.phase.commit_seconds += o.timings.commit_seconds / n;
    out.phase.round_seconds += o.timings.round_seconds / n;
  }
  return out;
}

// Appends the per-phase breakdown to the row under construction.
BenchJson& phase_fields(BenchJson& json, const fl::RoundPhaseTimings& p) {
  return json.field("downlink_seconds_per_round", p.downlink_seconds)
      .field("train_seconds_per_round", p.train_seconds)
      .field("uplink_seconds_per_round", p.uplink_seconds)
      .field("validate_seconds_per_round", p.validate_seconds)
      .field("shard_seconds_per_round", p.shard_seconds)
      .field("combine_seconds_per_round", p.combine_seconds)
      .field("commit_seconds_per_round", p.commit_seconds)
      .field("measured_round_seconds", p.round_seconds);
}

// Synthetic cohort for the aggregation-tree sweep: every client's params
// are the global arena plus a small deterministic per-(client, coordinate)
// delta — no RNG, so any two runs of the bench build identical cohorts.
std::vector<fl::ModelUpdateMsg> make_synthetic_updates(int clients,
                                                       const nn::FlatParams& global) {
  std::vector<fl::ModelUpdateMsg> updates(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    fl::ModelUpdateMsg& u = updates[static_cast<std::size_t>(i)];
    u.client_id = i;
    u.round = 0;
    u.num_samples = 1 + (i % 4);
    u.params = global;
    std::span<float> v = u.params.as_span();
    for (std::size_t j = 0; j < v.size(); ++j)
      v[j] += 1e-3f * static_cast<float>((i * 31 + static_cast<int>(j) * 7) % 23 - 11);
  }
  return updates;
}

// One cell of the shard sweep. Returns false iff the single-shard gate
// (hierarchical num_shards==1 bit-identical to flat aggregate) failed.
bool run_shard_cell(BenchJson& json, fl::AggregatorKind kind, int clients,
                    std::size_t num_shards, unsigned threads,
                    std::vector<fl::ModelUpdateMsg>& updates,
                    const nn::FlatParams& global) {
  fl::ShardConfig shard_cfg;
  shard_cfg.num_shards = num_shards;
  shard_cfg.assignment_seed = 0xD1AA5ULL;
  // Pre-sort by shard so plan_shards takes the zero-copy path — what a
  // million-client deployment would do (edge aggregators already hold
  // their own shard's updates).
  std::stable_sort(updates.begin(), updates.end(),
                   [&](const fl::ModelUpdateMsg& a, const fl::ModelUpdateMsg& b) {
                     return fl::shard_of(a.client_id, shard_cfg) <
                            fl::shard_of(b.client_id, shard_cfg);
                   });

  ExecConfig exec_cfg;
  exec_cfg.threads = threads;
  ExecutionContext exec(exec_cfg);
  auto agg = fl::make_robust_aggregator(kind);
  agg->set_execution_context(&exec);

  const auto t0 = std::chrono::steady_clock::now();
  const fl::HierarchicalResult hier =
      fl::hierarchical_aggregate(*agg, updates, global, shard_cfg, &exec);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  double shard_mean = 0.0, shard_max = 0.0;
  std::size_t live = 0;
  for (std::size_t s = 0; s < hier.shard_seconds.size(); ++s) {
    if (hier.shards[s].num_updates == 0) continue;
    shard_mean += hier.shard_seconds[s];
    shard_max = std::max(shard_max, hier.shard_seconds[s]);
    ++live;
  }
  if (live > 0) shard_mean /= static_cast<double>(live);

  bool gate_ok = true;
  std::string flat_match = "n/a";
  if (num_shards == 1) {
    const fl::RobustAggregateResult flat = agg->aggregate(updates, global);
    gate_ok = param_hash(flat.params) == param_hash(hier.result.params);
    flat_match = gate_ok ? "true" : "false";
  }

  print_table_row(std::string(fl::to_string(kind)) + "/" + std::to_string(clients),
                  {static_cast<double>(num_shards), static_cast<double>(threads),
                   seconds, shard_max, flat_match == "false" ? 0.0 : 1.0});
  json.begin_row()
      .field("case", std::string("shard_synthetic"))
      .field("aggregator", std::string(fl::to_string(kind)))
      .field("clients_per_round", static_cast<std::int64_t>(clients))
      .field("num_shards", static_cast<std::int64_t>(num_shards))
      .field("threads", static_cast<std::int64_t>(threads))
      .field("seconds_per_aggregate", seconds)
      .field("shard_seconds_mean", shard_mean)
      .field("shard_seconds_max", shard_max)
      .field("flat_bit_identical", flat_match);
  return gate_ok;
}

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const bool smoke = parse_flag(argc, argv, "--smoke");
  print_header("Parallel round scaling — clients-per-round x threads",
               "execution-engine companion to Table 3's cost metrics");

  const std::vector<int> client_counts =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 8, 16};
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};

  BenchJson json("scaling");
  print_table_header("clients", {"threads", "s/round", "speedup", "effic%",
                                 "determ"});
  for (const int clients : client_counts) {
    DatasetCase spec = small_mlp_case(scale);
    spec.num_clients = clients;
    double base_seconds = 0.0;
    std::uint64_t base_hash = 0;
    for (const unsigned threads : thread_counts) {
      const ScalingResult r = run_scaling(spec, threads);
      if (threads == 1) {
        base_seconds = r.seconds_per_round;
        base_hash = r.final_hash;
      }
      const double speedup =
          r.seconds_per_round > 0.0 ? base_seconds / r.seconds_per_round : 0.0;
      const double efficiency = speedup / static_cast<double>(threads);
      const bool deterministic = r.final_hash == base_hash;
      print_table_row(std::to_string(clients),
                      {static_cast<double>(threads), r.seconds_per_round,
                       speedup, 100.0 * efficiency,
                       deterministic ? 1.0 : 0.0});
      json.begin_row()
          .field("case", spec.name)
          .field("clients_per_round", static_cast<std::int64_t>(clients))
          .field("num_shards", static_cast<std::int64_t>(1))
          .field("threads", static_cast<std::int64_t>(threads))
          .field("pipeline", std::string(fl::to_string(fl::PipelineMode::kStream)))
          .field("seconds_per_round", r.seconds_per_round)
          .field("speedup_vs_1_thread", speedup)
          .field("parallel_efficiency", efficiency)
          .field("deterministic", std::string(deterministic ? "true" : "false"))
          .field("final_model_hash",
                 static_cast<std::int64_t>(r.final_hash >> 1));
      phase_fields(json, r.phase);
    }
  }

  // -- pipeline overlap sweep ----------------------------------------------
  // Streaming round engine on a straggler-laden federation: one real
  // wall-clock sleeper at the tail of each of 4 shards. The 1-thread cell
  // (the engine's inline degradation) serializes every sleep; the threaded
  // cells run the sleepers concurrently and commit every other exchange
  // (and prefetch the next broadcast) inside them, so their round rate
  // must be at least the sequential one — gated at 0.97x for timer noise.
  // Sleeps don't burn CPU, so the gate holds on single-core CI runners
  // too. The cross-thread hash gate is exact: every cell must produce the
  // bit-identical final model.
  std::printf("\nPipeline overlap — streaming engine with wall-clock "
              "stragglers (4 shards, sleeper at each shard tail)\n");
  print_table_header("mode", {"threads", "s/round", "rounds/s", "commit_s",
                              "hash=="});
  const std::vector<unsigned> overlap_threads =
      smoke ? std::vector<unsigned>{2} : std::vector<unsigned>{2, 4, 8};
  const double straggler_wall = smoke ? 0.01 : 0.02;
  bool overlap_gate_ok = true;
  {
    DatasetCase spec = small_mlp_case(scale);
    spec.num_clients = 8;
    ScalingOpts opts;
    opts.num_shards = 4;
    opts.straggler_wall_seconds = straggler_wall;
    const ScalingResult seq = run_scaling(spec, /*threads=*/1, opts);
    const double seq_rps =
        seq.seconds_per_round > 0.0 ? 1.0 / seq.seconds_per_round : 0.0;

    std::vector<std::pair<unsigned, ScalingResult>> cells{{1u, seq}};
    for (const unsigned threads : overlap_threads)
      cells.emplace_back(threads, run_scaling(spec, threads, opts));

    for (const auto& [threads, cell] : cells) {
      const bool hashes_match = cell.final_hash == seq.final_hash;
      const double rps =
          cell.seconds_per_round > 0.0 ? 1.0 / cell.seconds_per_round : 0.0;
      const bool rate_ok = threads == 1 || rps >= 0.97 * seq_rps;
      overlap_gate_ok &= hashes_match && rate_ok;
      print_table_row(threads == 1 ? "seq" : "stream",
                      {static_cast<double>(threads), cell.seconds_per_round,
                       rps, cell.phase.commit_seconds,
                       hashes_match ? 1.0 : 0.0});
      json.begin_row()
          .field("case", std::string("pipeline_overlap"))
          .field("pipeline", std::string(fl::to_string(fl::PipelineMode::kStream)))
          .field("clients_per_round", static_cast<std::int64_t>(spec.num_clients))
          .field("num_shards", static_cast<std::int64_t>(4))
          .field("threads", static_cast<std::int64_t>(threads))
          .field("straggler_wall_seconds", straggler_wall)
          .field("seconds_per_round", cell.seconds_per_round)
          .field("rounds_per_second", rps)
          .field("cross_mode_bit_identical",
                 std::string(hashes_match ? "true" : "false"))
          .field("final_model_hash", static_cast<std::int64_t>(cell.final_hash >> 1));
      phase_fields(json, cell.phase);
    }
  }
  // -- sharded hierarchical aggregation sweep ------------------------------
  std::printf("\nSharded aggregation — clients x shards (synthetic cohort, "
              "aggregation only)\n");
  print_table_header("agg/clients",
                     {"shards", "threads", "s/agg", "shard_max_s", "flat=="});
  const std::vector<int> shard_clients =
      smoke ? std::vector<int>{512} : std::vector<int>{1000, 10000, 100000};
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 4, 16, 64};
  const std::vector<unsigned> shard_threads =
      smoke ? std::vector<unsigned>{2} : std::vector<unsigned>{1, 4};
  const std::vector<fl::AggregatorKind> shard_methods = {
      fl::AggregatorKind::kFedAvg, fl::AggregatorKind::kMedian};

  // Two entries so the layer-aware run machinery is on the measured path.
  const nn::FlatParams shard_global = nn::FlatParams::from_tensors(
      {Tensor({96}, std::vector<float>(96, 0.25f)),
       Tensor({32}, std::vector<float>(32, -0.5f))});
  bool gate_ok = true;
  for (const int clients : shard_clients) {
    std::vector<fl::ModelUpdateMsg> updates =
        make_synthetic_updates(clients, shard_global);
    for (const fl::AggregatorKind kind : shard_methods)
      for (const std::size_t shards : shard_counts)
        for (const unsigned threads : shard_threads)
          gate_ok &= run_shard_cell(json, kind, clients, shards, threads, updates,
                                    shard_global);
  }

  std::printf("\nexpected: on a machine with >= 8 cores, 16 clients/round at "
              "8 threads reaches >= 2.5x the single-thread round rate while "
              "`determ` stays 1 in every cell (bit-identical final model for "
              "any thread count). On fewer cores speedup saturates at the "
              "core count; determinism must hold regardless. In the overlap "
              "sweep `stream` must match or beat `seq` rounds/s (the commits "
              "and next-round downlink serialization hide inside the "
              "straggler sleeps) with `hash==` 1 in every row — both are CI "
              "gates. In the shard sweep every `flat==` cell must be 1: a "
              "single-shard tree is bit-identical to flat aggregation (the "
              "CI gate); multi-shard cells trade exactness for parallel edge "
              "aggregation.\n");
  json.write();
  int rc = 0;
  if (!gate_ok) {
    std::printf("GATE FAILED: single-shard hierarchical aggregation diverged "
                "from the flat path\n");
    rc = 1;
  }
  if (!overlap_gate_ok) {
    std::printf("GATE FAILED: threaded streaming fell below 0.97x the "
                "sequential round rate with stragglers, or the thread counts "
                "produced different final models\n");
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
