// Parallel-execution scaling sweep: clients-per-round x threads.
//
// Measures round wall-clock for the phased parallel round protocol as the
// execution context grows, reporting speedup and efficiency against the
// single-thread run of the same configuration. Because the protocol is
// deterministic by construction (disjoint-output kernels, keyed fault and
// attack streams, sequential phase-B accounting), every cell of the sweep
// must produce the bit-identical final global model — the bench hashes it
// and reports a `deterministic` field per row, so a scheduling regression
// shows up as data, not just as a flaky test.
//
// Results land in BENCH_SCALING.json. `--smoke` shrinks the grid for CI;
// speedup there is meaningless (CI runners are often single-core) but the
// determinism column still must hold.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "harness/experiment.h"

namespace dinar::bench {
namespace {

std::uint64_t param_hash(const nn::FlatParams& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const float v : params.as_span()) {
    std::uint32_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    for (int b = 0; b < 32; b += 8) {
      h ^= (bits >> b) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

struct ScalingResult {
  double seconds_per_round = 0.0;
  std::uint64_t final_hash = 0;
};

ScalingResult run_scaling(const DatasetCase& spec, unsigned threads) {
  Rng rng(spec.seed);
  const data::Dataset full = spec.make_data(rng);
  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = spec.num_clients;
  data::FlSplit split = data::make_fl_split(full, split_cfg, rng);

  fl::SimulationConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.seed = spec.seed + 7;
  // Mild faults keep the retry machinery on the measured path.
  cfg.faults.drop_up = 0.05;
  cfg.min_clients = static_cast<std::size_t>(std::max(1, spec.num_clients / 2));
  cfg.max_retries = 1;
  cfg.exec.threads = threads;

  fl::FederatedSimulation sim(spec.model_factory, std::move(split), cfg,
                              fl::DefenseBundle{});
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScalingResult out;
  out.seconds_per_round = seconds / spec.rounds;
  out.final_hash = param_hash(sim.server().global_params());
  return out;
}

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const bool smoke = parse_flag(argc, argv, "--smoke");
  print_header("Parallel round scaling — clients-per-round x threads",
               "execution-engine companion to Table 3's cost metrics");

  const std::vector<int> client_counts =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 8, 16};
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};

  BenchJson json("scaling");
  print_table_header("clients", {"threads", "s/round", "speedup", "effic%",
                                 "determ"});
  for (const int clients : client_counts) {
    DatasetCase spec = small_mlp_case(scale);
    spec.num_clients = clients;
    double base_seconds = 0.0;
    std::uint64_t base_hash = 0;
    for (const unsigned threads : thread_counts) {
      const ScalingResult r = run_scaling(spec, threads);
      if (threads == 1) {
        base_seconds = r.seconds_per_round;
        base_hash = r.final_hash;
      }
      const double speedup =
          r.seconds_per_round > 0.0 ? base_seconds / r.seconds_per_round : 0.0;
      const double efficiency = speedup / static_cast<double>(threads);
      const bool deterministic = r.final_hash == base_hash;
      print_table_row(std::to_string(clients),
                      {static_cast<double>(threads), r.seconds_per_round,
                       speedup, 100.0 * efficiency,
                       deterministic ? 1.0 : 0.0});
      json.begin_row()
          .field("case", spec.name)
          .field("clients_per_round", static_cast<std::int64_t>(clients))
          .field("threads", static_cast<std::int64_t>(threads))
          .field("seconds_per_round", r.seconds_per_round)
          .field("speedup_vs_1_thread", speedup)
          .field("parallel_efficiency", efficiency)
          .field("deterministic", std::string(deterministic ? "true" : "false"))
          .field("final_model_hash",
                 static_cast<std::int64_t>(r.final_hash >> 1));
    }
  }
  std::printf("\nexpected: on a machine with >= 8 cores, 16 clients/round at "
              "8 threads reaches >= 2.5x the single-thread round rate while "
              "`determ` stays 1 in every cell (bit-identical final model for "
              "any thread count). On fewer cores speedup saturates at the "
              "core count; determinism must hold regardless.\n");
  json.write();
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
