// Engineering microbenchmarks (google-benchmark) for the substrate hot
// paths: tensor math, layer forward/backward, serialization, FedAvg
// aggregation, obfuscation and the sensitivity statistics. Not a paper
// artifact; used to keep the simulator fast enough for the experiment
// suite.
#include <benchmark/benchmark.h>

#include "core/obfuscation.h"
#include "fl/server.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "util/stats.h"

namespace dinar {
namespace {

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::gaussian({n, n}, rng);
  Tensor b = Tensor::gaussian({n, n}, rng);
  for (auto _ : state) {
    Tensor c = gemm(Trans::kN, Trans::kN, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_DenseForwardBackward(benchmark::State& state) {
  Rng rng(2);
  nn::Model m = nn::make_fcnn6(600, 100, 256, rng);
  Tensor x = Tensor::gaussian({64, 600}, rng);
  std::vector<int> labels(64, 3);
  for (auto _ : state) {
    Tensor y = m.forward(x, true);
    nn::LossResult loss = nn::softmax_cross_entropy(y, labels);
    m.zero_grad();
    m.backward(loss.grad_logits);
    benchmark::DoNotOptimize(loss.mean_loss);
  }
}
BENCHMARK(BM_DenseForwardBackward);

void BM_ConvForwardBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Model m = nn::make_resnet_small(3, 12, 10, rng);
  Tensor x = Tensor::gaussian({16, 3, 12, 12}, rng);
  std::vector<int> labels(16, 1);
  for (auto _ : state) {
    Tensor y = m.forward(x, true);
    nn::LossResult loss = nn::softmax_cross_entropy(y, labels);
    m.zero_grad();
    m.backward(loss.grad_logits);
    benchmark::DoNotOptimize(loss.mean_loss);
  }
}
BENCHMARK(BM_ConvForwardBackward);

void BM_ModelUpdateSerde(benchmark::State& state) {
  Rng rng(4);
  nn::Model m = nn::make_fcnn6(600, 100, 256, rng);
  fl::ModelUpdateMsg msg;
  msg.client_id = 1;
  msg.num_samples = 100;
  msg.params = m.parameters();
  for (auto _ : state) {
    auto bytes = msg.serialize();
    fl::ModelUpdateMsg back = fl::ModelUpdateMsg::deserialize(bytes);
    benchmark::DoNotOptimize(back.params.as_span().data());
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<std::int64_t>(bytes.size()));
  }
}
BENCHMARK(BM_ModelUpdateSerde);

void BM_FedAvgAggregate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  Rng rng(5);
  nn::Model m = nn::make_fcnn6(600, 100, 256, rng);
  std::vector<fl::ModelUpdateMsg> updates(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    updates[static_cast<std::size_t>(c)].client_id = c;
    updates[static_cast<std::size_t>(c)].num_samples = 100 + c;
    updates[static_cast<std::size_t>(c)].params = m.parameters();
  }
  for (auto _ : state) {
    fl::FlServer server(m.parameters(), std::make_unique<fl::NoServerDefense>());
    server.aggregate(updates);
    benchmark::DoNotOptimize(server.global_params().as_span().data());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(5)->Arg(20);

void BM_ObfuscateLayer(benchmark::State& state) {
  Rng rng(6);
  nn::Model m = nn::make_fcnn6(600, 100, 256, rng);
  Rng orng(7);
  for (auto _ : state) {
    nn::FlatParams snapshot = m.parameters();
    core::obfuscate_layer_in_snapshot(m, snapshot, 4, orng);
    benchmark::DoNotOptimize(snapshot.as_span().data());
  }
}
BENCHMARK(BM_ObfuscateLayer);

void BM_JsDivergenceSamples(benchmark::State& state) {
  Rng rng(8);
  std::vector<float> a(100000), b(100000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.gaussian());
    b[i] = static_cast<float>(rng.gaussian(0.3, 1.1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(js_divergence_samples(a, b));
  }
}
BENCHMARK(BM_JsDivergenceSamples);

}  // namespace
}  // namespace dinar

BENCHMARK_MAIN();
