// Gemm microkernel sweep: sizes x kernels x threads -> BENCH_GEMM.json.
//
// Engineering companion to the dense/conv hot path (every client training
// step, MIA shadow model and sensitivity scan lowers onto gemm). Measures
// each dispatchable kernel tier at several problem sizes — including
// shapes that are not multiples of the 8x8 register block — and reports
// GFLOP/s plus the SIMD-over-scalar speedup.
//
// `--smoke` is the CI gate: it fails unless the widest SIMD kernel beats
// the scalar oracle by >= 2x on the 256x256x256 single-thread case. A full
// run enforces the stronger >= 4x acceptance bar. On hosts (or builds)
// without a SIMD kernel the gate is skipped: there is nothing to compare.
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "harness/experiment.h"
#include "tensor/cpu_features.h"
#include "tensor/tensor.h"
#include "util/execution_context.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dinar::bench {
namespace {

struct Measurement {
  double seconds = 0.0;  // best-of-reps per call
  double gflops = 0.0;
  float checksum = 0.0f;  // defeats dead-code elimination
};

Measurement time_gemm(std::int64_t m, std::int64_t k, std::int64_t n,
                      GemmKernel kernel, const ExecutionContext* exec, int reps) {
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + k * 1009 + n));
  const Tensor a = Tensor::gaussian({m, k}, rng);
  const Tensor b = Tensor::gaussian({k, n}, rng);

  Measurement out;
  Tensor warm = gemm(Trans::kN, Trans::kN, a, b, exec, kernel);
  out.checksum += warm.at(0);
  out.seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    const Tensor c = gemm(Trans::kN, Trans::kN, a, b, exec, kernel);
    const double secs = timer.elapsed_seconds();
    out.checksum += c.at(c.numel() - 1);
    if (secs < out.seconds) out.seconds = secs;
  }
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  out.gflops = flops / out.seconds / 1e9;
  return out;
}

int run(int argc, char** argv) {
  const bool smoke = parse_flag(argc, argv, "--smoke");
  print_header("Gemm microkernel sweep — kernels x sizes x threads",
               "dense/conv hot path substrate (no paper analogue)");

  std::vector<GemmKernel> kernels{GemmKernel::kScalar};
  if (gemm_kernel_available(GemmKernel::kAvx2))
    kernels.push_back(GemmKernel::kAvx2);
  std::printf("dispatch: active kernel is '%s' (DINAR_GEMM_KERNEL overrides)\n\n",
              gemm_kernel_name(active_gemm_kernel()));

  // (m, k, n): powers of two for the headline numbers plus off-block
  // shapes so remainder tiles are always measured too.
  std::vector<std::tuple<int, int, int>> sizes;
  if (smoke)
    sizes = {{96, 96, 96}, {100, 100, 100}, {256, 256, 256}};
  else
    sizes = {{64, 64, 64},    {100, 100, 100}, {128, 128, 128},
             {200, 120, 88},  {256, 256, 256}, {384, 384, 384},
             {512, 512, 512}, {768, 256, 333}};
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1} : std::vector<unsigned>{1, 2, 4};
  const int reps = smoke ? 3 : 7;

  BenchJson json("gemm");
  print_table_header("size/kernel", {"threads", "ms/call", "GFLOP/s",
                                     "vs scalar"}, 16);

  const double gate = smoke ? 2.0 : 4.0;
  bool gate_ok = true;
  bool gate_checked = false;
  float sink = 0.0f;

  for (const auto& [m, k, n] : sizes) {
    const std::string size_label = std::to_string(m) + "x" + std::to_string(k) +
                                   "x" + std::to_string(n);
    for (const unsigned threads : thread_counts) {
      ExecConfig cfg;
      cfg.threads = threads;
      ExecutionContext exec(cfg);
      const ExecutionContext* ep = threads > 1 ? &exec : nullptr;

      double scalar_seconds = 0.0;
      for (const GemmKernel kernel : kernels) {
        const Measurement mm = time_gemm(m, k, n, kernel, ep, reps);
        sink += mm.checksum;
        if (kernel == GemmKernel::kScalar) scalar_seconds = mm.seconds;
        const double speedup =
            kernel == GemmKernel::kScalar ? 1.0 : scalar_seconds / mm.seconds;
        print_table_row(size_label + "/" + gemm_kernel_name(kernel),
                        {static_cast<double>(threads), mm.seconds * 1e3,
                         mm.gflops, speedup},
                        16, 2);
        json.begin_row()
            .field("m", static_cast<std::int64_t>(m))
            .field("k", static_cast<std::int64_t>(k))
            .field("n", static_cast<std::int64_t>(n))
            .field("kernel", std::string(gemm_kernel_name(kernel)))
            .field("threads", static_cast<std::int64_t>(threads))
            .field("seconds_per_call", mm.seconds)
            .field("gflops", mm.gflops)
            .field("speedup_vs_scalar", speedup);
        // The acceptance bar lives on the 256^3 single-thread case.
        if (kernel != GemmKernel::kScalar && threads == 1 && m == 256 &&
            k == 256 && n == 256) {
          gate_checked = true;
          std::printf("  256^3 single-thread %s speedup over scalar: %.2fx "
                      "(gate >= %.1fx)\n",
                      gemm_kernel_name(kernel), speedup, gate);
          if (speedup < gate) gate_ok = false;
        }
      }
    }
  }
  json.write();
  std::printf("(checksum %g)\n", static_cast<double>(sink));

  if (kernels.size() == 1) {
    std::printf("no SIMD kernel available (DINAR_SIMD=OFF build or pre-AVX2 "
                "host); speedup gate skipped\n");
    return 0;
  }
  if (!gate_checked || !gate_ok) {
    std::fprintf(stderr,
                 "FAIL: SIMD gemm kernel did not reach the %.1fx single-thread "
                 "speedup gate on 256x256x256\n",
                 gate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
