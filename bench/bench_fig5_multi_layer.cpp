// Figure 5 (Purchase100, 6-layer FCNN): impact of obfuscating more than
// one layer. Paper: privacy is already optimal (50%) with the single most
// sensitive layer; every additional obfuscated layer only costs utility.
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Figure 5 — obfuscating multiple layers (Purchase100)",
               "Figure 5, §5.4");

  PreparedCase prepared = prepare_case(get_case("purchase100", scale));

  // The paper's sweep grows the protected set from the last layers down:
  // {5}, {4,5}, {3,4,5}, ..., {0..5}.
  const std::size_t j = 6;  // parameterized layers in the FCNN
  std::printf("\nprotected layer p from consensus: %zu\n\n", prepared.dinar_layer);
  print_table_header("obfuscated set",
                     {"AUC(paper)%", "AUC(ours)%", "acc(ours)%"});

  for (std::size_t first = j - 1; first + 1 >= 1; --first) {
    std::vector<std::size_t> layers;
    std::string label;
    for (std::size_t l = first; l < j; ++l) {
      layers.push_back(l);
      label += (label.empty() ? "" : "-") + std::to_string(l);
    }
    fl::DefenseBundle bundle =
        core::make_dinar_bundle(layers, prepared.spec.seed ^ 0xF55);
    bundle.name = "dinar{" + label + "}";
    const ExperimentResult r = run_experiment(prepared, bundle);
    print_table_row(label,
                    {50.0, 100.0 * r.local_attack_auc,
                     100.0 * r.personalized_accuracy});
    if (first == 0) break;
  }
  std::printf("\npaper: AUC pinned at 50 for every set; accuracy degrades as more "
              "layers are obfuscated (Figure 5b).\n");
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
