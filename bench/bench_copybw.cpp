// Copy-bandwidth bench for the parameter data model: counts per-round heap
// allocations and bulk parameter copies on the exchange+aggregate hot path
// (snapshot -> serialize -> deserialize -> FedAvg) under the contiguous
// FlatParams arena versus the per-tensor pipeline it replaced. The library
// shim for that pipeline is gone, so the baseline is reconstructed locally
// below — the historical code path is the thing being measured. Writes
// BENCH_COPYBW.json; `--smoke` doubles as the CI allocation-regression gate
// (fails unless the flat path stays >= 5x cheaper in allocations than the
// tensor-list baseline).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "fl/server.h"
#include "harness/experiment.h"
#include "nn/model_zoo.h"
#include "tensor/tensor_serde.h"
#include "util/memory_tracker.h"
#include "util/serde.h"

namespace dinar::bench {
namespace {

struct RoundCost {
  double allocs_per_round = 0.0;
  double alloc_bytes_per_round = 0.0;
  double copied_bytes_per_round = 0.0;
  double wire_bytes_per_round = 0.0;
};

struct TrackerMark {
  std::uint64_t events;
  std::uint64_t bytes;
  std::uint64_t copied;
};

TrackerMark mark() {
  const MemoryTracker& t = MemoryTracker::instance();
  return {t.alloc_events(), t.allocated_bytes_total(), t.copied_bytes_total()};
}

// One round on the FlatParams path: every client snapshots the model into a
// flat arena, frames it as a v2 update, the server decodes and FedAvgs.
RoundCost run_flat(nn::Model& model, int clients, int rounds) {
  fl::FlServer server(model.parameters(), std::make_unique<fl::NoServerDefense>());
  RoundCost cost;
  for (int r = 0; r < rounds; ++r) {
    const TrackerMark before = mark();
    std::vector<fl::ModelUpdateMsg> inbox;
    for (int c = 0; c < clients; ++c) {
      fl::ModelUpdateMsg u;
      u.client_id = c;
      u.round = server.round();
      u.num_samples = 100 + c;
      u.params = model.parameters();  // one arena allocation
      const auto bytes = u.serialize();
      cost.wire_bytes_per_round += static_cast<double>(bytes.size());
      inbox.push_back(fl::ModelUpdateMsg::deserialize(bytes));
    }
    server.aggregate(inbox);
    const TrackerMark after = mark();
    cost.allocs_per_round += static_cast<double>(after.events - before.events);
    cost.alloc_bytes_per_round += static_cast<double>(after.bytes - before.bytes);
    cost.copied_bytes_per_round += static_cast<double>(after.copied - before.copied);
  }
  cost.allocs_per_round /= rounds;
  cost.alloc_bytes_per_round /= rounds;
  cost.copied_bytes_per_round /= rounds;
  cost.wire_bytes_per_round /= rounds;
  return cost;
}

// Faithful local reconstruction of the removed per-tensor pipeline: one
// Tensor per entry, one wire record per tensor, per-tensor FedAvg loops.
using TensorList = std::vector<Tensor>;

TensorList snapshot_tensors(const nn::FlatParams& flat) {
  TensorList out;
  out.reserve(flat.index()->num_entries());
  for (std::size_t i = 0; i < flat.index()->num_entries(); ++i) {
    const std::span<const float> vals = flat.entry_span(i);
    out.emplace_back(flat.index()->entry(i).shape,
                     std::vector<float>(vals.begin(), vals.end()));
  }
  return out;
}

void write_tensor_list(BinaryWriter& w, const TensorList& list) {
  w.write_u64(list.size());
  for (const Tensor& t : list) write_tensor(w, t);
}

TensorList read_tensor_list(BinaryReader& r) {
  const std::uint64_t n = r.read_u64();
  TensorList out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(read_tensor(r));
  return out;
}

void tensor_list_scale(TensorList& a, float s) {
  for (Tensor& t : a)
    for (float& v : t.values()) v *= s;
}

void tensor_list_add_scaled(TensorList& a, const TensorList& b, float s) {
  for (std::size_t t = 0; t < a.size(); ++t) {
    const std::span<const float> src = b[t].values();
    std::span<float> dst = a[t].values();
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += s * src[j];
  }
}

RoundCost run_param_list(nn::Model& model, int clients, int rounds) {
  RoundCost cost;
  for (int r = 0; r < rounds; ++r) {
    const TrackerMark before = mark();
    std::vector<TensorList> inbox;
    std::vector<std::int64_t> weights;
    double wire = 0.0;
    for (int c = 0; c < clients; ++c) {
      const TensorList snapshot = snapshot_tensors(model.parameters());
      BinaryWriter w;
      write_tensor_list(w, snapshot);
      wire += static_cast<double>(w.size());
      BinaryReader reader(w.buffer());
      inbox.push_back(read_tensor_list(reader));
      weights.push_back(100 + c);
    }
    std::int64_t total = 0;
    for (const std::int64_t s : weights) total += s;
    TensorList global = inbox[0];
    tensor_list_scale(global, static_cast<float>(weights[0]) / total);
    for (int c = 1; c < clients; ++c)
      tensor_list_add_scaled(global, inbox[static_cast<std::size_t>(c)],
                             static_cast<float>(weights[static_cast<std::size_t>(c)]) / total);
    const TrackerMark after = mark();
    cost.allocs_per_round += static_cast<double>(after.events - before.events);
    cost.alloc_bytes_per_round += static_cast<double>(after.bytes - before.bytes);
    cost.copied_bytes_per_round += static_cast<double>(after.copied - before.copied);
    cost.wire_bytes_per_round += wire;
  }
  cost.allocs_per_round /= rounds;
  cost.alloc_bytes_per_round /= rounds;
  cost.copied_bytes_per_round /= rounds;
  cost.wire_bytes_per_round /= rounds;
  return cost;
}

void add_row(BenchJson& json, const char* path, int clients, const RoundCost& c) {
  json.begin_row()
      .field("path", std::string(path))
      .field("clients", static_cast<std::int64_t>(clients))
      .field("allocs_per_round", c.allocs_per_round)
      .field("alloc_bytes_per_round", c.alloc_bytes_per_round)
      .field("copied_bytes_per_round", c.copied_bytes_per_round)
      .field("wire_bytes_per_round", c.wire_bytes_per_round);
}

int run(int argc, char** argv) {
  const bool smoke = parse_flag(argc, argv, "--smoke");
  print_header("Parameter copy/alloc bandwidth — FlatParams vs ParamList",
               "engineering companion to Table 3's cost metrics");

  Rng rng(29);
  // The paper's 6-layer FCNN shape; --smoke shrinks width, not structure,
  // so the per-tensor overhead being measured keeps its 12 wire records.
  nn::Model model = smoke ? nn::make_fcnn6(20, 10, 32, rng)
                          : nn::make_fcnn6(600, 100, 256, rng);
  const int rounds = smoke ? 2 : 5;
  const std::vector<int> client_counts = smoke ? std::vector<int>{5}
                                               : std::vector<int>{5, 20};

  BenchJson json("copybw");
  print_table_header("path", {"clients", "allocs/rd", "MB alloc/rd",
                              "MB copied/rd", "MB wire/rd"});
  bool gate_ok = true;
  for (const int clients : client_counts) {
    const RoundCost flat = run_flat(model, clients, rounds);
    const RoundCost baseline = run_param_list(model, clients, rounds);
    const double mb = 1.0 / (1024.0 * 1024.0);
    print_table_row("flat", {static_cast<double>(clients), flat.allocs_per_round,
                             flat.alloc_bytes_per_round * mb,
                             flat.copied_bytes_per_round * mb,
                             flat.wire_bytes_per_round * mb});
    print_table_row("param_list",
                    {static_cast<double>(clients), baseline.allocs_per_round,
                     baseline.alloc_bytes_per_round * mb,
                     baseline.copied_bytes_per_round * mb,
                     baseline.wire_bytes_per_round * mb});
    add_row(json, "flat", clients, flat);
    add_row(json, "param_list", clients, baseline);

    const double ratio =
        flat.allocs_per_round > 0.0
            ? baseline.allocs_per_round / flat.allocs_per_round
            : 0.0;
    std::printf("  alloc ratio (param_list / flat) at %d clients: %.1fx\n",
                clients, ratio);
    json.begin_row()
        .field("path", std::string("ratio"))
        .field("clients", static_cast<std::int64_t>(clients))
        .field("alloc_ratio", ratio);
    if (ratio < 5.0) gate_ok = false;
  }
  json.write();

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: flat path is less than 5x cheaper in per-round heap "
                 "allocations than the ParamList baseline\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
