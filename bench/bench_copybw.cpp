// Copy-bandwidth bench for the parameter data model: counts per-round heap
// allocations and bulk parameter copies on the exchange+aggregate hot path
// (snapshot -> serialize -> deserialize -> FedAvg) under the contiguous
// FlatParams arena versus the deprecated per-tensor ParamList pipeline it
// replaced. Writes BENCH_COPYBW.json; `--smoke` doubles as the CI
// allocation-regression gate (fails unless the flat path stays >= 5x
// cheaper in allocations than the tensor-list baseline).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "fl/server.h"
#include "harness/experiment.h"
#include "nn/model_zoo.h"
#include "util/memory_tracker.h"

namespace dinar::bench {
namespace {

struct RoundCost {
  double allocs_per_round = 0.0;
  double alloc_bytes_per_round = 0.0;
  double copied_bytes_per_round = 0.0;
  double wire_bytes_per_round = 0.0;
};

struct TrackerMark {
  std::uint64_t events;
  std::uint64_t bytes;
  std::uint64_t copied;
};

TrackerMark mark() {
  const MemoryTracker& t = MemoryTracker::instance();
  return {t.alloc_events(), t.allocated_bytes_total(), t.copied_bytes_total()};
}

// One round on the FlatParams path: every client snapshots the model into a
// flat arena, frames it as a v2 update, the server decodes and FedAvgs.
RoundCost run_flat(nn::Model& model, int clients, int rounds) {
  fl::FlServer server(model.parameters(), std::make_unique<fl::NoServerDefense>());
  RoundCost cost;
  for (int r = 0; r < rounds; ++r) {
    const TrackerMark before = mark();
    std::vector<fl::ModelUpdateMsg> inbox;
    for (int c = 0; c < clients; ++c) {
      fl::ModelUpdateMsg u;
      u.client_id = c;
      u.round = server.round();
      u.num_samples = 100 + c;
      u.params = model.parameters();  // one arena allocation
      const auto bytes = u.serialize();
      cost.wire_bytes_per_round += static_cast<double>(bytes.size());
      inbox.push_back(fl::ModelUpdateMsg::deserialize(bytes));
    }
    server.aggregate(inbox);
    const TrackerMark after = mark();
    cost.allocs_per_round += static_cast<double>(after.events - before.events);
    cost.alloc_bytes_per_round += static_cast<double>(after.bytes - before.bytes);
    cost.copied_bytes_per_round += static_cast<double>(after.copied - before.copied);
  }
  cost.allocs_per_round /= rounds;
  cost.alloc_bytes_per_round /= rounds;
  cost.copied_bytes_per_round /= rounds;
  cost.wire_bytes_per_round /= rounds;
  return cost;
}

// The same round on the pre-flat pipeline, reconstructed from the shim:
// per-tensor snapshots, per-tensor wire records, per-tensor FedAvg loops.
RoundCost run_param_list(nn::Model& model, int clients, int rounds) {
  RoundCost cost;
  for (int r = 0; r < rounds; ++r) {
    const TrackerMark before = mark();
    std::vector<nn::ParamList> inbox;
    std::vector<std::int64_t> weights;
    double wire = 0.0;
    for (int c = 0; c < clients; ++c) {
      const nn::ParamList snapshot = model.parameters().to_param_list();
      BinaryWriter w;
      nn::write_param_list(w, snapshot);
      wire += static_cast<double>(w.size());
      BinaryReader reader(w.buffer());
      inbox.push_back(nn::read_param_list(reader));
      weights.push_back(100 + c);
    }
    std::int64_t total = 0;
    for (const std::int64_t s : weights) total += s;
    nn::ParamList global = inbox[0];
    nn::param_list_scale(global, static_cast<float>(weights[0]) / total);
    for (int c = 1; c < clients; ++c)
      nn::param_list_add_scaled(global, inbox[static_cast<std::size_t>(c)],
                                static_cast<float>(weights[static_cast<std::size_t>(c)]) / total);
    const TrackerMark after = mark();
    cost.allocs_per_round += static_cast<double>(after.events - before.events);
    cost.alloc_bytes_per_round += static_cast<double>(after.bytes - before.bytes);
    cost.copied_bytes_per_round += static_cast<double>(after.copied - before.copied);
    cost.wire_bytes_per_round += wire;
  }
  cost.allocs_per_round /= rounds;
  cost.alloc_bytes_per_round /= rounds;
  cost.copied_bytes_per_round /= rounds;
  cost.wire_bytes_per_round /= rounds;
  return cost;
}

void add_row(BenchJson& json, const char* path, int clients, const RoundCost& c) {
  json.begin_row()
      .field("path", std::string(path))
      .field("clients", static_cast<std::int64_t>(clients))
      .field("allocs_per_round", c.allocs_per_round)
      .field("alloc_bytes_per_round", c.alloc_bytes_per_round)
      .field("copied_bytes_per_round", c.copied_bytes_per_round)
      .field("wire_bytes_per_round", c.wire_bytes_per_round);
}

int run(int argc, char** argv) {
  const bool smoke = parse_flag(argc, argv, "--smoke");
  print_header("Parameter copy/alloc bandwidth — FlatParams vs ParamList",
               "engineering companion to Table 3's cost metrics");

  Rng rng(29);
  // The paper's 6-layer FCNN shape; --smoke shrinks width, not structure,
  // so the per-tensor overhead being measured keeps its 12 wire records.
  nn::Model model = smoke ? nn::make_fcnn6(20, 10, 32, rng)
                          : nn::make_fcnn6(600, 100, 256, rng);
  const int rounds = smoke ? 2 : 5;
  const std::vector<int> client_counts = smoke ? std::vector<int>{5}
                                               : std::vector<int>{5, 20};

  BenchJson json("copybw");
  print_table_header("path", {"clients", "allocs/rd", "MB alloc/rd",
                              "MB copied/rd", "MB wire/rd"});
  bool gate_ok = true;
  for (const int clients : client_counts) {
    const RoundCost flat = run_flat(model, clients, rounds);
    const RoundCost baseline = run_param_list(model, clients, rounds);
    const double mb = 1.0 / (1024.0 * 1024.0);
    print_table_row("flat", {static_cast<double>(clients), flat.allocs_per_round,
                             flat.alloc_bytes_per_round * mb,
                             flat.copied_bytes_per_round * mb,
                             flat.wire_bytes_per_round * mb});
    print_table_row("param_list",
                    {static_cast<double>(clients), baseline.allocs_per_round,
                     baseline.alloc_bytes_per_round * mb,
                     baseline.copied_bytes_per_round * mb,
                     baseline.wire_bytes_per_round * mb});
    add_row(json, "flat", clients, flat);
    add_row(json, "param_list", clients, baseline);

    const double ratio =
        flat.allocs_per_round > 0.0
            ? baseline.allocs_per_round / flat.allocs_per_round
            : 0.0;
    std::printf("  alloc ratio (param_list / flat) at %d clients: %.1fx\n",
                clients, ratio);
    json.begin_row()
        .field("path", std::string("ratio"))
        .field("clients", static_cast<std::int64_t>(clients))
        .field("alloc_ratio", ratio);
    if (ratio < 5.0) gate_ok = false;
  }
  json.write();

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: flat path is less than 5x cheaper in per-round heap "
                 "allocations than the ParamList baseline\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
