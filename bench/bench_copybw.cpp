// Copy-bandwidth bench for the parameter data model: counts per-round heap
// allocations and bulk parameter copies on the exchange+aggregate hot path
// (snapshot -> serialize -> deserialize -> FedAvg) under the contiguous
// FlatParams arena versus the per-tensor pipeline it replaced. The library
// shim for that pipeline is gone, so the baseline is reconstructed locally
// below — the historical code path is the thing being measured. Writes
// BENCH_COPYBW.json; `--smoke` doubles as the CI allocation-regression gate
// (fails unless the flat path stays >= 5x cheaper in allocations than the
// tensor-list baseline).
//
// Second sweep: the DFRM v3 wire codec (DESIGN.md §14) — accuracy vs
// bytes/round across encodings (f16 / bf16 / int8 / int8+top-k) and its
// interaction with the DINAR obfuscation defense (obfuscated entries ride
// lossless, shrinking the savings) and DP noise (quantization on top of
// calibrated noise). Two CI gates, both live under `--smoke`: the forced-v3
// lossless run must hash to the bit-identical final model of the v2 run,
// and int8 + top-k(0.1) must cut uplink wire bytes by >= 4x.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "fl/server.h"
#include "fl/simulation.h"
#include "harness/experiment.h"
#include "nn/model_zoo.h"
#include "tensor/tensor_serde.h"
#include "util/memory_tracker.h"
#include "util/serde.h"

namespace dinar::bench {
namespace {

struct RoundCost {
  double allocs_per_round = 0.0;
  double alloc_bytes_per_round = 0.0;
  double copied_bytes_per_round = 0.0;
  double wire_bytes_per_round = 0.0;
};

struct TrackerMark {
  std::uint64_t events;
  std::uint64_t bytes;
  std::uint64_t copied;
};

TrackerMark mark() {
  const MemoryTracker& t = MemoryTracker::instance();
  return {t.alloc_events(), t.allocated_bytes_total(), t.copied_bytes_total()};
}

// One round on the FlatParams path: every client snapshots the model into a
// flat arena, frames it as a v2 update, the server decodes and FedAvgs.
RoundCost run_flat(nn::Model& model, int clients, int rounds) {
  fl::FlServer server(model.parameters(), std::make_unique<fl::NoServerDefense>());
  RoundCost cost;
  for (int r = 0; r < rounds; ++r) {
    const TrackerMark before = mark();
    std::vector<fl::ModelUpdateMsg> inbox;
    for (int c = 0; c < clients; ++c) {
      fl::ModelUpdateMsg u;
      u.client_id = c;
      u.round = server.round();
      u.num_samples = 100 + c;
      u.params = model.parameters();  // one arena allocation
      const auto bytes = u.serialize();
      cost.wire_bytes_per_round += static_cast<double>(bytes.size());
      inbox.push_back(fl::ModelUpdateMsg::deserialize(bytes));
    }
    server.aggregate(inbox);
    const TrackerMark after = mark();
    cost.allocs_per_round += static_cast<double>(after.events - before.events);
    cost.alloc_bytes_per_round += static_cast<double>(after.bytes - before.bytes);
    cost.copied_bytes_per_round += static_cast<double>(after.copied - before.copied);
  }
  cost.allocs_per_round /= rounds;
  cost.alloc_bytes_per_round /= rounds;
  cost.copied_bytes_per_round /= rounds;
  cost.wire_bytes_per_round /= rounds;
  return cost;
}

// Faithful local reconstruction of the removed per-tensor pipeline: one
// Tensor per entry, one wire record per tensor, per-tensor FedAvg loops.
using TensorList = std::vector<Tensor>;

TensorList snapshot_tensors(const nn::FlatParams& flat) {
  TensorList out;
  out.reserve(flat.index()->num_entries());
  for (std::size_t i = 0; i < flat.index()->num_entries(); ++i) {
    const std::span<const float> vals = flat.entry_span(i);
    out.emplace_back(flat.index()->entry(i).shape,
                     std::vector<float>(vals.begin(), vals.end()));
  }
  return out;
}

void write_tensor_list(BinaryWriter& w, const TensorList& list) {
  w.write_u64(list.size());
  for (const Tensor& t : list) write_tensor(w, t);
}

TensorList read_tensor_list(BinaryReader& r) {
  const std::uint64_t n = r.read_u64();
  TensorList out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(read_tensor(r));
  return out;
}

void tensor_list_scale(TensorList& a, float s) {
  for (Tensor& t : a)
    for (float& v : t.values()) v *= s;
}

void tensor_list_add_scaled(TensorList& a, const TensorList& b, float s) {
  for (std::size_t t = 0; t < a.size(); ++t) {
    const std::span<const float> src = b[t].values();
    std::span<float> dst = a[t].values();
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += s * src[j];
  }
}

RoundCost run_param_list(nn::Model& model, int clients, int rounds) {
  RoundCost cost;
  for (int r = 0; r < rounds; ++r) {
    const TrackerMark before = mark();
    std::vector<TensorList> inbox;
    std::vector<std::int64_t> weights;
    double wire = 0.0;
    for (int c = 0; c < clients; ++c) {
      const TensorList snapshot = snapshot_tensors(model.parameters());
      BinaryWriter w;
      write_tensor_list(w, snapshot);
      wire += static_cast<double>(w.size());
      BinaryReader reader(w.buffer());
      inbox.push_back(read_tensor_list(reader));
      weights.push_back(100 + c);
    }
    std::int64_t total = 0;
    for (const std::int64_t s : weights) total += s;
    TensorList global = inbox[0];
    tensor_list_scale(global, static_cast<float>(weights[0]) / total);
    for (int c = 1; c < clients; ++c)
      tensor_list_add_scaled(global, inbox[static_cast<std::size_t>(c)],
                             static_cast<float>(weights[static_cast<std::size_t>(c)]) / total);
    const TrackerMark after = mark();
    cost.allocs_per_round += static_cast<double>(after.events - before.events);
    cost.alloc_bytes_per_round += static_cast<double>(after.bytes - before.bytes);
    cost.copied_bytes_per_round += static_cast<double>(after.copied - before.copied);
    cost.wire_bytes_per_round += wire;
  }
  cost.allocs_per_round /= rounds;
  cost.alloc_bytes_per_round /= rounds;
  cost.copied_bytes_per_round /= rounds;
  cost.wire_bytes_per_round /= rounds;
  return cost;
}

// ----------------------------------------------------- wire-codec sweep --

std::uint64_t param_hash(const nn::FlatParams& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const float v : params.as_span()) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    for (int b = 0; b < 32; b += 8) {
      h ^= (bits >> b) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

struct CodecRun {
  double bytes_up = 0.0, bytes_down = 0.0;        // per round, as shipped
  double uncoded_up = 0.0, uncoded_down = 0.0;    // per round, v2-equivalent
  double accuracy = 0.0;
  std::uint64_t final_hash = 0;
};

// One full (small) federated run under `codec` and the named defense.
// Wire savings are read from the uncoded-bytes counters the codec turns on
// in TransportStats, so every cell carries its own v2-equivalent baseline.
CodecRun run_codec_cell(const DatasetCase& spec,
                        const fl::UpdateCodecConfig& codec,
                        const std::string& defense) {
  Rng rng(spec.seed);
  const data::Dataset full = spec.make_data(rng);
  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = spec.num_clients;
  data::FlSplit split = data::make_fl_split(full, split_cfg, rng);

  fl::SimulationConfig cfg;
  cfg.rounds = spec.rounds;
  cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
  cfg.learning_rate = spec.learning_rate;
  cfg.seed = spec.seed + 3;
  cfg.codec = codec;

  fl::DefenseBundle bundle;
  if (defense == "dinar") {
    bundle = core::make_dinar_bundle({1});
  } else if (defense == "wdp") {
    privacy::BaselineDefenseConfig dp_cfg;
    dp_cfg.num_clients = spec.num_clients;
    bundle = privacy::make_baseline_bundle("wdp", dp_cfg);
  }

  fl::FederatedSimulation sim(spec.model_factory, std::move(split), cfg,
                              std::move(bundle));
  sim.run();

  const fl::TransportStats& s = sim.transport().stats();
  const double rounds = static_cast<double>(spec.rounds);
  CodecRun out;
  out.bytes_up = static_cast<double>(s.bytes_up) / rounds;
  out.bytes_down = static_cast<double>(s.bytes_down) / rounds;
  out.uncoded_up = static_cast<double>(s.bytes_up_uncoded) / rounds;
  out.uncoded_down = static_cast<double>(s.bytes_down_uncoded) / rounds;
  out.accuracy = sim.evaluate_now().global_test_accuracy;
  out.final_hash = param_hash(sim.server().global_params());
  return out;
}

void add_row(BenchJson& json, const char* path, int clients, const RoundCost& c) {
  json.begin_row()
      .field("path", std::string(path))
      .field("clients", static_cast<std::int64_t>(clients))
      .field("allocs_per_round", c.allocs_per_round)
      .field("alloc_bytes_per_round", c.alloc_bytes_per_round)
      .field("copied_bytes_per_round", c.copied_bytes_per_round)
      .field("wire_bytes_per_round", c.wire_bytes_per_round);
}

int run(int argc, char** argv) {
  const bool smoke = parse_flag(argc, argv, "--smoke");
  print_header("Parameter copy/alloc bandwidth — FlatParams vs ParamList",
               "engineering companion to Table 3's cost metrics");

  Rng rng(29);
  // The paper's 6-layer FCNN shape; --smoke shrinks width, not structure,
  // so the per-tensor overhead being measured keeps its 12 wire records.
  nn::Model model = smoke ? nn::make_fcnn6(20, 10, 32, rng)
                          : nn::make_fcnn6(600, 100, 256, rng);
  const int rounds = smoke ? 2 : 5;
  const std::vector<int> client_counts = smoke ? std::vector<int>{5}
                                               : std::vector<int>{5, 20};

  BenchJson json("copybw");
  print_table_header("path", {"clients", "allocs/rd", "MB alloc/rd",
                              "MB copied/rd", "MB wire/rd"});
  bool gate_ok = true;
  for (const int clients : client_counts) {
    const RoundCost flat = run_flat(model, clients, rounds);
    const RoundCost baseline = run_param_list(model, clients, rounds);
    const double mb = 1.0 / (1024.0 * 1024.0);
    print_table_row("flat", {static_cast<double>(clients), flat.allocs_per_round,
                             flat.alloc_bytes_per_round * mb,
                             flat.copied_bytes_per_round * mb,
                             flat.wire_bytes_per_round * mb});
    print_table_row("param_list",
                    {static_cast<double>(clients), baseline.allocs_per_round,
                     baseline.alloc_bytes_per_round * mb,
                     baseline.copied_bytes_per_round * mb,
                     baseline.wire_bytes_per_round * mb});
    add_row(json, "flat", clients, flat);
    add_row(json, "param_list", clients, baseline);

    const double ratio =
        flat.allocs_per_round > 0.0
            ? baseline.allocs_per_round / flat.allocs_per_round
            : 0.0;
    std::printf("  alloc ratio (param_list / flat) at %d clients: %.1fx\n",
                clients, ratio);
    json.begin_row()
        .field("path", std::string("ratio"))
        .field("clients", static_cast<std::int64_t>(clients))
        .field("alloc_ratio", ratio);
    if (ratio < 5.0) gate_ok = false;
  }

  // -- wire-codec sweep -----------------------------------------------------
  // Accuracy vs bytes/round per codec, plus the defense interactions: the
  // DINAR bundle keeps its obfuscated entries lossless (smaller savings,
  // intact mechanism), WDP shows quantization composing with DP noise.
  std::printf("\nWire codec — accuracy vs bytes/round (DESIGN.md §14)\n");
  print_table_header("codec/defense", {"upKB/rd", "downKB/rd", "saved_x",
                                       "accuracy", "hash"});
  DatasetCase spec = small_mlp_case(smoke ? 0.35 : 1.0);
  spec.num_clients = 4;
  spec.rounds = smoke ? 3 : 6;

  fl::UpdateCodecConfig lossless_v3;
  lossless_v3.broadcast.force_v3 = true;
  lossless_v3.update.force_v3 = true;
  fl::UpdateCodecConfig f16;
  f16.broadcast.encoding = fl::WireEncoding::kF16;
  f16.update.encoding = fl::WireEncoding::kF16;
  fl::UpdateCodecConfig bf16;
  bf16.broadcast.encoding = fl::WireEncoding::kBf16;
  bf16.update.encoding = fl::WireEncoding::kBf16;
  fl::UpdateCodecConfig int8;
  int8.broadcast.encoding = fl::WireEncoding::kF16;
  int8.update.encoding = fl::WireEncoding::kInt8;
  fl::UpdateCodecConfig int8_topk = int8;
  int8_topk.update.topk_fraction = 0.1;

  struct CodecCell {
    const char* name;
    fl::UpdateCodecConfig codec;
    const char* defense;
  };
  const std::vector<CodecCell> cells{
      {"v2", fl::UpdateCodecConfig{}, "none"},
      {"v3-lossless", lossless_v3, "none"},
      {"f16", f16, "none"},
      {"bf16", bf16, "none"},
      {"int8", int8, "none"},
      {"int8+top0.1", int8_topk, "none"},
      {"int8+top0.1", int8_topk, "dinar"},
      {"int8+top0.1", int8_topk, "wdp"},
  };

  std::uint64_t v2_hash = 0;
  bool lossless_hash_ok = true, reduction_ok = true;
  const double kb = 1.0 / 1024.0;
  for (const CodecCell& cell : cells) {
    const CodecRun r = run_codec_cell(spec, cell.codec, cell.defense);
    const double saved_up = r.uncoded_up > 0.0 && r.bytes_up > 0.0
                                ? r.uncoded_up / r.bytes_up
                                : 1.0;
    if (std::string(cell.name) == "v2") v2_hash = r.final_hash;
    bool hash_gate = true;
    if (std::string(cell.name) == "v3-lossless") {
      hash_gate = r.final_hash == v2_hash;
      lossless_hash_ok = hash_gate;
    }
    if (std::string(cell.name) == "int8+top0.1" &&
        std::string(cell.defense) == "none" && saved_up < 4.0)
      reduction_ok = false;

    print_table_row(std::string(cell.name) + "/" + cell.defense,
                    {r.bytes_up * kb, r.bytes_down * kb, saved_up,
                     100.0 * r.accuracy, hash_gate ? 1.0 : 0.0});
    json.begin_row()
        .field("path", std::string("codec_sweep"))
        .field("codec", std::string(cell.name))
        .field("defense", std::string(cell.defense))
        .field("bytes_up_per_round", r.bytes_up)
        .field("bytes_down_per_round", r.bytes_down)
        .field("bytes_up_uncoded_per_round", r.uncoded_up)
        .field("bytes_down_uncoded_per_round", r.uncoded_down)
        .field("uplink_saved_ratio", saved_up)
        .field("global_accuracy", r.accuracy)
        .field("final_model_hash", static_cast<std::int64_t>(r.final_hash >> 1))
        .field("lossless_bit_identical",
               std::string(hash_gate ? "true" : "false"));
  }
  std::printf("  expected: `saved_x` ~1 for v2/v3-lossless, ~2x for f16/bf16, "
              ">= 4x for int8+top0.1 (gated); the dinar row saves less because "
              "its obfuscated layer ships lossless f32; accuracy holds within "
              "noise of the v2 row for every codec.\n");
  json.write();

  int rc = 0;
  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: flat path is less than 5x cheaper in per-round heap "
                 "allocations than the ParamList baseline\n");
    rc = 1;
  }
  if (!lossless_hash_ok) {
    std::fprintf(stderr,
                 "FAIL: forced-v3 lossless run diverged from the v2 run's "
                 "final model hash\n");
    rc = 1;
  }
  if (!reduction_ok) {
    std::fprintf(stderr,
                 "FAIL: int8+top-k(0.1) saved less than 4x uplink wire bytes "
                 "per round\n");
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
