// Figure 10: LDP under several privacy budgets vs DINAR vs no defense
// (Purchase100). Paper: epsilon = 0.05 finally reaches 50% AUC but
// collapses accuracy to 13%; DINAR reaches the same protection at
// no-defense-level accuracy.
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Figure 10 — LDP privacy budgets vs DINAR (Purchase100)",
               "Figure 10, §5.10");

  PreparedCase prepared = prepare_case(get_case("purchase100", scale));
  print_table_header("defense", {"accuracy%", "attackAUC%"});

  const ExperimentResult none =
      run_experiment(prepared, make_bundle("none", prepared, {}));
  print_table_row("no defense",
                  {100.0 * none.personalized_accuracy, 100.0 * none.local_attack_auc});

  for (double eps : {0.05, 0.2, 1.0, 2.2}) {
    privacy::BaselineDefenseConfig cfg;
    cfg.dp.epsilon = eps;
    // Milder sensitivity proxy than the Figure 6 default: at this model
    // scale it spreads the epsilon sweep across the utility range the
    // paper's Figure 10 shows (eps=0.05 destroys accuracy, eps=2.2 stays
    // near baseline while leaking more).
    cfg.dp.sensitivity = 0.01;
    fl::DefenseBundle bundle = make_bundle("ldp", prepared, cfg);
    bundle.name = "ldp(eps=" + std::to_string(eps).substr(0, 4) + ")";
    const ExperimentResult r = run_experiment(prepared, bundle);
    print_table_row(bundle.name,
                    {100.0 * r.personalized_accuracy, 100.0 * r.local_attack_auc});
  }

  const ExperimentResult dinar =
      run_experiment(prepared, make_bundle("dinar", prepared, {}));
  print_table_row("dinar",
                  {100.0 * dinar.personalized_accuracy, 100.0 * dinar.local_attack_auc});

  std::printf("\npaper: smaller epsilon => better privacy but collapsing accuracy "
              "(13%% at eps=0.05); DINAR keeps near-baseline accuracy at the "
              "50%% optimum.\n");
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
