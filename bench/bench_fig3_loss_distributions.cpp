// Figure 3: member vs non-member loss distributions of the attacked model
// under No Defense / LDP / CDP / WDP / DINAR (Cifar-10). The paper's
// reading: without defense the two distributions differ sharply (MIA
// succeeds); DP baselines align them at the price of frequent high losses
// (utility loss); DINAR aligns them while keeping losses low.
//
// Output per defense: an ASCII histogram of both distributions plus their
// means and JS divergence.
#include <cmath>

#include "harness/experiment.h"
#include "nn/loss.h"
#include "util/stats.h"

namespace dinar::bench {
namespace {

std::vector<double> member_losses(fl::FederatedSimulation& sim, bool members) {
  // Attack surface of Figure 3: the client's model as the server received
  // it (local-model surface). Aggregate per-sample losses over clients.
  std::vector<double> losses;
  for (std::size_t i = 0; i < sim.clients().size(); ++i) {
    nn::Model view = sim.server_view_of_client(i);
    const data::Dataset& pool =
        members ? sim.clients()[i].train_data() : sim.test_data();
    Rng no_shuffle(0);
    data::BatchIterator batches(pool, 256, no_shuffle, false);
    data::BatchIterator::Batch batch;
    while (batches.next(batch)) {
      Tensor logits = view.forward(batch.features, false);
      for (double l : nn::per_sample_cross_entropy(logits, batch.labels))
        losses.push_back(l);
    }
  }
  return losses;
}

void print_histogram(const char* tag, const std::vector<double>& losses, double lo,
                     double hi) {
  Histogram h(lo, hi, 16);
  h.add_all(losses);
  const std::vector<double> pmf = h.pmf();
  std::printf("  %-12s", tag);
  for (double p : pmf) {
    const int level = static_cast<int>(p * 30.0);
    std::printf("%c", level == 0 ? '.' : (level < 3 ? ':' : (level < 8 ? 'o' : '#')));
  }
  std::printf("\n");
}

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Figure 3 — loss distributions, members vs non-members (Cifar-10)",
               "Figure 3, §5.4");

  PreparedCase prepared = prepare_case(get_case("cifar10", scale),
                                       std::numeric_limits<double>::infinity(),
                                       /*fit_mia=*/false);

  for (const char* defense : {"none", "ldp", "cdp", "wdp", "dinar"}) {
    const DatasetCase& spec = prepared.spec;
    fl::SimulationConfig cfg;
    cfg.rounds = spec.rounds;
    cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
    cfg.learning_rate = spec.learning_rate;
    cfg.seed = spec.seed + 7;
    fl::FederatedSimulation sim(spec.model_factory, prepared.split, cfg,
                                make_bundle(defense, prepared, {}));
    sim.run();

    std::vector<double> member = member_losses(sim, true);
    std::vector<double> non_member = member_losses(sim, false);

    std::vector<float> mf(member.begin(), member.end());
    std::vector<float> nf(non_member.begin(), non_member.end());
    const double js = js_divergence_samples(mf, nf, 32);

    std::printf("\n[%s] mean loss: members %.3f, non-members %.3f, JS divergence %.4f\n",
                defense, mean(member), mean(non_member), js);
    const double hi = std::max(6.0, std::max(mean(member), mean(non_member)) * 2.0);
    print_histogram("members", member, 0.0, hi);
    print_histogram("non-members", non_member, 0.0, hi);
  }
  std::printf("\npaper: no-defense distributions differ sharply; DP variants align "
              "them but shift mass to high losses; DINAR aligns them at low loss.\n");
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
