// Figure 6: attack AUC against the global model and the local models, for
// six datasets x seven defense scenarios. The paper's reported values are
// printed beside the measured ones; the reproduction target is the shape
// (DINAR at the 50% optimum on both surfaces, SA protecting only local
// models, DP variants inconsistent), not absolute numbers.
#include <cstring>

#include "harness/experiment.h"

namespace dinar::bench {
namespace {

const std::vector<std::string> kDefenses = {"none", "wdp", "ldp", "cdp",
                                            "gc",   "sa",  "dinar"};

struct PaperRow {
  const char* dataset;
  // AUC percentages in defense order above.
  double global_auc[7];
  double local_auc[7];
};

// Values read off paper Figure 6 (a)-(l).
const PaperRow kPaper[] = {
    {"purchase100", {76, 59, 50, 50, 50, 75, 50}, {78, 75, 50, 50, 55, 50, 50}},
    {"cifar10", {64, 58, 52, 54, 60, 66, 50}, {66, 63, 55, 56, 60, 50, 50}},
    {"cifar100", {63, 54, 62, 57, 55, 61, 50}, {64, 64, 61, 52, 58, 50, 50}},
    {"speechcommands", {57, 56, 52, 50, 50, 57, 50}, {58, 56, 51, 50, 55, 50, 50}},
    {"celeba", {62, 51, 52, 52, 52, 61, 50}, {57, 52, 52, 54, 52, 50, 50}},
    {"gtsrb", {53, 52, 52, 52, 50, 51, 50}, {53, 53, 52, 52, 52, 50, 50}},
};

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  std::string only;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--only=", 7) == 0) only = argv[i] + 7;

  print_header("Figure 6 — privacy evaluation (attack AUC %, optimum = 50)",
               "Figure 6, §5.5");

  for (const PaperRow& row : kPaper) {
    if (!only.empty() && only != row.dataset) continue;
    PreparedCase prepared = prepare_case(get_case(row.dataset, scale));

    std::printf("\n--- %s (model: %s, protected layer p = %zu) ---\n", row.dataset,
                prepared.spec.paper_model.c_str(), prepared.dinar_layer);
    print_table_header("defense",
                       {"glob(paper)", "glob(ours)", "loc(paper)", "loc(ours)"});
    for (std::size_t d = 0; d < kDefenses.size(); ++d) {
      const ExperimentResult r = run_experiment(
          prepared, make_bundle(kDefenses[d], prepared, {}));
      print_table_row(kDefenses[d],
                      {row.global_auc[d], 100.0 * r.global_attack_auc,
                       row.local_auc[d], 100.0 * r.local_attack_auc});
    }
  }
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
