// Figure 8: privacy leakage vs utility under non-IID client distributions
// (GTSRB), Dirichlet alpha in {0.8, 2, 5, inf}. Paper: for every method
// except DINAR, leakage grows as data becomes closer to IID (the shadow
// attack learns better), while DINAR stays at 50% regardless; accuracy
// rises with alpha for all methods.
#include <cmath>

#include "harness/experiment.h"

namespace dinar::bench {
namespace {

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Figure 8 — non-IID settings, Dirichlet alpha sweep (GTSRB)",
               "Figure 8, §5.8");

  const double alphas[] = {0.8, 2.0, 5.0, std::numeric_limits<double>::infinity()};
  for (double alpha : alphas) {
    PreparedCase prepared = prepare_case(get_case("gtsrb", scale), alpha);
    if (std::isinf(alpha))
      std::printf("\n--- alpha = inf (IID) ---\n");
    else
      std::printf("\n--- alpha = %.1f ---\n", alpha);
    print_table_header("defense", {"accuracy%", "attackAUC%"});
    for (const char* defense : {"none", "wdp", "cdp", "ldp", "dinar"}) {
      const ExperimentResult r =
          run_experiment(prepared, make_bundle(defense, prepared, {}));
      print_table_row(defense,
                      {100.0 * r.personalized_accuracy, 100.0 * r.local_attack_auc});
    }
  }
  std::printf("\npaper: DINAR's AUC is independent of alpha (50%%); other "
              "defenses leak more as the distribution approaches IID; utility "
              "rises with alpha everywhere, DINAR highest among defenses.\n");
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
