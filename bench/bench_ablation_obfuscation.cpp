// Design-choice ablation (DESIGN.md): how the private layer is destroyed
// before upload. The paper says "random values"; this bench compares the
// three candidate instantiations on Purchase100 and also reports the
// shadow-free loss-threshold MIA as a second attack surface:
//  - scale-matched uniform (DINAR's default here): undetectable by
//    magnitude inspection, neutral for FedAvg;
//  - zeros: trivially detectable and biases the aggregate toward 0;
//  - large Gaussian: hides the layer but pollutes the aggregate's scale.
#include "attack/threshold_mia.h"
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

struct Variant {
  const char* label;
  core::ObfuscationStrategy strategy;
};

const Variant kVariants[] = {
    {"scaled-uniform", core::ObfuscationStrategy::kScaledUniform},
    {"zeros", core::ObfuscationStrategy::kZeros},
    {"large-gaussian", core::ObfuscationStrategy::kLargeGaussian},
};

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Ablation — obfuscation strategy for the private layer "
               "(Purchase100)",
               "design choice behind §4.2 'random values'");

  PreparedCase prepared = prepare_case(get_case("purchase100", scale));
  print_table_header("strategy", {"acc%", "shadowAUC%", "lossAUC%"});

  const ExperimentResult none =
      run_experiment(prepared, make_bundle("none", prepared, {}));
  print_table_row("(no defense)",
                  {100.0 * none.personalized_accuracy, 100.0 * none.local_attack_auc,
                   0.0});

  for (const Variant& v : kVariants) {
    fl::DefenseBundle bundle = core::make_dinar_bundle(
        {prepared.dinar_layer}, prepared.spec.seed ^ 0xAB1A, v.strategy);
    bundle.name = std::string("dinar/") + v.label;

    // Re-run the simulation so we can also mount the loss-threshold attack
    // against one uploaded client model.
    const DatasetCase& spec = prepared.spec;
    fl::SimulationConfig cfg;
    cfg.rounds = spec.rounds;
    cfg.train = fl::TrainConfig{spec.local_epochs, spec.batch_size};
    cfg.learning_rate = spec.learning_rate;
    cfg.seed = spec.seed + 7;
    fl::FederatedSimulation sim(spec.model_factory, prepared.split, cfg, bundle);
    sim.run();

    const attack::PrivacyReport shadow = attack::evaluate_privacy(sim, *prepared.mia);
    nn::Model view = sim.server_view_of_client(0);
    const attack::ThresholdAttackResult threshold = attack::loss_threshold_attack(
        view, sim.clients()[0].train_data(), sim.test_data());

    print_table_row(v.label, {100.0 * sim.history().back().personalized_test_accuracy,
                              100.0 * shadow.mean_local_attack_auc,
                              100.0 * threshold.auc});
  }
  std::printf("\nexpected: all three strategies defeat both attacks (~50%%); "
              "scaled-uniform preserves accuracy best because the aggregate's "
              "obfuscated layer keeps a weight-like scale.\n");
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
