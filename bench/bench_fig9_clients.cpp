// Figure 9: DINAR vs no-defense under different numbers of FL clients
// (Purchase100); the whole dataset is re-divided for each client count.
// Paper: fewer clients => more data per client => higher accuracy; DINAR
// counters the MIA at 50% AUC for every client count.
#include "harness/experiment.h"

namespace dinar::bench {
namespace {

int run(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_header("Figure 9 — varying the number of FL clients (Purchase100)",
               "Figure 9, §5.9");

  print_table_header("clients", {"acc(none)%", "acc(dinar)%", "AUC(none)%",
                                 "AUC(dinar)%"});
  for (int clients : {5, 10, 15, 20}) {
    DatasetCase spec = get_case("purchase100", scale);
    spec.num_clients = clients;
    PreparedCase prepared = prepare_case(spec);
    const ExperimentResult none =
        run_experiment(prepared, make_bundle("none", prepared, {}));
    const ExperimentResult dinar =
        run_experiment(prepared, make_bundle("dinar", prepared, {}));
    print_table_row(std::to_string(clients),
                    {100.0 * none.personalized_accuracy,
                     100.0 * dinar.personalized_accuracy,
                     100.0 * none.local_attack_auc,
                     100.0 * dinar.local_attack_auc});
  }
  std::printf("\npaper: accuracy decreases with more clients (less data each); "
              "DINAR holds 50%% AUC for every count while no-defense leaks.\n");
  return 0;
}

}  // namespace
}  // namespace dinar::bench

int main(int argc, char** argv) { return dinar::bench::run(argc, argv); }
