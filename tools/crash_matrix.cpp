// Crash-matrix driver: kills a durable simulation at every crashpoint and
// asserts bit-identical recovery.
//
// The binary re-executes itself in two roles:
//
//   crash_matrix --run <dir>     victim/recovery role: builds a small but
//                                fully-featured simulation (DINAR defense,
//                                fault injection, a Byzantine client, robust
//                                aggregation, periodic eval), attaches a
//                                RoundStore at <dir>/store, recovers whatever
//                                the store holds, runs the remaining rounds,
//                                and writes the final full state to
//                                <dir>/final.bin. With DINAR_CRASHPOINT set
//                                the process dies mid-durability-protocol via
//                                _exit (no unwinding, no flushes — the moral
//                                equivalent of kill -9).
//
//   crash_matrix [work_dir]      orchestrator: runs one uninterrupted
//                                reference, then for every registered
//                                crashpoint x hit-count {1, 2} kills a fresh
//                                run at that point, restarts it to recover,
//                                and byte-compares its final.bin against the
//                                reference. Any divergence — model arenas,
//                                round log, quarantine reasons, stats — fails
//                                the cell. Exit 0 iff every cell passes.
//
// Hit count 2 moves the same crash site to a later round (and, for snapshot
// sites, to a different WAL/snapshot interleaving), so each site is exercised
// at more than one protocol state.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/dinar.h"
#include "data/synthetic.h"
#include "fl/durable.h"
#include "fl/simulation.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "store/io.h"
#include "store/round_store.h"
#include "util/crashpoint.h"
#include "util/error.h"

namespace {

namespace fs = std::filesystem;
using namespace dinar;

constexpr int kRounds = 6;
constexpr int kSnapshotEvery = 2;

data::FlSplit make_split() {
  Rng rng(91);
  data::TabularSpec spec;
  spec.num_samples = 400;
  spec.num_features = 8;
  spec.num_classes = 4;
  spec.label_noise = 0.1;
  data::Dataset full = data::make_tabular(spec, rng);
  data::FlSplitConfig cfg;
  cfg.num_clients = 4;
  return data::make_fl_split(full, cfg, rng);
}

nn::ModelFactory make_factory() {
  return [](Rng& rng) {
    nn::Model m;
    m.add(std::make_unique<nn::Dense>(8, 16, rng))
        .add(std::make_unique<nn::Tanh>())
        .add(std::make_unique<nn::Dense>(16, 4, rng));
    return m;
  };
}

// A configuration that routes every durable code path: transport faults
// (drops, corruption -> quarantines, retries), a crashed client, a sleeper
// Byzantine client under a robust aggregator, DINAR obfuscation (defense
// state in the WAL), quorum + carry-forward pressure, and periodic eval.
fl::SimulationConfig make_config() {
  fl::SimulationConfig cfg;
  cfg.rounds = kRounds;
  cfg.train = fl::TrainConfig{/*epochs=*/1, /*batch_size=*/32};
  cfg.seed = 4242;
  cfg.eval_every = 2;
  cfg.faults.drop_up = 0.10;
  cfg.faults.corrupt_up = 0.10;
  cfg.faults.crash_at_round = {{2, 4}};
  cfg.min_clients = 2;
  cfg.max_retries = 2;
  cfg.robust.method = "median";
  cfg.adversaries.attackers = {{3, fl::AttackType::kSignFlip}};
  cfg.adversaries.active_from_round = 3;
  return cfg;
}

fl::FederatedSimulation make_sim() {
  return fl::FederatedSimulation(make_factory(), make_split(), make_config(),
                                 core::make_dinar_bundle({1}));
}

// Victim/recovery role: recover whatever the store holds, finish the run,
// dump the final full state.
int run_once(const std::string& dir) {
  store::RoundStore store(dir + "/store");
  fl::FederatedSimulation sim = make_sim();
  sim.attach_store(&store, kSnapshotEvery);
  sim.recover_from_store();
  sim.run();
  // Also exercise the atomic legacy-checkpoint path (checkpoint.* sites).
  sim.save_checkpoint(dir + "/ckpt.bin");
  BinaryWriter w;
  sim.save_full_state(w);
  store::atomic_write_file(dir + "/final.bin", w.buffer());
  return 0;
}

std::vector<std::uint8_t> must_read(const std::string& path) {
  const auto bytes = store::read_file(path);
  DINAR_CHECK(bytes.has_value(), "missing " << path);
  return *bytes;
}

int spawn(const std::string& self, const std::string& dir,
          const std::string& crashpoint) {
  std::string cmd;
  if (!crashpoint.empty()) cmd += "DINAR_CRASHPOINT='" + crashpoint + "' ";
  cmd += "'" + self + "' --run '" + dir + "' > '" + dir + "/log.txt' 2>&1";
  const int status = std::system(cmd.c_str());
  if (status < 0) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

int orchestrate(const std::string& self, const std::string& work) {
  fs::remove_all(work);
  fs::create_directories(work);

  const std::string ref_dir = work + "/reference";
  fs::create_directories(ref_dir);
  if (spawn(self, ref_dir, "") != 0) {
    std::fprintf(stderr, "FAIL: reference run did not complete (see %s/log.txt)\n",
                 ref_dir.c_str());
    return 1;
  }
  const std::vector<std::uint8_t> reference = must_read(ref_dir + "/final.bin");
  std::printf("reference run: %zu state bytes\n", reference.size());

  int failures = 0, cells = 0, fired = 0;
  for (const std::string& site : crashpoint_registry()) {
    for (int hit = 1; hit <= 2; ++hit) {
      ++cells;
      const std::string label = site + ":" + std::to_string(hit);
      const std::string dir = work + "/cell-" + std::to_string(cells);
      fs::create_directories(dir);

      const int victim = spawn(self, dir, label);
      if (victim != 0 && victim != kCrashpointExitCode) {
        std::printf("FAIL %-32s victim exited %d (want 0 or %d)\n", label.c_str(),
                    victim, kCrashpointExitCode);
        ++failures;
        continue;
      }
      if (victim == kCrashpointExitCode) ++fired;

      // Restart without the crashpoint: recover + finish. Runs even when
      // the victim completed (hit count never reached) — recovery of a
      // finished store must be an idempotent no-op.
      if (spawn(self, dir, "") != 0) {
        std::printf("FAIL %-32s recovery run did not complete\n", label.c_str());
        ++failures;
        continue;
      }
      const std::vector<std::uint8_t> got = must_read(dir + "/final.bin");
      if (got != reference) {
        std::printf("FAIL %-32s recovered state differs from reference (%zu vs %zu bytes)\n",
                    label.c_str(), got.size(), reference.size());
        ++failures;
        continue;
      }
      std::printf("ok   %-32s %s\n", label.c_str(),
                  victim == kCrashpointExitCode ? "killed + recovered bit-identical"
                                                : "crashpoint not reached; idempotent");
      fs::remove_all(dir);  // keep the work dir small; failures stay on disk
    }
  }

  std::printf("crash matrix: %d/%d cells passed, %d kills exercised\n",
              cells - failures, cells, fired);
  if (fired == 0) {
    std::fprintf(stderr, "FAIL: no crashpoint ever fired — matrix is vacuous\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::string(argv[1]) == "--run") return run_once(argv[2]);
    const std::string work = argc >= 2 ? argv[1] : "crash_matrix_work";
    const std::string self = fs::canonical("/proc/self/exe").string();
    return orchestrate(self, work);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crash_matrix: %s\n", e.what());
    return 1;
  }
}
