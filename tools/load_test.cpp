// Socket-transport load test: hundreds of concurrent TCP clients against a
// durable round server, with a kill -9 phase and a fault-injection phase.
//
// The binary re-executes itself in two roles:
//
//   load_test --serve <dir> <port>   round-server role: a TcpServer backed
//                                    by a store::RoundStore. Every client
//                                    "round" is one request frame; the
//                                    server WAL-appends the commit, then
//                                    acks. Acks are idempotent — a client
//                                    that never saw its ack retries the
//                                    same round and gets re-acked without a
//                                    second append — which is what makes
//                                    kill -9 recovery exactly-once.
//
//   load_test [--smoke] [work_dir]   orchestrator: spawns the server, runs
//                                    three phases of in-process client
//                                    threads (clean load, kill -9 +
//                                    restart mid-load, deliberate frame
//                                    corruption), then audits the WAL for
//                                    lost or duplicated commits and writes
//                                    BENCH_SOCKET.json. Gates (enforced in
//                                    every mode, so --smoke doubles as the
//                                    CI check): zero protocol errors in
//                                    the clean phase, a minimum rounds/sec
//                                    floor, and the exactly-once audit.
//
// Wire protocol (payloads of ordinary DFRM frames):
//   client -> server  [u32 'LREQ' | u64 client | u64 round | blob]
//   server -> client  [u32 'LACK' | u64 client | u64 round]
//   stats query       [u32 'STAT' | u64 0 | u64 0] ->
//                     [u32 'SRSP' | u64 committed | u64 protocol_errors |
//                      u64 evictions | u64 tx_drops | u64 rx_drops |
//                      u64 seq_errors | u64 accepted_conns]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "store/io.h"
#include "store/round_store.h"
#include "util/error.h"

namespace {

namespace fs = std::filesystem;
using namespace dinar;

constexpr std::uint32_t kReqTag = 0x5145524C;   // "LREQ"
constexpr std::uint32_t kAckTag = 0x4B43414C;   // "LACK"
constexpr std::uint32_t kStatTag = 0x54415453;  // "STAT"
constexpr std::uint32_t kStatRespTag = 0x50535253;  // "SRSP"
constexpr std::size_t kHeadBytes = sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  const std::size_t at = b.size();
  b.resize(at + sizeof v);
  std::memcpy(b.data() + at, &v, sizeof v);
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  const std::size_t at = b.size();
  b.resize(at + sizeof v);
  std::memcpy(b.data() + at, &v, sizeof v);
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint32_t v = 0;
  if (at + sizeof v <= b.size()) std::memcpy(&v, b.data() + at, sizeof v);
  return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint64_t v = 0;
  if (at + sizeof v <= b.size()) std::memcpy(&v, b.data() + at, sizeof v);
  return v;
}

std::vector<std::uint8_t> head(std::uint32_t tag, std::uint64_t client,
                               std::uint64_t round) {
  std::vector<std::uint8_t> b;
  b.reserve(kHeadBytes);
  put_u32(b, tag);
  put_u64(b, client);
  put_u64(b, round);
  return b;
}

// Rows of named values written as a JSON array to BENCH_SOCKET.json —
// the same shape the bench harness emits, hand-rolled here so the tool
// links only the net + store layers.
class JsonRows {
 public:
  JsonRows& begin_row() {
    rows_.emplace_back();
    return *this;
  }
  JsonRows& field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    rows_.back().emplace_back(key, buf);
    return *this;
  }
  JsonRows& field(const std::string& key, std::int64_t v) {
    rows_.back().emplace_back(key, std::to_string(v));
    return *this;
  }
  JsonRows& field(const std::string& key, const std::string& v) {
    rows_.back().emplace_back(key, "\"" + v + "\"");
    return *this;
  }
  void write(const std::string& path) const {
    std::string out = "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out += "  {";
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        out += "\"" + rows_[r][f].first + "\": " + rows_[r][f].second;
        if (f + 1 < rows_[r].size()) out += ", ";
      }
      out += r + 1 < rows_.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    store::atomic_write_file(path, std::vector<std::uint8_t>(out.begin(), out.end()));
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

// ------------------------------------------------------------ server role --

int serve(const std::string& dir, std::uint16_t port) {
  store::RoundStore store(dir + "/store");

  // Rebuild the per-client commit cursor from the WAL: the next round each
  // client is allowed to commit. This is the recovery contract — a restart
  // remembers every acked commit and re-acks (never re-appends) retries of
  // them.
  std::map<std::uint64_t, std::uint64_t> next_round;
  const store::RoundStore::Recovered rec = store.recover();
  for (const std::vector<std::uint8_t>& r : rec.wal_records) {
    if (r.size() < 2 * sizeof(std::uint64_t)) continue;
    const std::uint64_t client = get_u64(r, 0);
    const std::uint64_t round = get_u64(r, sizeof(std::uint64_t));
    if (round + 1 > next_round[client]) next_round[client] = round + 1;
  }

  std::atomic<std::uint64_t> committed{0}, seq_errors{0};

  net::ServerConfig cfg;
  cfg.port = port;
  cfg.max_connections = 2048;
  cfg.max_frame_bytes = 8u << 20;
  cfg.send_queue_frames = 64;
  cfg.write_stall_timeout_seconds = 5.0;
  cfg.poll_interval_seconds = 0.02;
  net::TcpServer server(cfg);

  server.set_frame_handler([&](int conn, std::vector<std::uint8_t> payload) {
    if (payload.size() < kHeadBytes) return false;  // shed malformed requests
    const std::uint32_t tag = get_u32(payload, 0);
    const std::uint64_t client = get_u64(payload, sizeof(std::uint32_t));
    const std::uint64_t round =
        get_u64(payload, sizeof(std::uint32_t) + sizeof(std::uint64_t));
    if (tag == kStatTag) {
      const net::ServerStats s = server.stats();
      std::vector<std::uint8_t> resp;
      put_u32(resp, kStatRespTag);
      put_u64(resp, committed.load());
      put_u64(resp, s.protocol_errors());
      put_u64(resp, s.evicted_bad_magic + s.evicted_oversize + s.evicted_bad_checksum +
                        s.evicted_slow_peer + s.evicted_idle);
      put_u64(resp, s.tx_queue_drops);
      put_u64(resp, s.rx_queue_drops);
      put_u64(resp, seq_errors.load());
      put_u64(resp, s.connections_accepted);
      server.send(conn, resp);
      return true;
    }
    if (tag != kReqTag) return false;

    std::uint64_t& next = next_round[client];
    if (round == next) {
      // Commit: durable append first, ack second. A kill between the two
      // leaves the commit in the WAL and the client retrying — the retry
      // lands in the idempotent branch below.
      std::vector<std::uint8_t> record;
      put_u64(record, client);
      put_u64(record, round);
      store.append(record);
      ++next;
      ++committed;
    } else if (round + 1 > next) {
      // A gap would mean the client ran ahead of its acks: protocol bug.
      ++seq_errors;
      return true;  // no ack; the client times out and resends
    }
    // round < next falls through: duplicate retry, re-ack without append.
    server.send(conn, head(kAckTag, client, round));
    return true;
  });

  server.start();

  // Publish "<port> <pid>" once the listener is live; the orchestrator
  // polls for this file.
  {
    const std::string info =
        std::to_string(server.port()) + " " + std::to_string(::getpid()) + "\n";
    store::atomic_write_file(dir + "/server.info",
                             std::vector<std::uint8_t>(info.begin(), info.end()));
  }

  while (!fs::exists(dir + "/stop"))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  return 0;
}

// ------------------------------------------------------- client machinery --

struct ClientOutcome {
  std::uint64_t committed = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t retries = 0;
  bool finished = false;
  std::vector<double> latencies_ms;  // per committed round
};

net::ClientConfig make_client_config(std::uint16_t port) {
  net::ClientConfig cc;
  cc.port = port;
  cc.connect_timeout_seconds = 2.0;
  // A client must outlive a server kill -9 + restart: many capped-backoff
  // attempts rather than a few long ones.
  cc.max_connect_attempts = 200;
  cc.backoff_initial_seconds = 0.01;
  cc.backoff_max_seconds = 0.25;
  return cc;
}

// One honest client: `rounds` request/ack exchanges, retrying through
// evictions, timeouts and server restarts. `pace_ms` sleeps between rounds
// — the kill phase uses it to keep the fleet in-flight long enough for the
// SIGKILL to land mid-load.
ClientOutcome run_client(std::uint16_t port, std::uint64_t id, int rounds,
                         std::size_t payload_bytes, int pace_ms = 0) {
  ClientOutcome out;
  net::ClientConfig cc = make_client_config(port);
  cc.jitter_seed = 0xC11E57ULL + id;
  net::TcpClient client(cc);

  for (int round = 0; round < rounds; ++round) {
    if (pace_ms > 0 && round > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
    std::vector<std::uint8_t> req = head(kReqTag, id, static_cast<std::uint64_t>(round));
    req.resize(kHeadBytes + payload_bytes,
               static_cast<std::uint8_t>(0xA0 + (id + round) % 16));
    const double deadline = net::monotonic_seconds() + 120.0;
    bool acked = false;
    while (!acked && net::monotonic_seconds() < deadline) {
      if (!client.ensure_connected()) break;
      const double t0 = net::monotonic_seconds();
      if (!client.send_frame(req)) {
        ++out.retries;
        continue;
      }
      // Drain acks until ours shows up (stale acks from resent rounds may
      // arrive first) or the attempt times out and we resend.
      const double attempt_deadline = net::monotonic_seconds() + 5.0;
      while (net::monotonic_seconds() < attempt_deadline) {
        const auto resp = client.recv_frame(attempt_deadline - net::monotonic_seconds());
        if (!resp.has_value()) break;
        if (resp->size() >= kHeadBytes && get_u32(*resp, 0) == kAckTag &&
            get_u64(*resp, sizeof(std::uint32_t)) == id &&
            get_u64(*resp, sizeof(std::uint32_t) + sizeof(std::uint64_t)) ==
                static_cast<std::uint64_t>(round)) {
          acked = true;
          out.latencies_ms.push_back((net::monotonic_seconds() - t0) * 1000.0);
          break;
        }
      }
      if (!acked) ++out.retries;
    }
    if (!acked) break;  // give up; the audit will flag the shortfall
    ++out.committed;
  }
  out.finished = out.committed == static_cast<std::uint64_t>(rounds);
  out.bytes_tx = client.stats().bytes_tx;
  out.bytes_rx = client.stats().bytes_rx;
  out.reconnects = client.stats().reconnects;
  return out;
}

// A hostile client: ships garbage and corrupted frames, expecting to be
// evicted; reconnects and does it again. Success = the server survives and
// names the evictions.
void run_fault_client(std::uint16_t port, std::uint64_t id, int iterations) {
  net::ClientConfig cc = make_client_config(port);
  cc.jitter_seed = 0xBAD + id;
  net::TcpClient client(cc);
  for (int i = 0; i < iterations; ++i) {
    if (!client.ensure_connected()) return;
    std::vector<std::uint8_t> wire;
    if (i % 2 == 0) {
      wire.assign(64, static_cast<std::uint8_t>(0xEE));  // not a DFRM header
    } else {
      wire = net::frame(std::vector<std::uint8_t>(128, 7));
      wire.back() ^= 0x10;  // valid header, corrupt payload
    }
    client.send_raw(wire);
    // The eviction lands as a peer close on our side.
    client.recv_frame(2.0);
    if (client.connected()) client.disconnect();
  }
}

struct StatSnapshot {
  std::uint64_t committed = 0, protocol_errors = 0, evictions = 0;
  std::uint64_t tx_drops = 0, rx_drops = 0, seq_errors = 0, accepted = 0;
  bool ok = false;
};

StatSnapshot query_stats(std::uint16_t port) {
  StatSnapshot s;
  net::TcpClient client(make_client_config(port));
  if (!client.ensure_connected()) return s;
  if (!client.send_frame(head(kStatTag, 0, 0))) return s;
  const auto resp = client.recv_frame(5.0);
  if (!resp.has_value() || resp->size() < 4 + 7 * 8 ||
      get_u32(*resp, 0) != kStatRespTag)
    return s;
  s.committed = get_u64(*resp, 4);
  s.protocol_errors = get_u64(*resp, 12);
  s.evictions = get_u64(*resp, 20);
  s.tx_drops = get_u64(*resp, 28);
  s.rx_drops = get_u64(*resp, 36);
  s.seq_errors = get_u64(*resp, 44);
  s.accepted = get_u64(*resp, 52);
  s.ok = true;
  return s;
}

// --------------------------------------------------------- orchestration --

struct ServerHandle {
  std::uint16_t port = 0;
  pid_t pid = -1;
};

ServerHandle spawn_server(const std::string& self, const std::string& dir,
                          std::uint16_t port, const std::string& tag) {
  fs::remove(dir + "/server.info");
  fs::remove(dir + "/stop");
  const std::string cmd = "'" + self + "' --serve '" + dir + "' " +
                          std::to_string(port) + " > '" + dir + "/server_" + tag +
                          ".log' 2>&1 &";
  DINAR_CHECK(std::system(cmd.c_str()) == 0, "failed to spawn server (" << tag << ")");
  const double deadline = net::monotonic_seconds() + 15.0;
  while (net::monotonic_seconds() < deadline) {
    if (const auto bytes = store::read_file(dir + "/server.info");
        bytes.has_value() && !bytes->empty()) {
      ServerHandle h;
      const std::string info(bytes->begin(), bytes->end());
      h.port = static_cast<std::uint16_t>(std::stoi(info));
      h.pid = static_cast<pid_t>(std::stol(info.substr(info.find(' '))));
      return h;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  DINAR_CHECK(false, "server (" << tag << ") never published server.info — see "
                                << dir << "/server_" << tag << ".log");
  return {};
}

void wait_for_exit(pid_t pid, double timeout_seconds) {
  const double deadline = net::monotonic_seconds() + timeout_seconds;
  while (net::monotonic_seconds() < deadline) {
    if (::kill(pid, 0) != 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

struct PhaseResult {
  std::string name;
  int clients = 0;
  int rounds_per_client = 0;
  std::uint64_t committed = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t retries = 0;
  int finished_clients = 0;
  double wall_seconds = 0.0;
  double rounds_per_sec = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0;
  double bytes_per_round = 0.0;
};

PhaseResult run_phase(const std::string& name, std::uint16_t port, int clients,
                      std::uint64_t id_base, int rounds, std::size_t payload_bytes,
                      int pace_ms = 0, const std::function<void()>& mid_phase = {}) {
  PhaseResult pr;
  pr.name = name;
  pr.clients = clients;
  pr.rounds_per_client = rounds;
  std::vector<ClientOutcome> outcomes(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const double t0 = net::monotonic_seconds();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      outcomes[static_cast<std::size_t>(c)] =
          run_client(port, id_base + static_cast<std::uint64_t>(c), rounds,
                     payload_bytes, pace_ms);
    });
  }
  if (mid_phase) mid_phase();
  for (std::thread& t : threads) t.join();
  pr.wall_seconds = net::monotonic_seconds() - t0;

  std::vector<double> lat;
  std::uint64_t bytes = 0;
  for (const ClientOutcome& o : outcomes) {
    pr.committed += o.committed;
    pr.reconnects += o.reconnects;
    pr.retries += o.retries;
    pr.finished_clients += o.finished ? 1 : 0;
    bytes += o.bytes_tx + o.bytes_rx;
    lat.insert(lat.end(), o.latencies_ms.begin(), o.latencies_ms.end());
  }
  pr.rounds_per_sec =
      pr.wall_seconds > 0.0 ? static_cast<double>(pr.committed) / pr.wall_seconds : 0.0;
  pr.bytes_per_round =
      pr.committed > 0 ? static_cast<double>(bytes) / static_cast<double>(pr.committed)
                       : 0.0;
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    pr.p50_ms = lat[lat.size() / 2];
    pr.p99_ms = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
  }
  std::printf(
      "phase %-8s %4d clients x %d rounds: %llu commits in %.2fs "
      "(%.1f rounds/s, p50 %.2fms, p99 %.2fms, %llu reconnects, %llu retries)\n",
      name.c_str(), clients, rounds, static_cast<unsigned long long>(pr.committed),
      pr.wall_seconds, pr.rounds_per_sec, pr.p50_ms, pr.p99_ms,
      static_cast<unsigned long long>(pr.reconnects),
      static_cast<unsigned long long>(pr.retries));
  return pr;
}

// Audits the WAL: every client that was supposed to commit rounds
// 0..rounds-1 did so exactly once, in order, with nothing extra.
bool audit_store(const std::string& dir,
                 const std::map<std::uint64_t, int>& expected_rounds,
                 std::uint64_t* total_commits, std::uint64_t* duplicates) {
  store::RoundStore store(dir + "/store");
  const store::RoundStore::Recovered rec = store.recover();
  std::map<std::uint64_t, std::uint64_t> next;  // client -> expected next round
  *total_commits = 0;
  *duplicates = 0;
  bool ok = true;
  for (const std::vector<std::uint8_t>& r : rec.wal_records) {
    if (r.size() < 2 * sizeof(std::uint64_t)) {
      std::printf("AUDIT FAIL: runt WAL record of %zu bytes\n", r.size());
      ok = false;
      continue;
    }
    const std::uint64_t client = get_u64(r, 0);
    const std::uint64_t round = get_u64(r, sizeof(std::uint64_t));
    ++*total_commits;
    if (round != next[client]) {
      if (round < next[client]) ++*duplicates;
      std::printf("AUDIT FAIL: client %llu committed round %llu, expected %llu\n",
                  static_cast<unsigned long long>(client),
                  static_cast<unsigned long long>(round),
                  static_cast<unsigned long long>(next[client]));
      ok = false;
      continue;
    }
    ++next[client];
  }
  for (const auto& [client, rounds] : expected_rounds) {
    const std::uint64_t got = next.count(client) != 0 ? next[client] : 0;
    if (got != static_cast<std::uint64_t>(rounds)) {
      std::printf("AUDIT FAIL: client %llu has %llu commits, expected %d\n",
                  static_cast<unsigned long long>(client),
                  static_cast<unsigned long long>(got), rounds);
      ok = false;
    }
  }
  return ok;
}

int orchestrate(const std::string& self, const std::string& work, bool smoke) {
  fs::remove_all(work);
  fs::create_directories(work);

  const int clean_clients = smoke ? 64 : 256;
  const int clean_rounds = smoke ? 4 : 8;
  const int kill_clients = smoke ? 16 : 64;
  const int kill_rounds = smoke ? 8 : 10;
  const int fault_clients = smoke ? 4 : 8;
  const int fault_iters = smoke ? 3 : 5;
  const int honest_clients = smoke ? 8 : 16;
  const int honest_rounds = 3;
  const std::size_t payload = smoke ? 2048 : 4096;
  const double min_rounds_per_sec = 5.0;

  ServerHandle server = spawn_server(self, work, 0, "initial");
  std::printf("server up on 127.0.0.1:%u (pid %d)\n", server.port, server.pid);

  // -- phase 1: clean load ---------------------------------------------------
  const PhaseResult clean =
      run_phase("clean", server.port, clean_clients, /*id_base=*/0, clean_rounds,
                payload);
  const StatSnapshot clean_stats = query_stats(server.port);
  DINAR_CHECK(clean_stats.ok, "stats query after clean phase failed");

  // -- phase 2: kill -9 mid-load, restart, clients ride it out ---------------
  std::atomic<bool> killed{false};
  const std::uint64_t kill_base = 1000;
  // Clients pace themselves so the phase is still mid-flight when the
  // SIGKILL lands; the reconnect gate below proves they rode through it.
  const PhaseResult killp = run_phase(
      "kill9", server.port, kill_clients, kill_base, kill_rounds, payload,
      /*pace_ms=*/75, [&] {
        // Let the fleet get some commits in, then kill the server the hard
        // way and restart it on the same port + store.
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        ::kill(server.pid, SIGKILL);
        wait_for_exit(server.pid, 10.0);
        server = spawn_server(self, work, server.port, "restarted");
        killed = true;
      });
  DINAR_CHECK(killed.load(), "kill phase never killed the server");

  // -- phase 3: hostile frames + honest traffic ------------------------------
  std::vector<std::thread> hostiles;
  for (int f = 0; f < fault_clients; ++f)
    hostiles.emplace_back(
        [&, f] { run_fault_client(server.port, 9000 + static_cast<std::uint64_t>(f),
                                  fault_iters); });
  const std::uint64_t honest_base = 2000;
  const PhaseResult faultp = run_phase("faults", server.port, honest_clients,
                                       honest_base, honest_rounds, payload);
  for (std::thread& t : hostiles) t.join();
  const StatSnapshot final_stats = query_stats(server.port);
  DINAR_CHECK(final_stats.ok, "final stats query failed");

  // -- shutdown + audit ------------------------------------------------------
  store::atomic_write_file(work + "/stop", std::vector<std::uint8_t>{1});
  wait_for_exit(server.pid, 15.0);

  std::map<std::uint64_t, int> expected;
  for (int c = 0; c < clean_clients; ++c) expected[static_cast<std::uint64_t>(c)] =
      clean_rounds;
  for (int c = 0; c < kill_clients; ++c)
    expected[kill_base + static_cast<std::uint64_t>(c)] = kill_rounds;
  for (int c = 0; c < honest_clients; ++c)
    expected[honest_base + static_cast<std::uint64_t>(c)] = honest_rounds;
  std::uint64_t total_commits = 0, duplicates = 0;
  const bool audit_ok = audit_store(work, expected, &total_commits, &duplicates);

  // -- report ----------------------------------------------------------------
  JsonRows json;
  for (const PhaseResult* pr : {&clean, &killp, &faultp}) {
    json.begin_row()
        .field("phase", pr->name)
        .field("clients", static_cast<std::int64_t>(pr->clients))
        .field("rounds_per_client", static_cast<std::int64_t>(pr->rounds_per_client))
        .field("committed", static_cast<std::int64_t>(pr->committed))
        .field("finished_clients", static_cast<std::int64_t>(pr->finished_clients))
        .field("wall_seconds", pr->wall_seconds)
        .field("rounds_per_sec", pr->rounds_per_sec)
        .field("p50_ms", pr->p50_ms)
        .field("p99_ms", pr->p99_ms)
        .field("bytes_per_round", pr->bytes_per_round)
        .field("reconnects", static_cast<std::int64_t>(pr->reconnects))
        .field("retries", static_cast<std::int64_t>(pr->retries));
  }
  json.begin_row()
      .field("phase", std::string("audit"))
      .field("total_commits", static_cast<std::int64_t>(total_commits))
      .field("duplicate_commits", static_cast<std::int64_t>(duplicates))
      .field("clean_protocol_errors",
             static_cast<std::int64_t>(clean_stats.protocol_errors))
      .field("final_protocol_errors",
             static_cast<std::int64_t>(final_stats.protocol_errors))
      .field("evictions", static_cast<std::int64_t>(final_stats.evictions))
      .field("tx_queue_drops", static_cast<std::int64_t>(final_stats.tx_drops))
      .field("rx_queue_drops", static_cast<std::int64_t>(final_stats.rx_drops))
      .field("seq_errors", static_cast<std::int64_t>(final_stats.seq_errors))
      .field("exactly_once", std::string(audit_ok ? "pass" : "FAIL"));
  json.write("BENCH_SOCKET.json");

  // -- gates (enforced in every mode) ----------------------------------------
  int failures = 0;
  if (!audit_ok || duplicates != 0) {
    std::printf("GATE FAIL: commits lost or duplicated across kill -9\n");
    ++failures;
  }
  if (clean_stats.protocol_errors != 0) {
    std::printf("GATE FAIL: %llu protocol errors during the clean phase\n",
                static_cast<unsigned long long>(clean_stats.protocol_errors));
    ++failures;
  }
  if (clean.rounds_per_sec < min_rounds_per_sec) {
    std::printf("GATE FAIL: clean phase %.1f rounds/s < %.1f floor\n",
                clean.rounds_per_sec, min_rounds_per_sec);
    ++failures;
  }
  if (clean.finished_clients != clean_clients ||
      killp.finished_clients != kill_clients ||
      faultp.finished_clients != honest_clients) {
    std::printf("GATE FAIL: not every honest client finished (%d/%d, %d/%d, %d/%d)\n",
                clean.finished_clients, clean_clients, killp.finished_clients,
                kill_clients, faultp.finished_clients, honest_clients);
    ++failures;
  }
  if (final_stats.protocol_errors == 0) {
    std::printf("GATE FAIL: fault phase produced no named protocol evictions — "
                "the hostile clients were vacuous\n");
    ++failures;
  }
  if (killp.reconnects == 0) {
    std::printf("GATE FAIL: no client reconnected in the kill phase — the "
                "SIGKILL landed on an idle server\n");
    ++failures;
  }
  std::printf("load test: %s (%llu commits, %llu wire evictions)\n",
              failures == 0 ? "PASS" : "FAIL",
              static_cast<unsigned long long>(total_commits),
              static_cast<unsigned long long>(final_stats.evictions));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 4 && std::string(argv[1]) == "--serve")
      return serve(argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])));
    bool smoke = false;
    std::string work = "load_test_work";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--smoke") smoke = true;
      else work = arg;
    }
    const std::string self = fs::canonical("/proc/self/exe").string();
    return orchestrate(self, work, smoke);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load_test: %s\n", e.what());
    return 1;
  }
}
