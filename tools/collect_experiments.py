#!/usr/bin/env python3
"""Appends the measured bench tables to EXPERIMENTS.md.

Reads bench_output.txt (produced by running every binary in build/bench/),
strips the runtime [info] log lines, and appends each experiment's printed
table verbatim under a fenced code block, in paper-artifact order.
"""
import re
import sys

ORDER = [
    ("bench_fig1_layer_divergence", "Figure 1 — per-layer divergence"),
    ("bench_fig3_loss_distributions", "Figure 3 — loss distributions"),
    ("bench_fig4_single_layer_protection", "Figure 4 — single-layer protection"),
    ("bench_fig5_multi_layer", "Figure 5 — multi-layer obfuscation"),
    ("bench_fig6_privacy_grid", "Figure 6 — privacy grid"),
    ("bench_table3_overheads", "Table 3 — overheads"),
    ("bench_fig7_tradeoff", "Figure 7 — privacy/utility trade-off"),
    ("bench_fig8_noniid", "Figure 8 — non-IID settings"),
    ("bench_fig9_clients", "Figure 9 — number of clients"),
    ("bench_fig10_dp_budget", "Figure 10 — DP budgets"),
    ("bench_fig11_ablation", "Figure 11 — optimizer ablation"),
    ("bench_ablation_obfuscation", "Extra ablation — obfuscation strategy"),
    ("bench_micro_substrate", "Microbenchmarks (engineering)"),
]


def main(bench_path: str, out_path: str) -> None:
    text = open(bench_path).read()
    sections = {}
    for match in re.finditer(
        r"### RUNNING \S*/(bench_\w+)\n(.*?)### DONE", text, re.S
    ):
        name, body = match.group(1), match.group(2)
        lines = [l for l in body.splitlines() if not l.startswith("[info]")]
        sections[name] = "\n".join(lines).strip()

    with open(out_path, "a") as out:
        for name, title in ORDER:
            if name not in sections:
                continue
            out.write(f"\n### {title}\n\n```\n{sections[name]}\n```\n")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt",
         sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md")
