#include <gtest/gtest.h>

#include <cmath>

#include "attack/evaluation.h"
#include "attack/mia.h"
#include "util/stats.h"
#include "test_helpers.h"
#include "util/error.h"

namespace dinar::attack {
namespace {

using dinar::testing::make_tiny_mlp;
using dinar::testing::make_tiny_tabular;
using dinar::testing::tiny_mlp_factory;
using dinar::testing::make_wide_mlp;
using dinar::testing::wide_mlp_factory;

// --------------------------------------------------------------- features --

TEST(FeatureTest, OneRowPerSampleWithSaneValues) {
  Rng rng(1);
  nn::Model model = make_tiny_mlp(32, 4, rng);
  data::Dataset d = make_tiny_tabular(50, 4, rng);
  const std::vector<FeatureRow> rows = extract_membership_features(model, d);
  ASSERT_EQ(rows.size(), 50u);
  for (const FeatureRow& f : rows) {
    EXPECT_GE(f[0], 0.0);                      // loss
    EXPECT_GE(f[1], 0.0);                      // entropy
    EXPECT_LE(f[1], std::log(4.0) + 1e-6);     // entropy <= log C
    EXPECT_GE(f[2], f[3]);                     // sorted confidences
    EXPECT_GE(f[3], f[4]);
    EXPECT_GE(f[2], 0.25 - 1e-6);              // top-1 >= 1/C
    EXPECT_TRUE(f[5] == 0.0 || f[5] == 1.0);   // correctness flag
  }
}

TEST(FeatureTest, SharperLogitsLowerEntropy) {
  Rng rng(2);
  nn::Model model = make_tiny_mlp(32, 4, rng);
  data::Dataset d = make_tiny_tabular(30, 4, rng);
  double entropy_before = 0.0;
  for (const FeatureRow& f : extract_membership_features(model, d))
    entropy_before += f[1];

  // Scale the classifier head up to sharpen predictions.
  nn::FlatParams params = model.parameters();
  for (float& v : params.entry_span(4)) v *= 50.0f;
  for (float& v : params.entry_span(5)) v *= 50.0f;
  model.set_parameters(params);
  double entropy_after = 0.0;
  for (const FeatureRow& f : extract_membership_features(model, d))
    entropy_after += f[1];
  EXPECT_LT(entropy_after, entropy_before * 0.9);
}

// ------------------------------------------------------------ attack model --

TEST(AttackModelTest, LearnsLinearlySeparableFeatures) {
  Rng rng(3);
  std::vector<FeatureRow> features;
  std::vector<bool> labels;
  for (int i = 0; i < 400; ++i) {
    const bool member = i % 2 == 0;
    FeatureRow f{};
    f[0] = member ? rng.gaussian(0.5, 0.2) : rng.gaussian(2.0, 0.4);  // loss gap
    f[2] = member ? rng.gaussian(0.9, 0.05) : rng.gaussian(0.5, 0.1);
    features.push_back(f);
    labels.push_back(member);
  }
  LogisticAttackModel m;
  m.fit(features, labels);
  ASSERT_TRUE(m.trained());

  std::vector<double> scores;
  std::vector<bool> truth;
  for (int i = 0; i < 200; ++i) {
    const bool member = i % 2 == 0;
    FeatureRow f{};
    f[0] = member ? rng.gaussian(0.5, 0.2) : rng.gaussian(2.0, 0.4);
    f[2] = member ? rng.gaussian(0.9, 0.05) : rng.gaussian(0.5, 0.1);
    scores.push_back(m.score(f));
    truth.push_back(member);
  }
  EXPECT_GT(roc_auc(scores, truth), 0.95);
}

TEST(AttackModelTest, ScoreIsProbability) {
  LogisticAttackModel m;
  std::vector<FeatureRow> f(10);
  std::vector<bool> l(10, false);
  l[0] = l[1] = l[2] = true;
  m.fit(f, l);
  for (const FeatureRow& row : f) {
    const double s = m.score(row);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(AttackModelTest, UntrainedScoreThrows) {
  LogisticAttackModel m;
  EXPECT_THROW(m.score(FeatureRow{}), Error);
}

TEST(AttackModelTest, EmptyFitThrows) {
  LogisticAttackModel m;
  EXPECT_THROW(m.fit({}, {}), Error);
}

// -------------------------------------------------------------- shadow MIA --

MiaConfig fast_mia_config() {
  MiaConfig cfg;
  cfg.num_shadows = 2;
  // Shadows must overfit like the target does, or their member/non-member
  // features carry no signal for the attack model to learn.
  cfg.shadow_train = fl::TrainConfig{30, 32};
  cfg.learning_rate = 1e-2;
  cfg.max_rows_per_shadow = 400;
  return cfg;
}

TEST(ShadowMiaTest, RandomModelYieldsChanceAuc) {
  Rng rng(4);
  data::Dataset full = make_tiny_tabular(800, 8, rng);
  data::Dataset prior = full.take(400);
  data::Dataset members = full.drop(400).take(200);
  data::Dataset non_members = full.drop(600);

  ShadowMia mia(wide_mlp_factory(32, 8), prior, fast_mia_config());
  mia.fit();

  Rng fresh(999);
  nn::Model random_model = make_wide_mlp(32, 8, fresh);
  const double auc = mia.attack_auc(random_model, members, non_members);
  EXPECT_NEAR(auc, 0.5, 0.12);  // untrained model leaks nothing
}

TEST(ShadowMiaTest, OverfitModelIsVulnerable) {
  Rng rng(5);
  data::Dataset full = make_tiny_tabular(900, 8, rng);
  data::Dataset prior = full.take(400);
  data::Dataset members = full.drop(400).take(150);
  data::Dataset non_members = full.drop(700);

  // Overfit a model hard on the member pool.
  Rng train_rng(6);
  nn::Model target = make_wide_mlp(32, 8, train_rng);
  auto optimizer = opt::make_optimizer("adagrad", 1e-2);
  fl::train_local(target, members, *optimizer, fl::TrainConfig{40, 32}, train_rng);

  ShadowMia mia(wide_mlp_factory(32, 8), prior, fast_mia_config());
  mia.fit();
  const double auc = mia.attack_auc(target, members, non_members);
  EXPECT_GT(auc, 0.6);
}

TEST(ShadowMiaTest, RequiresFitBeforeAttack) {
  Rng rng(7);
  data::Dataset prior = make_tiny_tabular(200, 4, rng);
  ShadowMia mia(tiny_mlp_factory(32, 4), prior, fast_mia_config());
  Rng m(8);
  nn::Model target = make_tiny_mlp(32, 4, m);
  data::Dataset d = make_tiny_tabular(50, 4, rng);
  EXPECT_THROW(mia.attack_auc(target, d, d), Error);
}

TEST(ShadowMiaTest, TinyPriorRejected) {
  Rng rng(9);
  data::Dataset prior = make_tiny_tabular(20, 4, rng);
  EXPECT_THROW(ShadowMia(tiny_mlp_factory(32, 4), prior, fast_mia_config()), Error);
}

}  // namespace
}  // namespace dinar::attack
