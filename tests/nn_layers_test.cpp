#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gradcheck.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "util/error.h"

namespace dinar::nn {
namespace {

using dinar::testing::expect_gradients_match;

Tensor random_input(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::gaussian(std::move(shape), rng);
}

// ---------------------------------------------------------------- dense --

TEST(DenseTest, ForwardShapeAndBias) {
  Rng rng(1);
  Dense d(3, 2, rng);
  Tensor x({4, 3});
  Tensor y = d.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{4, 2}));
  // Zero input -> output equals the bias in every row.
  for (std::int64_t i = 1; i < 4; ++i) {
    EXPECT_EQ(y.at(i, 0), y.at(0, 0));
    EXPECT_EQ(y.at(i, 1), y.at(0, 1));
  }
}

TEST(DenseTest, RejectsWrongInputWidth) {
  Rng rng(1);
  Dense d(3, 2, rng);
  Tensor x({4, 5});
  EXPECT_THROW(d.forward(x, false), Error);
}

TEST(DenseTest, BackwardWithoutForwardThrows) {
  Rng rng(1);
  Dense d(3, 2, rng);
  Tensor g({4, 2});
  EXPECT_THROW(d.backward(g), Error);
}

TEST(DenseTest, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Model m;
  m.add(std::make_unique<Dense>(5, 4, rng));
  Tensor x = random_input({3, 5}, 10);
  expect_gradients_match(m, x);
}

TEST(DenseTest, ParamGroupExposesWeightAndBias) {
  Rng rng(3);
  Dense d(4, 6, rng);
  auto groups = d.param_groups();
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].params.size(), 2u);
  EXPECT_EQ(groups[0].params[0]->shape(), (Shape{4, 6}));
  EXPECT_EQ(groups[0].params[1]->shape(), (Shape{6}));
  EXPECT_EQ(groups[0].numel(), 4 * 6 + 6);
}

TEST(DenseTest, CloneIsIndependent) {
  Rng rng(4);
  Dense d(2, 2, rng);
  auto copy = d.clone();
  Tensor* orig_w = d.param_groups()[0].params[0];
  Tensor* copy_w = copy->param_groups()[0].params[0];
  ASSERT_TRUE(orig_w->same_shape(*copy_w));
  EXPECT_EQ(orig_w->at(0), copy_w->at(0));
  copy_w->at(0) += 1.0f;
  EXPECT_NE(orig_w->at(0), copy_w->at(0));
}

// ----------------------------------------------------------- activations --

TEST(ReluTest, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x({4}, {-1.0f, 0.0f, 0.5f, 2.0f});
  Tensor y = relu.forward(x, false);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 0.0f);
  EXPECT_EQ(y.at(2), 0.5f);
  EXPECT_EQ(y.at(3), 2.0f);
}

TEST(ReluTest, BackwardMasksBySign) {
  ReLU relu;
  Tensor x({3}, {-1.0f, 2.0f, -3.0f});
  relu.forward(x, true);
  Tensor g({3}, {5.0f, 5.0f, 5.0f});
  Tensor dx = relu.backward(g);
  EXPECT_EQ(dx.at(0), 0.0f);
  EXPECT_EQ(dx.at(1), 5.0f);
  EXPECT_EQ(dx.at(2), 0.0f);
}

TEST(TanhTest, ForwardMatchesStd) {
  Tanh tanh_layer;
  Tensor x({2}, {0.5f, -1.0f});
  Tensor y = tanh_layer.forward(x, false);
  EXPECT_NEAR(y.at(0), std::tanh(0.5f), 1e-6);
  EXPECT_NEAR(y.at(1), std::tanh(-1.0f), 1e-6);
}

TEST(TanhTest, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  Model m;
  m.add(std::make_unique<Dense>(4, 4, rng)).add(std::make_unique<Tanh>());
  expect_gradients_match(m, random_input({2, 4}, 11));
}

TEST(ActivationTest, StatelessLayersHaveNoParams) {
  ReLU relu;
  Tanh tanh_layer;
  Flatten flatten;
  EXPECT_TRUE(relu.param_groups().empty());
  EXPECT_TRUE(tanh_layer.param_groups().empty());
  EXPECT_TRUE(flatten.param_groups().empty());
}

// -------------------------------------------------------------- flatten --

TEST(FlattenTest, RoundTrip) {
  Flatten f;
  Tensor x = random_input({2, 3, 4, 5}, 12);
  Tensor y = f.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{2, 60}));
  Tensor back = f.backward(y);
  ASSERT_EQ(back.shape(), x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(back.at(i), x.at(i));
}

// --------------------------------------------------------------- conv2d --

TEST(Conv2dTest, OutputGeometry) {
  Rng rng(7);
  Conv2d c(3, 8, 3, 1, 1, rng);
  Tensor x({2, 3, 12, 12});
  EXPECT_EQ(c.forward(x, false).shape(), (Shape{2, 8, 12, 12}));

  Conv2d strided(3, 4, 3, 2, 1, rng);
  EXPECT_EQ(strided.forward(x, false).shape(), (Shape{2, 4, 6, 6}));

  Conv2d valid(3, 4, 3, 1, 0, rng);
  EXPECT_EQ(valid.forward(x, false).shape(), (Shape{2, 4, 10, 10}));
}

TEST(Conv2dTest, IdentityKernelPassesThrough) {
  Rng rng(8);
  Conv2d c(1, 1, 1, 1, 0, rng);
  // Force weight=1, bias=0 -> identity.
  auto groups = c.param_groups();
  groups[0].params[0]->fill(1.0f);
  groups[0].params[1]->fill(0.0f);
  Tensor x = random_input({1, 1, 4, 4}, 13);
  Tensor y = c.forward(x, false);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(y.at(i), x.at(i), 1e-6);
}

TEST(Conv2dTest, GradientsMatchFiniteDifferences) {
  Rng rng(9);
  Model m;
  m.add(std::make_unique<Conv2d>(2, 3, 3, 1, 1, rng));
  expect_gradients_match(m, random_input({2, 2, 5, 5}, 14));
}

TEST(Conv2dTest, StridedGradientsMatchFiniteDifferences) {
  Rng rng(10);
  Model m;
  m.add(std::make_unique<Conv2d>(2, 2, 3, 2, 1, rng));
  expect_gradients_match(m, random_input({1, 2, 6, 6}, 15));
}

TEST(Conv2dTest, RejectsWrongChannelCount) {
  Rng rng(11);
  Conv2d c(3, 4, 3, 1, 1, rng);
  Tensor x({1, 2, 8, 8});
  EXPECT_THROW(c.forward(x, false), Error);
}

// --------------------------------------------------------------- conv1d --

TEST(Conv1dTest, OutputGeometry) {
  Rng rng(12);
  Conv1d c(1, 8, 16, 4, 0, rng);
  Tensor x({2, 1, 512});
  EXPECT_EQ(c.forward(x, false).shape(), (Shape{2, 8, 125}));
}

TEST(Conv1dTest, GradientsMatchFiniteDifferences) {
  Rng rng(13);
  Model m;
  m.add(std::make_unique<Conv1d>(2, 3, 5, 2, 2, rng));
  expect_gradients_match(m, random_input({2, 2, 16}, 16));
}

// -------------------------------------------------------------- pooling --

TEST(MaxPool2dTest, SelectsWindowMaximum) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(y.at(0), 5.0f);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  pool.forward(x, true);
  Tensor g({1, 1, 1, 1}, {7.0f});
  Tensor dx = pool.backward(g);
  EXPECT_EQ(dx.at(0), 0.0f);
  EXPECT_EQ(dx.at(1), 7.0f);
  EXPECT_EQ(dx.at(2), 0.0f);
  EXPECT_EQ(dx.at(3), 0.0f);
}

TEST(MaxPool1dTest, SelectsAndRoutes) {
  MaxPool1d pool(4);
  Tensor x({1, 1, 4}, {0.1f, -2.0f, 3.0f, 1.0f});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.at(0), 3.0f);
  Tensor dx = pool.backward(Tensor({1, 1, 1}, {2.0f}));
  EXPECT_EQ(dx.at(2), 2.0f);
  EXPECT_EQ(dx.at(0), 0.0f);
}

TEST(GlobalAvgPool2dTest, AveragesAndDistributes) {
  GlobalAvgPool2d gap;
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = gap.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_NEAR(y.at(0), 2.5f, 1e-6);
  EXPECT_NEAR(y.at(1), 25.0f, 1e-6);
  Tensor dx = gap.backward(Tensor({1, 2}, {4.0f, 8.0f}));
  EXPECT_NEAR(dx.at(0), 1.0f, 1e-6);
  EXPECT_NEAR(dx.at(4), 2.0f, 1e-6);
}

TEST(GlobalAvgPool1dTest, AveragesOverTime) {
  GlobalAvgPool1d gap;
  Tensor x({1, 1, 4}, {1, 2, 3, 4});
  Tensor y = gap.forward(x, true);
  EXPECT_NEAR(y.at(0), 2.5f, 1e-6);
  Tensor dx = gap.backward(Tensor({1, 1}, {8.0f}));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_NEAR(dx.at(i), 2.0f, 1e-6);
}

// ------------------------------------------------------------- residual --

TEST(ResidualBlockTest, IdentitySkipShape) {
  Rng rng(14);
  ResidualBlock block(4, 4, 1, rng);
  Tensor x = random_input({2, 4, 6, 6}, 17);
  EXPECT_EQ(block.forward(x, false).shape(), x.shape());
  // Identity skip: two convs = two param groups.
  EXPECT_EQ(block.param_groups().size(), 2u);
}

TEST(ResidualBlockTest, ProjectionSkipShapeAndGroups) {
  Rng rng(15);
  ResidualBlock block(4, 8, 2, rng);
  Tensor x = random_input({2, 4, 6, 6}, 18);
  EXPECT_EQ(block.forward(x, false).shape(), (Shape{2, 8, 3, 3}));
  // conv1 + conv2 + projection.
  EXPECT_EQ(block.param_groups().size(), 3u);
}

TEST(ResidualBlockTest, GradientsMatchFiniteDifferences) {
  Rng rng(16);
  Model m;
  m.add(std::make_unique<ResidualBlock>(2, 3, 2, rng));
  expect_gradients_match(m, random_input({1, 2, 4, 4}, 19), /*eps=*/5e-3, /*tol=*/8e-2);
}

TEST(ResidualBlockTest, CloneIsDeep) {
  Rng rng(17);
  ResidualBlock block(2, 2, 1, rng);
  auto copy = block.clone();
  Tensor* w0 = block.param_groups()[0].params[0];
  Tensor* c0 = copy->param_groups()[0].params[0];
  EXPECT_EQ(w0->at(0), c0->at(0));
  c0->at(0) += 1.0f;
  EXPECT_NE(w0->at(0), c0->at(0));
}

TEST(ResidualBlockTest, GroupNamesArePrefixed) {
  Rng rng(18);
  ResidualBlock block(2, 4, 2, rng);
  for (const ParamGroup& g : block.param_groups())
    EXPECT_NE(g.name.find("resblock"), std::string::npos);
}

}  // namespace
}  // namespace dinar::nn
