#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/tensor.h"
#include "tensor/tensor_serde.h"
#include "util/error.h"

namespace dinar {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  for (float v : t.values()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, ConstructFromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
  EXPECT_EQ(t.at(3), 4.0f);
}

TEST(TensorTest, ValueCountMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), Error);
}

TEST(TensorTest, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({-1, 4}), Error);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  b.at(0) = 99.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, MoveLeavesSourceEmpty) {
  Tensor a({2}, {1, 2});
  Tensor b = std::move(a);
  EXPECT_EQ(b.numel(), 2);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): asserting post-move state
}

TEST(TensorTest, FillAndZero) {
  Tensor t({3});
  t.fill(2.5f);
  for (float v : t.values()) EXPECT_EQ(v, 2.5f);
  t.zero();
  for (float v : t.values()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a.at(2), 33.0f);
  a -= b;
  EXPECT_EQ(a.at(2), 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a.at(0), 2.0f);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a({3}), b({4});
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a -= b, Error);
  EXPECT_THROW(a.add_scaled(b, 1.0f), Error);
}

TEST(TensorTest, AddScaled) {
  Tensor a({2}, {1, 1});
  Tensor b({2}, {2, 4});
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a.at(0), 2.0f);
  EXPECT_EQ(a.at(1), 3.0f);
}

TEST(TensorTest, AddProduct) {
  Tensor a({2}, {0, 0});
  Tensor x({2}, {2, 3});
  Tensor y({2}, {4, 5});
  a.add_product(x, y);
  EXPECT_EQ(a.at(0), 8.0f);
  EXPECT_EQ(a.at(1), 15.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t({4}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(t.sum(), -2.0);
  EXPECT_DOUBLE_EQ(t.squared_l2_norm(), 30.0);
  EXPECT_DOUBLE_EQ(t.l2_norm(), std::sqrt(30.0));
  EXPECT_EQ(t.max_abs(), 4.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), Error);
}

TEST(TensorTest, FreeFunctions) {
  Tensor a({2}, {1, 2}), b({2}, {3, 4});
  EXPECT_EQ(add(a, b).at(1), 6.0f);
  EXPECT_EQ(sub(b, a).at(0), 2.0f);
  EXPECT_EQ(scale(a, 3.0f).at(1), 6.0f);
}

TEST(TensorTest, RandomInitializersRespectBounds) {
  Rng rng(5);
  Tensor u = Tensor::uniform({1000}, rng, -0.5f, 0.5f);
  for (float v : u.values()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
  Tensor k = Tensor::kaiming({1000}, 16, rng);
  const float bound = std::sqrt(1.0f / 16.0f);
  for (float v : k.values()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(TensorTest, GaussianInitializerMoments) {
  Rng rng(5);
  Tensor g = Tensor::gaussian({20000}, rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (float v : g.values()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / 20000.0;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / 20000.0 - mean * mean), 2.0, 0.1);
}

TEST(MatmulTest, HandComputed) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = gemm(Trans::kN, Trans::kN, a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatmulTest, InnerDimensionMismatchThrows) {
  Tensor a({2, 3}), b({2, 2});
  EXPECT_THROW(gemm(Trans::kN, Trans::kN, a, b), Error);
}

TEST(GemmTest, DoubleTransposeHandComputed) {
  // gemm(kT, kT, a, b) = a^T b^T — the one combination the legacy trio
  // never offered.
  Tensor a({3, 2}, {1, 4, 2, 5, 3, 6});        // a^T = [[1,2,3],[4,5,6]]
  Tensor b({2, 3}, {7, 9, 11, 8, 10, 12});     // b^T = [[7,8],[9,10],[11,12]]
  Tensor c = gemm(Trans::kT, Trans::kT, a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(GemmTest, InnerDimensionMismatchThrows) {
  Tensor a({2, 3}), b({2, 2});
  EXPECT_THROW(gemm(Trans::kN, Trans::kN, a, b), Error);
  // a^T is 3x2, so a 3-row b no longer lines up.
  EXPECT_THROW(gemm(Trans::kT, Trans::kN, a, Tensor({3, 3})), Error);
}

// Regression for the removed skip-zero fast path: the scalar kernel used
// to skip `a == 0.0f` multiplicands, silently dropping the IEEE-754
// 0 x NaN = NaN and 0 x Inf = NaN products — so a diverging model looked
// healthy on the scalar path while a SIMD kernel (which has no such
// branch) reported NaN. All four Trans combinations must poison.
TEST(GemmTest, ZeroTimesNanPropagatesAllTransCombos) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a({1, 2}, {0.0f, 0.0f});         // logical 1x2 row of zeros
  Tensor at({2, 1}, {0.0f, 0.0f});        // its stored transpose
  Tensor b({2, 1}, {nan, inf});           // logical 2x1 with NaN and Inf
  Tensor bt({1, 2}, {nan, inf});          // its stored transpose

  EXPECT_TRUE(std::isnan(gemm(Trans::kN, Trans::kN, a, b).at(0)));
  EXPECT_TRUE(std::isnan(gemm(Trans::kT, Trans::kN, at, b).at(0)));
  EXPECT_TRUE(std::isnan(gemm(Trans::kN, Trans::kT, a, bt).at(0)));
  EXPECT_TRUE(std::isnan(gemm(Trans::kT, Trans::kT, at, bt).at(0)));
}

TEST(GemmTest, NanInZeroWeightSideAlsoPropagates) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // NaN on the A side multiplied by a zero B column: same IEEE rule,
  // opposite operand.
  Tensor a({1, 1}, {nan});
  Tensor b({1, 2}, {0.0f, 1.0f});
  const Tensor out = gemm(Trans::kN, Trans::kN, a, b);
  EXPECT_TRUE(std::isnan(out.at(0, 0)));
  EXPECT_TRUE(std::isnan(out.at(0, 1)));
}

TEST(GemmTest, EmptyReductionYieldsZeros) {
  // k = 0 is a defined product (all zeros) and must take the
  // overflow-free grain path rather than dividing by a zero extent.
  const Tensor z = gemm(Trans::kN, Trans::kN, Tensor({3, 0}), Tensor({0, 2}));
  ASSERT_EQ(z.shape(), (Shape{3, 2}));
  for (float v : z.values()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(gemm(Trans::kN, Trans::kN, Tensor({0, 5}), Tensor({5, 4})).numel(), 0);
  EXPECT_EQ(gemm(Trans::kN, Trans::kN, Tensor({4, 5}), Tensor({5, 0})).numel(), 0);
}

// Property sweep: gemm(kT, kN, a, b) == gemm(kN, kN, a^T, b) and
// gemm(kN, kT, a, b) == gemm(kN, kN, a, b^T) over random shapes.
class MatmulVariantTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

Tensor transpose2d(const Tensor& t) {
  Tensor out({t.dim(1), t.dim(0)});
  for (std::int64_t i = 0; i < t.dim(0); ++i)
    for (std::int64_t j = 0; j < t.dim(1); ++j) out.at(j, i) = t.at(i, j);
  return out;
}

TEST_P(MatmulVariantTest, TnMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  Tensor a = Tensor::gaussian({k, m}, rng);
  Tensor b = Tensor::gaussian({k, n}, rng);
  Tensor got = gemm(Trans::kT, Trans::kN, a, b);
  Tensor want = gemm(Trans::kN, Trans::kN, transpose2d(a), b);
  ASSERT_TRUE(got.same_shape(want));
  for (std::int64_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got.at(i), want.at(i), 1e-4);
}

TEST_P(MatmulVariantTest, NtMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n) + 1);
  Tensor a = Tensor::gaussian({m, k}, rng);
  Tensor b = Tensor::gaussian({n, k}, rng);
  Tensor got = gemm(Trans::kN, Trans::kT, a, b);
  Tensor want = gemm(Trans::kN, Trans::kN, a, transpose2d(b));
  ASSERT_TRUE(got.same_shape(want));
  for (std::int64_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got.at(i), want.at(i), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulVariantTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(3, 17, 2)));

// Serde round-trips over a sweep of shapes.
class TensorSerdeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(TensorSerdeTest, RoundTripPreservesEverything) {
  Rng rng(77);
  Tensor t = Tensor::gaussian(GetParam(), rng);
  BinaryWriter w;
  write_tensor(w, t);
  BinaryReader r(w.buffer());
  Tensor back = read_tensor(r);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back.at(i), t.at(i));
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Shapes, TensorSerdeTest,
                         ::testing::Values(Shape{1}, Shape{16}, Shape{3, 4},
                                           Shape{2, 3, 5}, Shape{2, 1, 4, 4},
                                           Shape{0}));

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace dinar
