#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/consensus.h"
#include "core/dinar.h"
#include "core/obfuscation.h"
#include "core/sensitivity.h"
#include "fl/trainer.h"
#include "opt/optimizers.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/stats.h"

namespace dinar::core {
namespace {

using dinar::testing::make_tiny_mlp;
using dinar::testing::make_tiny_tabular;
using dinar::testing::tiny_mlp_factory;

// ------------------------------------------------------------- sensitivity --

TEST(SensitivityTest, OneEntryPerParamLayerWithinBounds) {
  Rng rng(1);
  nn::Model model = make_tiny_mlp(32, 4, rng);
  data::Dataset members = make_tiny_tabular(200, 4, rng);
  data::Dataset non_members = make_tiny_tabular(200, 4, rng);

  const auto sens = analyze_layer_sensitivity(model, members, non_members);
  ASSERT_EQ(sens.size(), 3u);
  for (std::size_t i = 0; i < sens.size(); ++i) {
    EXPECT_EQ(sens[i].layer_index, i);
    EXPECT_GE(sens[i].divergence, 0.0);
    EXPECT_LE(sens[i].divergence, std::log(2.0) + 1e-9);
    EXPECT_FALSE(sens[i].layer_name.empty());
  }
}

TEST(SensitivityTest, TrainedModelSeparatesMembersFromNonMembers) {
  // After overfitting on the member pool, at least one layer must show a
  // clearly nonzero member/non-member gradient divergence.
  Rng rng(2);
  data::Dataset members = make_tiny_tabular(150, 4, rng);
  data::Dataset non_members = make_tiny_tabular(150, 4, rng);
  nn::Model model = make_tiny_mlp(32, 4, rng);
  auto opt = opt::make_optimizer("adagrad", 1e-2);
  Rng train_rng(3);
  fl::train_local(model, members, *opt, fl::TrainConfig{30, 32}, train_rng);

  const auto sens = analyze_layer_sensitivity(model, members, non_members);
  const std::size_t top = most_sensitive_layer(sens);
  EXPECT_GT(sens[top].divergence, 0.01);
}

TEST(SensitivityTest, MostSensitiveLayerIsArgmax) {
  std::vector<LayerSensitivity> s(3);
  for (std::size_t i = 0; i < 3; ++i) s[i].layer_index = i;
  s[0].divergence = 0.1;
  s[1].divergence = 0.5;
  s[2].divergence = 0.3;
  EXPECT_EQ(most_sensitive_layer(s), 1u);
  EXPECT_THROW(most_sensitive_layer({}), Error);
}

TEST(SensitivityTest, EmptyPoolsRejected) {
  Rng rng(4);
  nn::Model model = make_tiny_mlp(32, 4, rng);
  data::Dataset d = make_tiny_tabular(50, 4, rng);
  EXPECT_THROW(analyze_layer_sensitivity(model, {}, d), Error);
  EXPECT_THROW(analyze_layer_sensitivity(model, d, {}), Error);
}

// --------------------------------------------------------------- consensus --

TEST(ConsensusTest, UnanimousProposalWins) {
  Rng rng(5);
  ConsensusResult r = run_layer_consensus({4, 4, 4, 4, 4}, std::vector<bool>(5, false),
                                          6, rng);
  EXPECT_EQ(r.agreed_layer, 4u);
  EXPECT_TRUE(r.honest_agreement);
}

TEST(ConsensusTest, MajorityBeatsMinority) {
  Rng rng(6);
  ConsensusResult r = run_layer_consensus({4, 4, 4, 2, 1}, std::vector<bool>(5, false),
                                          6, rng);
  EXPECT_EQ(r.agreed_layer, 4u);
}

TEST(ConsensusTest, TieBreaksToLowestIndex) {
  Rng rng(7);
  ConsensusResult r = run_layer_consensus({5, 5, 2, 2}, std::vector<bool>(4, false),
                                          6, rng);
  EXPECT_EQ(r.agreed_layer, 2u);
  EXPECT_TRUE(r.honest_agreement);
}

// Property: honest absolute majority always wins, for varying numbers of
// Byzantine voters below half.
class ByzantineToleranceTest : public ::testing::TestWithParam<int> {};

TEST_P(ByzantineToleranceTest, HonestMajorityPrevails) {
  const int num_byzantine = GetParam();
  const int n = 9;  // 9 voters, up to 4 Byzantine
  std::vector<std::size_t> proposals(n, 4);  // honest nodes propose layer 4
  std::vector<bool> byzantine(n, false);
  for (int i = 0; i < num_byzantine; ++i) byzantine[static_cast<std::size_t>(i)] = true;

  // Across several vote rounds with random Byzantine behaviour, the honest
  // common proposal must always be decided by the honest nodes.
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(100 + trial);
    ConsensusResult r = run_layer_consensus(proposals, byzantine, 6, rng);
    EXPECT_EQ(r.agreed_layer, 4u) << "trial " << trial;
    EXPECT_TRUE(r.honest_agreement);
  }
}

INSTANTIATE_TEST_SUITE_P(FaultCounts, ByzantineToleranceTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(ConsensusTest, AllByzantineRejected) {
  Rng rng(8);
  EXPECT_THROW(run_layer_consensus({1, 2}, {true, true}, 4, rng), Error);
}

TEST(ConsensusTest, OutOfRangeProposalRejected) {
  Rng rng(9);
  EXPECT_THROW(run_layer_consensus({7}, {false}, 4, rng), Error);
}

// At exactly half Byzantine the honest majority disappears: Byzantine
// voters send different random votes to different peers, so honest nodes
// can tally different winners. The protocol must report the disagreement
// (honest_agreement = false) rather than hide it; observing it flag at
// least once over many seeds proves the detector is wired through.
TEST(ConsensusTest, ExactlyHalfByzantineIsDetectedAsDisagreement) {
  const std::vector<std::size_t> proposals{3, 3, 0, 0};
  const std::vector<bool> byzantine{false, false, true, true};
  int disagreements = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    ConsensusResult r = run_layer_consensus(proposals, byzantine, 4, rng);
    if (!r.honest_agreement) ++disagreements;
    // Node decisions are always reported for every voter, agreed or not.
    EXPECT_EQ(r.node_decisions.size(), 4u);
  }
  EXPECT_GT(disagreements, 0);
}

TEST(ConsensusTest, SingleHonestNodeDecidesItsOwnProposal) {
  Rng rng(10);
  ConsensusResult r = run_layer_consensus({2}, {false}, 4, rng);
  EXPECT_EQ(r.agreed_layer, 2u);
  EXPECT_TRUE(r.honest_agreement);
  EXPECT_EQ(r.node_decisions, std::vector<std::size_t>{2});
}

// The lowest-index tie-break must not depend on the RNG: an all-honest
// tied vote decides identically under every seed.
TEST(ConsensusTest, TieBreakIsSeedIndependent) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    ConsensusResult r =
        run_layer_consensus({5, 5, 2, 2}, std::vector<bool>(4, false), 6, rng);
    EXPECT_EQ(r.agreed_layer, 2u) << "seed " << seed;
    EXPECT_TRUE(r.honest_agreement);
  }
}

TEST(VotingNodeTest, HonestVoteIsProposal) {
  Rng rng(10);
  VotingNode node(0, 3);
  EXPECT_EQ(node.cast_vote(5, rng), 3u);
}

TEST(VotingNodeTest, DecideWithoutVotesThrows) {
  VotingNode node(0, 1);
  EXPECT_THROW(node.decide(), Error);
}

// ------------------------------------------------------------- obfuscation --

TEST(ObfuscationTest, ReplacesValuesScaleMatched) {
  Rng init(11);
  Tensor t = Tensor::gaussian({2000}, init, 0.05f);
  Tensor orig = t;
  Rng rng(12);
  obfuscate_tensor(t, rng);

  // Values changed...
  std::int64_t unchanged = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i)
    if (t.at(i) == orig.at(i)) ++unchanged;
  EXPECT_LT(unchanged, 5);

  // ...and stayed within ±3 sigma of the original scale.
  for (float v : t.values()) EXPECT_LE(std::fabs(v), 3.0f * 0.06f + 0.01f);
}

TEST(ObfuscationTest, ZeroTensorGetsFallbackScale) {
  Tensor t({100});
  Rng rng(13);
  obfuscate_tensor(t, rng);
  double sq = 0.0;
  for (float v : t.values()) sq += static_cast<double>(v) * v;
  EXPECT_GT(sq, 0.0);
  for (float v : t.values()) EXPECT_LE(std::fabs(v), 0.1f);
}

TEST(ObfuscationTest, SnapshotLayerTargeting) {
  Rng rng(14);
  nn::Model model = make_tiny_mlp(8, 3, rng);
  nn::FlatParams snapshot = model.parameters();
  nn::FlatParams orig = snapshot;
  Rng orng(15);
  obfuscate_layer_in_snapshot(model, snapshot, 1, orng);

  const auto [begin, end] = model.layer_param_span(1);
  for (std::size_t i = 0; i < snapshot.index()->num_entries(); ++i) {
    bool changed = false;
    for (std::size_t j = 0; j < snapshot.entry_span(i).size(); ++j)
      if (snapshot.entry_span(i)[j] != orig.entry_span(i)[j]) changed = true;
    if (i >= begin && i < end)
      EXPECT_TRUE(changed) << "layer entry " << i << " should be obfuscated";
    else
      EXPECT_FALSE(changed) << "entry " << i << " must be untouched";
  }
}

// ----------------------------------------------------------- dinar defense --

TEST(DinarDefenseTest, UploadObfuscatesOnlyProtectedLayer) {
  Rng rng(16);
  nn::Model model = make_tiny_mlp(8, 3, rng);
  DinarDefense defense({2}, Rng(17));
  defense.initialize(model, 0);

  nn::FlatParams live_before = model.parameters();
  bool pw = false;
  nn::FlatParams upload = defense.before_upload(model, model.parameters(), 10, pw);
  EXPECT_FALSE(pw);

  const auto [begin, end] = model.layer_param_span(2);
  for (std::size_t i = 0; i < upload.index()->num_entries(); ++i) {
    const bool inside = i >= begin && i < end;
    bool equal = true;
    for (std::size_t j = 0; j < upload.entry_span(i).size(); ++j)
      if (upload.entry_span(i)[j] != live_before.entry_span(i)[j]) equal = false;
    EXPECT_EQ(equal, !inside);
    // The outgoing index advertises exactly the obfuscated entries.
    EXPECT_EQ(upload.index()->entry(i).is_obfuscated, inside);
  }

  // Live model untouched by the upload transform.
  nn::FlatParams live_after = model.parameters();
  for (std::size_t j = 0; j < live_before.as_span().size(); ++j)
    EXPECT_EQ(live_after.as_span()[j], live_before.as_span()[j]);
}

TEST(DinarDefenseTest, DownloadRestoresPrivateLayer) {
  Rng rng(18);
  nn::Model model = make_tiny_mlp(8, 3, rng);
  DinarDefense defense({1}, Rng(19));
  defense.initialize(model, 0);

  // Client trains: layer 1 takes distinctive values, then uploads (stores
  // theta_p^*).
  nn::FlatParams trained = model.layer_parameters(1);
  for (float& v : trained.entry_span(0)) v = 0.77f;
  for (float& v : trained.entry_span(1)) v = -0.33f;
  model.set_layer_parameters(1, trained);
  bool pw = false;
  defense.before_upload(model, model.parameters(), 10, pw);

  // Server sends back a different global model (all zeros).
  nn::FlatParams global = model.parameters();
  for (float& v : global.as_span()) v = 0.0f;
  defense.on_download(model, global);

  // Protected layer restored, everything else zero.
  nn::FlatParams restored = model.layer_parameters(1);
  EXPECT_EQ(restored.entry_span(0)[0], 0.77f);
  EXPECT_EQ(restored.entry_span(1)[0], -0.33f);
  EXPECT_EQ(nn::flat_l2_norm(model.layer_parameters(0)), 0.0);
  EXPECT_EQ(nn::flat_l2_norm(model.layer_parameters(2)), 0.0);
}

TEST(DinarDefenseTest, MultiLayerProtection) {
  Rng rng(20);
  nn::Model model = make_tiny_mlp(8, 3, rng);
  DinarDefense defense({0, 2}, Rng(21));
  defense.initialize(model, 0);
  bool pw = false;
  nn::FlatParams live = model.parameters();
  nn::FlatParams upload = defense.before_upload(model, model.parameters(), 10, pw);
  const auto [b0, e0] = model.layer_param_span(0);
  const auto [b2, e2] = model.layer_param_span(2);
  std::set<std::size_t> protected_slots;
  for (std::size_t i = b0; i < e0; ++i) protected_slots.insert(i);
  for (std::size_t i = b2; i < e2; ++i) protected_slots.insert(i);
  for (std::size_t i = 0; i < upload.index()->num_entries(); ++i) {
    bool equal = true;
    for (std::size_t j = 0; j < upload.entry_span(i).size(); ++j)
      if (upload.entry_span(i)[j] != live.entry_span(i)[j]) equal = false;
    EXPECT_EQ(equal, protected_slots.count(i) == 0);
  }
}

TEST(DinarDefenseTest, ValidatesLayerIndices) {
  Rng rng(22);
  nn::Model model = make_tiny_mlp(8, 3, rng);
  DinarDefense defense({9}, Rng(23));
  EXPECT_THROW(defense.initialize(model, 0), Error);
  EXPECT_THROW(DinarDefense({}, Rng(24)), Error);
  EXPECT_THROW(DinarDefense({1, 1}, Rng(25)), Error);
}

// ----------------------------------------------------------- initialization --

TEST(DinarInitTest, AgreesOnALayerAndRecordsMeasurements) {
  Rng rng(26);
  std::vector<data::Dataset> shards;
  for (int i = 0; i < 3; ++i) shards.push_back(make_tiny_tabular(150, 4, rng));
  data::Dataset non_members = make_tiny_tabular(150, 4, rng);

  DinarInitConfig cfg;
  cfg.warmup = fl::TrainConfig{8, 32};
  DinarInitResult result = run_dinar_initialization(tiny_mlp_factory(32, 4), shards,
                                                    non_members, cfg);
  EXPECT_LT(result.agreed_layer, 3u);
  EXPECT_EQ(result.proposals.size(), 3u);
  EXPECT_EQ(result.client_sensitivities.size(), 3u);
  EXPECT_TRUE(result.consensus.honest_agreement);
}

TEST(DinarInitTest, ByzantineClientsDoNotDerailStrongMajority) {
  Rng rng(27);
  std::vector<data::Dataset> shards;
  for (int i = 0; i < 5; ++i) shards.push_back(make_tiny_tabular(120, 4, rng));
  data::Dataset non_members = make_tiny_tabular(120, 4, rng);

  DinarInitConfig honest_cfg;
  honest_cfg.warmup = fl::TrainConfig{8, 32};
  DinarInitResult honest = run_dinar_initialization(tiny_mlp_factory(32, 4), shards,
                                                    non_members, honest_cfg);

  DinarInitConfig byz_cfg = honest_cfg;
  byz_cfg.byzantine_clients = {0};
  DinarInitResult with_byz = run_dinar_initialization(tiny_mlp_factory(32, 4), shards,
                                                      non_members, byz_cfg);
  // Honest proposals dominate; a single liar cannot flip the agreed layer
  // when the honest majority proposes a common index.
  if (honest.consensus.honest_agreement && with_byz.consensus.honest_agreement) {
    std::map<std::size_t, int> counts;
    for (std::size_t i = 1; i < honest.proposals.size(); ++i) ++counts[honest.proposals[i]];
    int best = 0;
    for (auto& [k, v] : counts) best = std::max(best, v);
    if (best >= 3) EXPECT_EQ(with_byz.agreed_layer, honest.agreed_layer);
  }
}

TEST(DinarBundleTest, ProducesDinarClients) {
  fl::DefenseBundle bundle = make_dinar_bundle({2});
  EXPECT_EQ(bundle.name, "dinar");
  auto client = bundle.make_client(0);
  EXPECT_EQ(client->name(), "dinar");
  auto server = bundle.make_server();
  EXPECT_EQ(server->name(), "none");  // DINAR is purely client-side
}

}  // namespace
}  // namespace dinar::core
