// DFRM v3 compressed wire format suite (DESIGN.md §14).
//
// Unit half (WireCodecTest): per-encoding round trips, sparse top-k delta
// coding against a reference, the lossless-obfuscated escape hatch, the
// int8 scale policy on degenerate spans (all-zero / NaN / Inf), v2 read
// compatibility, and — mirroring serde_format_test — truncation at every
// byte offset plus a bit-flip sweep that must never crash.
//
// Simulation half (WireCodecSimTest): a forced-v3 lossless run is
// bit-identical to the default v2 run, lossy codecs train and populate the
// uncoded-bytes savings counters, and the codec is transparent to the
// socket transport.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "fl/message.h"
#include "fl/simulation.h"
#include "fl/wire_codec.h"
#include "nn/flat_params.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/serde.h"

namespace dinar {
namespace {

using dinar::testing::make_easy_dataset;
using dinar::testing::tiny_mlp_factory;

nn::FlatParams sample_params(Rng& rng) {
  std::vector<Tensor> p;
  p.push_back(Tensor::gaussian({4, 3}, rng));
  p.push_back(Tensor::gaussian({3}, rng));
  return nn::FlatParams::from_tensors(p);
}

void expect_bitwise_equal(const nn::FlatParams& a, const nn::FlatParams& b) {
  ASSERT_TRUE(a.same_layout(b));
  EXPECT_EQ(std::memcmp(a.as_span().data(), b.as_span().data(),
                        a.as_span().size() * sizeof(float)),
            0);
}

fl::KindCodec codec_of(fl::WireEncoding e, double topk = 1.0,
                       bool lossless_obfuscated = true) {
  fl::KindCodec c;
  c.encoding = e;
  c.topk_fraction = topk;
  c.lossless_obfuscated = lossless_obfuscated;
  return c;
}

std::uint32_t read_version(const std::vector<std::uint8_t>& bytes) {
  std::uint32_t v = 0;
  std::memcpy(&v, bytes.data() + 5, sizeof v);
  return v;
}

std::uint64_t read_decoded_bytes_field(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + 9, sizeof v);
  return v;
}

// ------------------------------------------------------------ validation --

TEST(WireCodecTest, ValidateConfigRejectsUnusableSettings) {
  fl::UpdateCodecConfig ok;
  EXPECT_NO_THROW(fl::validate_codec_config(ok));
  EXPECT_FALSE(ok.active());

  fl::UpdateCodecConfig bad_enc;
  bad_enc.update.encoding = static_cast<fl::WireEncoding>(9);
  EXPECT_THROW(fl::validate_codec_config(bad_enc), Error);

  fl::UpdateCodecConfig zero_topk;
  zero_topk.update.topk_fraction = 0.0;
  EXPECT_THROW(fl::validate_codec_config(zero_topk), Error);

  fl::UpdateCodecConfig over_topk;
  over_topk.update.topk_fraction = 1.5;
  EXPECT_THROW(fl::validate_codec_config(over_topk), Error);

  // Sparse broadcasts have no reference on the client side.
  fl::UpdateCodecConfig sparse_broadcast;
  sparse_broadcast.broadcast.topk_fraction = 0.5;
  try {
    fl::validate_codec_config(sparse_broadcast);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("broadcast"), std::string::npos);
  }
}

TEST(WireCodecTest, DefaultCodecEmitsByteIdenticalV2) {
  Rng rng(1);
  fl::GlobalModelMsg g;
  g.round = 4;
  g.params = sample_params(rng);
  EXPECT_EQ(g.serialize(fl::KindCodec{}), g.serialize());
  EXPECT_EQ(read_version(g.serialize(fl::KindCodec{})), 2u);

  fl::ModelUpdateMsg u;
  u.client_id = 2;
  u.num_samples = 9;
  u.params = sample_params(rng);
  EXPECT_EQ(u.serialize(fl::KindCodec{}, nullptr), u.serialize());
}

TEST(WireCodecTest, V2WireBytesMatchesActualV2Size) {
  Rng rng(2);
  fl::GlobalModelMsg g;
  g.round = 1;
  g.params = sample_params(rng);
  EXPECT_EQ(fl::v2_wire_bytes(g), g.serialize().size());

  fl::ModelUpdateMsg u;
  u.client_id = 7;
  u.round = 1;
  u.num_samples = 33;
  u.pre_weighted = true;
  u.params = sample_params(rng);
  EXPECT_EQ(fl::v2_wire_bytes(u), u.serialize().size());
}

// ---------------------------------------------------------- v3 container --

TEST(WireCodecTest, ForcedV3LosslessRoundTripsBitExact) {
  Rng rng(3);
  fl::GlobalModelMsg g;
  g.round = 12;
  g.params = sample_params(rng);
  fl::KindCodec c;
  c.force_v3 = true;
  const auto bytes = g.serialize(c);
  EXPECT_EQ(read_version(bytes), 3u);
  // The decoded-size field at the fixed offset declares the arena bytes.
  EXPECT_EQ(read_decoded_bytes_field(bytes),
            static_cast<std::uint64_t>(g.params.numel()) * sizeof(float));

  const fl::GlobalModelMsg back = fl::GlobalModelMsg::deserialize(bytes);
  EXPECT_EQ(back.round, 12);
  expect_bitwise_equal(back.params, g.params);

  fl::ModelUpdateMsg u;
  u.client_id = 5;
  u.round = 12;
  u.num_samples = 40;
  u.pre_weighted = true;
  u.params = sample_params(rng);
  const auto ub = u.serialize(c, nullptr);
  EXPECT_EQ(read_version(ub), 3u);
  const fl::ModelUpdateMsg uback = fl::ModelUpdateMsg::deserialize(ub);
  EXPECT_EQ(uback.client_id, 5);
  EXPECT_EQ(uback.num_samples, 40);
  EXPECT_TRUE(uback.pre_weighted);
  expect_bitwise_equal(uback.params, u.params);
}

TEST(WireCodecTest, F16RepresentableValuesRoundTripExactly) {
  std::vector<Tensor> t;
  t.push_back(Tensor({2, 4}, {0.0f, -0.0f, 1.0f, -2.0f, 0.5f, 1024.0f,
                              -65504.0f, 0.25f}));
  fl::GlobalModelMsg g;
  g.params = nn::FlatParams::from_tensors(t);
  const auto back = fl::GlobalModelMsg::deserialize(
      g.serialize(codec_of(fl::WireEncoding::kF16)));
  expect_bitwise_equal(back.params, g.params);
}

TEST(WireCodecTest, LossyEncodingsAreIdempotent) {
  // encode(decode(x)) == decode(x): the second pass through the codec is
  // exact, so repeated re-serialization cannot drift.
  for (const fl::WireEncoding e :
       {fl::WireEncoding::kF16, fl::WireEncoding::kBf16, fl::WireEncoding::kInt8}) {
    Rng rng(4);
    fl::GlobalModelMsg g;
    g.params = sample_params(rng);
    const fl::KindCodec c = codec_of(e);
    const auto d1 = fl::GlobalModelMsg::deserialize(g.serialize(c));
    const auto d2 = fl::GlobalModelMsg::deserialize(d1.serialize(c));
    expect_bitwise_equal(d1.params, d2.params);
  }
}

TEST(WireCodecTest, Int8QuantizationErrorBoundedByHalfScale) {
  Rng rng(5);
  fl::GlobalModelMsg g;
  g.params = sample_params(rng);
  const auto back = fl::GlobalModelMsg::deserialize(
      g.serialize(codec_of(fl::WireEncoding::kInt8)));
  for (std::size_t i = 0; i < g.params.index()->num_entries(); ++i) {
    const auto orig = g.params.entry_span(i);
    const auto dec = back.params.entry_span(i);
    float max_abs = 0.0f;
    for (const float v : orig) max_abs = std::max(max_abs, std::fabs(v));
    const float scale = std::max(max_abs / 127.0f, 0.0f);
    for (std::size_t j = 0; j < orig.size(); ++j)
      EXPECT_LE(std::fabs(dec[j] - orig[j]), scale * 0.5f + 1e-7f)
          << "entry " << i << " coord " << j;
  }
}

TEST(WireCodecTest, Int8AllZeroEntryDecodesToExactZeros) {
  std::vector<Tensor> t;
  t.push_back(Tensor({6}, std::vector<float>(6, 0.0f)));
  fl::GlobalModelMsg g;
  g.params = nn::FlatParams::from_tensors(t);
  const auto back = fl::GlobalModelMsg::deserialize(
      g.serialize(codec_of(fl::WireEncoding::kInt8)));
  expect_bitwise_equal(back.params, g.params);  // no NaN scale, exact zeros
}

TEST(WireCodecTest, Int8NonFiniteEntryFallsBackToBitExactF32) {
  // IEEE-754 propagation (PR 5): a poisoned span must decode poisoned, not
  // be laundered through a NaN/Inf scale into numbers.
  std::vector<Tensor> t;
  t.push_back(Tensor({4}, {1.0f, std::numeric_limits<float>::quiet_NaN(),
                           -std::numeric_limits<float>::infinity(), 2.0f}));
  t.push_back(Tensor({3}, {0.5f, -0.5f, 3.0f}));
  fl::ModelUpdateMsg u;
  u.client_id = 1;
  u.num_samples = 3;
  u.params = nn::FlatParams::from_tensors(t);
  const auto back = fl::ModelUpdateMsg::deserialize(
      u.serialize(codec_of(fl::WireEncoding::kInt8), nullptr));
  // Entry 0 (non-finite) is bit-exact including the NaN payload; entry 1
  // is quantized but finite.
  EXPECT_EQ(std::memcmp(back.params.entry_span(0).data(),
                        u.params.entry_span(0).data(), 4 * sizeof(float)),
            0);
  EXPECT_TRUE(std::isnan(back.params.entry_span(0)[1]));
}

TEST(WireCodecTest, ObfuscatedEntriesStayLosslessByDefault) {
  Rng rng(6);
  nn::FlatParams p = sample_params(rng);
  p.reset_index(p.index()->with_obfuscated({1}));
  fl::ModelUpdateMsg u;
  u.client_id = 0;
  u.num_samples = 1;
  u.params = p;

  const auto keep = fl::ModelUpdateMsg::deserialize(
      u.serialize(codec_of(fl::WireEncoding::kInt8), nullptr));
  // Obfuscated entry 1: bit-exact. Plain entry 0: quantized (different).
  EXPECT_EQ(std::memcmp(keep.params.entry_span(1).data(),
                        p.entry_span(1).data(),
                        p.entry_span(1).size() * sizeof(float)),
            0);
  EXPECT_NE(std::memcmp(keep.params.entry_span(0).data(),
                        p.entry_span(0).data(),
                        p.entry_span(0).size() * sizeof(float)),
            0);
  EXPECT_TRUE(keep.params.index()->entry(1).is_obfuscated);

  // Opting out quantizes the obfuscated entry too.
  const auto lossy = fl::ModelUpdateMsg::deserialize(u.serialize(
      codec_of(fl::WireEncoding::kInt8, 1.0, /*lossless_obfuscated=*/false),
      nullptr));
  EXPECT_NE(std::memcmp(lossy.params.entry_span(1).data(),
                        p.entry_span(1).data(),
                        p.entry_span(1).size() * sizeof(float)),
            0);
}

// -------------------------------------------------------- sparse (top-k) --

TEST(WireCodecTest, TopKKeepsLargestDeltasAndReconstructsRestFromReference) {
  std::vector<Tensor> rt;
  rt.push_back(Tensor({8}, {1, 2, 3, 4, 5, 6, 7, 8}));
  const nn::FlatParams ref = nn::FlatParams::from_tensors(rt);

  const std::vector<float> delta{0.0f, 5.0f, -3.0f, 0.5f, 0.0f, -7.0f, 2.0f, 0.0f};
  nn::FlatParams p = ref;
  for (std::size_t i = 0; i < delta.size(); ++i) p.as_span()[i] += delta[i];

  fl::ModelUpdateMsg u;
  u.client_id = 3;
  u.num_samples = 10;
  u.params = p;
  // ceil(0.375 * 8) = 3 kept coordinates: |−7| at 5, |5| at 1, |−3| at 2.
  const auto bytes =
      u.serialize(codec_of(fl::WireEncoding::kF32, 0.375), &ref);
  const auto back = fl::ModelUpdateMsg::deserialize(bytes, &ref);
  const auto dec = back.params.as_span();
  for (const std::size_t kept : {1u, 2u, 5u})
    EXPECT_EQ(dec[kept], p.as_span()[kept]) << "kept coord " << kept;
  for (const std::size_t dropped : {0u, 3u, 4u, 6u, 7u})
    EXPECT_EQ(dec[dropped], ref.as_span()[dropped]) << "dropped coord " << dropped;

  // Sparse payloads without a reference are rejected by name on decode...
  try {
    fl::ModelUpdateMsg::deserialize(bytes, nullptr);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("reference"), std::string::npos);
  }
  // ...and on encode.
  EXPECT_THROW(u.serialize(codec_of(fl::WireEncoding::kF32, 0.375), nullptr),
               Error);
}

TEST(WireCodecTest, SparseInt8RoundTripsThroughScaledDeltas) {
  Rng rng(7);
  const nn::FlatParams ref = sample_params(rng);
  nn::FlatParams p = ref;
  Rng rng2(8);
  for (float& v : p.as_span()) v += static_cast<float>(rng2.gaussian()) * 0.01f;

  fl::ModelUpdateMsg u;
  u.client_id = 1;
  u.num_samples = 4;
  u.params = p;
  const auto back = fl::ModelUpdateMsg::deserialize(
      u.serialize(codec_of(fl::WireEncoding::kInt8, 0.25), &ref), &ref);
  // Every decoded coordinate is reference + a quantized delta: within half
  // a scale of either the true value (kept) or the reference (dropped).
  for (std::size_t i = 0; i < p.as_span().size(); ++i) {
    const float d = back.params.as_span()[i];
    const float lo = std::min(ref.as_span()[i], p.as_span()[i]) - 0.01f;
    const float hi = std::max(ref.as_span()[i], p.as_span()[i]) + 0.01f;
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

// --------------------------------------------- corruption & compatibility --

TEST(WireCodecTest, TruncationAtEveryByteOffsetThrows) {
  Rng rng(9);
  const nn::FlatParams ref = sample_params(rng);
  nn::FlatParams p = ref;
  Rng rng2(10);
  for (float& v : p.as_span()) v += static_cast<float>(rng2.gaussian()) * 0.1f;
  fl::ModelUpdateMsg u;
  u.client_id = 1;
  u.num_samples = 2;
  u.params = p;
  // int8 + top-k exercises every v3 field: scale, k, indices, coded values.
  const auto full = u.serialize(codec_of(fl::WireEncoding::kInt8, 0.5), &ref);
  EXPECT_EQ(read_version(full), 3u);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> part(full.begin(),
                                   full.begin() + static_cast<long>(cut));
    EXPECT_THROW(fl::ModelUpdateMsg::deserialize(part, &ref), Error)
        << "cut at " << cut;
  }
}

TEST(WireCodecTest, BitFlipAtEveryByteOffsetNeverCrashes) {
  Rng rng(11);
  const nn::FlatParams ref = sample_params(rng);
  nn::FlatParams p = ref;
  Rng rng2(12);
  for (float& v : p.as_span()) v += static_cast<float>(rng2.gaussian()) * 0.1f;
  fl::ModelUpdateMsg u;
  u.client_id = 1;
  u.num_samples = 2;
  u.params = p;
  const auto full = u.serialize(codec_of(fl::WireEncoding::kInt8, 0.5), &ref);
  // The transport's frame checksum catches in-flight flips; this sweep
  // proves the parser itself survives a flip that slipped past it — every
  // outcome is a named Error or a structurally valid message, never UB.
  for (std::size_t at = 0; at < full.size(); ++at) {
    auto bent = full;
    bent[at] ^= 0xFF;
    try {
      const fl::ModelUpdateMsg back = fl::ModelUpdateMsg::deserialize(bent, &ref);
      EXPECT_EQ(back.params.numel(), p.numel());
    } catch (const Error&) {
      // rejected by name — fine
    }
  }
}

TEST(WireCodecTest, TamperedDecodedBytesFieldRejected) {
  Rng rng(13);
  fl::GlobalModelMsg g;
  g.params = sample_params(rng);
  fl::KindCodec c;
  c.force_v3 = true;
  const auto bytes = g.serialize(c);

  // Declared size disagreeing with the index is rejected...
  auto small = bytes;
  small[9] ^= 0x04;
  EXPECT_THROW(fl::GlobalModelMsg::deserialize(small), Error);

  // ...and an absurd declared size dies at the message-layer cap before
  // any allocation happens (decompression-bomb guard, net/frame.h twin).
  auto huge = bytes;
  const std::uint64_t bomb = 1ull << 40;
  std::memcpy(huge.data() + 9, &bomb, sizeof bomb);
  try {
    fl::GlobalModelMsg::deserialize(huge);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("decoded"), std::string::npos);
  }
}

TEST(WireCodecTest, V2FramesStillDeserializeThroughTheV3Reader) {
  Rng rng(14);
  fl::GlobalModelMsg g;
  g.round = 2;
  g.params = sample_params(rng);
  const auto v2 = g.serialize();
  const auto back = fl::GlobalModelMsg::deserialize(v2);
  expect_bitwise_equal(back.params, g.params);
  EXPECT_EQ(back.serialize(), v2);

  fl::ModelUpdateMsg u;
  u.client_id = 4;
  u.num_samples = 6;
  u.params = sample_params(rng);
  // A v2 frame decodes identically whether or not a reference is supplied.
  const auto ub = u.serialize();
  expect_bitwise_equal(fl::ModelUpdateMsg::deserialize(ub).params,
                       fl::ModelUpdateMsg::deserialize(ub, &g.params).params);
}

// ------------------------------------------------------- simulation level --

fl::FederatedSimulation make_sim(int seed, const fl::UpdateCodecConfig& codec,
                                 bool socket = false) {
  fl::SimulationConfig cfg;
  cfg.rounds = 3;
  cfg.train = fl::TrainConfig{1, 32};
  cfg.codec = codec;
  cfg.socket_transport = socket;
  Rng rng(seed);
  data::Dataset full = make_easy_dataset(240, rng);
  data::FlSplitConfig split_cfg;
  split_cfg.num_clients = 3;
  data::FlSplit split = data::make_fl_split(full, split_cfg, rng);
  return fl::FederatedSimulation(tiny_mlp_factory(2, 2), std::move(split), cfg,
                                 fl::DefenseBundle{});
}

TEST(WireCodecSimTest, LosslessForcedV3RunIsBitIdenticalToV2Run) {
  fl::FederatedSimulation v2 = make_sim(21, fl::UpdateCodecConfig{});
  v2.run();

  fl::UpdateCodecConfig lossless;
  lossless.broadcast.force_v3 = true;
  lossless.update.force_v3 = true;
  fl::FederatedSimulation v3 = make_sim(21, lossless);
  v3.run();

  expect_bitwise_equal(v3.server().global_params(), v2.server().global_params());
  // Only the container changed, so the uncoded counters report the exact
  // v2 payload size — slightly below the v3 bytes that actually shipped.
  const fl::TransportStats& s2 = v2.transport().stats();
  const fl::TransportStats& s3 = v3.transport().stats();
  EXPECT_EQ(s2.bytes_up_uncoded, 0u);    // inactive codec: no accounting
  EXPECT_EQ(s2.bytes_down_uncoded, 0u);
  EXPECT_GT(s3.bytes_up_uncoded, 0u);
  EXPECT_GT(s3.bytes_down_uncoded, 0u);
  EXPECT_GT(s3.bytes_up, s3.bytes_up_uncoded);  // v3 header overhead
  EXPECT_GT(s3.bytes_down, s3.bytes_down_uncoded);
}

TEST(WireCodecSimTest, LossyCodecTrainsAndSavesWireBytes) {
  fl::UpdateCodecConfig codec;
  codec.broadcast.encoding = fl::WireEncoding::kF16;
  codec.update.encoding = fl::WireEncoding::kInt8;
  codec.update.topk_fraction = 0.25;
  fl::FederatedSimulation sim = make_sim(22, codec);
  sim.run();

  for (const fl::RoundOutcome& out : sim.round_log()) {
    EXPECT_TRUE(out.quorum_met);
    EXPECT_EQ(out.accepted.size(), 3u);
  }
  const fl::TransportStats& s = sim.transport().stats();
  // The tiny test model's index header (entry names, shapes) dominates its
  // 202-float arena, so only strict savings are asserted here; the >= 4x
  // reduction gate runs in bench_copybw on a paper-shaped model.
  EXPECT_LT(s.bytes_up, s.bytes_up_uncoded);      // int8+top-k: smaller
  EXPECT_LT(s.bytes_down, s.bytes_down_uncoded);  // f16 broadcast: smaller
  EXPECT_TRUE(nn::flat_all_finite(sim.server().global_params()));
}

TEST(WireCodecSimTest, CodecIsTransparentToTheSocketTransport) {
  fl::UpdateCodecConfig codec;
  codec.update.encoding = fl::WireEncoding::kInt8;
  codec.update.topk_fraction = 0.5;
  fl::FederatedSimulation inproc = make_sim(23, codec, /*socket=*/false);
  inproc.run();
  fl::FederatedSimulation socket = make_sim(23, codec, /*socket=*/true);
  socket.run();
  expect_bitwise_equal(socket.server().global_params(),
                       inproc.server().global_params());
  EXPECT_EQ(socket.transport().stats().bytes_up,
            inproc.transport().stats().bytes_up);
  EXPECT_GT(socket.transport().stats().socket_frames_tx, 0u);
}

}  // namespace
}  // namespace dinar
