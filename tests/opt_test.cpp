#include <gtest/gtest.h>
#include <cmath>

#include <memory>

#include "nn/dense.h"
#include "nn/loss.h"
#include "opt/optimizers.h"
#include "test_helpers.h"
#include "util/error.h"

namespace dinar::opt {
namespace {

using dinar::testing::make_easy_dataset;
using dinar::testing::make_tiny_mlp;

// One training step on a fixed batch; returns the loss before the step.
double step_once(nn::Model& model, Optimizer& optimizer, const Tensor& x,
                 const std::vector<int>& labels) {
  Tensor logits = model.forward(x, true);
  nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  model.zero_grad();
  model.backward(loss.grad_logits);
  optimizer.step(model);
  return loss.mean_loss;
}

double current_loss(nn::Model& model, const Tensor& x, const std::vector<int>& labels) {
  Tensor logits = model.forward(x, false);
  return nn::softmax_cross_entropy(logits, labels).mean_loss;
}

// Every optimizer must make progress on a small fixed batch.
class OptimizerDescentTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerDescentTest, ReducesLossOnFixedBatch) {
  Rng rng(100);
  nn::Model model = make_tiny_mlp(2, 2, rng);
  data::Dataset d = make_easy_dataset(64, rng);
  Tensor x = d.features();
  const std::vector<int>& labels = d.labels();

  auto optimizer = make_optimizer(GetParam(), 0.05);
  const double initial = current_loss(model, x, labels);
  for (int i = 0; i < 40; ++i) step_once(model, *optimizer, x, labels);
  const double final_loss = current_loss(model, x, labels);
  EXPECT_LT(final_loss, initial * 0.8) << GetParam();
}

TEST_P(OptimizerDescentTest, ParametersStayFinite) {
  Rng rng(101);
  nn::Model model = make_tiny_mlp(2, 2, rng);
  data::Dataset d = make_easy_dataset(32, rng);
  auto optimizer = make_optimizer(GetParam(), 0.05);
  for (int i = 0; i < 30; ++i) step_once(model, *optimizer, d.features(), d.labels());
  // Materialize before iterating: as_span() views the FlatParams arena, and
  // a range-for keeps only the span alive, not the temporary it views.
  const nn::FlatParams params = model.parameters();
  for (float v : params.as_span())
    EXPECT_TRUE(std::isfinite(v)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerDescentTest,
                         ::testing::Values("sgd", "adagrad", "adam", "adamax",
                                           "rmsprop", "adgd"));

TEST(OptimizerFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(make_optimizer("bogus", 0.1), Error);
}

TEST(OptimizerFactoryTest, NamesRoundTrip) {
  for (const char* name : {"sgd", "adagrad", "adam", "adamax", "rmsprop", "adgd"})
    EXPECT_EQ(make_optimizer(name, 0.1)->name(), name);
}

TEST(AdagradTest, MatchesAlgorithmOneUpdateRule) {
  // Single parameter layer, single known gradient: after one step,
  //   G = g^2,  theta = theta0 - lr * g / sqrt(G + 1e-5).
  Rng rng(102);
  nn::Model model;
  model.add(std::make_unique<nn::Dense>(1, 1, rng));
  nn::ParamGroup group = model.param_layers()[0];
  group.params[0]->fill(1.0f);  // weight
  group.params[1]->fill(0.0f);  // bias

  // Forward y = w*x with x=2 => dL/dw for L = y (grad_out 1) is 2.
  Tensor x({1, 1}, {2.0f});
  model.forward(x, true);
  model.zero_grad();
  model.backward(Tensor({1, 1}, {1.0f}));

  Adagrad opt(0.1);
  opt.step(model);
  const float g = 2.0f;
  const float expected = 1.0f - 0.1f * g / std::sqrt(g * g + 1e-5f);
  EXPECT_NEAR(model.parameters().as_span()[0], expected, 1e-6);
}

TEST(AdagradTest, AccumulationShrinksSteps) {
  // With a constant gradient the Adagrad step decays like 1/sqrt(t).
  Rng rng(103);
  nn::Model model;
  model.add(std::make_unique<nn::Dense>(1, 1, rng));
  model.param_layers()[0].params[0]->fill(0.0f);
  model.param_layers()[0].params[1]->fill(0.0f);

  Adagrad opt(0.1);
  Tensor x({1, 1}, {1.0f});
  std::vector<float> steps;
  float prev = 0.0f;
  for (int t = 0; t < 4; ++t) {
    model.forward(x, true);
    model.zero_grad();
    model.backward(Tensor({1, 1}, {1.0f}));
    opt.step(model);
    const float now = model.parameters().as_span()[0];
    steps.push_back(std::fabs(now - prev));
    prev = now;
  }
  EXPECT_GT(steps[0], steps[1]);
  EXPECT_GT(steps[1], steps[2]);
  EXPECT_GT(steps[2], steps[3]);
}

TEST(AdagradTest, ResetClearsAccumulator) {
  Rng rng(104);
  nn::Model model;
  model.add(std::make_unique<nn::Dense>(1, 1, rng));
  model.param_layers()[0].params[0]->fill(0.0f);
  model.param_layers()[0].params[1]->fill(0.0f);

  Adagrad opt(0.1);
  Tensor x({1, 1}, {1.0f});
  // Two steps, then reset: the next step must be as large as a first step.
  auto do_step = [&] {
    model.forward(x, true);
    model.zero_grad();
    model.backward(Tensor({1, 1}, {1.0f}));
    const float before = model.parameters().as_span()[0];
    opt.step(model);
    return std::fabs(model.parameters().as_span()[0] - before);
  };
  const float first = do_step();
  do_step();
  opt.reset();
  const float after_reset = do_step();
  EXPECT_NEAR(after_reset, first, 1e-6);
}

TEST(SgdTest, PlainStepIsLrTimesGrad) {
  Rng rng(105);
  nn::Model model;
  model.add(std::make_unique<nn::Dense>(1, 1, rng));
  model.param_layers()[0].params[0]->fill(1.0f);
  model.param_layers()[0].params[1]->fill(0.0f);
  Tensor x({1, 1}, {3.0f});
  model.forward(x, true);
  model.zero_grad();
  model.backward(Tensor({1, 1}, {1.0f}));
  Sgd opt(0.01);
  opt.step(model);
  EXPECT_NEAR(model.parameters().as_span()[0], 1.0f - 0.01f * 3.0f, 1e-6);
}

TEST(SgdTest, MomentumAcceleratesConstantGradient) {
  Rng rng(106);
  nn::Model plain_model;
  plain_model.add(std::make_unique<nn::Dense>(1, 1, rng));
  nn::Model momentum_model = plain_model;

  auto run = [](nn::Model& m, Sgd& opt) {
    Tensor x({1, 1}, {1.0f});
    float start = m.parameters().as_span()[0];
    for (int i = 0; i < 5; ++i) {
      m.forward(x, true);
      m.zero_grad();
      m.backward(Tensor({1, 1}, {1.0f}));
      opt.step(m);
    }
    return std::fabs(m.parameters().as_span()[0] - start);
  };
  Sgd plain(0.01), with_momentum(0.01, 0.9);
  const float d_plain = run(plain_model, plain);
  const float d_momentum = run(momentum_model, with_momentum);
  EXPECT_GT(d_momentum, d_plain * 1.5);
}

TEST(AdamTest, FirstStepMagnitudeIsLr) {
  // Adam's bias-corrected first step is ~lr regardless of gradient scale.
  Rng rng(107);
  nn::Model model;
  model.add(std::make_unique<nn::Dense>(1, 1, rng));
  model.param_layers()[0].params[0]->fill(0.0f);
  model.param_layers()[0].params[1]->fill(0.0f);
  Tensor x({1, 1}, {100.0f});  // large gradient
  model.forward(x, true);
  model.zero_grad();
  model.backward(Tensor({1, 1}, {1.0f}));
  Adam opt(0.001);
  opt.step(model);
  EXPECT_NEAR(std::fabs(model.parameters().as_span()[0]), 0.001f, 1e-5);
}

TEST(AdgdTest, AdaptsStepSizeWithoutBlowup) {
  Rng rng(108);
  nn::Model model = make_tiny_mlp(2, 2, rng);
  data::Dataset d = make_easy_dataset(64, rng);
  Adgd opt(0.01);
  double last = 0.0;
  for (int i = 0; i < 30; ++i)
    last = step_once(model, opt, d.features(), d.labels());
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, 1.0);
}

TEST(OptimizerTest, LearningRateAccessors) {
  Adagrad opt(0.5);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
  opt.set_learning_rate(0.25);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.25);
}

TEST(OptimizerTest, StateRebindsAfterStructureChange) {
  // Using the same optimizer on a second, differently-shaped model must
  // not corrupt state (state reinitializes on shape mismatch).
  Rng rng(109);
  nn::Model a = make_tiny_mlp(2, 2, rng);
  nn::Model b;
  b.add(std::make_unique<nn::Dense>(3, 2, rng));
  Adagrad opt(0.1);
  data::Dataset d = make_easy_dataset(16, rng);
  step_once(a, opt, d.features(), d.labels());

  Tensor x({1, 3}, {1.0f, 2.0f, 3.0f});
  b.forward(x, true);
  b.zero_grad();
  b.backward(Tensor({1, 2}, {1.0f, -1.0f}));
  EXPECT_NO_THROW(opt.step(b));
}

}  // namespace
}  // namespace dinar::opt
